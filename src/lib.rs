//! Umbrella package for the CPPE reproduction workspace.
//!
//! Re-exports the per-crate public APIs so examples and integration tests
//! can use a single dependency. See README.md for the tour.
pub use cppe;
pub use gmmu;
pub use gpu;
pub use harness;
pub use sim_core;
pub use uvm;
pub use workloads;
