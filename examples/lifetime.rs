//! Fig. 5 of the paper — the "lifetime" example, reproduced directly on
//! the chunk chain.
//!
//! "Suppose the GPU memory becomes full when eight chunks are
//! prefetched. ... C1 is evicted under LRU with a lifetime of 8.
//! Alternatively, C4 is evicted under MRU with a lifetime of 5. ...
//! if two chunks are skipped, C2 will be evicted (with a lifetime of 7)
//! under MRU."
//!
//! ```text
//! cargo run --example lifetime
//! ```

use cppe::chain::ChunkChain;
use gmmu::types::ChunkId;
use sim_core::FxHashSet;

fn main() {
    // Eight chunks C1..C8 prefetched in order; interval length is 64
    // pages = 4 chunk migrations, so C1-C4 land in interval 0 and C5-C8
    // in interval 1; the fault that needs room for C9 happens in
    // interval 2.
    let mut chain = ChunkChain::new();
    for i in 1..=8u64 {
        chain.insert_tail(ChunkId(i), (i - 1) / 4);
    }
    let now = 2; // current interval
    let none = FxHashSet::default();

    let lru = chain.select_lru_old(now, &none).unwrap();
    println!(
        "LRU evicts C{} (lifetime 8: prefetched first, evicted when C9 arrives)",
        lru.0
    );
    assert_eq!(lru, ChunkId(1));

    // MRU considers the old partition (chunks not referenced in the
    // current or previous interval — C1..C4 here).
    let mru = chain.select_mru_old(0, now, &none).unwrap();
    println!("MRU evicts C{} (lifetime 5)", mru.0);
    assert_eq!(mru, ChunkId(4));

    // Forward distance 2: skip two chunks from the MRU position.
    let fd2 = chain.select_mru_old(2, now, &none).unwrap();
    println!("MRU with forward distance 2 evicts C{} (lifetime 7)", fd2.0);
    assert_eq!(fd2, ChunkId(2));

    println!("\nMatches Fig. 5 of the paper exactly.");
}
