//! Build a *custom* workload from phases and inspect what each policy
//! does with it — the intended way for downstream users to evaluate
//! their own access patterns against CPPE.
//!
//! The example models a two-phase application: a stride-4 "sparse
//! update" kernel (the MVT-style pattern the pattern buffer learns)
//! followed by a dense verification sweep.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use cppe::presets::PolicyPreset;
use gpu::{simulate, GpuConfig};
use workloads::{PatternType, Phase, WorkloadSpec};

fn my_app() -> WorkloadSpec {
    WorkloadSpec {
        name: "sparse-update",
        abbr: "SPU",
        suite: "custom",
        footprint_mb: 24.0,
        pattern: PatternType::MostlyRepetitive,
        seed: 0xBEEF,
        build: |pages| {
            vec![
                // Three sparse update sweeps: stride-4 page touches.
                Phase::Strided {
                    start: 0,
                    len: pages,
                    stride: 4,
                    passes: 3,
                    compute: 300,
                },
                // One dense verification pass.
                Phase::Seq {
                    start: 0,
                    len: pages,
                    passes: 1,
                    compute: 300,
                },
            ]
        },
    }
}

fn main() {
    let spec = my_app();
    let scale = 1.0;
    let gpu = GpuConfig {
        warps_per_sm: 1,
        ..GpuConfig::default()
    };
    let pages = spec.pages(scale);
    let capacity = (pages / 2) as u32; // 50 % oversubscription
    let lanes = gpu.lanes();
    let streams: Vec<_> = (0..lanes)
        .map(|l| spec.lane_items(l, lanes, scale))
        .collect();

    println!(
        "custom workload: {} pages, 50% fits; stride-4 updates + dense sweep\n",
        pages
    );
    println!(
        "{:18} {:>9} {:>12} {:>8} {:>9} {:>12} {:>12}",
        "policy", "outcome", "cycles", "faults", "evictions", "h2d-bytes", "pattern-buf"
    );
    for preset in [
        PolicyPreset::Baseline,
        PolicyPreset::DisablePfOnFull,
        PolicyPreset::MhpeOnly,
        PolicyPreset::Cppe,
    ] {
        let engine = preset.build(1);
        let r = simulate(&gpu, engine, &streams, capacity, pages);
        println!(
            "{:18} {:>9} {:>12} {:>8} {:>9} {:>12} {:>12}",
            preset.label(),
            format!("{:?}", r.outcome),
            r.cycles,
            r.engine.faults,
            r.engine.chunk_evictions,
            r.bytes_h2d,
            r.overhead.pattern_buffer_max,
        );
    }
    println!(
        "\nThe pattern-aware prefetcher learns the stride-4 touch pattern from\n\
         evicted chunks and stops migrating the 12 untouched pages per chunk —\n\
         compare h2d traffic between 'mhpe-naive-pf' and 'cppe'."
    );
}
