//! Oversubscription sweep: how execution time grows as less and less of
//! a workload fits in GPU memory, for three policies.
//!
//! Mirrors the sensitivity-to-oversubscription studies in Zheng et al.
//! (HPCA'16) that the paper builds on, and shows where CPPE's advantage
//! opens up.
//!
//! ```text
//! cargo run --release --example oversubscription_sweep [ABBR]
//! ```

use cppe::presets::PolicyPreset;
use gpu::{simulate, GpuConfig, Outcome};
use workloads::registry;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "HSD".to_string());
    let spec = registry::by_abbr(&which).unwrap_or_else(|| {
        eprintln!("unknown workload '{which}', see Table II abbreviations");
        std::process::exit(1);
    });
    let scale = 0.5;
    let gpu = GpuConfig {
        warps_per_sm: 1,
        ..GpuConfig::default()
    };
    let pages = spec.pages(scale);
    let lanes = gpu.lanes();
    let streams: Vec<_> = (0..lanes)
        .map(|l| spec.lane_items(l, lanes, scale))
        .collect();

    println!(
        "{} ({}, Type {}) — cycles at each oversubscription rate\n",
        spec.name,
        spec.abbr,
        spec.pattern.roman()
    );
    println!(
        "{:>8}  {:>14}  {:>14}  {:>14}",
        "fits", "baseline", "cppe", "nopf-on-full"
    );
    for percent in [100u64, 90, 75, 60, 50, 40] {
        let capacity = ((pages * percent / 100).max(32) / 16 * 16) as u32;
        let mut row = format!("{percent:>7}%");
        for preset in [
            PolicyPreset::Baseline,
            PolicyPreset::Cppe,
            PolicyPreset::DisablePfOnFull,
        ] {
            let engine = preset.build(42);
            let r = simulate(&gpu, engine, &streams, capacity, pages);
            let cell = match r.outcome {
                Outcome::Completed => format!("{:>14}", r.cycles),
                Outcome::Degraded => format!("{:>13}*", r.cycles),
                Outcome::Crashed => format!("{:>14}", "CRASHED"),
                Outcome::Timeout => format!("{:>14}", "TIMEOUT"),
            };
            row.push_str("  ");
            row.push_str(&cell);
        }
        println!("{row}");
    }
    println!(
        "\nAt 100% everything fits (compulsory faults only); below that the\n\
         eviction policy decides how gracefully performance degrades."
    );
}
