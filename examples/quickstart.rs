//! Quickstart: run one workload under the baseline and under CPPE and
//! compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cppe::presets::PolicyPreset;
use gpu::{simulate, GpuConfig};
use workloads::registry;

fn main() {
    // The srad_v2 benchmark: a Type IV (thrashing) app — cyclic sweeps
    // over a 96 MB footprint (Table II).
    let spec = registry::by_abbr("SRD").expect("SRD is in the registry");
    let scale = 0.5; // half footprint for a quick run
    let gpu = GpuConfig {
        warps_per_sm: 1,
        ..GpuConfig::default()
    };

    // 50 % oversubscription: only half the footprint fits in GPU memory.
    let pages = spec.pages(scale);
    let capacity = (pages / 2) as u32;
    let lanes = gpu.lanes();
    let streams: Vec<_> = (0..lanes)
        .map(|l| spec.lane_items(l, lanes, scale))
        .collect();

    println!(
        "workload={} footprint={} pages, capacity={} pages ({}% fits)\n",
        spec.name,
        pages,
        capacity,
        100 * u64::from(capacity) / pages
    );

    let mut results = Vec::new();
    for preset in [PolicyPreset::Baseline, PolicyPreset::Cppe] {
        let engine = preset.build(42);
        let r = simulate(&gpu, engine, &streams, capacity, pages);
        println!(
            "{:10} outcome={:?} cycles={:>12} faults={:>7} chunk-evictions={:>7} wrong-evictions={}",
            preset.label(),
            r.outcome,
            r.cycles,
            r.engine.faults,
            r.engine.chunk_evictions,
            r.wrong_evictions,
        );
        results.push(r);
    }

    let speedup = results[0].cycles as f64 / results[1].cycles as f64;
    println!(
        "\nCPPE speedup over the LRU+naive-prefetch baseline: {speedup:.2}x \
         (the paper reports large Type IV wins — Fig. 8)"
    );
}
