//! # bench — Criterion benchmarks for the CPPE reproduction
//!
//! Two benchmark families (see `benches/`):
//!
//! * `micro` — hot-path micro-benchmarks: chunk-chain operations, TLB
//!   lookups, page-table walks, pattern-buffer probes and a single
//!   fault-batch service.
//! * `policies` — end-to-end simulator runs per policy preset on a
//!   reduced-scale workload (the policy-comparison microcosm).
//! * `figures` — one group per paper table/figure, running the same
//!   harness code the `harness` binaries use at a reduced scale.
//!
//! Helpers shared by the bench targets live here.

use cppe::presets::PolicyPreset;
use gpu::{simulate, GpuConfig, RunResult};
use workloads::registry;

/// A small, fast experiment configuration for benchmarking: quarter
/// footprints, one lane per SM.
#[must_use]
pub fn bench_config() -> harness::ExpConfig {
    harness::ExpConfig {
        scale: 0.25,
        ..harness::ExpConfig::default()
    }
}

/// Run one benchmark cell (small scale) and return the result.
#[must_use]
pub fn bench_cell(abbr: &str, preset: PolicyPreset, rate: f64) -> RunResult {
    let cfg = bench_config();
    let spec = registry::by_abbr(abbr).expect("known workload");
    harness::run_cell(&spec, preset, rate, &cfg)
}

/// Prebuilt lane streams for a workload at bench scale.
#[must_use]
pub fn bench_streams(abbr: &str) -> (Vec<Vec<workloads::LaneItem>>, u32, u64, GpuConfig) {
    let cfg = bench_config();
    let spec = registry::by_abbr(abbr).expect("known workload");
    let lanes = cfg.gpu.lanes();
    let streams: Vec<_> = (0..lanes)
        .map(|l| spec.lane_items(l, lanes, cfg.scale))
        .collect();
    let capacity = harness::capacity_pages(&spec, 0.5, cfg.scale);
    (streams, capacity, spec.pages(cfg.scale), cfg.gpu)
}

/// Run prebuilt streams under a preset (the measured body of the
/// `policies` benches).
#[must_use]
pub fn run_streams(
    streams: &[Vec<workloads::LaneItem>],
    capacity: u32,
    pages: u64,
    gpu: &GpuConfig,
    preset: PolicyPreset,
) -> RunResult {
    simulate(gpu, preset.build(42), streams, capacity, pages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_cell_runs() {
        let r = bench_cell("STN", PolicyPreset::Baseline, 0.5);
        assert!(r.accesses > 0);
    }

    #[test]
    fn bench_streams_shapes() {
        let (streams, capacity, pages, gpu) = bench_streams("STN");
        assert_eq!(streams.len(), gpu.lanes());
        assert!(u64::from(capacity) < pages);
        let r = run_streams(&streams, capacity, pages, &gpu, PolicyPreset::Cppe);
        assert!(r.completed());
    }
}
