//! One benchmark per paper table/figure: each measured body runs the
//! exact harness code that regenerates the artifact, at bench scale
//! (quarter footprints) so a full `cargo bench` stays tractable.
//!
//! Run with `cargo bench -p bench --bench figures`. For the
//! paper-faithful full-scale outputs, use the `harness` binaries
//! (`cargo run --release -p harness --bin all`).

use bench::bench_config;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use harness::experiments;
use harness::ExpConfig;

fn artifact(c: &mut Criterion, name: &str, run: fn(&ExpConfig, usize) -> String) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("paper_artifacts");
    g.sample_size(10);
    g.bench_function(name, |b| b.iter(|| black_box(run(&cfg, 0))));
    g.finish();
}

fn fig3(c: &mut Criterion) {
    artifact(c, "fig3", experiments::fig3::run);
}
fn fig4(c: &mut Criterion) {
    artifact(c, "fig4", experiments::fig4::run);
}
fn fig7(c: &mut Criterion) {
    artifact(c, "fig7", experiments::fig7::run);
}
fn fig8(c: &mut Criterion) {
    artifact(c, "fig8", experiments::fig8::run);
}
fn fig9(c: &mut Criterion) {
    artifact(c, "fig9", experiments::fig9::run);
}
fn fig10(c: &mut Criterion) {
    artifact(c, "fig10", experiments::fig10::run);
}
fn table3(c: &mut Criterion) {
    artifact(c, "table3", experiments::table3::run);
}
fn table4(c: &mut Criterion) {
    artifact(c, "table4", experiments::table4::run);
}
fn sens(c: &mut Criterion) {
    artifact(c, "sens", experiments::sens::run);
}
fn overhead(c: &mut Criterion) {
    artifact(c, "overhead", experiments::overhead::run);
}
fn motivation(c: &mut Criterion) {
    artifact(c, "motivation", experiments::motivation::run);
}
fn ablation(c: &mut Criterion) {
    artifact(c, "ablation", experiments::ablation::run);
}
fn bound(c: &mut Criterion) {
    artifact(c, "bound", experiments::bound::run);
}
fn timeline(c: &mut Criterion) {
    artifact(c, "timeline", experiments::timeline::run);
}

criterion_group!(
    figures, fig3, fig4, fig7, fig8, fig9, fig10, table3, table4, sens, overhead, motivation,
    ablation, bound, timeline
);
criterion_main!(figures);
