//! End-to-end policy benchmarks: full simulator runs per policy preset
//! on reduced-scale workloads — one thrashing (STN), one strided (NW),
//! one streaming (HOT).
//!
//! Run with `cargo bench -p bench --bench policies`.

use bench::{bench_streams, run_streams};
use cppe::presets::PolicyPreset;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn policy_runs(c: &mut Criterion) {
    for abbr in ["STN", "NW", "HOT"] {
        let (streams, capacity, pages, gpu) = bench_streams(abbr);
        let mut g = c.benchmark_group(format!("simulate_{abbr}"));
        g.sample_size(10);
        for preset in [
            PolicyPreset::Baseline,
            PolicyPreset::Random,
            PolicyPreset::ReservedLru20,
            PolicyPreset::DisablePfOnFull,
            PolicyPreset::MhpeOnly,
            PolicyPreset::Cppe,
        ] {
            g.bench_function(preset.label(), |b| {
                b.iter(|| black_box(run_streams(&streams, capacity, pages, &gpu, preset)));
            });
        }
        g.finish();
    }
}

criterion_group!(policies, policy_runs);
criterion_main!(policies);
