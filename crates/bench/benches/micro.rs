//! Micro-benchmarks for the hot-path structures.
//!
//! Run with `cargo bench -p bench --bench micro`.

use cppe::chain::ChunkChain;
use cppe::evicted_buffer::EvictedBuffer;
use cppe::prefetch::pattern::{DeletionScheme, PatternBuffer};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gmmu::page_table::PageTable;
use gmmu::tlb::{Tlb, TlbConfig};
use gmmu::types::{ChunkId, Frame, VirtPage};
use gmmu::walk_cache::WalkCache;
use gmmu::walker::{Walker, WalkerConfig};
use sim_core::time::Cycle;
use sim_core::{EventQueue, FxHashSet, TouchVec};

fn chain_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("chunk_chain");
    g.bench_function("insert_move_remove_1k", |b| {
        b.iter(|| {
            let mut ch = ChunkChain::new();
            for i in 0..1000u64 {
                ch.insert_tail(ChunkId(i), i / 4);
            }
            for i in 0..500u64 {
                ch.insert_tail(ChunkId(i), 300); // move to tail
            }
            for i in 0..1000u64 {
                ch.remove(ChunkId(i));
            }
            black_box(ch.len())
        });
    });
    g.bench_function("select_mru_old_fd8", |b| {
        let mut ch = ChunkChain::new();
        for i in 0..2000u64 {
            ch.insert_tail(ChunkId(i), i / 4);
        }
        let none = FxHashSet::default();
        b.iter(|| black_box(ch.select_mru_old(8, 600, &none)));
    });
    g.bench_function("select_lru_old", |b| {
        let mut ch = ChunkChain::new();
        for i in 0..2000u64 {
            ch.insert_tail(ChunkId(i), i / 4);
        }
        let none = FxHashSet::default();
        b.iter(|| black_box(ch.select_lru_old(600, &none)));
    });
    g.finish();
}

fn tlb_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb");
    g.bench_function("l1_lookup_hit", |b| {
        let mut tlb = Tlb::new(TlbConfig::l1_default());
        for i in 0..128u64 {
            tlb.insert(VirtPage(i), Frame(i as u32));
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 128;
            black_box(tlb.lookup(VirtPage(i)))
        });
    });
    g.bench_function("l2_miss_insert_evict", |b| {
        let mut tlb = Tlb::new(TlbConfig::l2_default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tlb.lookup(VirtPage(i));
            black_box(tlb.insert(VirtPage(i), Frame(i as u32)))
        });
    });
    g.finish();
}

fn tlb_probe_vs_legacy(c: &mut Criterion) {
    use gmmu::tlb::legacy::ScanTlb;

    // PR 10: the indexed probe (open-addressed key index + intrusive
    // LRU) against the seed's way scan with min-stamp victim search, on
    // the same L2 geometry. Hits probe a warm working set; the
    // miss path measures insert-with-evict churn.
    let mut g = c.benchmark_group("tlb_probe_vs_legacy");
    g.bench_function("indexed_lookup_hit", |b| {
        let mut tlb = Tlb::new(TlbConfig::l2_default());
        for i in 0..512u64 {
            tlb.insert(VirtPage(i), Frame(i as u32));
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(tlb.lookup(VirtPage(i)))
        });
    });
    g.bench_function("scan_lookup_hit", |b| {
        let mut tlb = ScanTlb::new(TlbConfig::l2_default());
        for i in 0..512u64 {
            tlb.insert(VirtPage(i), Frame(i as u32));
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(tlb.lookup(VirtPage(i)))
        });
    });
    g.bench_function("indexed_miss_insert_evict", |b| {
        let mut tlb = Tlb::new(TlbConfig::l2_default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tlb.lookup(VirtPage(i));
            black_box(tlb.insert(VirtPage(i), Frame(i as u32)))
        });
    });
    g.bench_function("scan_miss_insert_evict", |b| {
        let mut tlb = ScanTlb::new(TlbConfig::l2_default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tlb.lookup(VirtPage(i));
            black_box(tlb.insert(VirtPage(i), Frame(i as u32)))
        });
    });
    g.finish();
}

fn streak_vs_roundtrip(c: &mut Criterion) {
    use cppe::presets::PolicyPreset;
    use gpu::GpuConfig;
    use workloads::types::{AccessStep, LaneItem};

    // PR 10: the lane run-ahead streak against the per-access event
    // round-trip, end to end. A single lane over a fully resident
    // working set is pure hit path — with `fast_lane` on, the engine
    // executes bounded streaks inline; off, every access pops and
    // pushes the calendar queue.
    const FOOTPRINT: u64 = 48;
    let streams: Vec<Vec<LaneItem>> = vec![(0..20_000u64)
        .map(|i| {
            LaneItem::Access(AccessStep {
                page: VirtPage(i % FOOTPRINT),
                compute: (i % 8) as u32,
            })
        })
        .collect()];
    let mut g = c.benchmark_group("streak_vs_roundtrip");
    g.sample_size(20);
    for (label, fast_lane) in [("fast_lane_streak", true), ("event_roundtrip", false)] {
        g.bench_function(label, |b| {
            let cfg = GpuConfig {
                fast_lane,
                ..GpuConfig::default()
            };
            b.iter(|| {
                let engine = PolicyPreset::Cppe.build(7);
                black_box(gpu::simulate(&cfg, engine, &streams, 64, FOOTPRINT))
            });
        });
    }
    g.finish();
}

fn walker_ops(c: &mut Criterion) {
    c.bench_function("walker_warm_walk", |b| {
        let mut w = Walker::new(WalkerConfig::default());
        let mut pwc = WalkCache::table1_default();
        let mut pt = PageTable::new();
        for i in 0..512u64 {
            pt.map(VirtPage(i), Frame(i as u32), false);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 512;
            black_box(w.walk(VirtPage(i), Cycle(i * 1000), &mut pwc, &pt))
        });
    });
}

fn pattern_ops(c: &mut Criterion) {
    c.bench_function("pattern_buffer_record_probe", |b| {
        let mut buf = PatternBuffer::new();
        let stride2 = TouchVec::from_bits(0x5555);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let chunk = ChunkId(i % 1024);
            buf.record(chunk, stride2);
            black_box(buf.probe(chunk.page(2), DeletionScheme::Scheme2))
        });
    });
    c.bench_function("evicted_buffer_push_take", |b| {
        let mut buf = EvictedBuffer::new(64);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            buf.push(ChunkId(i % 512));
            black_box(buf.take(ChunkId((i * 7) % 512)))
        });
    });
}

fn event_queue_ops(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut x = 0x9E37_79B9u64;
            for i in 0..1000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                q.push(Cycle(x % 100_000), i);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        });
    });

    // The simulator's real delta distribution is bimodal: most events
    // reschedule a handful of cycles ahead (lane latencies, TLB probes),
    // while batch completions land a driver round-trip (~28k cycles)
    // out — past the calendar queue's near-future ring, exercising the
    // far-heap drain. Steady-state mixes: pop one, push one at the
    // popped time plus a drawn delta.
    let mut g = c.benchmark_group("event_queue_steady_state");
    for (label, mix) in [
        // ~lane cadence: always inside the ring.
        ("near_deltas", [1u64, 4, 16, 80, 200, 2, 8, 40]),
        // ~driver cadence: always past the ring (RING = 2048).
        ("far_deltas", [28_000, 35_000, 30_000, 28_500, 40_000, 29_000, 31_000, 33_000]),
        // ~observed fault-heavy runs: mostly near, a far tail.
        ("mixed_deltas", [1, 4, 16, 80, 2, 8, 28_000, 35_000]),
    ] {
        g.bench_function(label, |b| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..256u64 {
                q.push(Cycle(i * 7), i);
            }
            let mut i = 0usize;
            b.iter(|| {
                let (t, e) = q.pop().expect("queue stays populated");
                i = (i + 1) % mix.len();
                q.push(Cycle(t.0 + mix[i]), e);
                black_box(t)
            });
        });
    }
    g.finish();
}

fn page_table_probe(c: &mut Criterion) {
    use gmmu::page_table::legacy::MapPageTable;

    // Residency probes dominate translation misses and prefetch
    // planning; compare the flat direct-indexed table against the
    // pre-overhaul hash map on the same dense footprint.
    const FOOTPRINT: u64 = 1 << 16;
    let mut flat = PageTable::new();
    let mut map = MapPageTable::new();
    for i in (0..FOOTPRINT).step_by(2) {
        flat.map(VirtPage(i), Frame(i as u32), false);
        map.map(VirtPage(i), Frame(i as u32), false);
    }
    let mut g = c.benchmark_group("page_table_probe");
    g.bench_function("flat_residency", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % FOOTPRINT;
            black_box(flat.residency(VirtPage(i)))
        });
    });
    g.bench_function("legacy_map_residency", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % FOOTPRINT;
            black_box(map.residency(VirtPage(i)))
        });
    });
    g.finish();
}

fn fault_batch(c: &mut Criterion) {
    c.bench_function("uvm_service_batch_28_faults", |b| {
        use cppe::presets::PolicyPreset;
        use gmmu::translation::{TranslationConfig, TranslationPath};
        use uvm::driver::{UvmConfig, UvmDriver};
        b.iter(|| {
            let mut driver = UvmDriver::new(UvmConfig::table1(2048, 4096), PolicyPreset::Cppe.build(1));
            let mut xlat = TranslationPath::new(&TranslationConfig::default());
            let faults: Vec<VirtPage> = (0..28u64).map(|i| VirtPage(i * 16)).collect();
            black_box(driver.service_batch(&faults, Cycle::ZERO, &mut xlat))
        });
    });
}

criterion_group!(
    micro,
    chain_ops,
    tlb_ops,
    tlb_probe_vs_legacy,
    streak_vs_roundtrip,
    walker_ops,
    pattern_ops,
    event_queue_ops,
    page_table_probe,
    fault_batch
);
criterion_main!(micro);
