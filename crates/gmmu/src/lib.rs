//! # gmmu — GPU address-translation substrate
//!
//! Models the shaded components of Fig. 1 in the paper: per-SM private
//! L1 TLBs, a shared L2 TLB, a highly-threaded page-table walker over a
//! 4-level page table, and a shared page-walk cache. Configuration
//! defaults follow Table I:
//!
//! | Component | Parameters |
//! |---|---|
//! | L1 TLB | 128 entries per SM, 1-cycle latency, LRU |
//! | L2 TLB | 512 entries, 16-way, 10-cycle latency |
//! | Walker | 64 concurrent walks, 4-level table |
//! | Page-walk cache | 8 KB, 16-way, 10-cycle latency |
//!
//! The module split mirrors the hardware:
//! * [`types`] — virtual pages, chunks (16 pages / 64 KB), frames,
//! * [`assoc`] — the indexed set-associative LRU store backing the
//!   TLBs and the page-walk cache (hit-path fast lane),
//! * [`tlb`] — a generic set-associative LRU TLB,
//! * [`page_table`] — the radix page table holding residency state,
//! * [`walk_cache`] — the shared page-walk cache,
//! * [`walker`] — the threaded walker (latency + slot contention model),
//! * [`translation`] — the end-to-end translation path used by the
//!   `gpu` crate (L1 → L2 → walk → hit or page fault).

pub mod assoc;
pub mod page_table;
pub mod tlb;
pub mod translation;
pub mod types;
pub mod walk_cache;
pub mod walker;

pub use page_table::{PageTable, Residency};
pub use tlb::{Tlb, TlbConfig};
pub use translation::{TranslationConfig, TranslationOutcome, TranslationPath};
pub use types::{ChunkId, Frame, SmId, VirtAddr, VirtPage, PAGES_PER_CHUNK, PAGE_SIZE};
pub use walk_cache::WalkCache;
pub use walker::{WalkOutcome, Walker, WalkerConfig};
