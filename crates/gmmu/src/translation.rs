//! End-to-end address-translation path (Fig. 1 of the paper).
//!
//! A memory request probes the issuing SM's private L1 TLB (❶), on a miss
//! the shared L2 TLB (❷), and on a second miss enters the page-table
//! walker (❸) which probes the shared page-walk cache (❹) and, if
//! necessary, memory (❺). A walk that finds no mapping raises a page
//! fault, which the `uvm` driver services off-chip.
//!
//! [`TranslationPath`] owns every structure in that pipeline plus the
//! page table itself, and exposes the two operations the rest of the
//! simulator needs: [`translate`](TranslationPath::translate) on the GPU
//! side and map/unmap/invalidate on the driver side.

use crate::page_table::{PageTable, Residency};
use crate::tlb::{Tlb, TlbConfig};
use crate::types::{Frame, SmId, VirtPage};
use crate::walk_cache::WalkCache;
use crate::walker::{Walker, WalkerConfig};
use sim_core::time::Cycle;

/// Shape of the whole translation hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct TranslationConfig {
    /// Number of SMs, i.e. number of private L1 TLBs (Table I: 28).
    pub num_sms: usize,
    /// Per-SM L1 TLB geometry.
    pub l1: TlbConfig,
    /// Shared L2 TLB geometry.
    pub l2: TlbConfig,
    /// Walker shape.
    pub walker: WalkerConfig,
}

impl Default for TranslationConfig {
    fn default() -> Self {
        TranslationConfig {
            num_sms: 28,
            l1: TlbConfig::l1_default(),
            l2: TlbConfig::l2_default(),
            walker: WalkerConfig::default(),
        }
    }
}

/// What a translation request produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslationOutcome {
    /// Translation resolved; the access may proceed at `ready_at`.
    Hit {
        /// Physical frame.
        frame: Frame,
        /// Absolute completion time (TLB/walk latency included).
        ready_at: Cycle,
    },
    /// The page is not resident; a far fault was detected at `at`.
    Fault {
        /// Absolute time the walker discovered the missing mapping.
        at: Cycle,
    },
}

/// Per-stage timestamps of one translation, for latency attribution.
///
/// Stages that did not run collapse to the previous stage's timestamp
/// (an L1 hit leaves `l2_done == l1_done` and `walk_done == l2_done`),
/// so consecutive differences are always the true per-stage costs:
/// `l1_done - issue` (L1 probe), `l2_done - l1_done` (L2 probe),
/// `walk_started - l2_done` (walker slot queueing) and
/// `walk_done - walk_started` (the walk's service time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationTiming {
    /// When the L1 TLB probe completed.
    pub l1_done: Cycle,
    /// When the shared L2 TLB probe completed.
    pub l2_done: Cycle,
    /// When the page-table walk left the slot queue.
    pub walk_started: Cycle,
    /// When the walk completed.
    pub walk_done: Cycle,
}

/// TLB-presence-mask bit reserved for the shared L2 TLB; bits `0..63`
/// identify per-SM L1 TLBs. Hierarchies with more than 63 SMs fall back
/// to scanning every TLB on shootdown.
const L2_MASK_BIT: u32 = 63;

/// The full translation hierarchy.
#[derive(Debug)]
pub struct TranslationPath {
    l1: Vec<Tlb>,
    l2: Tlb,
    pwc: WalkCache,
    walker: Walker,
    page_table: PageTable,
    /// Whether per-page TLB presence masks are in use (num_sms ≤ 63).
    use_masks: bool,
}

impl TranslationPath {
    /// Build the hierarchy from `cfg`.
    #[must_use]
    pub fn new(cfg: &TranslationConfig) -> Self {
        TranslationPath {
            l1: (0..cfg.num_sms).map(|_| Tlb::new(cfg.l1)).collect(),
            l2: Tlb::new(cfg.l2),
            pwc: WalkCache::table1_default(),
            walker: Walker::new(cfg.walker),
            page_table: PageTable::new(),
            use_masks: cfg.num_sms as u32 <= L2_MASK_BIT,
        }
    }

    /// Install `page` in SM `sm`'s L1 TLB, keeping presence masks in sync
    /// for both the installed page and any capacity victim.
    #[inline]
    fn l1_fill(&mut self, sm: SmId, page: VirtPage, frame: Frame) {
        let victim = self.l1[sm.idx()].insert(page, frame);
        if self.use_masks {
            self.page_table.tlb_note_insert(page, sm.idx() as u32);
            if let Some((vp, _)) = victim {
                self.page_table.tlb_note_remove(vp, sm.idx() as u32);
            }
        }
    }

    /// Install `page` in the shared L2 TLB, keeping presence masks in
    /// sync for both the installed page and any capacity victim.
    #[inline]
    fn l2_fill(&mut self, page: VirtPage, frame: Frame) {
        let victim = self.l2.insert(page, frame);
        if self.use_masks {
            self.page_table.tlb_note_insert(page, L2_MASK_BIT);
            if let Some((vp, _)) = victim {
                self.page_table.tlb_note_remove(vp, L2_MASK_BIT);
            }
        }
    }

    /// Translate `page` for SM `sm` at time `now`.
    ///
    /// On TLB hits the result is immediate (plus hit latency). On a full
    /// miss the walker is engaged; a resident PTE refills both TLB levels,
    /// a missing PTE reports a fault. Touch bits are the *caller's*
    /// responsibility (`mark_touched`), because a faulting access touches
    /// the page only once it has been migrated.
    ///
    /// # Panics
    /// Panics if `sm` is out of range.
    pub fn translate(&mut self, sm: SmId, page: VirtPage, now: Cycle) -> TranslationOutcome {
        self.translate_timed(sm, page, now).0
    }

    /// [`translate`](TranslationPath::translate), additionally reporting
    /// when each stage of the pipeline completed. The timing is derived
    /// from the same arithmetic that produces the outcome — requesting
    /// it cannot change a run.
    ///
    /// # Panics
    /// Panics if `sm` is out of range.
    pub fn translate_timed(
        &mut self,
        sm: SmId,
        page: VirtPage,
        now: Cycle,
    ) -> (TranslationOutcome, TranslationTiming) {
        let l1 = &mut self.l1[sm.idx()];
        let l1_latency = l1.hit_latency();
        let after_l1 = now.after(l1_latency);
        if let Some(frame) = l1.lookup(page) {
            return (
                TranslationOutcome::Hit {
                    frame,
                    ready_at: after_l1,
                },
                TranslationTiming {
                    l1_done: after_l1,
                    l2_done: after_l1,
                    walk_started: after_l1,
                    walk_done: after_l1,
                },
            );
        }
        let l2_latency = self.l2.hit_latency();
        let after_l2 = after_l1.after(l2_latency);
        if let Some(frame) = self.l2.lookup(page) {
            self.l1_fill(sm, page, frame);
            return (
                TranslationOutcome::Hit {
                    frame,
                    ready_at: after_l2,
                },
                TranslationTiming {
                    l1_done: after_l1,
                    l2_done: after_l2,
                    walk_started: after_l2,
                    walk_done: after_l2,
                },
            );
        }
        let out = self
            .walker
            .walk(page, after_l2, &mut self.pwc, &self.page_table);
        let timing = TranslationTiming {
            l1_done: after_l1,
            l2_done: after_l2,
            walk_started: out.started_at,
            walk_done: out.complete_at,
        };
        let outcome = match out.residency {
            Residency::Resident(frame) => {
                self.l2_fill(page, frame);
                self.l1_fill(sm, page, frame);
                TranslationOutcome::Hit {
                    frame,
                    ready_at: out.complete_at,
                }
            }
            Residency::NotResident => TranslationOutcome::Fault {
                at: out.complete_at,
            },
        };
        (outcome, timing)
    }

    /// Driver side: map `page` into GPU memory.
    pub fn map(&mut self, page: VirtPage, frame: Frame, touched: bool) {
        self.page_table.map(page, frame, touched);
    }

    /// Driver side: unmap `page` and shoot down every TLB. Returns the
    /// freed frame and the hardware access bit (touched).
    ///
    /// The page's presence mask names exactly the TLBs holding it, so
    /// the shootdown visits only those (usually zero — most evicted
    /// pages are cold) instead of scanning every way of every L1.
    pub fn unmap_and_invalidate(&mut self, page: VirtPage) -> (Frame, bool) {
        if self.use_masks {
            let mut mask = self.page_table.tlb_mask(page);
            while mask != 0 {
                let bit = mask.trailing_zeros();
                mask &= mask - 1;
                let hit = if bit == L2_MASK_BIT {
                    self.l2.invalidate(page)
                } else {
                    self.l1[bit as usize].invalidate(page)
                };
                debug_assert!(hit, "presence mask bit {bit} set but page not in TLB");
            }
        } else {
            for l1 in &mut self.l1 {
                l1.invalidate(page);
            }
            self.l2.invalidate(page);
        }
        self.page_table.unmap(page)
    }

    /// Record an SM access to a resident page (sets the PTE access bit).
    pub fn mark_touched(&mut self, page: VirtPage) {
        self.page_table.mark_touched(page);
    }

    /// Immutable view of the page table.
    #[must_use]
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// Aggregate TLB/walker statistics for reporting.
    #[must_use]
    pub fn stats(&self) -> TranslationStats {
        TranslationStats {
            l1_hits: self.l1.iter().map(|t| t.hits.get()).sum(),
            l1_misses: self.l1.iter().map(|t| t.misses.get()).sum(),
            l2_hits: self.l2.hits.get(),
            l2_misses: self.l2.misses.get(),
            pwc_hits: self.pwc.hits.get(),
            pwc_misses: self.pwc.misses.get(),
            walks: self.walker.walks.get(),
            faulting_walks: self.walker.faulting_walks.get(),
        }
    }
}

/// Snapshot of hierarchy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationStats {
    /// Total L1 TLB hits across SMs.
    pub l1_hits: u64,
    /// Total L1 TLB misses across SMs.
    pub l1_misses: u64,
    /// Shared L2 TLB hits.
    pub l2_hits: u64,
    /// Shared L2 TLB misses.
    pub l2_misses: u64,
    /// Page-walk cache hits.
    pub pwc_hits: u64,
    /// Page-walk cache misses.
    pub pwc_misses: u64,
    /// Walks issued.
    pub walks: u64,
    /// Walks that raised a far fault.
    pub faulting_walks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path() -> TranslationPath {
        TranslationPath::new(&TranslationConfig::default())
    }

    #[test]
    fn unmapped_page_faults() {
        let mut p = path();
        let out = p.translate(SmId(0), VirtPage(0), Cycle::ZERO);
        assert!(matches!(out, TranslationOutcome::Fault { .. }));
        assert_eq!(p.stats().faulting_walks, 1);
    }

    #[test]
    fn mapped_page_walks_then_hits_in_tlbs() {
        let mut p = path();
        p.map(VirtPage(0), Frame(1), true);
        // First access: L1 miss, L2 miss, walk resolves.
        let first = p.translate(SmId(0), VirtPage(0), Cycle::ZERO);
        let TranslationOutcome::Hit { frame, ready_at } = first else {
            panic!("expected hit");
        };
        assert_eq!(frame, Frame(1));
        // 1 (L1) + 10 (L2) + 10 (PWC probe) + 4*150 (cold walk).
        assert_eq!(ready_at, Cycle(1 + 10 + 10 + 600));

        // Second access from the same SM: L1 hit, 1 cycle.
        let second = p.translate(SmId(0), VirtPage(0), Cycle(10_000));
        assert_eq!(
            second,
            TranslationOutcome::Hit {
                frame: Frame(1),
                ready_at: Cycle(10_001)
            }
        );
    }

    #[test]
    fn l2_serves_other_sms() {
        let mut p = path();
        p.map(VirtPage(0), Frame(1), true);
        p.translate(SmId(0), VirtPage(0), Cycle::ZERO); // fills L2
        let out = p.translate(SmId(5), VirtPage(0), Cycle(10_000));
        let TranslationOutcome::Hit { ready_at, .. } = out else {
            panic!("expected hit");
        };
        // L1 miss (1) + L2 hit (10).
        assert_eq!(ready_at, Cycle(10_000 + 1 + 10));
        assert_eq!(p.stats().l2_hits, 1);
    }

    #[test]
    fn unmap_invalidates_all_tlbs() {
        let mut p = path();
        p.map(VirtPage(7), Frame(3), false);
        p.translate(SmId(0), VirtPage(7), Cycle::ZERO);
        p.translate(SmId(1), VirtPage(7), Cycle(5000));
        let (frame, touched) = p.unmap_and_invalidate(VirtPage(7));
        assert_eq!(frame, Frame(3));
        assert!(!touched);
        // Both SMs must now fault.
        let a = p.translate(SmId(0), VirtPage(7), Cycle(20_000));
        let b = p.translate(SmId(1), VirtPage(7), Cycle(30_000));
        assert!(matches!(a, TranslationOutcome::Fault { .. }));
        assert!(matches!(b, TranslationOutcome::Fault { .. }));
    }

    #[test]
    fn touch_bit_flow() {
        let mut p = path();
        p.map(VirtPage(1), Frame(0), false);
        assert!(!p.page_table().is_touched(VirtPage(1)));
        p.mark_touched(VirtPage(1));
        assert!(p.page_table().is_touched(VirtPage(1)));
    }

    #[test]
    fn walker_contention_under_fault_storm() {
        // More concurrent cold walks than slots: completion times spread.
        let mut p = TranslationPath::new(&TranslationConfig {
            walker: crate::walker::WalkerConfig {
                concurrency: 2,
                memory_ref_latency: 100,
            },
            ..TranslationConfig::default()
        });
        let outs: Vec<Cycle> = (0..6)
            .map(|i| {
                // Far-apart pages: all cold walks.
                match p.translate(SmId(i), VirtPage(u64::from(i) << 30), Cycle::ZERO) {
                    TranslationOutcome::Fault { at } => at,
                    TranslationOutcome::Hit { .. } => panic!("unmapped page hit"),
                }
            })
            .collect();
        // With 2 slots and 6 walks, the last finishes ~3x after the first.
        let first = outs.iter().min().unwrap();
        let last = outs.iter().max().unwrap();
        assert!(
            last.0 >= first.0 + 2 * 410,
            "no queueing observed: {outs:?}"
        );
    }

    #[test]
    fn l1_fill_after_l2_hit() {
        let mut p = path();
        p.map(VirtPage(0), Frame(1), true);
        p.translate(SmId(0), VirtPage(0), Cycle::ZERO); // walk, fills L2+L1(0)
        p.translate(SmId(1), VirtPage(0), Cycle(10_000)); // L2 hit, fills L1(1)
        let out = p.translate(SmId(1), VirtPage(0), Cycle(20_000));
        let TranslationOutcome::Hit { ready_at, .. } = out else {
            panic!("expected hit");
        };
        assert_eq!(ready_at, Cycle(20_001), "third access must be an L1 hit");
    }

    #[test]
    fn faulting_page_keeps_tlbs_clean() {
        let mut p = path();
        let _ = p.translate(SmId(0), VirtPage(9), Cycle::ZERO);
        // After mapping, the earlier fault must not have cached anything.
        p.map(VirtPage(9), Frame(4), true);
        let out = p.translate(SmId(0), VirtPage(9), Cycle(10_000));
        let TranslationOutcome::Hit { ready_at, .. } = out else {
            panic!("expected hit");
        };
        // Full path again (L1 miss + L2 miss + warm walk of 1 ref).
        assert!(ready_at.0 > 10_000 + 100, "fault must not fill TLBs");
    }

    #[test]
    fn timed_translate_reports_stage_breakdown() {
        let mut p = path();
        // Cold fault: every stage runs.
        let (out, t) = p.translate_timed(SmId(0), VirtPage(0), Cycle::ZERO);
        assert!(matches!(out, TranslationOutcome::Fault { .. }));
        assert_eq!(t.l1_done, Cycle(1));
        assert_eq!(t.l2_done, Cycle(11));
        assert_eq!(t.walk_started, Cycle(11), "no slot contention at t=0");
        assert_eq!(t.walk_done, Cycle(11 + 10 + 600));
        let TranslationOutcome::Fault { at } = out else {
            unreachable!()
        };
        assert_eq!(t.walk_done, at, "timing agrees with the outcome");

        // L1 hit: later stages collapse onto the L1 timestamp.
        p.map(VirtPage(5), Frame(2), true);
        p.translate(SmId(0), VirtPage(5), Cycle(10_000));
        let (out, t) = p.translate_timed(SmId(0), VirtPage(5), Cycle(20_000));
        let TranslationOutcome::Hit { ready_at, .. } = out else {
            panic!("expected hit");
        };
        assert_eq!(t.l1_done, ready_at);
        assert_eq!(t.l2_done, t.l1_done);
        assert_eq!(t.walk_done, t.l1_done);
    }

    #[test]
    fn timed_and_plain_translate_agree() {
        let mut a = path();
        let mut b = path();
        a.map(VirtPage(1), Frame(0), true);
        b.map(VirtPage(1), Frame(0), true);
        for (i, page) in [0u64, 1, 1, 9, 0, 1].into_iter().enumerate() {
            let now = Cycle(i as u64 * 5_000);
            let plain = a.translate(SmId(0), VirtPage(page), now);
            let (timed, _) = b.translate_timed(SmId(0), VirtPage(page), now);
            assert_eq!(plain, timed, "step {i}");
        }
    }

    #[test]
    fn presence_masks_track_tlb_contents_exactly() {
        // Random translate/map/unmap churn with capacity pressure in
        // every TLB: afterwards, each resident page's mask must name
        // exactly the TLBs that hold it, and shootdowns driven by the
        // mask must leave no stale translation behind.
        let mut p = TranslationPath::new(&TranslationConfig {
            num_sms: 4,
            l1: TlbConfig {
                entries: 8,
                associativity: 8,
                hit_latency: 1,
            },
            l2: TlbConfig {
                entries: 16,
                associativity: 4,
                hit_latency: 10,
            },
            ..TranslationConfig::default()
        });
        let mut x: u64 = 0xABCD_EF01_2345_6789;
        let mut resident: Vec<VirtPage> = Vec::new();
        let mut next_frame = 0u32;
        let mut now = 0u64;
        for _ in 0..3000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            now += 1_000;
            let page = VirtPage(x % 64);
            match x % 4 {
                0 if !p.page_table.is_resident(page) => {
                    p.map(page, Frame(next_frame), false);
                    next_frame += 1;
                    resident.push(page);
                }
                1 if !resident.is_empty() => {
                    let victim = resident.swap_remove((x / 7) as usize % resident.len());
                    p.unmap_and_invalidate(victim);
                    for (sm, l1) in p.l1.iter().enumerate() {
                        assert!(l1.probe(victim).is_none(), "stale L1[{sm}] entry");
                    }
                    assert!(p.l2.probe(victim).is_none(), "stale L2 entry");
                }
                _ => {
                    let sm = SmId((x / 13) as u16 % 4);
                    let _ = p.translate(sm, page, Cycle(now));
                }
            }
        }
        for &page in &resident {
            let mut expect = 0u64;
            for (sm, l1) in p.l1.iter().enumerate() {
                if l1.probe(page).is_some() {
                    expect |= 1 << sm;
                }
            }
            if p.l2.probe(page).is_some() {
                expect |= 1 << L2_MASK_BIT;
            }
            assert_eq!(
                p.page_table.tlb_mask(page),
                expect,
                "mask drift for {page:?}"
            );
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut p = path();
        p.map(VirtPage(0), Frame(0), true);
        p.translate(SmId(0), VirtPage(0), Cycle::ZERO);
        p.translate(SmId(0), VirtPage(0), Cycle(1_000));
        let s = p.stats();
        assert_eq!(s.l1_hits, 1);
        assert_eq!(s.l1_misses, 1);
        assert_eq!(s.walks, 1);
    }
}
