//! Set-associative, LRU-replacement TLB.
//!
//! One structure serves both levels of the paper's hierarchy:
//! * per-SM private L1 TLB — 128 entries, 1-cycle hit latency,
//! * shared L2 TLB — 512 entries, 16-way, 10-cycle hit latency.
//!
//! Entries map a [`VirtPage`] to its [`Frame`]. Evicting a page from GPU
//! memory must shoot the translation down from every TLB, which the
//! `uvm` driver does through [`Tlb::invalidate`].
//!
//! Probes and replacement run on [`IndexedSets`]: an open-addressed
//! key → slot index plus per-set intrusive LRU lists, so a lookup is a
//! couple of index probes instead of a scan over every filled way and
//! the replacement victim is the list tail instead of a min-stamp scan.
//! For the fully-associative 128-entry L1 that turns up to three
//! 128-way scans per access (miss probe, insert existence check, victim
//! search) into O(1) work. Replacement behaviour is exactly the seed's
//! true-LRU — `legacy::ScanTlb` keeps the scan implementation alive and
//! a model test drives both through random op streams to prove every
//! hit, miss and victim choice identical.

use crate::assoc::{mix64, IndexKey, IndexedSets};
use crate::types::{Frame, VirtPage};
use sim_core::stats::Counter;

impl IndexKey for VirtPage {
    #[inline]
    fn index_hash(self) -> u64 {
        mix64(self.0)
    }
}

/// TLB geometry and timing.
#[derive(Debug, Clone, Copy)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Ways per set (`entries` for fully associative).
    pub associativity: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl TlbConfig {
    /// Table I per-SM L1 TLB: 128 entries, single port, 1-cycle, LRU.
    /// Associativity is unspecified in the paper; we model it fully
    /// associative, which is common for small first-level TLBs.
    #[must_use]
    pub fn l1_default() -> Self {
        TlbConfig {
            entries: 128,
            associativity: 128,
            hit_latency: 1,
        }
    }

    /// Table I shared L2 TLB: 512 entries, 16-way, 10-cycle, LRU.
    #[must_use]
    pub fn l2_default() -> Self {
        TlbConfig {
            entries: 512,
            associativity: 16,
            hit_latency: 10,
        }
    }
}

/// A set-associative TLB with true-LRU replacement.
#[derive(Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    sets: IndexedSets<VirtPage, Frame>,
    n_sets: usize,
    /// Lookup hits.
    pub hits: Counter,
    /// Lookup misses.
    pub misses: Counter,
}

impl Tlb {
    /// Build a TLB from `cfg`.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero entries, or entries not
    /// divisible by associativity).
    #[must_use]
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.entries > 0 && cfg.associativity > 0);
        assert!(
            cfg.entries.is_multiple_of(cfg.associativity),
            "entries {} not divisible by associativity {}",
            cfg.entries,
            cfg.associativity
        );
        let n_sets = cfg.entries / cfg.associativity;
        Tlb {
            cfg,
            sets: IndexedSets::new(n_sets, cfg.associativity),
            n_sets,
            hits: Counter::default(),
            misses: Counter::default(),
        }
    }

    #[inline]
    fn set_index(&self, page: VirtPage) -> usize {
        (page.0 % self.n_sets as u64) as usize
    }

    /// Look up `page`, updating LRU state and hit/miss counters.
    /// Returns the cached frame on a hit.
    #[inline]
    pub fn lookup(&mut self, page: VirtPage) -> Option<Frame> {
        if let Some(frame) = self.sets.get(page) {
            self.hits.inc();
            Some(frame)
        } else {
            self.misses.inc();
            None
        }
    }

    /// Peek without touching LRU state or counters (used by tests and
    /// by coherence assertions in the `gpu` crate).
    #[must_use]
    pub fn probe(&self, page: VirtPage) -> Option<Frame> {
        self.sets.peek(page)
    }

    /// Install (or refresh) a translation, evicting the set's LRU way if
    /// the set is full. Returns the victim translation, if any.
    #[inline]
    pub fn insert(&mut self, page: VirtPage, frame: Frame) -> Option<(VirtPage, Frame)> {
        self.sets.insert(self.set_index(page), page, frame)
    }

    /// Shoot down the translation for `page`. Returns true if present.
    pub fn invalidate(&mut self, page: VirtPage) -> bool {
        self.sets.remove(page)
    }

    /// Drop every translation (generation bump — the index is not
    /// walked).
    pub fn flush(&mut self) {
        self.sets.clear();
    }

    /// Hit latency from the config.
    #[must_use]
    pub fn hit_latency(&self) -> u64 {
        self.cfg.hit_latency
    }

    /// Number of currently valid entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.sets.occupancy()
    }
}

/// The seed's scan-based TLB, kept for the `compare-bench` microbenches
/// (probe-vs-legacy-lookup) and the equivalence model test below. Same
/// observable semantics as [`Tlb`]: true LRU by monotone use stamp.
#[cfg(any(test, feature = "compare-bench"))]
pub mod legacy {
    use super::TlbConfig;
    use crate::types::{Frame, VirtPage};
    use sim_core::stats::Counter;

    #[derive(Debug, Clone, Copy)]
    struct Way {
        page: VirtPage,
        frame: Frame,
        /// Monotone use stamp for LRU (larger = more recent).
        stamp: u64,
    }

    const EMPTY_WAY: Way = Way {
        page: VirtPage(u64::MAX),
        frame: Frame(0),
        stamp: 0,
    };

    /// Scan-probed set-associative TLB (the pre-fast-lane structure).
    #[derive(Debug)]
    pub struct ScanTlb {
        cfg: TlbConfig,
        /// Flat way storage: set `s` occupies
        /// `ways[s*assoc .. s*assoc+lens[s]]`.
        ways: Vec<Way>,
        /// Filled ways per set.
        lens: Vec<u32>,
        n_sets: usize,
        tick: u64,
        /// Lookup hits.
        pub hits: Counter,
        /// Lookup misses.
        pub misses: Counter,
    }

    impl ScanTlb {
        /// Build a TLB from `cfg`.
        ///
        /// # Panics
        /// Panics on degenerate geometry.
        #[must_use]
        pub fn new(cfg: TlbConfig) -> Self {
            assert!(cfg.entries > 0 && cfg.associativity > 0);
            assert!(cfg.entries.is_multiple_of(cfg.associativity));
            let n_sets = cfg.entries / cfg.associativity;
            ScanTlb {
                cfg,
                ways: vec![EMPTY_WAY; cfg.entries],
                lens: vec![0; n_sets],
                n_sets,
                tick: 0,
                hits: Counter::default(),
                misses: Counter::default(),
            }
        }

        #[inline]
        fn set_index(&self, page: VirtPage) -> usize {
            (page.0 % self.n_sets as u64) as usize
        }

        /// Look up `page`, updating LRU state and counters.
        pub fn lookup(&mut self, page: VirtPage) -> Option<Frame> {
            self.tick += 1;
            let tick = self.tick;
            let set = self.set_index(page);
            let base = set * self.cfg.associativity;
            let filled = &mut self.ways[base..base + self.lens[set] as usize];
            if let Some(way) = filled.iter_mut().find(|w| w.page == page) {
                way.stamp = tick;
                self.hits.inc();
                Some(way.frame)
            } else {
                self.misses.inc();
                None
            }
        }

        /// Peek without touching LRU state or counters.
        #[must_use]
        pub fn probe(&self, page: VirtPage) -> Option<Frame> {
            let set = self.set_index(page);
            let base = set * self.cfg.associativity;
            self.ways[base..base + self.lens[set] as usize]
                .iter()
                .find(|w| w.page == page)
                .map(|w| w.frame)
        }

        /// Install or refresh, evicting the min-stamp way of a full set.
        pub fn insert(&mut self, page: VirtPage, frame: Frame) -> Option<(VirtPage, Frame)> {
            self.tick += 1;
            let tick = self.tick;
            let set = self.set_index(page);
            let assoc = self.cfg.associativity;
            let base = set * assoc;
            let len = self.lens[set] as usize;
            let filled = &mut self.ways[base..base + len];
            if let Some(way) = filled.iter_mut().find(|w| w.page == page) {
                way.frame = frame;
                way.stamp = tick;
                return None;
            }
            let mut victim = None;
            let mut slot = len;
            if len == assoc {
                let lru = filled
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.stamp)
                    .map(|(i, _)| i)
                    .expect("full set has ways");
                let w = filled[lru];
                victim = Some((w.page, w.frame));
                slot = lru;
            } else {
                self.lens[set] += 1;
            }
            self.ways[base + slot] = Way {
                page,
                frame,
                stamp: tick,
            };
            victim
        }

        /// Shoot down `page`'s translation. Returns true if present.
        pub fn invalidate(&mut self, page: VirtPage) -> bool {
            let set = self.set_index(page);
            let base = set * self.cfg.associativity;
            let len = self.lens[set] as usize;
            let filled = &mut self.ways[base..base + len];
            if let Some(pos) = filled.iter().position(|w| w.page == page) {
                filled[pos] = filled[len - 1];
                self.ways[base + len - 1] = EMPTY_WAY;
                self.lens[set] -= 1;
                true
            } else {
                false
            }
        }

        /// Drop every translation.
        pub fn flush(&mut self) {
            self.ways.fill(EMPTY_WAY);
            self.lens.fill(0);
        }

        /// Number of currently valid entries.
        #[must_use]
        pub fn occupancy(&self) -> usize {
            self.lens.iter().map(|&l| l as usize).sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        // 4 entries, 2-way → 2 sets.
        Tlb::new(TlbConfig {
            entries: 4,
            associativity: 2,
            hit_latency: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut t = tiny();
        assert_eq!(t.lookup(VirtPage(0)), None);
        t.insert(VirtPage(0), Frame(9));
        assert_eq!(t.lookup(VirtPage(0)), Some(Frame(9)));
        assert_eq!(t.hits.get(), 1);
        assert_eq!(t.misses.get(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut t = tiny();
        // Pages 0, 2, 4 all map to set 0 (page % 2 == 0).
        t.insert(VirtPage(0), Frame(0));
        t.insert(VirtPage(2), Frame(2));
        t.lookup(VirtPage(0)); // make page 2 the LRU way
        let victim = t.insert(VirtPage(4), Frame(4));
        assert_eq!(victim, Some((VirtPage(2), Frame(2))));
        assert!(t.probe(VirtPage(0)).is_some());
        assert!(t.probe(VirtPage(2)).is_none());
        assert!(t.probe(VirtPage(4)).is_some());
    }

    #[test]
    fn insert_refresh_does_not_evict() {
        let mut t = tiny();
        t.insert(VirtPage(0), Frame(0));
        t.insert(VirtPage(2), Frame(2));
        assert_eq!(t.insert(VirtPage(0), Frame(7)), None);
        assert_eq!(t.probe(VirtPage(0)), Some(Frame(7)));
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    fn invalidate_removes() {
        let mut t = tiny();
        t.insert(VirtPage(5), Frame(1));
        assert!(t.invalidate(VirtPage(5)));
        assert!(!t.invalidate(VirtPage(5)));
        assert_eq!(t.lookup(VirtPage(5)), None);
    }

    #[test]
    fn flush_clears_everything() {
        let mut t = tiny();
        for i in 0..4 {
            t.insert(VirtPage(i), Frame(i as u32));
        }
        assert_eq!(t.occupancy(), 4);
        t.flush();
        assert_eq!(t.occupancy(), 0);
        for i in 0..4 {
            assert_eq!(t.probe(VirtPage(i)), None);
        }
    }

    #[test]
    fn sets_are_independent() {
        let mut t = tiny();
        // Fill set 0 beyond capacity; set 1 entries must survive.
        t.insert(VirtPage(1), Frame(100)); // set 1
        for i in 0..10u64 {
            t.insert(VirtPage(i * 2), Frame(i as u32)); // set 0
        }
        assert_eq!(t.probe(VirtPage(1)), Some(Frame(100)));
    }

    #[test]
    fn probe_does_not_count() {
        let mut t = tiny();
        t.insert(VirtPage(0), Frame(0));
        let _ = t.probe(VirtPage(0));
        let _ = t.probe(VirtPage(1));
        assert_eq!(t.hits.get(), 0);
        assert_eq!(t.misses.get(), 0);
    }

    #[test]
    fn default_geometries_construct() {
        let l1 = Tlb::new(TlbConfig::l1_default());
        let l2 = Tlb::new(TlbConfig::l2_default());
        assert_eq!(l1.hit_latency(), 1);
        assert_eq!(l2.hit_latency(), 10);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_geometry_panics() {
        let _ = Tlb::new(TlbConfig {
            entries: 10,
            associativity: 3,
            hit_latency: 1,
        });
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut t = tiny();
        for i in 0..100u64 {
            t.insert(VirtPage(i), Frame(i as u32));
        }
        assert!(t.occupancy() <= 4);
    }

    #[test]
    fn victim_slot_reuse_keeps_set_consistent() {
        // Replacement writes the new way into the victim's slot; every
        // surviving way must remain probeable afterwards.
        let mut t = tiny();
        t.insert(VirtPage(0), Frame(0));
        t.insert(VirtPage(2), Frame(2));
        t.lookup(VirtPage(2)); // page 0 becomes LRU
        let victim = t.insert(VirtPage(4), Frame(4));
        assert_eq!(victim, Some((VirtPage(0), Frame(0))));
        assert_eq!(t.probe(VirtPage(2)), Some(Frame(2)));
        assert_eq!(t.probe(VirtPage(4)), Some(Frame(4)));
        assert_eq!(t.occupancy(), 2);
    }

    /// Model-based equivalence with the seed's scan implementation:
    /// millions of random lookup/insert/invalidate/flush ops over both
    /// the fully-associative L1 geometry and the 16-way L2 geometry
    /// must agree on every result, victim and counter. This is the
    /// local half of the bit-identity contract (the golden fingerprints
    /// in `tests/perf_identity.rs` are the end-to-end half).
    #[test]
    fn indexed_tlb_matches_scan_tlb_on_random_ops() {
        for cfg in [
            TlbConfig {
                entries: 16,
                associativity: 16,
                hit_latency: 1,
            },
            TlbConfig {
                entries: 32,
                associativity: 4,
                hit_latency: 10,
            },
        ] {
            let mut new = Tlb::new(cfg);
            let mut old = legacy::ScanTlb::new(cfg);
            let mut x: u64 = 0x1357_9BDF_2468_ACE0 ^ cfg.associativity as u64;
            for step in 0..200_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let page = VirtPage(x % 48); // ~3× capacity → constant churn
                match (x >> 8) % 16 {
                    0..=5 => {
                        assert_eq!(
                            new.lookup(page),
                            old.lookup(page),
                            "lookup({page:?}) at step {step}"
                        );
                    }
                    6..=11 => {
                        assert_eq!(
                            new.insert(page, Frame((x >> 16) as u32)),
                            old.insert(page, Frame((x >> 16) as u32)),
                            "insert({page:?}) victim at step {step}"
                        );
                    }
                    12 | 13 => {
                        assert_eq!(
                            new.invalidate(page),
                            old.invalidate(page),
                            "invalidate({page:?}) at step {step}"
                        );
                    }
                    14 => {
                        assert_eq!(new.probe(page), old.probe(page));
                    }
                    _ => {
                        if (x >> 24).is_multiple_of(64) {
                            new.flush();
                            old.flush();
                        }
                    }
                }
                assert_eq!(new.occupancy(), old.occupancy(), "occupancy at {step}");
            }
            assert_eq!(new.hits.get(), old.hits.get());
            assert_eq!(new.misses.get(), old.misses.get());
            assert!(new.hits.get() > 1000, "model test never hit");
        }
    }
}
