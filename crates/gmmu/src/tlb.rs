//! Set-associative, LRU-replacement TLB.
//!
//! One structure serves both levels of the paper's hierarchy:
//! * per-SM private L1 TLB — 128 entries, 1-cycle hit latency,
//! * shared L2 TLB — 512 entries, 16-way, 10-cycle hit latency.
//!
//! Entries map a [`VirtPage`] to its [`Frame`]. Evicting a page from GPU
//! memory must shoot the translation down from every TLB, which the
//! `uvm` driver does through [`Tlb::invalidate`].
//!
//! Ways live in one flat fixed-width array (`n_sets × associativity`
//! slots, per-set fill counts) instead of per-set `Vec`s: a set's ways
//! are contiguous, so lookup scans stay in one or two cache lines and
//! construction does one allocation. Within a set the semantics mirror
//! the obvious `Vec` exactly — new ways append at the fill mark,
//! removal swaps the last filled way into the hole — so replacement
//! behaviour (and therefore every simulated hit/miss) is unchanged.

use crate::types::{Frame, VirtPage};
use sim_core::stats::Counter;

/// TLB geometry and timing.
#[derive(Debug, Clone, Copy)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Ways per set (`entries` for fully associative).
    pub associativity: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl TlbConfig {
    /// Table I per-SM L1 TLB: 128 entries, single port, 1-cycle, LRU.
    /// Associativity is unspecified in the paper; we model it fully
    /// associative, which is common for small first-level TLBs.
    #[must_use]
    pub fn l1_default() -> Self {
        TlbConfig {
            entries: 128,
            associativity: 128,
            hit_latency: 1,
        }
    }

    /// Table I shared L2 TLB: 512 entries, 16-way, 10-cycle, LRU.
    #[must_use]
    pub fn l2_default() -> Self {
        TlbConfig {
            entries: 512,
            associativity: 16,
            hit_latency: 10,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    page: VirtPage,
    frame: Frame,
    /// Monotone use stamp for LRU (larger = more recent).
    stamp: u64,
}

const EMPTY_WAY: Way = Way {
    page: VirtPage(u64::MAX),
    frame: Frame(0),
    stamp: 0,
};

/// A set-associative TLB with true-LRU replacement.
#[derive(Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    /// Flat way storage: set `s` occupies `ways[s*assoc .. s*assoc+lens[s]]`.
    ways: Vec<Way>,
    /// Filled ways per set.
    lens: Vec<u32>,
    n_sets: usize,
    tick: u64,
    /// Lookup hits.
    pub hits: Counter,
    /// Lookup misses.
    pub misses: Counter,
}

impl Tlb {
    /// Build a TLB from `cfg`.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero entries, or entries not
    /// divisible by associativity).
    #[must_use]
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.entries > 0 && cfg.associativity > 0);
        assert!(
            cfg.entries.is_multiple_of(cfg.associativity),
            "entries {} not divisible by associativity {}",
            cfg.entries,
            cfg.associativity
        );
        let n_sets = cfg.entries / cfg.associativity;
        Tlb {
            cfg,
            ways: vec![EMPTY_WAY; cfg.entries],
            lens: vec![0; n_sets],
            n_sets,
            tick: 0,
            hits: Counter::default(),
            misses: Counter::default(),
        }
    }

    #[inline]
    fn set_index(&self, page: VirtPage) -> usize {
        (page.0 % self.n_sets as u64) as usize
    }

    /// Filled slice of set `set`.
    #[inline]
    fn set_ways(&self, set: usize) -> &[Way] {
        let base = set * self.cfg.associativity;
        &self.ways[base..base + self.lens[set] as usize]
    }

    /// Look up `page`, updating LRU state and hit/miss counters.
    /// Returns the cached frame on a hit.
    pub fn lookup(&mut self, page: VirtPage) -> Option<Frame> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(page);
        let base = set * self.cfg.associativity;
        let filled = &mut self.ways[base..base + self.lens[set] as usize];
        if let Some(way) = filled.iter_mut().find(|w| w.page == page) {
            way.stamp = tick;
            self.hits.inc();
            Some(way.frame)
        } else {
            self.misses.inc();
            None
        }
    }

    /// Peek without touching LRU state or counters (used by tests and
    /// by coherence assertions in the `gpu` crate).
    #[must_use]
    pub fn probe(&self, page: VirtPage) -> Option<Frame> {
        self.set_ways(self.set_index(page))
            .iter()
            .find(|w| w.page == page)
            .map(|w| w.frame)
    }

    /// Install (or refresh) a translation, evicting the set's LRU way if
    /// the set is full. Returns the victim translation, if any.
    pub fn insert(&mut self, page: VirtPage, frame: Frame) -> Option<(VirtPage, Frame)> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(page);
        let assoc = self.cfg.associativity;
        let base = set * assoc;
        let len = self.lens[set] as usize;
        let filled = &mut self.ways[base..base + len];
        if let Some(way) = filled.iter_mut().find(|w| w.page == page) {
            way.frame = frame;
            way.stamp = tick;
            return None;
        }
        let mut victim = None;
        let mut slot = len;
        if len == assoc {
            let lru = filled
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.stamp)
                .map(|(i, _)| i)
                .expect("full set has ways");
            let w = filled[lru];
            victim = Some((w.page, w.frame));
            slot = lru;
        } else {
            self.lens[set] += 1;
        }
        self.ways[base + slot] = Way {
            page,
            frame,
            stamp: tick,
        };
        victim
    }

    /// Shoot down the translation for `page`. Returns true if present.
    pub fn invalidate(&mut self, page: VirtPage) -> bool {
        let set = self.set_index(page);
        let base = set * self.cfg.associativity;
        let len = self.lens[set] as usize;
        let filled = &mut self.ways[base..base + len];
        if let Some(pos) = filled.iter().position(|w| w.page == page) {
            filled[pos] = filled[len - 1];
            self.ways[base + len - 1] = EMPTY_WAY;
            self.lens[set] -= 1;
            true
        } else {
            false
        }
    }

    /// Drop every translation.
    pub fn flush(&mut self) {
        self.ways.fill(EMPTY_WAY);
        self.lens.fill(0);
    }

    /// Hit latency from the config.
    #[must_use]
    pub fn hit_latency(&self) -> u64 {
        self.cfg.hit_latency
    }

    /// Number of currently valid entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        // 4 entries, 2-way → 2 sets.
        Tlb::new(TlbConfig {
            entries: 4,
            associativity: 2,
            hit_latency: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut t = tiny();
        assert_eq!(t.lookup(VirtPage(0)), None);
        t.insert(VirtPage(0), Frame(9));
        assert_eq!(t.lookup(VirtPage(0)), Some(Frame(9)));
        assert_eq!(t.hits.get(), 1);
        assert_eq!(t.misses.get(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut t = tiny();
        // Pages 0, 2, 4 all map to set 0 (page % 2 == 0).
        t.insert(VirtPage(0), Frame(0));
        t.insert(VirtPage(2), Frame(2));
        t.lookup(VirtPage(0)); // make page 2 the LRU way
        let victim = t.insert(VirtPage(4), Frame(4));
        assert_eq!(victim, Some((VirtPage(2), Frame(2))));
        assert!(t.probe(VirtPage(0)).is_some());
        assert!(t.probe(VirtPage(2)).is_none());
        assert!(t.probe(VirtPage(4)).is_some());
    }

    #[test]
    fn insert_refresh_does_not_evict() {
        let mut t = tiny();
        t.insert(VirtPage(0), Frame(0));
        t.insert(VirtPage(2), Frame(2));
        assert_eq!(t.insert(VirtPage(0), Frame(7)), None);
        assert_eq!(t.probe(VirtPage(0)), Some(Frame(7)));
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    fn invalidate_removes() {
        let mut t = tiny();
        t.insert(VirtPage(5), Frame(1));
        assert!(t.invalidate(VirtPage(5)));
        assert!(!t.invalidate(VirtPage(5)));
        assert_eq!(t.lookup(VirtPage(5)), None);
    }

    #[test]
    fn flush_clears_everything() {
        let mut t = tiny();
        for i in 0..4 {
            t.insert(VirtPage(i), Frame(i as u32));
        }
        assert_eq!(t.occupancy(), 4);
        t.flush();
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn sets_are_independent() {
        let mut t = tiny();
        // Fill set 0 beyond capacity; set 1 entries must survive.
        t.insert(VirtPage(1), Frame(100)); // set 1
        for i in 0..10u64 {
            t.insert(VirtPage(i * 2), Frame(i as u32)); // set 0
        }
        assert_eq!(t.probe(VirtPage(1)), Some(Frame(100)));
    }

    #[test]
    fn probe_does_not_count() {
        let mut t = tiny();
        t.insert(VirtPage(0), Frame(0));
        let _ = t.probe(VirtPage(0));
        let _ = t.probe(VirtPage(1));
        assert_eq!(t.hits.get(), 0);
        assert_eq!(t.misses.get(), 0);
    }

    #[test]
    fn default_geometries_construct() {
        let l1 = Tlb::new(TlbConfig::l1_default());
        let l2 = Tlb::new(TlbConfig::l2_default());
        assert_eq!(l1.hit_latency(), 1);
        assert_eq!(l2.hit_latency(), 10);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_geometry_panics() {
        let _ = Tlb::new(TlbConfig {
            entries: 10,
            associativity: 3,
            hit_latency: 1,
        });
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut t = tiny();
        for i in 0..100u64 {
            t.insert(VirtPage(i), Frame(i as u32));
        }
        assert!(t.occupancy() <= 4);
    }

    #[test]
    fn victim_slot_reuse_keeps_set_consistent() {
        // Replacement writes the new way into the victim's slot; every
        // surviving way must remain probeable afterwards.
        let mut t = tiny();
        t.insert(VirtPage(0), Frame(0));
        t.insert(VirtPage(2), Frame(2));
        t.lookup(VirtPage(2)); // page 0 becomes LRU
        let victim = t.insert(VirtPage(4), Frame(4));
        assert_eq!(victim, Some((VirtPage(0), Frame(0))));
        assert_eq!(t.probe(VirtPage(2)), Some(Frame(2)));
        assert_eq!(t.probe(VirtPage(4)), Some(Frame(4)));
        assert_eq!(t.occupancy(), 2);
    }
}
