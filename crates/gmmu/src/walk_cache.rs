//! Shared page-walk cache (PWC).
//!
//! Table I: "16-way 8KB, 10-cycle latency". The PWC caches intermediate
//! page-table nodes (levels 2–4); a hit at level *k* lets the walker skip
//! the memory references for levels ≥ *k*. With 8-byte entries, 8 KB
//! gives 1024 entries in 64 sets of 16 ways.
//!
//! Like [`crate::tlb::Tlb`], probes run on [`IndexedSets`] instead of a
//! per-set scan. The PWC sits on the hot path of every L2-TLB miss —
//! each walk costs one lookup plus up to three inserts, each of which
//! used to scan a 16-way set. Replacement stays exact true LRU
//! (bit-identical to the seed's min-stamp scan; see the equivalence
//! test against `legacy::ScanWalkCache`).

use crate::assoc::{mix64, IndexKey, IndexedSets};
use crate::page_table::NodeId;
use sim_core::stats::Counter;

impl IndexKey for NodeId {
    #[inline]
    fn index_hash(self) -> u64 {
        // Fold level into the prefix above any realistic VPN bits so
        // different levels of the same prefix never alias in the index.
        mix64(self.prefix ^ (u64::from(self.level) << 56))
    }
}

/// Set-associative cache over [`NodeId`]s with true-LRU replacement.
#[derive(Debug)]
pub struct WalkCache {
    sets: IndexedSets<NodeId, ()>,
    n_sets: usize,
    hit_latency: u64,
    /// Probe hits.
    pub hits: Counter,
    /// Probe misses.
    pub misses: Counter,
}

impl WalkCache {
    /// Table I geometry: 8 KB / 8 B = 1024 entries, 16-way, 10-cycle.
    #[must_use]
    pub fn table1_default() -> Self {
        Self::new(1024, 16, 10)
    }

    /// Build a PWC with `entries` total entries and `assoc` ways.
    ///
    /// # Panics
    /// Panics on degenerate geometry.
    #[must_use]
    pub fn new(entries: usize, assoc: usize, hit_latency: u64) -> Self {
        assert!(entries > 0 && assoc > 0 && entries.is_multiple_of(assoc));
        let n_sets = entries / assoc;
        WalkCache {
            sets: IndexedSets::new(n_sets, assoc),
            n_sets,
            hit_latency,
            hits: Counter::default(),
            misses: Counter::default(),
        }
    }

    #[inline]
    fn set_index(&self, node: NodeId) -> usize {
        // Mix level into the index so different levels of the same prefix
        // do not collide systematically.
        ((node.prefix ^ (u64::from(node.level) << 61)) % self.n_sets as u64) as usize
    }

    /// Probe for `node`, updating LRU and counters.
    #[inline]
    pub fn lookup(&mut self, node: NodeId) -> bool {
        if self.sets.get(node).is_some() {
            self.hits.inc();
            true
        } else {
            self.misses.inc();
            false
        }
    }

    /// Fill `node` after a walk fetched it from memory.
    #[inline]
    pub fn insert(&mut self, node: NodeId) {
        self.sets.insert(self.set_index(node), node, ());
    }

    /// Hit latency in cycles.
    #[must_use]
    pub fn hit_latency(&self) -> u64 {
        self.hit_latency
    }
}

/// The seed's scan-based PWC, kept for the equivalence model test and
/// the `compare-bench` microbenches.
#[cfg(any(test, feature = "compare-bench"))]
pub mod legacy {
    use crate::page_table::NodeId;
    use sim_core::stats::Counter;

    /// Scan-probed set-associative node cache (pre-fast-lane structure).
    #[derive(Debug)]
    pub struct ScanWalkCache {
        sets: Vec<Vec<(NodeId, u64)>>,
        n_sets: usize,
        assoc: usize,
        hit_latency: u64,
        tick: u64,
        /// Probe hits.
        pub hits: Counter,
        /// Probe misses.
        pub misses: Counter,
    }

    impl ScanWalkCache {
        /// Build a PWC with `entries` total entries and `assoc` ways.
        ///
        /// # Panics
        /// Panics on degenerate geometry.
        #[must_use]
        pub fn new(entries: usize, assoc: usize, hit_latency: u64) -> Self {
            assert!(entries > 0 && assoc > 0 && entries.is_multiple_of(assoc));
            let n_sets = entries / assoc;
            ScanWalkCache {
                sets: (0..n_sets).map(|_| Vec::with_capacity(assoc)).collect(),
                n_sets,
                assoc,
                hit_latency,
                tick: 0,
                hits: Counter::default(),
                misses: Counter::default(),
            }
        }

        #[inline]
        fn set_index(&self, node: NodeId) -> usize {
            ((node.prefix ^ (u64::from(node.level) << 61)) % self.n_sets as u64) as usize
        }

        /// Probe for `node`, updating LRU and counters.
        pub fn lookup(&mut self, node: NodeId) -> bool {
            self.tick += 1;
            let tick = self.tick;
            let set = self.set_index(node);
            if let Some(way) = self.sets[set].iter_mut().find(|(n, _)| *n == node) {
                way.1 = tick;
                self.hits.inc();
                true
            } else {
                self.misses.inc();
                false
            }
        }

        /// Fill `node` after a walk fetched it from memory.
        pub fn insert(&mut self, node: NodeId) {
            self.tick += 1;
            let tick = self.tick;
            let set = self.set_index(node);
            let assoc = self.assoc;
            let ways = &mut self.sets[set];
            if let Some(way) = ways.iter_mut().find(|(n, _)| *n == node) {
                way.1 = tick;
                return;
            }
            if ways.len() == assoc {
                let lru = ways
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, s))| *s)
                    .map(|(i, _)| i)
                    .expect("full set");
                ways.swap_remove(lru);
            }
            ways.push((node, tick));
        }

        /// Hit latency in cycles.
        #[must_use]
        pub fn hit_latency(&self) -> u64 {
            self.hit_latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page_table::node_for;
    use crate::types::VirtPage;

    #[test]
    fn miss_insert_hit() {
        let mut pwc = WalkCache::new(8, 2, 10);
        let n = node_for(VirtPage(0), 2);
        assert!(!pwc.lookup(n));
        pwc.insert(n);
        assert!(pwc.lookup(n));
        assert_eq!(pwc.hits.get(), 1);
        assert_eq!(pwc.misses.get(), 1);
    }

    #[test]
    fn lru_within_set() {
        let mut pwc = WalkCache::new(2, 2, 10); // single set, 2 ways
        let a = node_for(VirtPage(0), 2);
        let b = node_for(VirtPage(512), 2);
        let c = node_for(VirtPage(1024), 2);
        pwc.insert(a);
        pwc.insert(b);
        pwc.lookup(a); // b becomes LRU
        pwc.insert(c); // evicts b
        assert!(pwc.lookup(a));
        assert!(!pwc.lookup(b));
        assert!(pwc.lookup(c));
    }

    #[test]
    fn reinsert_refreshes_not_duplicates() {
        let mut pwc = WalkCache::new(2, 2, 10);
        let a = node_for(VirtPage(0), 2);
        pwc.insert(a);
        pwc.insert(a);
        let b = node_for(VirtPage(512), 2);
        let c = node_for(VirtPage(1024), 2);
        pwc.insert(b);
        pwc.insert(c); // must evict exactly one of a/b, not find a dup
        let present = [a, b, c].iter().filter(|&&n| pwc.lookup(n)).count();
        assert_eq!(present, 2);
    }

    #[test]
    fn default_geometry() {
        let pwc = WalkCache::table1_default();
        assert_eq!(pwc.hit_latency(), 10);
    }

    #[test]
    fn levels_do_not_alias() {
        let mut pwc = WalkCache::new(1024, 16, 10);
        let l2 = node_for(VirtPage(0), 2);
        let l3 = node_for(VirtPage(0), 3);
        pwc.insert(l2);
        assert!(!pwc.lookup(l3), "level-3 node must not hit on level-2 fill");
    }

    /// Random walk-shaped op streams through both implementations must
    /// agree on every probe result and counter — the PWC half of the
    /// bit-identity contract.
    #[test]
    fn indexed_pwc_matches_scan_pwc_on_random_ops() {
        let mut new = WalkCache::new(64, 16, 10); // 4 sets → heavy churn
        let mut old = legacy::ScanWalkCache::new(64, 16, 10);
        let mut x: u64 = 0xD1B5_4A32_D192_ED03;
        for step in 0..200_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let node = node_for(VirtPage((x % 4096) << 9), 2 + (x >> 32) as u32 % 3);
            if (x >> 8).is_multiple_of(2) {
                assert_eq!(
                    new.lookup(node),
                    old.lookup(node),
                    "lookup({node:?}) at step {step}"
                );
            } else {
                new.insert(node);
                old.insert(node);
            }
        }
        assert_eq!(new.hits.get(), old.hits.get());
        assert_eq!(new.misses.get(), old.misses.get());
        assert!(new.hits.get() > 1000, "model test never hit");
    }
}
