//! The 4-level radix page table.
//!
//! The walker traverses four levels (Table I: "traversing 4-level page
//! table", x86-64-style 9-bit radix per level). The table serves two
//! roles in the simulator:
//!
//! 1. **Residency store** — the authoritative map from [`VirtPage`] to
//!    GPU [`Frame`] (or *not resident*, which triggers a far fault).
//! 2. **Walk topology** — which intermediate nodes exist, so the walker
//!    and the page-walk cache can be exercised with realistic locality
//!    (two pages sharing an L3 node share its cached entry).
//!
//! # Flat indexing
//!
//! Residency is probed on *every* simulated access (TLB fill checks,
//! prefetch planning, fault coalescing), so the store is a flat
//! direct-indexed array over the workload's page range rather than a
//! hash map: `slots[page]` packs frame + present + touched into one
//! `u64`, giving branch-light O(1) probes with no hashing. Workload
//! address spaces are dense and start at page 0, so the array tracks the
//! highest mapped page (geometric growth). Pathological sparse pages at
//! or beyond [`FLAT_LIMIT`] — synthetic far-apart addresses some tests
//! use — fall back to a spill hash map so the array can never balloon.
//!
//! Each resident page additionally carries a **TLB presence mask** (one
//! bit per TLB in the hierarchy, maintained by `TranslationPath`), so an
//! eviction's shootdown visits only the TLBs that actually hold the
//! page instead of scanning every way of every SM's L1.

use crate::types::{Frame, VirtPage};
use sim_core::FxHashMap;

/// Levels of the radix tree (root = level 4, leaf PTE = level 1).
pub const LEVELS: u32 = 4;
/// Radix bits per level.
pub const BITS_PER_LEVEL: u32 = 9;

/// Pages at or above this index live in the spill map instead of the
/// flat array. 4 Mi pages = 16 GiB of 4 KB pages — beyond any modelled
/// device memory, so real workload pages never spill.
pub const FLAT_LIMIT: u64 = 1 << 22;

const PRESENT: u64 = 1 << 32;
const TOUCHED: u64 = 1 << 33;

/// Residency state of one virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Never migrated, or currently evicted to host memory.
    NotResident,
    /// Present in GPU memory at the given frame.
    Resident(Frame),
}

/// Identifier of an intermediate page-table node: `(level, index prefix)`.
///
/// The prefix is the VPN shifted so that two pages mapped by the same
/// node at that level produce the same `NodeId`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId {
    /// 4 = root's children ... 2 = the node holding leaf PTE pointers.
    pub level: u32,
    /// VPN >> (9 * (level - 1)).
    pub prefix: u64,
}

/// Node id covering `page` at `level` (level in 2..=4; level 1 is the PTE
/// itself and is never cached by the page-walk cache).
#[must_use]
pub fn node_for(page: VirtPage, level: u32) -> NodeId {
    debug_assert!((2..=LEVELS).contains(&level));
    NodeId {
        level,
        prefix: page.0 >> (BITS_PER_LEVEL * (level - 1)),
    }
}

#[derive(Debug, Clone, Copy)]
struct SpillEntry {
    frame: Frame,
    touched: bool,
    tlb_mask: u64,
}

/// The page table: residency map plus touch bits.
///
/// Touch bits model the hardware *access* bits the driver reads from the
/// GPU page table when it processes an eviction — the mechanism MHPE
/// relies on to compute untouch levels without extra GPU→CPU interrupts
/// (see DESIGN.md substitution table).
#[derive(Debug, Default)]
pub struct PageTable {
    /// Packed per-page slots: bits 0..32 frame, bit 32 present, bit 33
    /// touched. Indexed directly by page number below [`FLAT_LIMIT`].
    slots: Vec<u64>,
    /// TLB presence masks, parallel to `slots` (see module docs).
    masks: Vec<u64>,
    /// Sparse pages at or beyond [`FLAT_LIMIT`].
    spill: FxHashMap<VirtPage, SpillEntry>,
    resident: usize,
}

impl PageTable {
    /// Empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn slot(&self, page: VirtPage) -> u64 {
        *self.slots.get(page.0 as usize).unwrap_or(&0)
    }

    /// Residency of `page`.
    #[inline]
    #[must_use]
    pub fn residency(&self, page: VirtPage) -> Residency {
        if page.0 < FLAT_LIMIT {
            let s = self.slot(page);
            if s & PRESENT != 0 {
                Residency::Resident(Frame(s as u32))
            } else {
                Residency::NotResident
            }
        } else {
            match self.spill.get(&page) {
                Some(e) => Residency::Resident(e.frame),
                None => Residency::NotResident,
            }
        }
    }

    /// True if `page` is resident.
    #[inline]
    #[must_use]
    pub fn is_resident(&self, page: VirtPage) -> bool {
        if page.0 < FLAT_LIMIT {
            self.slot(page) & PRESENT != 0
        } else {
            self.spill.contains_key(&page)
        }
    }

    /// Map `page` to `frame`. `touched` distinguishes demand-faulted
    /// pages (true) from prefetched pages (false) — the faulted page of
    /// a chunk is touched by definition, its prefetched neighbours are
    /// not until an SM actually accesses them.
    ///
    /// # Panics
    /// Panics if `page` is already mapped: the driver must evict before
    /// re-mapping, and double-mapping is always a bug.
    pub fn map(&mut self, page: VirtPage, frame: Frame, touched: bool) {
        if page.0 < FLAT_LIMIT {
            let idx = page.0 as usize;
            if idx >= self.slots.len() {
                let new_len = (idx + 1).max(self.slots.len() * 2);
                self.slots.resize(new_len, 0);
                self.masks.resize(new_len, 0);
            }
            assert!(
                self.slots[idx] & PRESENT == 0,
                "page {page:?} double-mapped"
            );
            self.slots[idx] = u64::from(frame.0) | PRESENT | if touched { TOUCHED } else { 0 };
            self.masks[idx] = 0;
        } else {
            let prev = self.spill.insert(
                page,
                SpillEntry {
                    frame,
                    touched,
                    tlb_mask: 0,
                },
            );
            assert!(prev.is_none(), "page {page:?} double-mapped");
        }
        self.resident += 1;
    }

    /// Unmap `page`, returning its frame and touch bit.
    ///
    /// # Panics
    /// Panics if `page` was not mapped.
    pub fn unmap(&mut self, page: VirtPage) -> (Frame, bool) {
        let (frame, touched) = if page.0 < FLAT_LIMIT {
            let idx = page.0 as usize;
            let s = self.slot(page);
            assert!(s & PRESENT != 0, "page {page:?} unmapped but not mapped");
            self.slots[idx] = 0;
            self.masks[idx] = 0;
            (Frame(s as u32), s & TOUCHED != 0)
        } else {
            let e = self
                .spill
                .remove(&page)
                .unwrap_or_else(|| panic!("page {page:?} unmapped but not mapped"));
            (e.frame, e.touched)
        };
        self.resident -= 1;
        (frame, touched)
    }

    /// Set the access bit of a resident page (called on every SM access).
    /// No-op if the page is not resident (the access is about to fault).
    /// Early-exits without writing when the bit is already set — the
    /// warm-hit common case, which would otherwise dirty a packed-u64
    /// cache line on every access.
    #[inline]
    pub fn mark_touched(&mut self, page: VirtPage) {
        if page.0 < FLAT_LIMIT {
            if let Some(s) = self.slots.get_mut(page.0 as usize) {
                if *s & (PRESENT | TOUCHED) == PRESENT {
                    *s |= TOUCHED;
                }
            }
        } else if let Some(e) = self.spill.get_mut(&page) {
            if !e.touched {
                e.touched = true;
            }
        }
    }

    /// Read the access bit of a resident page.
    #[inline]
    #[must_use]
    pub fn is_touched(&self, page: VirtPage) -> bool {
        if page.0 < FLAT_LIMIT {
            self.slot(page) & TOUCHED != 0
        } else {
            self.spill.get(&page).is_some_and(|e| e.touched)
        }
    }

    /// Number of resident pages.
    #[inline]
    #[must_use]
    pub fn resident_count(&self) -> usize {
        self.resident
    }

    /// TLB presence mask of a resident page (0 if not resident). Bit
    /// assignment belongs to the translation layer that maintains it.
    #[inline]
    #[must_use]
    pub fn tlb_mask(&self, page: VirtPage) -> u64 {
        if page.0 < FLAT_LIMIT {
            *self.masks.get(page.0 as usize).unwrap_or(&0)
        } else {
            self.spill.get(&page).map_or(0, |e| e.tlb_mask)
        }
    }

    /// Record that the TLB with bit index `bit` now holds `page`. No-op
    /// on non-resident pages (TLBs only ever cache resident mappings).
    #[inline]
    pub fn tlb_note_insert(&mut self, page: VirtPage, bit: u32) {
        debug_assert!(self.is_resident(page), "TLB caches a non-resident page");
        if page.0 < FLAT_LIMIT {
            if let Some(m) = self.masks.get_mut(page.0 as usize) {
                *m |= 1 << bit;
            }
        } else if let Some(e) = self.spill.get_mut(&page) {
            e.tlb_mask |= 1 << bit;
        }
    }

    /// Record that the TLB with bit index `bit` dropped `page` (capacity
    /// victim or shootdown). No-op on non-resident pages.
    #[inline]
    pub fn tlb_note_remove(&mut self, page: VirtPage, bit: u32) {
        if page.0 < FLAT_LIMIT {
            if let Some(m) = self.masks.get_mut(page.0 as usize) {
                *m &= !(1 << bit);
            }
        } else if let Some(e) = self.spill.get_mut(&page) {
            e.tlb_mask &= !(1 << bit);
        }
    }
}

/// The pre-overhaul `FxHashMap`-backed page table, kept only so the
/// `bench` crate can measure flat-vs-map probe cost side by side.
/// Scheduled for deletion once the comparison has served its purpose.
#[cfg(any(test, feature = "compare-bench"))]
pub mod legacy {
    use super::{Frame, FxHashMap, Residency, VirtPage};

    #[derive(Debug, Clone, Copy)]
    struct Entry {
        frame: Frame,
        touched: bool,
    }

    /// Hash-map residency store with the same observable behaviour as
    /// [`super::PageTable`] (minus the TLB-mask bookkeeping).
    #[derive(Debug, Default)]
    pub struct MapPageTable {
        entries: FxHashMap<VirtPage, Entry>,
    }

    impl MapPageTable {
        /// Empty table.
        #[must_use]
        pub fn new() -> Self {
            Self::default()
        }

        /// Residency of `page`.
        #[must_use]
        pub fn residency(&self, page: VirtPage) -> Residency {
            match self.entries.get(&page) {
                Some(e) => Residency::Resident(e.frame),
                None => Residency::NotResident,
            }
        }

        /// True if `page` is resident.
        #[must_use]
        pub fn is_resident(&self, page: VirtPage) -> bool {
            self.entries.contains_key(&page)
        }

        /// Map `page` to `frame`.
        pub fn map(&mut self, page: VirtPage, frame: Frame, touched: bool) {
            let prev = self.entries.insert(page, Entry { frame, touched });
            assert!(prev.is_none(), "page {page:?} double-mapped");
        }

        /// Unmap `page`, returning its frame and touch bit.
        pub fn unmap(&mut self, page: VirtPage) -> (Frame, bool) {
            let e = self
                .entries
                .remove(&page)
                .unwrap_or_else(|| panic!("page {page:?} unmapped but not mapped"));
            (e.frame, e.touched)
        }

        /// Set the access bit of a resident page.
        pub fn mark_touched(&mut self, page: VirtPage) {
            if let Some(e) = self.entries.get_mut(&page) {
                e.touched = true;
            }
        }

        /// Read the access bit of a resident page.
        #[must_use]
        pub fn is_touched(&self, page: VirtPage) -> bool {
            self.entries.get(&page).is_some_and(|e| e.touched)
        }

        /// Number of resident pages.
        #[must_use]
        pub fn resident_count(&self) -> usize {
            self.entries.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_unmap_roundtrip() {
        let mut pt = PageTable::new();
        assert_eq!(pt.residency(VirtPage(5)), Residency::NotResident);
        pt.map(VirtPage(5), Frame(2), true);
        assert_eq!(pt.residency(VirtPage(5)), Residency::Resident(Frame(2)));
        assert!(pt.is_resident(VirtPage(5)));
        let (f, touched) = pt.unmap(VirtPage(5));
        assert_eq!(f, Frame(2));
        assert!(touched);
        assert!(!pt.is_resident(VirtPage(5)));
    }

    #[test]
    #[should_panic(expected = "double-mapped")]
    fn double_map_panics() {
        let mut pt = PageTable::new();
        pt.map(VirtPage(1), Frame(0), false);
        pt.map(VirtPage(1), Frame(1), false);
    }

    #[test]
    #[should_panic(expected = "not mapped")]
    fn unmap_missing_panics() {
        PageTable::new().unmap(VirtPage(1));
    }

    #[test]
    fn touch_bits() {
        let mut pt = PageTable::new();
        pt.map(VirtPage(1), Frame(0), false);
        assert!(!pt.is_touched(VirtPage(1)));
        pt.mark_touched(VirtPage(1));
        assert!(pt.is_touched(VirtPage(1)));
        // Touching a non-resident page is a harmless no-op.
        pt.mark_touched(VirtPage(99));
        assert!(!pt.is_touched(VirtPage(99)));
    }

    #[test]
    fn resident_count_tracks() {
        let mut pt = PageTable::new();
        for i in 0..10 {
            pt.map(VirtPage(i), Frame(i as u32), false);
        }
        assert_eq!(pt.resident_count(), 10);
        pt.unmap(VirtPage(3));
        assert_eq!(pt.resident_count(), 9);
    }

    #[test]
    fn sparse_pages_spill_and_roundtrip() {
        // Pages beyond the flat window must behave identically.
        let mut pt = PageTable::new();
        let far = VirtPage(FLAT_LIMIT + 12345);
        pt.map(far, Frame(7), false);
        assert_eq!(pt.residency(far), Residency::Resident(Frame(7)));
        assert!(!pt.is_touched(far));
        pt.mark_touched(far);
        assert!(pt.is_touched(far));
        assert_eq!(pt.resident_count(), 1);
        assert_eq!(pt.unmap(far), (Frame(7), true));
        assert_eq!(pt.resident_count(), 0);
        assert!(!pt.is_resident(far));
    }

    #[test]
    #[should_panic(expected = "double-mapped")]
    fn spilled_double_map_panics() {
        let mut pt = PageTable::new();
        pt.map(VirtPage(FLAT_LIMIT), Frame(0), false);
        pt.map(VirtPage(FLAT_LIMIT), Frame(1), false);
    }

    #[test]
    fn remap_after_unmap_resets_state() {
        // Eviction then re-migration: the fresh mapping must not inherit
        // the old touch bit or TLB mask.
        let mut pt = PageTable::new();
        pt.map(VirtPage(4), Frame(1), true);
        pt.tlb_note_insert(VirtPage(4), 3);
        pt.unmap(VirtPage(4));
        pt.map(VirtPage(4), Frame(2), false);
        assert!(!pt.is_touched(VirtPage(4)));
        assert_eq!(pt.tlb_mask(VirtPage(4)), 0);
    }

    #[test]
    fn tlb_mask_bookkeeping() {
        let mut pt = PageTable::new();
        pt.map(VirtPage(9), Frame(0), false);
        assert_eq!(pt.tlb_mask(VirtPage(9)), 0);
        pt.tlb_note_insert(VirtPage(9), 0);
        pt.tlb_note_insert(VirtPage(9), 63);
        assert_eq!(pt.tlb_mask(VirtPage(9)), 1 | (1 << 63));
        pt.tlb_note_remove(VirtPage(9), 0);
        assert_eq!(pt.tlb_mask(VirtPage(9)), 1 << 63);
        // Masks of non-resident pages read as empty.
        assert_eq!(pt.tlb_mask(VirtPage(1000)), 0);
    }

    #[test]
    fn flat_and_legacy_tables_agree() {
        // Drive both stores through the same mixed script.
        let mut flat = PageTable::new();
        let mut map = legacy::MapPageTable::new();
        let mut x: u64 = 0x0123_4567_89AB_CDEF;
        let mut pages = Vec::new();
        for i in 0..2000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let page = VirtPage(x % 4096);
            match x % 5 {
                0 | 1 => {
                    if !flat.is_resident(page) {
                        flat.map(page, Frame(i as u32), x.is_multiple_of(2));
                        map.map(page, Frame(i as u32), x.is_multiple_of(2));
                        pages.push(page);
                    }
                }
                2 => {
                    if let Some(p) = pages.pop() {
                        assert_eq!(flat.unmap(p), map.unmap(p));
                    }
                }
                3 => {
                    flat.mark_touched(page);
                    map.mark_touched(page);
                }
                _ => {
                    assert_eq!(flat.residency(page), map.residency(page));
                    assert_eq!(flat.is_touched(page), map.is_touched(page));
                }
            }
        }
        assert_eq!(flat.resident_count(), map.resident_count());
        for p in pages {
            assert_eq!(flat.residency(p), map.residency(p));
        }
    }

    #[test]
    fn node_sharing_within_level() {
        // Pages 0 and 1 share every upper-level node.
        for level in 2..=LEVELS {
            assert_eq!(node_for(VirtPage(0), level), node_for(VirtPage(1), level));
        }
        // Pages 0 and 512 differ at level 2 (512 = 2^9) but share level 3+.
        assert_ne!(node_for(VirtPage(0), 2), node_for(VirtPage(512), 2));
        assert_eq!(node_for(VirtPage(0), 3), node_for(VirtPage(512), 3));
    }
}
