//! The 4-level radix page table.
//!
//! The walker traverses four levels (Table I: "traversing 4-level page
//! table", x86-64-style 9-bit radix per level). The table serves two
//! roles in the simulator:
//!
//! 1. **Residency store** — the authoritative map from [`VirtPage`] to
//!    GPU [`Frame`] (or *not resident*, which triggers a far fault).
//! 2. **Walk topology** — which intermediate nodes exist, so the walker
//!    and the page-walk cache can be exercised with realistic locality
//!    (two pages sharing an L3 node share its cached entry).

use crate::types::{Frame, VirtPage};
use sim_core::FxHashMap;

/// Levels of the radix tree (root = level 4, leaf PTE = level 1).
pub const LEVELS: u32 = 4;
/// Radix bits per level.
pub const BITS_PER_LEVEL: u32 = 9;

/// Residency state of one virtual page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Never migrated, or currently evicted to host memory.
    NotResident,
    /// Present in GPU memory at the given frame.
    Resident(Frame),
}

/// Identifier of an intermediate page-table node: `(level, index prefix)`.
///
/// The prefix is the VPN shifted so that two pages mapped by the same
/// node at that level produce the same `NodeId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId {
    /// 4 = root's children ... 2 = the node holding leaf PTE pointers.
    pub level: u32,
    /// VPN >> (9 * (level - 1)).
    pub prefix: u64,
}

/// Node id covering `page` at `level` (level in 2..=4; level 1 is the PTE
/// itself and is never cached by the page-walk cache).
#[must_use]
pub fn node_for(page: VirtPage, level: u32) -> NodeId {
    debug_assert!((2..=LEVELS).contains(&level));
    NodeId {
        level,
        prefix: page.0 >> (BITS_PER_LEVEL * (level - 1)),
    }
}

/// The page table: residency map plus touch bits.
///
/// Touch bits model the hardware *access* bits the driver reads from the
/// GPU page table when it processes an eviction — the mechanism MHPE
/// relies on to compute untouch levels without extra GPU→CPU interrupts
/// (see DESIGN.md substitution table).
#[derive(Debug, Default)]
pub struct PageTable {
    entries: FxHashMap<VirtPage, Entry>,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    frame: Frame,
    touched: bool,
}

impl PageTable {
    /// Empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Residency of `page`.
    #[must_use]
    pub fn residency(&self, page: VirtPage) -> Residency {
        match self.entries.get(&page) {
            Some(e) => Residency::Resident(e.frame),
            None => Residency::NotResident,
        }
    }

    /// True if `page` is resident.
    #[must_use]
    pub fn is_resident(&self, page: VirtPage) -> bool {
        self.entries.contains_key(&page)
    }

    /// Map `page` to `frame`. `touched` distinguishes demand-faulted
    /// pages (true) from prefetched pages (false) — the faulted page of
    /// a chunk is touched by definition, its prefetched neighbours are
    /// not until an SM actually accesses them.
    ///
    /// # Panics
    /// Panics if `page` is already mapped: the driver must evict before
    /// re-mapping, and double-mapping is always a bug.
    pub fn map(&mut self, page: VirtPage, frame: Frame, touched: bool) {
        let prev = self.entries.insert(page, Entry { frame, touched });
        assert!(prev.is_none(), "page {page:?} double-mapped");
    }

    /// Unmap `page`, returning its frame and touch bit.
    ///
    /// # Panics
    /// Panics if `page` was not mapped.
    pub fn unmap(&mut self, page: VirtPage) -> (Frame, bool) {
        let e = self
            .entries
            .remove(&page)
            .unwrap_or_else(|| panic!("page {page:?} unmapped but not mapped"));
        (e.frame, e.touched)
    }

    /// Set the access bit of a resident page (called on every SM access).
    /// No-op if the page is not resident (the access is about to fault).
    pub fn mark_touched(&mut self, page: VirtPage) {
        if let Some(e) = self.entries.get_mut(&page) {
            e.touched = true;
        }
    }

    /// Read the access bit of a resident page.
    #[must_use]
    pub fn is_touched(&self, page: VirtPage) -> bool {
        self.entries.get(&page).is_some_and(|e| e.touched)
    }

    /// Number of resident pages.
    #[must_use]
    pub fn resident_count(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_unmap_roundtrip() {
        let mut pt = PageTable::new();
        assert_eq!(pt.residency(VirtPage(5)), Residency::NotResident);
        pt.map(VirtPage(5), Frame(2), true);
        assert_eq!(pt.residency(VirtPage(5)), Residency::Resident(Frame(2)));
        assert!(pt.is_resident(VirtPage(5)));
        let (f, touched) = pt.unmap(VirtPage(5));
        assert_eq!(f, Frame(2));
        assert!(touched);
        assert!(!pt.is_resident(VirtPage(5)));
    }

    #[test]
    #[should_panic(expected = "double-mapped")]
    fn double_map_panics() {
        let mut pt = PageTable::new();
        pt.map(VirtPage(1), Frame(0), false);
        pt.map(VirtPage(1), Frame(1), false);
    }

    #[test]
    #[should_panic(expected = "not mapped")]
    fn unmap_missing_panics() {
        PageTable::new().unmap(VirtPage(1));
    }

    #[test]
    fn touch_bits() {
        let mut pt = PageTable::new();
        pt.map(VirtPage(1), Frame(0), false);
        assert!(!pt.is_touched(VirtPage(1)));
        pt.mark_touched(VirtPage(1));
        assert!(pt.is_touched(VirtPage(1)));
        // Touching a non-resident page is a harmless no-op.
        pt.mark_touched(VirtPage(99));
        assert!(!pt.is_touched(VirtPage(99)));
    }

    #[test]
    fn resident_count_tracks() {
        let mut pt = PageTable::new();
        for i in 0..10 {
            pt.map(VirtPage(i), Frame(i as u32), false);
        }
        assert_eq!(pt.resident_count(), 10);
        pt.unmap(VirtPage(3));
        assert_eq!(pt.resident_count(), 9);
    }

    #[test]
    fn node_sharing_within_level() {
        // Pages 0 and 1 share every upper-level node.
        for level in 2..=LEVELS {
            assert_eq!(node_for(VirtPage(0), level), node_for(VirtPage(1), level));
        }
        // Pages 0 and 512 differ at level 2 (512 = 2^9) but share level 3+.
        assert_ne!(node_for(VirtPage(0), 2), node_for(VirtPage(512), 2));
        assert_eq!(node_for(VirtPage(0), 3), node_for(VirtPage(512), 3));
    }
}
