//! Indexed set-associative LRU storage — the hit-path probe engine
//! shared by the TLBs and the page-walk cache.
//!
//! The seed implementations found an entry by scanning every filled way
//! of its set and picked replacement victims by scanning for the
//! minimum use stamp. For the fully-associative 128-entry L1 TLB that
//! is up to three 128-way scans *per access* (miss probe, insert
//! existence check, victim search) — and the golden fingerprints show
//! the L1 never hits at bench scale, so every single access pays the
//! worst case. [`IndexedSets`] replaces the scans with:
//!
//! * an **open-addressed index** (linear probing, ≤50 % load,
//!   backward-shift deletion) mapping a key to its slot in O(1) probes,
//! * a per-set **intrusive LRU list** (`prev`/`next` slot links with
//!   per-set head/tail) so the replacement victim is the list tail —
//!   no stamp scan, and
//! * **generation-tagged** index entries: `clear()` bumps a generation
//!   instead of walking the index, so a full flush is O(sets) not
//!   O(index capacity).
//!
//! # Bit-identity with the scan implementation
//!
//! Observable behaviour must match the scan-based structures exactly —
//! the golden fingerprints in `tests/perf_identity.rs` depend on every
//! hit, miss and victim choice. The equivalence argument:
//!
//! * the old code stamped an entry with a strictly-increasing tick on
//!   every lookup hit and insert, and evicted the minimum-stamp way;
//!   stamps are unique, so "minimum stamp" is exactly "least recently
//!   moved to the front of an LRU list" — the list tail;
//! * within-set storage order was never observable (old removal swapped
//!   the last way into the hole; victim choice used stamps, not
//!   positions), so free-slot management here can differ freely;
//! * `clear()`/generation bumps only change *when* work happens, not
//!   what a subsequent probe returns.
//!
//! `tlb.rs` locks this with a model-based test driving millions of
//! random ops through both implementations.

const NIL: u32 = u32::MAX;

/// Keys usable in the open-addressed index.
pub trait IndexKey: Copy + Eq {
    /// Well-mixed 64-bit hash; the index takes its low bits.
    fn index_hash(self) -> u64;
}

/// Fibonacci-style mixer: multiply spreads entropy up, the xor-shift
/// folds the high bits back down so masking the low bits of the result
/// sees the whole key.
#[inline]
pub(crate) fn mix64(x: u64) -> u64 {
    let h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^ (h >> 32)
}

#[derive(Clone, Copy)]
struct IdxEntry<K> {
    key: K,
    slot: u32,
    /// Entry is live iff this equals the structure's current generation.
    gen: u32,
}

/// Set-associative storage with an O(1) key index and O(1) true-LRU
/// replacement. Slot `s` belongs to set `s / assoc`.
pub struct IndexedSets<K, V> {
    assoc: u32,
    /// Per-slot key/value storage (`n_sets × assoc` slots).
    keys: Vec<K>,
    vals: Vec<V>,
    /// Intrusive per-set LRU links (head = MRU, tail = LRU victim).
    /// `next` doubles as the free-list link for vacated slots.
    prev: Vec<u32>,
    next: Vec<u32>,
    head: Vec<u32>,
    tail: Vec<u32>,
    /// Filled slots per set.
    lens: Vec<u32>,
    /// High-water mark of slots ever handed out per set.
    fill: Vec<u32>,
    /// Per-set free list of slots vacated by `remove`.
    free: Vec<u32>,
    /// Open-addressed key → slot index, 2× oversized (≤50 % load).
    idx: Vec<IdxEntry<K>>,
    idx_mask: usize,
    gen: u32,
}

impl<K: IndexKey + Default, V: Copy + Default> IndexedSets<K, V> {
    /// Build storage for `n_sets × assoc` entries.
    ///
    /// # Panics
    /// Panics on zero sets or zero associativity.
    pub fn new(n_sets: usize, assoc: usize) -> Self {
        assert!(n_sets > 0 && assoc > 0, "degenerate geometry");
        let entries = n_sets * assoc;
        let cap = (entries * 2).next_power_of_two().max(16);
        IndexedSets {
            assoc: assoc as u32,
            keys: vec![K::default(); entries],
            vals: vec![V::default(); entries],
            prev: vec![NIL; entries],
            next: vec![NIL; entries],
            head: vec![NIL; n_sets],
            tail: vec![NIL; n_sets],
            lens: vec![0; n_sets],
            fill: vec![0; n_sets],
            free: vec![NIL; n_sets],
            idx: vec![
                IdxEntry {
                    key: K::default(),
                    slot: 0,
                    gen: 0,
                };
                cap
            ],
            idx_mask: cap - 1,
            gen: 1,
        }
    }

    /// Slot holding `key`, if present.
    #[inline]
    fn find_slot(&self, key: K) -> Option<u32> {
        let mut i = (key.index_hash() as usize) & self.idx_mask;
        loop {
            let e = &self.idx[i];
            if e.gen != self.gen {
                return None;
            }
            if e.key == key {
                return Some(e.slot);
            }
            i = (i + 1) & self.idx_mask;
        }
    }

    /// Index position *and* slot of `key`, if present.
    #[inline]
    fn find_pos(&self, key: K) -> Option<(usize, u32)> {
        let mut i = (key.index_hash() as usize) & self.idx_mask;
        loop {
            let e = &self.idx[i];
            if e.gen != self.gen {
                return None;
            }
            if e.key == key {
                return Some((i, e.slot));
            }
            i = (i + 1) & self.idx_mask;
        }
    }

    #[inline]
    fn index_insert(&mut self, key: K, slot: u32) {
        let mut i = (key.index_hash() as usize) & self.idx_mask;
        while self.idx[i].gen == self.gen {
            debug_assert!(self.idx[i].key != key, "duplicate index insert");
            i = (i + 1) & self.idx_mask;
        }
        self.idx[i] = IdxEntry {
            key,
            slot,
            gen: self.gen,
        };
    }

    /// Backward-shift deletion: close the hole at `hole` by sliding
    /// later cluster members back toward their ideal positions, so
    /// probe chains never need tombstones.
    fn index_remove_at(&mut self, mut hole: usize) {
        let mask = self.idx_mask;
        let mut i = (hole + 1) & mask;
        loop {
            let e = self.idx[i];
            if e.gen != self.gen {
                break;
            }
            let ideal = (e.key.index_hash() as usize) & mask;
            // `e` may move back into the hole only if doing so does not
            // jump it before its ideal position (circular distances).
            if i.wrapping_sub(ideal) & mask >= i.wrapping_sub(hole) & mask {
                self.idx[hole] = e;
                hole = i;
            }
            i = (i + 1) & mask;
        }
        self.idx[hole].gen = self.gen.wrapping_sub(1);
    }

    /// Move `slot` to the front (MRU end) of its set's LRU list.
    #[inline]
    fn touch(&mut self, slot: u32) {
        let set = (slot / self.assoc) as usize;
        if self.head[set] == slot {
            return;
        }
        let s = slot as usize;
        let (p, n) = (self.prev[s], self.next[s]);
        // Detach: `slot` is not the head, so `p` is a real slot.
        self.next[p as usize] = n;
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail[set] = p;
        }
        // Re-link at the front.
        let h = self.head[set];
        self.prev[s] = NIL;
        self.next[s] = h;
        self.prev[h as usize] = slot;
        self.head[set] = slot;
    }

    /// Look up `key`, refreshing its LRU position on a hit.
    #[inline]
    pub fn get(&mut self, key: K) -> Option<V> {
        let slot = self.find_slot(key)?;
        self.touch(slot);
        Some(self.vals[slot as usize])
    }

    /// Look up `key` without touching LRU state.
    #[inline]
    pub fn peek(&self, key: K) -> Option<V> {
        self.find_slot(key).map(|s| self.vals[s as usize])
    }

    /// Insert (or refresh) `key` in `set`. On a refresh the value is
    /// updated in place; a full set evicts the LRU entry and returns it.
    pub fn insert(&mut self, set: usize, key: K, val: V) -> Option<(K, V)> {
        if let Some(slot) = self.find_slot(key) {
            self.vals[slot as usize] = val;
            self.touch(slot);
            return None;
        }
        let (slot, victim) = if self.lens[set] < self.assoc {
            self.lens[set] += 1;
            let s = if self.free[set] != NIL {
                let s = self.free[set];
                self.free[set] = self.next[s as usize];
                s
            } else {
                let s = set as u32 * self.assoc + self.fill[set];
                self.fill[set] += 1;
                s
            };
            (s, None)
        } else {
            // Evict the LRU entry: detach the tail.
            let s = self.tail[set];
            let p = self.prev[s as usize];
            self.tail[set] = p;
            if p != NIL {
                self.next[p as usize] = NIL;
            } else {
                self.head[set] = NIL;
            }
            let vk = self.keys[s as usize];
            let vv = self.vals[s as usize];
            let (pos, _) = self.find_pos(vk).expect("victim is indexed");
            self.index_remove_at(pos);
            (s, Some((vk, vv)))
        };
        let s = slot as usize;
        self.keys[s] = key;
        self.vals[s] = val;
        let h = self.head[set];
        self.prev[s] = NIL;
        self.next[s] = h;
        if h != NIL {
            self.prev[h as usize] = slot;
        } else {
            self.tail[set] = slot;
        }
        self.head[set] = slot;
        self.index_insert(key, slot);
        victim
    }

    /// Remove `key`. Returns true if it was present.
    pub fn remove(&mut self, key: K) -> bool {
        let Some((pos, slot)) = self.find_pos(key) else {
            return false;
        };
        self.index_remove_at(pos);
        let set = (slot / self.assoc) as usize;
        let s = slot as usize;
        let (p, n) = (self.prev[s], self.next[s]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head[set] = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail[set] = p;
        }
        self.lens[set] -= 1;
        self.next[s] = self.free[set];
        self.free[set] = slot;
        true
    }

    /// Drop every entry. The index is invalidated by a generation bump
    /// (epoch invalidation) — O(sets), not O(index capacity).
    pub fn clear(&mut self) {
        if self.gen == u32::MAX {
            // One full sweep every 2^32 - 1 clears keeps stale
            // generations from ever aliasing the current one.
            for e in &mut self.idx {
                e.gen = 0;
            }
            self.gen = 1;
        } else {
            self.gen += 1;
        }
        self.head.fill(NIL);
        self.tail.fill(NIL);
        self.lens.fill(0);
        self.fill.fill(0);
        self.free.fill(NIL);
    }

    /// Live entries across all sets.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }
}

impl<K, V> std::fmt::Debug for IndexedSets<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexedSets")
            .field("sets", &self.head.len())
            .field("assoc", &self.assoc)
            .field(
                "occupancy",
                &self.lens.iter().map(|&l| l as u64).sum::<u64>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl IndexKey for u64 {
        fn index_hash(self) -> u64 {
            mix64(self)
        }
    }

    fn sets() -> IndexedSets<u64, u32> {
        IndexedSets::new(2, 2)
    }

    #[test]
    fn insert_get_peek() {
        let mut s = sets();
        assert_eq!(s.insert(0, 10, 1), None);
        assert_eq!(s.get(10), Some(1));
        assert_eq!(s.peek(10), Some(1));
        assert_eq!(s.get(11), None);
        assert_eq!(s.occupancy(), 1);
    }

    #[test]
    fn refresh_updates_value_without_evicting() {
        let mut s = sets();
        s.insert(0, 10, 1);
        s.insert(0, 12, 2);
        assert_eq!(s.insert(0, 10, 9), None);
        assert_eq!(s.peek(10), Some(9));
        assert_eq!(s.occupancy(), 2);
    }

    #[test]
    fn full_set_evicts_lru_tail() {
        let mut s = sets();
        s.insert(0, 10, 1);
        s.insert(0, 12, 2);
        s.get(10); // 12 becomes LRU
        assert_eq!(s.insert(0, 14, 3), Some((12, 2)));
        assert_eq!(s.peek(10), Some(1));
        assert_eq!(s.peek(12), None);
        assert_eq!(s.peek(14), Some(3));
    }

    #[test]
    fn remove_frees_the_slot_for_reuse() {
        let mut s = sets();
        s.insert(0, 10, 1);
        s.insert(0, 12, 2);
        assert!(s.remove(10));
        assert!(!s.remove(10));
        assert_eq!(s.occupancy(), 1);
        assert_eq!(s.insert(0, 14, 3), None, "freed slot, no eviction");
        assert_eq!(s.peek(12), Some(2));
        assert_eq!(s.peek(14), Some(3));
    }

    #[test]
    fn clear_is_a_generation_bump() {
        let mut s = sets();
        s.insert(0, 10, 1);
        s.insert(1, 11, 2);
        s.clear();
        assert_eq!(s.occupancy(), 0);
        assert_eq!(s.peek(10), None);
        assert_eq!(s.peek(11), None);
        s.insert(0, 10, 7);
        assert_eq!(s.get(10), Some(7));
    }

    #[test]
    fn backward_shift_keeps_probe_chains_intact() {
        // Force a cluster: with a 16-slot index many sequential keys
        // collide; deleting from the middle must not orphan later keys.
        let mut s: IndexedSets<u64, u32> = IndexedSets::new(1, 8);
        for k in 0..8u64 {
            s.insert(0, k, k as u32);
        }
        let mut removed = Vec::new();
        for k in [3u64, 0, 5] {
            assert!(s.remove(k));
            removed.push(k);
            for other in 0..8u64 {
                let want = (!removed.contains(&other)).then_some(other as u32);
                assert_eq!(s.peek(other), want, "after removing {k}, key {other}");
            }
        }
    }

    #[test]
    fn many_generations_stay_sound() {
        let mut s = sets();
        for round in 0..100u64 {
            s.insert(0, round * 2, round as u32);
            s.insert(1, round * 2 + 1, round as u32);
            assert_eq!(s.peek(round * 2), Some(round as u32));
            s.clear();
            assert_eq!(s.peek(round * 2), None);
        }
    }
}
