//! Address-space primitives shared by the whole workspace.
//!
//! The paper uses 4 KB OS pages ("A default OS page size of 4KB was
//! adopted") grouped into 16-page, 64 KB *chunks* — the granularity at
//! which the locality prefetcher migrates and the pre-eviction policy
//! evicts ("prefetching the 64KB basic block").

/// OS page size in bytes (paper §V).
pub const PAGE_SIZE: u64 = 4096;

/// Pages per chunk (paper §IV-B: "the chunk size is 16").
pub const PAGES_PER_CHUNK: u64 = 16;

/// Bytes per chunk (64 KB).
pub const CHUNK_BYTES: u64 = PAGE_SIZE * PAGES_PER_CHUNK;

/// A virtual byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// The virtual page containing this address.
    #[inline]
    #[must_use]
    pub fn page(self) -> VirtPage {
        VirtPage(self.0 / PAGE_SIZE)
    }

    /// Byte offset within the page.
    #[inline]
    #[must_use]
    pub fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }
}

/// A virtual page number (address / 4 KB).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtPage(pub u64);

impl VirtPage {
    /// The chunk this page belongs to.
    #[inline]
    #[must_use]
    pub fn chunk(self) -> ChunkId {
        ChunkId(self.0 / PAGES_PER_CHUNK)
    }

    /// Index of this page within its chunk (0..16).
    #[inline]
    #[must_use]
    pub fn index_in_chunk(self) -> usize {
        (self.0 % PAGES_PER_CHUNK) as usize
    }

    /// First byte address of the page.
    #[inline]
    #[must_use]
    pub fn base_addr(self) -> VirtAddr {
        VirtAddr(self.0 * PAGE_SIZE)
    }
}

/// A chunk number (16 naturally aligned contiguous virtual pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub u64);

impl ChunkId {
    /// First page of the chunk.
    #[inline]
    #[must_use]
    pub fn first_page(self) -> VirtPage {
        VirtPage(self.0 * PAGES_PER_CHUNK)
    }

    /// Iterate the 16 pages of the chunk in address order — the order in
    /// which HPE/MHPE evict pages of a selected chunk ("the virtual pages
    /// in the chunk are selected in address order").
    pub fn pages(self) -> impl Iterator<Item = VirtPage> {
        let base = self.0 * PAGES_PER_CHUNK;
        (0..PAGES_PER_CHUNK).map(move |i| VirtPage(base + i))
    }

    /// The page at position `i` within the chunk.
    ///
    /// # Panics
    /// Panics if `i >= 16`.
    #[inline]
    #[must_use]
    pub fn page(self, i: usize) -> VirtPage {
        assert!((i as u64) < PAGES_PER_CHUNK, "page index {i} out of chunk");
        VirtPage(self.0 * PAGES_PER_CHUNK + i as u64)
    }
}

/// A physical GPU frame number (4 KB granularity).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frame(pub u32);

/// Identifier for a streaming multiprocessor (0..28 by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SmId(pub u16);

impl SmId {
    /// Index usable for per-SM arrays.
    #[inline]
    #[must_use]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_to_page() {
        assert_eq!(VirtAddr(0).page(), VirtPage(0));
        assert_eq!(VirtAddr(4095).page(), VirtPage(0));
        assert_eq!(VirtAddr(4096).page(), VirtPage(1));
        assert_eq!(VirtAddr(4097).page_offset(), 1);
    }

    #[test]
    fn page_to_chunk() {
        assert_eq!(VirtPage(0).chunk(), ChunkId(0));
        assert_eq!(VirtPage(15).chunk(), ChunkId(0));
        assert_eq!(VirtPage(16).chunk(), ChunkId(1));
        assert_eq!(VirtPage(35).index_in_chunk(), 3);
    }

    #[test]
    fn chunk_pages_are_contiguous() {
        let pages: Vec<_> = ChunkId(2).pages().collect();
        assert_eq!(pages.len(), 16);
        assert_eq!(pages[0], VirtPage(32));
        assert_eq!(pages[15], VirtPage(47));
        for p in &pages {
            assert_eq!(p.chunk(), ChunkId(2));
        }
    }

    #[test]
    fn chunk_page_indexing_roundtrip() {
        let c = ChunkId(7);
        for i in 0..16 {
            let p = c.page(i);
            assert_eq!(p.index_in_chunk(), i);
            assert_eq!(p.chunk(), c);
        }
    }

    #[test]
    #[should_panic(expected = "out of chunk")]
    fn chunk_page_oob() {
        let _ = ChunkId(0).page(16);
    }

    #[test]
    fn page_base_addr() {
        assert_eq!(VirtPage(3).base_addr(), VirtAddr(3 * 4096));
    }

    #[test]
    fn chunk_is_64kb() {
        assert_eq!(CHUNK_BYTES, 65536);
    }
}
