//! Highly-threaded page-table walker.
//!
//! Table I: "supporting 64 concurrent walks, traversing 4-level page
//! table". The walker owns 64 walk slots; a walk issued while all slots
//! are busy queues behind the earliest-finishing slot (this is what makes
//! fault storms expensive even before the 20 µs far-fault cost).
//!
//! Walk latency model: one page-walk-cache probe, then one memory
//! reference per level that the PWC could not skip. A PWC hit on the
//! level-*k* node skips the references for levels > *k* and leaves
//! *k − 1* references (down to and including the leaf PTE).

use crate::page_table::{node_for, PageTable, Residency, LEVELS};
use crate::types::VirtPage;
use crate::walk_cache::WalkCache;
use sim_core::stats::Counter;
use sim_core::time::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Walker timing/shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct WalkerConfig {
    /// Concurrent walk slots (Table I: 64).
    pub concurrency: usize,
    /// Cycles per page-table memory reference (PWC miss path). Models an
    /// L2-cache/DRAM access for one node of the radix tree.
    pub memory_ref_latency: u64,
}

impl Default for WalkerConfig {
    fn default() -> Self {
        WalkerConfig {
            concurrency: 64,
            memory_ref_latency: 150,
        }
    }
}

/// Result of one walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkOutcome {
    /// Absolute time the walk left the slot queue and started
    /// traversing (`complete_at - started_at` is pure service time,
    /// `started_at - issue` is slot queueing).
    pub started_at: Cycle,
    /// Absolute time the walk finishes (slot queueing included).
    pub complete_at: Cycle,
    /// What the leaf PTE said.
    pub residency: Residency,
}

/// The shared walker.
#[derive(Debug)]
pub struct Walker {
    cfg: WalkerConfig,
    /// Min-heap of slot-free times.
    slots: BinaryHeap<Reverse<Cycle>>,
    /// Total walks issued.
    pub walks: Counter,
    /// Walks that found the page non-resident (→ far fault).
    pub faulting_walks: Counter,
    /// Sum of memory references performed (PWC-miss levels).
    pub memory_refs: Counter,
}

impl Walker {
    /// Build a walker.
    ///
    /// # Panics
    /// Panics if `concurrency` is zero.
    #[must_use]
    pub fn new(cfg: WalkerConfig) -> Self {
        assert!(cfg.concurrency > 0, "walker needs at least one slot");
        let mut slots = BinaryHeap::with_capacity(cfg.concurrency);
        for _ in 0..cfg.concurrency {
            slots.push(Reverse(Cycle::ZERO));
        }
        Walker {
            cfg,
            slots,
            walks: Counter::default(),
            faulting_walks: Counter::default(),
            memory_refs: Counter::default(),
        }
    }

    /// Issue a walk for `page` at time `now`.
    ///
    /// Probes (and on completion fills) the PWC, reads residency from the
    /// page table, and accounts slot contention.
    pub fn walk(
        &mut self,
        page: VirtPage,
        now: Cycle,
        pwc: &mut WalkCache,
        pt: &PageTable,
    ) -> WalkOutcome {
        self.walks.inc();

        // Find the lowest (closest-to-leaf) cached node. A hit at level k
        // leaves k-1 memory references; a full miss costs LEVELS refs.
        let mut refs = LEVELS as u64;
        let mut probe_latency = 0;
        for level in 2..=LEVELS {
            probe_latency = pwc.hit_latency();
            if pwc.lookup(node_for(page, level)) {
                refs = u64::from(level) - 1;
                break;
            }
        }
        // The walk brings every upper-level node on the path into the PWC.
        for level in 2..=LEVELS {
            pwc.insert(node_for(page, level));
        }
        self.memory_refs.add(refs);

        let service = probe_latency + refs * self.cfg.memory_ref_latency;
        let Reverse(free_at) = self.slots.pop().expect("walker has slots");
        let start = free_at.max(now);
        let complete_at = start.after(service);
        self.slots.push(Reverse(complete_at));

        let residency = pt.residency(page);
        if residency == Residency::NotResident {
            self.faulting_walks.inc();
        }
        WalkOutcome {
            started_at: start,
            complete_at,
            residency,
        }
    }

    /// Earliest time a new walk could start (for diagnostics).
    #[must_use]
    pub fn earliest_slot(&self) -> Cycle {
        self.slots.peek().map_or(Cycle::ZERO, |Reverse(c)| *c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Frame;

    fn setup() -> (Walker, WalkCache, PageTable) {
        (
            Walker::new(WalkerConfig::default()),
            WalkCache::table1_default(),
            PageTable::new(),
        )
    }

    #[test]
    fn cold_walk_costs_four_refs() {
        let (mut w, mut pwc, pt) = setup();
        let out = w.walk(VirtPage(0), Cycle::ZERO, &mut pwc, &pt);
        // PWC probe (10) + 4 memory refs (4 * 150).
        assert_eq!(out.complete_at, Cycle(10 + 4 * 150));
        assert_eq!(out.residency, Residency::NotResident);
        assert_eq!(w.faulting_walks.get(), 1);
    }

    #[test]
    fn warm_walk_costs_one_ref() {
        let (mut w, mut pwc, pt) = setup();
        w.walk(VirtPage(0), Cycle::ZERO, &mut pwc, &pt);
        // Neighbouring page shares the level-2 node → 1 ref for the PTE.
        let out = w.walk(VirtPage(1), Cycle(1000), &mut pwc, &pt);
        assert_eq!(out.complete_at, Cycle(1000 + 10 + 150));
    }

    #[test]
    fn resident_page_reports_frame() {
        let (mut w, mut pwc, mut pt) = setup();
        pt.map(VirtPage(3), Frame(42), true);
        let out = w.walk(VirtPage(3), Cycle::ZERO, &mut pwc, &pt);
        assert_eq!(out.residency, Residency::Resident(Frame(42)));
        assert_eq!(w.faulting_walks.get(), 0);
    }

    #[test]
    fn slot_contention_queues_walks() {
        let mut w = Walker::new(WalkerConfig {
            concurrency: 1,
            memory_ref_latency: 100,
        });
        let mut pwc = WalkCache::table1_default();
        let pt = PageTable::new();
        let a = w.walk(VirtPage(0), Cycle::ZERO, &mut pwc, &pt);
        assert_eq!(a.started_at, Cycle::ZERO, "first walk starts at once");
        // Second walk issued at t=0 must wait for the single slot. It is
        // warm (shares the L2 node), so service = 10 + 100.
        let b = w.walk(VirtPage(1), Cycle::ZERO, &mut pwc, &pt);
        assert_eq!(b.started_at, a.complete_at, "queued behind the slot");
        assert_eq!(b.complete_at, a.complete_at.after(10 + 100));
    }

    #[test]
    fn many_slots_overlap() {
        let mut w = Walker::new(WalkerConfig {
            concurrency: 64,
            memory_ref_latency: 100,
        });
        let mut pwc = WalkCache::table1_default();
        let pt = PageTable::new();
        // 64 cold-ish walks at t=0 all start immediately.
        let outs: Vec<_> = (0..64)
            .map(|i| w.walk(VirtPage(i << 27), Cycle::ZERO, &mut pwc, &pt))
            .collect();
        let max = outs.iter().map(|o| o.complete_at).max().unwrap();
        // All independent: none should queue behind another, so the max
        // completion is a single walk's service time.
        assert_eq!(max, Cycle(10 + 4 * 100));
    }

    #[test]
    fn memory_ref_counter_accumulates() {
        let (mut w, mut pwc, pt) = setup();
        w.walk(VirtPage(0), Cycle::ZERO, &mut pwc, &pt); // 4 refs
        w.walk(VirtPage(1), Cycle::ZERO, &mut pwc, &pt); // 1 ref
        assert_eq!(w.memory_refs.get(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        let _ = Walker::new(WalkerConfig {
            concurrency: 0,
            memory_ref_latency: 1,
        });
    }
}
