//! # workloads — synthetic Table II benchmarks
//!
//! Synthetic access-stream generators standing in for the 23 Rodinia /
//! Parboil / Polybench CUDA applications the paper evaluates (we cannot
//! run CUDA binaries inside a Rust reproduction — see the substitution
//! table in DESIGN.md). Each generator preserves the policy-visible
//! surface of its benchmark: footprint (Table II), access-pattern type
//! (Table II), stride structure (NW stride-2, MVT/BIC stride-4 /
//! transposed sweeps), re-reference behaviour and irregularity.
//!
//! * [`types`] — [`PatternType`] (the six-type taxonomy) and
//!   [`AccessStep`],
//! * [`phase`] — composable kernel phases (sequential / strided /
//!   random / transposed / moving-window),
//! * [`spec`] — [`WorkloadSpec`] with footprint scaling,
//! * [`apps`] — the 23 benchmark constructors,
//! * [`registry`] — lookup by abbreviation or pattern type,
//! * [`trace`] — record/replay of lane streams (bring your own traces).

pub mod apps;
pub mod phase;
pub mod registry;
pub mod spec;
pub mod trace;
pub mod types;

pub use phase::Phase;
pub use spec::WorkloadSpec;
pub use types::{AccessStep, LaneItem, PatternType};
