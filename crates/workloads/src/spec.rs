//! Workload specifications.
//!
//! A [`WorkloadSpec`] models one Table II benchmark: its name, suite,
//! footprint and pattern type, plus a phase builder that expands the
//! (possibly scaled) footprint into concrete [`Phase`]s. Scaling keeps
//! the simulations fast while preserving every policy-relevant property
//! (pattern shape, working-set-to-capacity ratio — capacity is always
//! set relative to the *scaled* footprint).

use crate::phase::Phase;
use crate::types::{AccessStep, LaneItem, PatternType};
use gmmu::types::PAGES_PER_CHUNK;

/// Pages per MB (4 KB pages).
pub const PAGES_PER_MB: f64 = 256.0;

/// One benchmark.
#[derive(Clone)]
pub struct WorkloadSpec {
    /// Full benchmark name ("hotspot").
    pub name: &'static str,
    /// Table II abbreviation ("HOT").
    pub abbr: &'static str,
    /// Source suite ("Rodinia", "Parboil", "Polybench").
    pub suite: &'static str,
    /// Footprint in MB at scale 1.0 (Table II).
    pub footprint_mb: f64,
    /// Access-pattern type (Table II).
    pub pattern: PatternType,
    /// RNG seed for random phases.
    pub seed: u64,
    /// Phase builder: `pages` is the scaled footprint in pages.
    pub build: fn(pages: u64) -> Vec<Phase>,
}

impl WorkloadSpec {
    /// Scaled footprint in pages, rounded up to a whole chunk.
    #[must_use]
    pub fn pages(&self, scale: f64) -> u64 {
        let raw = (self.footprint_mb * PAGES_PER_MB * scale).ceil() as u64;
        raw.div_ceil(PAGES_PER_CHUNK) * PAGES_PER_CHUNK
    }

    /// The phase list at the given scale.
    #[must_use]
    pub fn phases(&self, scale: f64) -> Vec<Phase> {
        (self.build)(self.pages(scale))
    }

    /// The access stream of one lane: all phases concatenated.
    #[must_use]
    pub fn lane_stream(&self, lane: usize, lanes: usize, scale: f64) -> Vec<AccessStep> {
        let mut out = Vec::new();
        for (i, phase) in self.phases(scale).iter().enumerate() {
            out.extend(phase.lane_steps(lane, lanes, self.seed.wrapping_add(i as u64)));
        }
        out
    }

    /// The execution stream of one lane with kernel-launch barriers: one
    /// barrier after every segment (pass / window position) of every
    /// phase. All lanes produce the same barrier count.
    #[must_use]
    pub fn lane_items(&self, lane: usize, lanes: usize, scale: f64) -> Vec<LaneItem> {
        let mut out = Vec::new();
        for (i, phase) in self.phases(scale).iter().enumerate() {
            let compute = phase.compute();
            for seg in phase.lane_segments(lane, lanes, self.seed.wrapping_add(i as u64)) {
                out.extend(seg.into_iter().map(|p| {
                    LaneItem::Access(AccessStep {
                        page: gmmu::types::VirtPage(p),
                        compute,
                    })
                }));
                out.push(LaneItem::Barrier);
            }
        }
        out
    }

    /// Total accesses across all lanes (for sanity checks and reports).
    #[must_use]
    pub fn total_accesses(&self, lanes: usize, scale: f64) -> u64 {
        self.phases(scale)
            .iter()
            .map(|p| p.total_accesses(lanes))
            .sum()
    }

    /// Highest page number any phase can touch (must stay inside the
    /// footprint; asserted by the registry tests).
    #[must_use]
    pub fn max_page(&self, scale: f64) -> u64 {
        let mut max = 0u64;
        for phase in self.phases(scale) {
            let end = match phase {
                Phase::Seq { start, len, .. }
                | Phase::Strided { start, len, .. }
                | Phase::Random { start, len, .. }
                | Phase::Zipf { start, len, .. }
                | Phase::MovingWindow { start, len, .. } => start + len,
                Phase::Transposed {
                    start, rows, cols, ..
                } => start + rows * cols,
            };
            max = max.max(end);
        }
        max.saturating_sub(1)
    }
}

impl std::fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadSpec")
            .field("abbr", &self.abbr)
            .field("footprint_mb", &self.footprint_mb)
            .field("pattern", &self.pattern)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> WorkloadSpec {
        WorkloadSpec {
            name: "toy",
            abbr: "TOY",
            suite: "none",
            footprint_mb: 1.0, // 256 pages
            pattern: PatternType::Streaming,
            seed: 1,
            build: |pages| {
                vec![Phase::Seq {
                    start: 0,
                    len: pages,
                    passes: 1,
                    compute: 100,
                }]
            },
        }
    }

    #[test]
    fn pages_scale_and_align() {
        let w = toy();
        assert_eq!(w.pages(1.0), 256);
        assert_eq!(w.pages(0.5), 128);
        // 0.1 → 25.6 → 26 pages → rounds up to 32 (2 chunks).
        assert_eq!(w.pages(0.1), 32);
    }

    #[test]
    fn lane_stream_concatenates_phases() {
        let w = toy();
        let s = w.lane_stream(0, 1, 1.0);
        assert_eq!(s.len(), 256);
        assert_eq!(s[0].page.0, 0);
        assert_eq!(s[255].page.0, 255);
    }

    #[test]
    fn total_accesses_matches_stream_lengths() {
        let w = toy();
        let lanes = 4;
        let total: u64 = (0..lanes)
            .map(|l| w.lane_stream(l, lanes, 1.0).len() as u64)
            .sum();
        assert_eq!(total, w.total_accesses(lanes, 1.0));
    }

    #[test]
    fn lane_items_have_uniform_barrier_counts() {
        let w = toy();
        let lanes = 4;
        let barrier_count = |l: usize| {
            w.lane_items(l, lanes, 1.0)
                .iter()
                .filter(|i| matches!(i, LaneItem::Barrier))
                .count()
        };
        let c0 = barrier_count(0);
        assert!(c0 >= 1);
        for l in 1..lanes {
            assert_eq!(barrier_count(l), c0, "lane {l}");
        }
    }

    #[test]
    fn lane_items_accesses_match_stream() {
        let w = toy();
        let accesses: Vec<_> = w
            .lane_items(0, 2, 1.0)
            .into_iter()
            .filter_map(|i| match i {
                LaneItem::Access(a) => Some(a),
                LaneItem::Barrier => None,
            })
            .collect();
        assert_eq!(accesses, w.lane_stream(0, 2, 1.0));
    }

    #[test]
    fn max_page_within_footprint() {
        let w = toy();
        assert_eq!(w.max_page(1.0), 255);
    }
}
