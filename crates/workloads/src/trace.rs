//! Access-trace serialization.
//!
//! The synthetic Table II generators are substitutes for real
//! application traces (DESIGN.md substitution table). This module lets
//! a downstream user bring *actual* traces: lane streams serialize to a
//! small line-oriented text format and load back for simulation, so a
//! trace captured from a real system (or another simulator) can be run
//! through the same policies.
//!
//! Format (one directive per line, `#` comments allowed):
//!
//! ```text
//! # cppe-trace v1
//! lanes 4
//! lane 0
//! a 128 300      # access: page 128, 300 compute cycles
//! a 129 300
//! b              # kernel-launch barrier
//! lane 1
//! ...
//! ```

use crate::types::{AccessStep, LaneItem};
use gmmu::types::VirtPage;
use std::fmt::Write as _;

/// Trace parse error with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Serialize lane streams to the trace text format.
#[must_use]
pub fn to_text(streams: &[Vec<LaneItem>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# cppe-trace v1");
    let _ = writeln!(out, "lanes {}", streams.len());
    for (lane, stream) in streams.iter().enumerate() {
        let _ = writeln!(out, "lane {lane}");
        for item in stream {
            match item {
                LaneItem::Access(a) => {
                    let _ = writeln!(out, "a {} {}", a.page.0, a.compute);
                }
                LaneItem::Barrier => {
                    let _ = writeln!(out, "b");
                }
            }
        }
    }
    out
}

/// Parse the trace text format back into lane streams.
///
/// # Errors
/// Returns a [`TraceError`] naming the offending line for any malformed
/// directive, out-of-order lane header, or access outside a lane block.
pub fn from_text(text: &str) -> Result<Vec<Vec<LaneItem>>, TraceError> {
    let err = |line: usize, message: &str| TraceError {
        line,
        message: message.to_string(),
    };
    let mut streams: Vec<Vec<LaneItem>> = Vec::new();
    let mut current: Option<usize> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("lanes") => {
                let n: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "lanes needs a count"))?;
                streams = vec![Vec::new(); n];
            }
            Some("lane") => {
                let l: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "lane needs an index"))?;
                if l >= streams.len() {
                    return Err(err(line_no, "lane index out of range"));
                }
                current = Some(l);
            }
            Some("a") => {
                let lane = current.ok_or_else(|| err(line_no, "access before lane header"))?;
                let page: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "access needs a page number"))?;
                let compute: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "access needs compute cycles"))?;
                streams[lane].push(LaneItem::Access(AccessStep {
                    page: VirtPage(page),
                    compute,
                }));
            }
            Some("b") => {
                let lane = current.ok_or_else(|| err(line_no, "barrier before lane header"))?;
                streams[lane].push(LaneItem::Barrier);
            }
            Some(other) => {
                return Err(err(line_no, &format!("unknown directive '{other}'")));
            }
            None => unreachable!("empty lines were skipped"),
        }
    }
    Ok(streams)
}

/// Write a trace to a file.
///
/// # Errors
/// I/O errors from the filesystem.
pub fn save(path: &std::path::Path, streams: &[Vec<LaneItem>]) -> std::io::Result<()> {
    std::fs::write(path, to_text(streams))
}

/// Load a trace from a file.
///
/// # Errors
/// I/O errors, or [`TraceError`] (boxed) for malformed content.
pub fn load(path: &std::path::Path) -> Result<Vec<Vec<LaneItem>>, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(from_text(&text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    fn sample() -> Vec<Vec<LaneItem>> {
        vec![
            vec![
                LaneItem::Access(AccessStep {
                    page: VirtPage(5),
                    compute: 100,
                }),
                LaneItem::Barrier,
                LaneItem::Access(AccessStep {
                    page: VirtPage(6),
                    compute: 200,
                }),
            ],
            vec![LaneItem::Barrier],
        ]
    }

    #[test]
    fn roundtrip_preserves_streams() {
        let streams = sample();
        let text = to_text(&streams);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed, streams);
    }

    #[test]
    fn roundtrip_a_real_workload() {
        let spec = registry::by_abbr("STN").unwrap();
        let streams: Vec<_> = (0..4).map(|l| spec.lane_items(l, 4, 0.25)).collect();
        let parsed = from_text(&to_text(&streams)).unwrap();
        assert_eq!(parsed, streams);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\nlanes 1\n\nlane 0\na 1 2 # trailing comment\nb\n";
        let parsed = from_text(text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases = [
            ("lanes\n", 1, "lanes needs a count"),
            ("lanes 1\nlane 5\n", 2, "lane index out of range"),
            ("lanes 1\na 1 2\n", 2, "access before lane header"),
            ("lanes 1\nlane 0\na x 2\n", 3, "access needs a page number"),
            ("lanes 1\nlane 0\nz\n", 3, "unknown directive 'z'"),
            ("b\n", 1, "barrier before lane header"),
        ];
        for (text, line, msg) in cases {
            let e = from_text(text).unwrap_err();
            assert_eq!(e.line, line, "{text:?}");
            assert!(e.message.contains(msg), "{e}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cppe-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        let streams = sample();
        save(&path, &streams).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded, streams);
    }
}
