//! Composable kernel phases.
//!
//! Each benchmark is modelled as a sequence of [`Phase`]s — one per GPU
//! kernel (or kernel family). A phase describes how the lanes (SM warp
//! slots) traverse a page range; [`Phase::lane_pages`] expands it into
//! the concrete page sequence one lane issues. Phases are the
//! policy-visible surface of the real benchmarks: sequential sweeps,
//! strided sweeps (NW's stride-2, MVT's stride-4), transposed matrix
//! walks, uniform random access and moving working-set windows.

use crate::types::AccessStep;
use gmmu::types::VirtPage;
use sim_core::rng::Xoshiro256ss;

/// One kernel phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Lanes partition `[start, start+len)` contiguously; each lane
    /// sweeps its slice sequentially, `passes` times. `passes == 1` is
    /// pure streaming; `passes > 1` over an oversubscribed range is the
    /// canonical thrashing pattern.
    Seq {
        /// First page.
        start: u64,
        /// Pages in the range.
        len: u64,
        /// Sweeps over the range.
        passes: u32,
        /// Compute cycles per access.
        compute: u32,
    },
    /// Like [`Phase::Seq`] but only pages at multiples of `stride` are
    /// touched (NW: 2, MVT/BIC rows: 4).
    Strided {
        /// First page.
        start: u64,
        /// Pages in the range.
        len: u64,
        /// Page stride.
        stride: u64,
        /// Sweeps.
        passes: u32,
        /// Compute cycles per access.
        compute: u32,
    },
    /// `count` accesses (total, across lanes) uniform over the range —
    /// BFS frontiers, SPV gathers, HIS bins.
    Random {
        /// First page.
        start: u64,
        /// Pages in the range.
        len: u64,
        /// Total accesses across all lanes.
        count: u64,
        /// Compute cycles per access.
        compute: u32,
    },
    /// `count` accesses (total) Zipf-distributed over the range with
    /// exponent `alpha_milli / 1000` — skewed-popularity patterns
    /// (graph degree distributions, key-value hot sets). Hot ranks are
    /// scattered across the range by a multiplicative hash so popular
    /// pages do not all share a chunk.
    Zipf {
        /// First page.
        start: u64,
        /// Pages in the range.
        len: u64,
        /// Total accesses across all lanes.
        count: u64,
        /// Zipf exponent × 1000 (e.g. 1200 ⇒ α = 1.2).
        alpha_milli: u32,
        /// Compute cycles per access.
        compute: u32,
    },
    /// A row-major `rows × cols` page matrix traversed column-major —
    /// every consecutive access jumps `cols` pages (MVT/BIC's
    /// transposed sweep). Lanes partition the columns.
    Transposed {
        /// First page.
        start: u64,
        /// Matrix rows (pages per column walk).
        rows: u64,
        /// Matrix columns (the jump distance).
        cols: u64,
        /// Full matrix sweeps.
        passes: u32,
        /// Compute cycles per access.
        compute: u32,
    },
    /// A `window`-page working set that advances by `step` pages until
    /// the range is exhausted; each position is swept `reps` times with
    /// lanes partitioning the window (B+T, HYB). `stride > 1` touches
    /// only every `stride`-th page of the window — B+tree queries visit
    /// a sparse subset of the nodes in the active region, which is what
    /// produces Table III's high untouch levels for B+T/HYB.
    MovingWindow {
        /// First page.
        start: u64,
        /// Pages in the range.
        len: u64,
        /// Working-set pages.
        window: u64,
        /// Advance per position.
        step: u64,
        /// Sweeps per position.
        reps: u32,
        /// Page stride within the window (1 = dense).
        stride: u64,
        /// Compute cycles per access.
        compute: u32,
    },
}

/// Contiguous slice of `len` items assigned to `lane` out of `lanes`.
/// Returns `(offset, count)`; lanes beyond the data get empty slices.
#[must_use]
pub fn lane_slice(len: u64, lane: usize, lanes: usize) -> (u64, u64) {
    let lanes = lanes.max(1) as u64;
    let lane = lane as u64;
    let base = len / lanes;
    let rem = len % lanes;
    let count = base + u64::from(lane < rem);
    let offset = lane * base + lane.min(rem);
    (offset, count)
}

/// Work-distribution block: 16 items, matching the size of a chunk.
/// GPU thread blocks are dispatched in order, so at any instant the
/// active blocks cover a contiguous, sliding window of the data. Lanes
/// therefore take *blocks* round-robin (`lane, lane+L, lane+2L, ...`)
/// rather than large static slices — this is what makes a multi-lane
/// re-swept range behave as one global cyclic front, the pattern the
/// MRU-family eviction policies exploit.
pub const LANE_BLOCK: u64 = 16;

/// Indices (into an item list of length `len`) that `lane` of `lanes`
/// processes in one pass, block-cyclic with [`LANE_BLOCK`]-sized blocks.
/// `rot` rotates block ownership (pass number): each kernel relaunch
/// maps thread blocks to SMs afresh, so the same lane does not own the
/// same data blocks every pass.
fn lane_blocks_rot(len: u64, lane: usize, lanes: usize, rot: u64) -> impl Iterator<Item = u64> {
    let lanes = lanes.max(1) as u64;
    let lane = lane as u64;
    let nblocks = len.div_ceil(LANE_BLOCK);
    (0..nblocks)
        .filter(move |b| (b + rot) % lanes == lane)
        .flat_map(move |b| b * LANE_BLOCK..((b + 1) * LANE_BLOCK).min(len))
}

impl Phase {
    /// Compute cycles per access in this phase.
    #[must_use]
    pub fn compute(&self) -> u32 {
        match *self {
            Phase::Seq { compute, .. }
            | Phase::Strided { compute, .. }
            | Phase::Random { compute, .. }
            | Phase::Zipf { compute, .. }
            | Phase::Transposed { compute, .. }
            | Phase::MovingWindow { compute, .. } => compute,
        }
    }

    /// The page sequence of `lane` split into *segments*: one segment per
    /// kernel launch (a pass of a sweep, a window position of a moving
    /// window). The simulator places a global barrier between segments —
    /// iterative GPU applications relaunch their kernel per iteration,
    /// which synchronizes all SMs at the sweep boundary.
    #[must_use]
    pub fn lane_segments(&self, lane: usize, lanes: usize, seed: u64) -> Vec<Vec<u64>> {
        match *self {
            Phase::Seq {
                start, len, passes, ..
            } => (0..passes)
                .map(|p| {
                    lane_blocks_rot(len, lane, lanes, p as u64)
                        .map(|i| start + i)
                        .collect()
                })
                .collect(),
            Phase::Strided {
                start,
                len,
                stride,
                passes,
                ..
            } => {
                let strided: Vec<u64> = (start..start + len)
                    .step_by(stride.max(1) as usize)
                    .collect();
                (0..passes)
                    .map(|p| {
                        lane_blocks_rot(strided.len() as u64, lane, lanes, p as u64)
                            .map(|i| strided[i as usize])
                            .collect()
                    })
                    .collect()
            }
            Phase::Random {
                start, len, count, ..
            } => {
                let (_, cnt) = lane_slice(count, lane, lanes);
                let mut rng = Xoshiro256ss::new(seed ^ (lane as u64).wrapping_mul(0x9E37));
                vec![(0..cnt)
                    .map(|_| start + rng.gen_range(len.max(1)))
                    .collect()]
            }
            Phase::Zipf {
                start,
                len,
                count,
                alpha_milli,
                ..
            } => {
                let (_, cnt) = lane_slice(count, lane, lanes);
                let mut rng = Xoshiro256ss::new(seed ^ (lane as u64).wrapping_mul(0x517c));
                let n = len.max(1);
                let alpha = f64::from(alpha_milli) / 1000.0;
                vec![(0..cnt)
                    .map(|_| {
                        let rank = rng.gen_zipf(n, alpha) - 1;
                        // Scatter hot ranks across the range (odd
                        // multiplier is a bijection mod 2^64, reduced
                        // into the range by modulo).
                        start + rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % n
                    })
                    .collect()]
            }
            Phase::Transposed {
                start,
                rows,
                cols,
                passes,
                ..
            } => {
                let lanes64 = lanes.max(1) as u64;
                (0..passes)
                    .map(|p| {
                        let mut seg = Vec::new();
                        for c in (0..cols).filter(|c| (c + u64::from(p)) % lanes64 == lane as u64) {
                            for r in 0..rows {
                                seg.push(start + r * cols + c);
                            }
                        }
                        seg
                    })
                    .collect()
            }
            Phase::MovingWindow {
                start,
                len,
                window,
                step,
                reps,
                stride,
                ..
            } => {
                let mut segs = Vec::new();
                let mut pos = 0u64;
                let window = window.max(1);
                let step = step.max(1);
                let stride = stride.max(1);
                while pos < len {
                    let w = window.min(len - pos);
                    let touched: Vec<u64> = (0..w).step_by(stride as usize).collect();
                    for rep in 0..reps {
                        segs.push(
                            lane_blocks_rot(touched.len() as u64, lane, lanes, u64::from(rep))
                                .map(|i| start + pos + touched[i as usize])
                                .collect(),
                        );
                    }
                    pos += step;
                }
                segs
            }
        }
    }

    /// The flattened page sequence `lane` (of `lanes`) issues for this
    /// phase (segments concatenated). `seed` feeds random phases.
    #[must_use]
    pub fn lane_pages(&self, lane: usize, lanes: usize, seed: u64) -> Vec<u64> {
        self.lane_segments(lane, lanes, seed).concat()
    }

    /// Expand into [`AccessStep`]s for a lane.
    pub fn lane_steps(&self, lane: usize, lanes: usize, seed: u64) -> Vec<AccessStep> {
        let compute = self.compute();
        self.lane_pages(lane, lanes, seed)
            .into_iter()
            .map(|p| AccessStep {
                page: VirtPage(p),
                compute,
            })
            .collect()
    }

    /// Total accesses this phase issues across all lanes (for sizing).
    #[must_use]
    pub fn total_accesses(&self, lanes: usize) -> u64 {
        (0..lanes.max(1))
            .map(|l| self.lane_pages(l, lanes, 0).len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_slice_partitions_exactly() {
        for len in [0u64, 1, 7, 100, 113] {
            for lanes in [1usize, 2, 7, 16] {
                let mut total = 0;
                let mut next = 0;
                for lane in 0..lanes {
                    let (off, cnt) = lane_slice(len, lane, lanes);
                    assert_eq!(off, next, "slices contiguous");
                    next = off + cnt;
                    total += cnt;
                }
                assert_eq!(total, len);
            }
        }
    }

    #[test]
    fn seq_single_lane_single_pass() {
        let p = Phase::Seq {
            start: 10,
            len: 5,
            passes: 1,
            compute: 100,
        };
        assert_eq!(p.lane_pages(0, 1, 0), vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn seq_passes_repeat_cyclically() {
        let p = Phase::Seq {
            start: 0,
            len: 3,
            passes: 2,
            compute: 0,
        };
        assert_eq!(p.lane_pages(0, 1, 0), vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn seq_lanes_take_blocks_round_robin() {
        let p = Phase::Seq {
            start: 0,
            len: 64,
            passes: 1,
            compute: 0,
        };
        let a = p.lane_pages(0, 2, 0);
        let b = p.lane_pages(1, 2, 0);
        // Block-cyclic: lane 0 gets blocks 0 and 2, lane 1 blocks 1 and 3.
        assert_eq!(a[..16], (0..16).collect::<Vec<u64>>()[..]);
        assert_eq!(a[16..], (32..48).collect::<Vec<u64>>()[..]);
        assert_eq!(b[..16], (16..32).collect::<Vec<u64>>()[..]);
        assert_eq!(b[16..], (48..64).collect::<Vec<u64>>()[..]);
        // Together they cover the range exactly once.
        let mut all: Vec<u64> = a.into_iter().chain(b).collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn seq_short_tail_block_clipped() {
        let p = Phase::Seq {
            start: 0,
            len: 20,
            passes: 1,
            compute: 0,
        };
        let a = p.lane_pages(0, 2, 0);
        let b = p.lane_pages(1, 2, 0);
        assert_eq!(a.len() + b.len(), 20);
        assert_eq!(b, (16..20).collect::<Vec<u64>>());
    }

    #[test]
    fn strided_touches_only_stride_multiples() {
        let p = Phase::Strided {
            start: 0,
            len: 16,
            stride: 4,
            passes: 1,
            compute: 0,
        };
        assert_eq!(p.lane_pages(0, 1, 0), vec![0, 4, 8, 12]);
    }

    #[test]
    fn strided_stride2_matches_nw_pattern() {
        let p = Phase::Strided {
            start: 0,
            len: 32,
            stride: 2,
            passes: 1,
            compute: 0,
        };
        let pages = p.lane_pages(0, 1, 0);
        assert!(pages.iter().all(|p| p % 2 == 0));
        assert_eq!(pages.len(), 16);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let p = Phase::Random {
            start: 100,
            len: 50,
            count: 1000,
            compute: 0,
        };
        let a = p.lane_pages(3, 8, 42);
        let b = p.lane_pages(3, 8, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|&pg| (100..150).contains(&pg)));
        let c = p.lane_pages(4, 8, 42);
        assert_ne!(a, c, "lanes draw different streams");
    }

    #[test]
    fn zipf_is_deterministic_skewed_and_in_range() {
        let p = Phase::Zipf {
            start: 100,
            len: 200,
            count: 4000,
            alpha_milli: 1300,
            compute: 0,
        };
        let a = p.lane_pages(0, 2, 9);
        let b = p.lane_pages(0, 2, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2000);
        assert!(a.iter().all(|&pg| (100..300).contains(&pg)));
        // Skew: the most popular page must dominate a uniform share.
        let mut counts = std::collections::HashMap::new();
        for &pg in &a {
            *counts.entry(pg).or_insert(0u32) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 200, "hottest page only {max} of 2000 accesses");
        assert_eq!(p.total_accesses(2), 4000);
    }

    #[test]
    fn random_count_split_across_lanes() {
        let p = Phase::Random {
            start: 0,
            len: 10,
            count: 100,
            compute: 0,
        };
        assert_eq!(p.total_accesses(8), 100);
    }

    #[test]
    fn transposed_jumps_by_cols() {
        let p = Phase::Transposed {
            start: 0,
            rows: 3,
            cols: 4,
            passes: 1,
            compute: 0,
        };
        // Column 0 walk: pages 0, 4, 8 — stride = cols.
        let pages = p.lane_pages(0, 1, 0);
        assert_eq!(&pages[..3], &[0, 4, 8]);
        assert_eq!(pages.len(), 12);
    }

    #[test]
    fn moving_window_advances() {
        let p = Phase::MovingWindow {
            start: 0,
            len: 6,
            window: 2,
            step: 2,
            reps: 2,
            stride: 1,
            compute: 0,
        };
        // Windows [0,1], [2,3], [4,5], each swept twice.
        assert_eq!(
            p.lane_pages(0, 1, 0),
            vec![0, 1, 0, 1, 2, 3, 2, 3, 4, 5, 4, 5]
        );
    }

    #[test]
    fn moving_window_tail_clipped() {
        let p = Phase::MovingWindow {
            start: 0,
            len: 5,
            window: 3,
            step: 3,
            reps: 1,
            stride: 1,
            compute: 0,
        };
        assert_eq!(p.lane_pages(0, 1, 0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn moving_window_stride_touches_sparse_subset() {
        let p = Phase::MovingWindow {
            start: 0,
            len: 12,
            window: 6,
            step: 6,
            reps: 1,
            stride: 3,
            compute: 0,
        };
        // Window [0..6) touches 0, 3; window [6..12) touches 6, 9.
        assert_eq!(p.lane_pages(0, 1, 0), vec![0, 3, 6, 9]);
    }

    #[test]
    fn steps_carry_compute() {
        let p = Phase::Seq {
            start: 0,
            len: 2,
            passes: 1,
            compute: 777,
        };
        let steps = p.lane_steps(0, 1, 0);
        assert_eq!(steps.len(), 2);
        assert!(steps.iter().all(|s| s.compute == 777));
        assert_eq!(steps[0].page, VirtPage(0));
    }

    #[test]
    fn excess_lanes_get_empty_slices() {
        let p = Phase::Seq {
            start: 0,
            len: 2,
            passes: 1,
            compute: 0,
        };
        assert!(p.lane_pages(5, 8, 0).is_empty());
        assert_eq!(p.total_accesses(8), 2);
    }
}
