//! The 23 Table II benchmarks as synthetic access-stream generators.
//!
//! Each constructor returns a [`WorkloadSpec`] whose phases reproduce
//! the *policy-visible* behaviour of the real benchmark: footprint
//! (Table II), pattern type (Table II), and the specific traits the
//! paper calls out — NW's stride-2 and MVT/BIC's stride-4 touch
//! patterns (§IV-C), MVT/BIC's transposed sweeps that crash the naïve
//! baseline (Fig. 4), BFS/HWL's slowly-populating chunks (Fig. 7
//! discussion), and the cyclic sweeps of the Type IV thrashers where
//! MRU-family eviction shines.
//!
//! Phase ranges are expressed in fractions of the (scaled) footprint so
//! every spec works at any scale.

use crate::phase::Phase;
use crate::spec::WorkloadSpec;
use crate::types::PatternType;

fn frac(pages: u64, num: u64, den: u64) -> u64 {
    ((pages * num) / den).max(1)
}

// ---------------------------------------------------------------- Type I

/// `hotspot` (Rodinia, 12 MB, Type I): stencil over a temperature grid,
/// instruction-limited in the paper's runs — effectively one streaming
/// pass plus a short second iteration.
#[must_use]
pub fn hot() -> WorkloadSpec {
    WorkloadSpec {
        name: "hotspot",
        abbr: "HOT",
        suite: "Rodinia",
        footprint_mb: 12.0,
        pattern: PatternType::Streaming,
        seed: 0x401,
        build: |pages| {
            vec![
                Phase::Seq {
                    start: 0,
                    len: pages,
                    passes: 1,
                    compute: 700,
                },
                Phase::Seq {
                    start: 0,
                    len: frac(pages, 1, 4),
                    passes: 1,
                    compute: 700,
                },
            ]
        },
    }
}

/// `leukocyte` (Rodinia, 5.6 MB, Type I): per-frame streaming with a
/// small cyclic tail — the paper notes LEU nonetheless favours MRU
/// (Table IV shows nonzero untouch levels).
#[must_use]
pub fn leu() -> WorkloadSpec {
    WorkloadSpec {
        name: "leukocyte",
        abbr: "LEU",
        suite: "Rodinia",
        footprint_mb: 5.6,
        pattern: PatternType::Streaming,
        seed: 0x402,
        build: |pages| {
            vec![Phase::Seq {
                start: 0,
                len: pages,
                passes: 3,
                compute: 900,
            }]
        },
    }
}

/// `2DCONV` (Polybench, 128 MB, Type I): pure streaming convolution.
#[must_use]
pub fn twodc() -> WorkloadSpec {
    WorkloadSpec {
        name: "2DCONV",
        abbr: "2DC",
        suite: "Polybench",
        footprint_mb: 128.0,
        pattern: PatternType::Streaming,
        seed: 0x403,
        build: |pages| {
            vec![Phase::Seq {
                start: 0,
                len: pages,
                passes: 1,
                compute: 500,
            }]
        },
    }
}

/// `3DCONV` (Polybench, 127.5 MB, Type I): streaming 3-D convolution.
#[must_use]
pub fn threedc() -> WorkloadSpec {
    WorkloadSpec {
        name: "3DCONV",
        abbr: "3DC",
        suite: "Polybench",
        footprint_mb: 127.5,
        pattern: PatternType::Streaming,
        seed: 0x404,
        build: |pages| {
            vec![Phase::Seq {
                start: 0,
                len: pages,
                passes: 1,
                compute: 600,
            }]
        },
    }
}

// --------------------------------------------------------------- Type II

/// `backprop` (Rodinia, 9 MB, Type II): forward stream plus re-visited
/// weight region.
#[must_use]
pub fn bkp() -> WorkloadSpec {
    WorkloadSpec {
        name: "backprop",
        abbr: "BKP",
        suite: "Rodinia",
        footprint_mb: 9.0,
        pattern: PatternType::PartlyRepetitive,
        seed: 0x405,
        build: |pages| {
            vec![
                Phase::Seq {
                    start: 0,
                    len: pages,
                    passes: 1,
                    compute: 600,
                },
                Phase::Seq {
                    start: 0,
                    len: frac(pages, 1, 3),
                    passes: 2,
                    compute: 600,
                },
            ]
        },
    }
}

/// `pathfinder` (Rodinia, 38.5 MB, Type II): row-wise dynamic
/// programming — streaming with a strided revisit that leaves
/// half-populated chunks (Tables III/IV show moderate untouch levels).
#[must_use]
pub fn pat() -> WorkloadSpec {
    WorkloadSpec {
        name: "pathfinder",
        abbr: "PAT",
        suite: "Rodinia",
        footprint_mb: 38.5,
        pattern: PatternType::PartlyRepetitive,
        seed: 0x406,
        build: |pages| {
            vec![
                Phase::Strided {
                    start: 0,
                    len: pages,
                    stride: 2,
                    passes: 3,
                    compute: 500,
                },
                Phase::Seq {
                    start: 0,
                    len: pages,
                    passes: 1,
                    compute: 500,
                },
                Phase::Seq {
                    start: 0,
                    len: frac(pages, 1, 2),
                    passes: 1,
                    compute: 500,
                },
            ]
        },
    }
}

/// `dwt2d` (Rodinia, 27 MB, Type II): wavelet pyramid — full pass, then
/// passes over successively halved regions.
#[must_use]
pub fn dwt() -> WorkloadSpec {
    WorkloadSpec {
        name: "dwt2d",
        abbr: "DWT",
        suite: "Rodinia",
        footprint_mb: 27.0,
        pattern: PatternType::PartlyRepetitive,
        seed: 0x407,
        build: |pages| {
            vec![
                Phase::Strided {
                    start: 0,
                    len: pages,
                    stride: 3,
                    passes: 2,
                    compute: 500,
                },
                Phase::Seq {
                    start: 0,
                    len: pages,
                    passes: 1,
                    compute: 500,
                },
                Phase::Seq {
                    start: 0,
                    len: frac(pages, 1, 2),
                    passes: 1,
                    compute: 500,
                },
                Phase::Seq {
                    start: 0,
                    len: frac(pages, 1, 4),
                    passes: 1,
                    compute: 500,
                },
            ]
        },
    }
}

/// `kmeans` (Rodinia, 130 MB, Type II): feature matrix re-streamed per
/// iteration with a sparse (strided) access to the transposed features —
/// the source of its high untouch levels (Table III: 58–70).
#[must_use]
pub fn kmn() -> WorkloadSpec {
    WorkloadSpec {
        name: "kmeans",
        abbr: "KMN",
        suite: "Rodinia",
        footprint_mb: 130.0,
        pattern: PatternType::PartlyRepetitive,
        seed: 0x408,
        build: |pages| {
            // "Medium-Untouch: ... around half pages receiving no
            // touches" — stride-2 sweeps put KMN exactly there.
            vec![
                Phase::Strided {
                    start: 0,
                    len: pages,
                    stride: 2,
                    passes: 3,
                    compute: 400,
                },
                Phase::Seq {
                    start: 0,
                    len: frac(pages, 1, 4),
                    passes: 1,
                    compute: 400,
                },
            ]
        },
    }
}

// -------------------------------------------------------------- Type III

/// `sad` (Parboil, 8.5 MB, Type III): repeated sweeps whose parity
/// alternates, so no *stable* intra-chunk pattern manifests — the reason
/// CPPE cannot beat disable-on-full here (§VI-B) and prefetching once
/// memory is full costs an order of magnitude more evictions (Fig. 4).
#[must_use]
pub fn sad() -> WorkloadSpec {
    WorkloadSpec {
        name: "sad",
        abbr: "SAD",
        suite: "Parboil",
        footprint_mb: 8.5,
        pattern: PatternType::MostlyRepetitive,
        seed: 0x409,
        build: |pages| {
            vec![
                Phase::Strided {
                    start: 0,
                    len: pages,
                    stride: 2,
                    passes: 2,
                    compute: 300,
                },
                Phase::Strided {
                    start: 1,
                    len: pages - 1,
                    stride: 2,
                    passes: 2,
                    compute: 300,
                },
                Phase::Strided {
                    start: 0,
                    len: pages,
                    stride: 2,
                    passes: 2,
                    compute: 300,
                },
                Phase::Strided {
                    start: 1,
                    len: pages - 1,
                    stride: 2,
                    passes: 2,
                    compute: 300,
                },
                Phase::Seq {
                    start: 0,
                    len: pages,
                    passes: 1,
                    compute: 300,
                },
            ]
        },
    }
}

/// `nw` (Rodinia, 32 MB, Type III): Needleman–Wunsch — the paper's
/// stride-2 example (§IV-C): a stable every-other-page touch pattern
/// swept repeatedly.
#[must_use]
pub fn nw() -> WorkloadSpec {
    WorkloadSpec {
        name: "nw",
        abbr: "NW",
        suite: "Rodinia",
        footprint_mb: 32.0,
        pattern: PatternType::MostlyRepetitive,
        seed: 0x40a,
        build: |pages| {
            vec![
                Phase::Strided {
                    start: 0,
                    len: pages,
                    stride: 2,
                    passes: 4,
                    compute: 300,
                },
                Phase::Seq {
                    start: 0,
                    len: frac(pages, 1, 4),
                    passes: 1,
                    compute: 300,
                },
            ]
        },
    }
}

/// `bfs` (Rodinia, 37.2 MB, Type III): frontier-driven random access —
/// chunks need many intervals to fully populate, which favours deletion
/// Scheme-1 (Fig. 7 discussion).
#[must_use]
pub fn bfs() -> WorkloadSpec {
    WorkloadSpec {
        name: "bfs",
        abbr: "BFS",
        suite: "Rodinia",
        footprint_mb: 37.2,
        pattern: PatternType::MostlyRepetitive,
        seed: 0x40b,
        build: |pages| {
            let half = frac(pages, 1, 2);
            vec![
                Phase::Random {
                    start: 0,
                    len: pages,
                    count: frac(pages, 1, 8),
                    compute: 250,
                },
                Phase::Seq {
                    start: 0,
                    len: pages,
                    passes: 1,
                    compute: 250,
                },
                Phase::Random {
                    start: 0,
                    len: half,
                    count: half / 2,
                    compute: 250,
                },
                Phase::Seq {
                    start: 0,
                    len: pages,
                    passes: 1,
                    compute: 250,
                },
                Phase::Random {
                    start: half,
                    len: pages - half,
                    count: half / 2,
                    compute: 250,
                },
            ]
        },
    }
}

/// `MVT` (Polybench, 64.1 MB, Type III): the paper's stride-4 example
/// (§IV-C): during each period "only a portion of pages with a fixed
/// stride (stride of 4 in MVT) are touched". Re-swept stride-4 walks
/// under whole-chunk prefetch waste 12 of 16 pages per migration —
/// effective capacity drops 4×, the eviction storm never ends, and the
/// naïve baseline *crashes* (Fig. 4). The pattern buffer learns the
/// stride and prefetches only the 4 touched pages.
#[must_use]
pub fn mvt() -> WorkloadSpec {
    WorkloadSpec {
        name: "MVT",
        abbr: "MVT",
        suite: "Polybench",
        footprint_mb: 64.1,
        pattern: PatternType::MostlyRepetitive,
        seed: 0x40c,
        build: |pages| {
            vec![
                Phase::Strided {
                    start: 0,
                    len: pages,
                    stride: 4,
                    passes: 5,
                    compute: 250,
                },
                Phase::Strided {
                    start: 1,
                    len: pages - 1,
                    stride: 4,
                    passes: 2,
                    compute: 250,
                },
            ]
        },
    }
}

/// `BICG` (Polybench, 64.1 MB, Type III): BiCG's paired `A`/`Aᵀ`
/// products — the same stable stride-4 structure as MVT (also crashes
/// the naïve baseline in Fig. 4).
#[must_use]
pub fn bic() -> WorkloadSpec {
    WorkloadSpec {
        name: "BICG",
        abbr: "BIC",
        suite: "Polybench",
        footprint_mb: 64.1,
        pattern: PatternType::MostlyRepetitive,
        seed: 0x40d,
        build: |pages| {
            vec![
                Phase::Strided {
                    start: 0,
                    len: pages,
                    stride: 4,
                    passes: 4,
                    compute: 250,
                },
                Phase::Strided {
                    start: 2,
                    len: pages - 2,
                    stride: 4,
                    passes: 3,
                    compute: 250,
                },
            ]
        },
    }
}

// --------------------------------------------------------------- Type IV

/// `srad_v2` (Rodinia, 96 MB, Type IV): iterative diffusion — cyclic
/// full-footprint sweeps, the canonical LRU-thrashing pattern.
#[must_use]
pub fn srd() -> WorkloadSpec {
    WorkloadSpec {
        name: "srad_v2",
        abbr: "SRD",
        suite: "Rodinia",
        footprint_mb: 96.0,
        pattern: PatternType::Thrashing,
        seed: 0x40e,
        build: |pages| {
            vec![Phase::Seq {
                start: 0,
                len: pages,
                passes: 4,
                compute: 450,
            }]
        },
    }
}

/// `hotspot3D` (Rodinia, 24 MB, Type IV): iterative 3-D stencil —
/// cyclic sweeps.
#[must_use]
pub fn hsd() -> WorkloadSpec {
    WorkloadSpec {
        name: "hotspot3D",
        abbr: "HSD",
        suite: "Rodinia",
        footprint_mb: 24.0,
        pattern: PatternType::Thrashing,
        seed: 0x40f,
        build: |pages| {
            vec![Phase::Seq {
                start: 0,
                len: pages,
                passes: 6,
                compute: 400,
            }]
        },
    }
}

/// `mri-q` (Parboil, 5 MB, Type IV): cyclic sweeps over a small
/// footprint; the small chain makes MHPE's forward distance keep
/// adjusting on wrong evictions, which is why CPPE shows no benefit
/// here (§VI-B).
#[must_use]
pub fn mrq() -> WorkloadSpec {
    WorkloadSpec {
        name: "mri-q",
        abbr: "MRQ",
        suite: "Parboil",
        footprint_mb: 5.0,
        pattern: PatternType::Thrashing,
        seed: 0x410,
        build: |pages| {
            vec![Phase::Seq {
                start: 0,
                len: pages,
                passes: 8,
                compute: 350,
            }]
        },
    }
}

/// `stencil` (Parboil, 4 MB, Type IV): iterative stencil, cyclic sweeps.
#[must_use]
pub fn stn() -> WorkloadSpec {
    WorkloadSpec {
        name: "stencil",
        abbr: "STN",
        suite: "Parboil",
        footprint_mb: 4.0,
        pattern: PatternType::Thrashing,
        seed: 0x411,
        build: |pages| {
            vec![Phase::Seq {
                start: 0,
                len: pages,
                passes: 10,
                compute: 350,
            }]
        },
    }
}

// ---------------------------------------------------------------- Type V

/// `heartwall` (Rodinia, 40.7 MB, Type V): cyclic sweeps over the frame
/// buffer plus random accesses to tracking state — chunks populate
/// slowly (favours Scheme-1, Fig. 7).
#[must_use]
pub fn hwl() -> WorkloadSpec {
    WorkloadSpec {
        name: "heartwall",
        abbr: "HWL",
        suite: "Rodinia",
        footprint_mb: 40.7,
        pattern: PatternType::RepetitiveThrashing,
        seed: 0x412,
        build: |pages| {
            let frames = frac(pages, 2, 3);
            vec![
                Phase::Seq {
                    start: 0,
                    len: frames,
                    passes: 3,
                    compute: 400,
                },
                Phase::Random {
                    start: frames,
                    len: pages - frames,
                    count: frac(pages, 1, 2),
                    compute: 400,
                },
                Phase::Seq {
                    start: 0,
                    len: frames,
                    passes: 1,
                    compute: 400,
                },
            ]
        },
    }
}

/// `sgemm` (Parboil, 12 MB, Type V): tiled GEMM — the A panel is
/// re-swept while B/C stream.
#[must_use]
pub fn sgm() -> WorkloadSpec {
    WorkloadSpec {
        name: "sgemm",
        abbr: "SGM",
        suite: "Parboil",
        footprint_mb: 12.0,
        pattern: PatternType::RepetitiveThrashing,
        seed: 0x413,
        build: |pages| {
            let third = frac(pages, 1, 3);
            vec![
                Phase::Seq {
                    start: 0,
                    len: pages,
                    passes: 3,
                    compute: 350,
                },
                Phase::Seq {
                    start: 0,
                    len: third,
                    passes: 2,
                    compute: 350,
                },
            ]
        },
    }
}

/// `histo` (Parboil, 13.2 MB, Type V): streamed input plus strided bin
/// updates with a *stable* stride — the pattern Scheme-2 retains
/// (Fig. 7).
#[must_use]
pub fn his() -> WorkloadSpec {
    WorkloadSpec {
        name: "histo",
        abbr: "HIS",
        suite: "Parboil",
        footprint_mb: 13.2,
        pattern: PatternType::RepetitiveThrashing,
        seed: 0x414,
        build: |pages| {
            let half = frac(pages, 1, 2);
            vec![
                Phase::Seq {
                    start: 0,
                    len: half,
                    passes: 2,
                    compute: 350,
                },
                Phase::Strided {
                    start: 0,
                    len: pages,
                    stride: 4,
                    passes: 4,
                    compute: 350,
                },
            ]
        },
    }
}

/// `spmv` (Parboil, 27.3 MB, Type V): sparse gathers over the matrix
/// region plus cyclic vector sweeps.
#[must_use]
pub fn spv() -> WorkloadSpec {
    WorkloadSpec {
        name: "spmv",
        abbr: "SPV",
        suite: "Parboil",
        footprint_mb: 27.3,
        pattern: PatternType::RepetitiveThrashing,
        seed: 0x415,
        build: |pages| {
            let two_thirds = frac(pages, 2, 3);
            vec![
                Phase::Seq {
                    start: 0,
                    len: two_thirds,
                    passes: 2,
                    compute: 300,
                },
                Phase::Random {
                    start: two_thirds,
                    len: pages - two_thirds,
                    count: pages,
                    compute: 300,
                },
                Phase::Seq {
                    start: 0,
                    len: two_thirds,
                    passes: 1,
                    compute: 300,
                },
            ]
        },
    }
}

// --------------------------------------------------------------- Type VI

/// `b+tree` (Rodinia, 34.7 MB, Type VI): query batches walk a region
/// that moves through the tree — a drifting working set that plain LRU
/// handles well and reserved LRU penalizes (Fig. 3: up to −53 %).
#[must_use]
pub fn bpt() -> WorkloadSpec {
    WorkloadSpec {
        name: "b+tree",
        abbr: "B+T",
        suite: "Rodinia",
        footprint_mb: 34.7,
        pattern: PatternType::RegionMoving,
        seed: 0x416,
        build: |pages| {
            let window = frac(pages, 2, 5);
            vec![Phase::MovingWindow {
                start: 0,
                len: pages,
                window,
                step: (window / 2).max(1),
                reps: 3,
                stride: 3,
                compute: 300,
            }]
        },
    }
}

/// `hybridsort` (Rodinia, 104 MB, Type VI): bucket-by-bucket sorting —
/// the active bucket region drifts across the footprint.
#[must_use]
pub fn hyb() -> WorkloadSpec {
    WorkloadSpec {
        name: "hybridsort",
        abbr: "HYB",
        suite: "Rodinia",
        footprint_mb: 104.0,
        pattern: PatternType::RegionMoving,
        seed: 0x417,
        build: |pages| {
            let window = frac(pages, 1, 8);
            vec![
                Phase::MovingWindow {
                    start: 0,
                    len: pages,
                    window,
                    step: window,
                    reps: 2,
                    stride: 1,
                    compute: 300,
                },
                Phase::Seq {
                    start: 0,
                    len: pages,
                    passes: 1,
                    compute: 300,
                },
            ]
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprints_match_table2() {
        assert_eq!(hot().footprint_mb, 12.0);
        assert_eq!(leu().footprint_mb, 5.6);
        assert_eq!(twodc().footprint_mb, 128.0);
        assert_eq!(threedc().footprint_mb, 127.5);
        assert_eq!(bkp().footprint_mb, 9.0);
        assert_eq!(pat().footprint_mb, 38.5);
        assert_eq!(dwt().footprint_mb, 27.0);
        assert_eq!(kmn().footprint_mb, 130.0);
        assert_eq!(sad().footprint_mb, 8.5);
        assert_eq!(nw().footprint_mb, 32.0);
        assert_eq!(bfs().footprint_mb, 37.2);
        assert_eq!(mvt().footprint_mb, 64.1);
        assert_eq!(bic().footprint_mb, 64.1);
        assert_eq!(srd().footprint_mb, 96.0);
        assert_eq!(hsd().footprint_mb, 24.0);
        assert_eq!(mrq().footprint_mb, 5.0);
        assert_eq!(stn().footprint_mb, 4.0);
        assert_eq!(hwl().footprint_mb, 40.7);
        assert_eq!(sgm().footprint_mb, 12.0);
        assert_eq!(his().footprint_mb, 13.2);
        assert_eq!(spv().footprint_mb, 27.3);
        assert_eq!(bpt().footprint_mb, 34.7);
        assert_eq!(hyb().footprint_mb, 104.0);
    }

    #[test]
    fn nw_touches_only_even_pages_first_phase() {
        let w = nw();
        let steps = w.lane_stream(0, 1, 0.25);
        let strided_len = steps.len() - (w.pages(0.25) / 4).max(1) as usize;
        assert!(steps[..strided_len].iter().all(|s| s.page.0 % 2 == 0));
    }

    #[test]
    fn mvt_is_stride_4() {
        let w = mvt();
        let phases = w.phases(0.25);
        let Phase::Strided { stride, .. } = phases[0] else {
            panic!("expected strided phase");
        };
        assert_eq!(stride, 4, "paper §IV-C: stride of 4 in MVT");
        let steps = w.lane_stream(0, 1, 0.25);
        assert!(!steps.is_empty());
    }

    #[test]
    fn type4_apps_are_pure_cyclic_sweeps() {
        for w in [srd(), hsd(), mrq(), stn()] {
            let phases = w.phases(0.5);
            assert_eq!(phases.len(), 1, "{}", w.abbr);
            let Phase::Seq { passes, len, .. } = phases[0] else {
                panic!("{} should be a Seq sweep", w.abbr);
            };
            assert!(passes >= 4, "{} needs cyclic re-reference", w.abbr);
            assert_eq!(len, w.pages(0.5));
        }
    }

    #[test]
    fn streams_stay_inside_footprint() {
        for w in [
            hot(),
            leu(),
            twodc(),
            threedc(),
            bkp(),
            pat(),
            dwt(),
            kmn(),
            sad(),
            nw(),
            bfs(),
            mvt(),
            bic(),
            srd(),
            hsd(),
            mrq(),
            stn(),
            hwl(),
            sgm(),
            his(),
            spv(),
            bpt(),
            hyb(),
        ] {
            for scale in [0.25, 0.5, 1.0] {
                let pages = w.pages(scale);
                assert!(
                    w.max_page(scale) < pages,
                    "{} at scale {scale}: max page {} >= footprint {pages}",
                    w.abbr,
                    w.max_page(scale)
                );
            }
        }
    }

    #[test]
    fn his_bins_are_stride_4() {
        let w = his();
        let phases = w.phases(0.5);
        let Phase::Strided { stride, passes, .. } = phases[1] else {
            panic!("HIS phase 2 should be strided bins");
        };
        assert_eq!(stride, 4);
        assert!(passes >= 3, "the stable stride must repeat for Scheme-2");
    }

    #[test]
    fn bpt_moves_a_sparse_window() {
        let w = bpt();
        let phases = w.phases(0.5);
        let Phase::MovingWindow {
            stride,
            window,
            step,
            ..
        } = phases[0]
        else {
            panic!("B+T should be a moving window");
        };
        assert!(stride > 1, "B+T touches the window sparsely (Table III)");
        assert!(step <= window, "query regions overlap as they advance");
    }

    #[test]
    fn hyb_windows_are_dense_and_drift() {
        let w = hyb();
        let phases = w.phases(0.5);
        let Phase::MovingWindow { stride, .. } = phases[0] else {
            panic!("HYB starts with the bucket sort windows");
        };
        assert_eq!(stride, 1, "sort buckets are touched densely");
        assert!(matches!(phases[1], Phase::Seq { .. }), "merge scan follows");
    }

    #[test]
    fn bfs_leads_with_a_sparse_frontier() {
        let w = bfs();
        let phases = w.phases(0.5);
        let Phase::Random { count, len, .. } = phases[0] else {
            panic!("BFS starts from a sparse random frontier");
        };
        assert!(count * 4 <= len, "frontier phase must be sparse");
    }

    #[test]
    fn streaming_apps_touch_each_page_once() {
        for w in [twodc(), threedc()] {
            let lanes = 8;
            let mut counts = std::collections::HashMap::new();
            for l in 0..lanes {
                for s in w.lane_stream(l, lanes, 0.25) {
                    *counts.entry(s.page.0).or_insert(0u32) += 1;
                }
            }
            assert!(
                counts.values().all(|&c| c == 1),
                "{}: streaming pages must be touched exactly once",
                w.abbr
            );
            assert_eq!(counts.len() as u64, w.pages(0.25));
        }
    }

    #[test]
    fn type4_passes_cover_footprint_each_time() {
        let w = stn();
        let lanes = 4;
        let pages = w.pages(0.25);
        // Union of all lanes' first segments must cover the footprint.
        let mut first_pass = std::collections::HashSet::new();
        for l in 0..lanes {
            if let Some(seg) = w.phases(0.25)[0].lane_segments(l, lanes, 0).first() {
                first_pass.extend(seg.iter().copied());
            }
        }
        assert_eq!(first_pass.len() as u64, pages);
    }

    #[test]
    fn every_lane_stream_nonempty_at_modest_lane_counts() {
        for w in [stn(), mrq(), leu()] {
            // Even the smallest footprints keep 32 lanes busy.
            let lanes = 32;
            let nonempty = (0..lanes)
                .filter(|&l| !w.lane_stream(l, lanes, 0.25).is_empty())
                .count();
            assert!(nonempty >= lanes / 2, "{}: {nonempty} lanes busy", w.abbr);
        }
    }
}
