//! Benchmark registry.

use crate::apps;
use crate::spec::WorkloadSpec;
use crate::types::PatternType;

/// All 23 Table II benchmarks, in Table II order.
#[must_use]
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        apps::hot(),
        apps::leu(),
        apps::twodc(),
        apps::threedc(),
        apps::bkp(),
        apps::pat(),
        apps::dwt(),
        apps::kmn(),
        apps::sad(),
        apps::nw(),
        apps::bfs(),
        apps::mvt(),
        apps::bic(),
        apps::srd(),
        apps::hsd(),
        apps::mrq(),
        apps::stn(),
        apps::hwl(),
        apps::sgm(),
        apps::his(),
        apps::spv(),
        apps::bpt(),
        apps::hyb(),
    ]
}

/// Look a benchmark up by its Table II abbreviation (case-insensitive).
#[must_use]
pub fn by_abbr(abbr: &str) -> Option<WorkloadSpec> {
    all()
        .into_iter()
        .find(|w| w.abbr.eq_ignore_ascii_case(abbr))
}

/// All benchmarks of one pattern type, in Table II order.
#[must_use]
pub fn by_type(pattern: PatternType) -> Vec<WorkloadSpec> {
    all().into_iter().filter(|w| w.pattern == pattern).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_23_benchmarks() {
        assert_eq!(all().len(), 23);
    }

    #[test]
    fn abbreviations_unique() {
        let abbrs: std::collections::HashSet<_> = all().iter().map(|w| w.abbr).collect();
        assert_eq!(abbrs.len(), 23);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(by_abbr("mvt").is_some());
        assert!(by_abbr("MVT").is_some());
        assert!(by_abbr("b+t").is_some());
        assert!(by_abbr("nope").is_none());
    }

    #[test]
    fn type_groups_match_table2() {
        use PatternType::*;
        let group = |p| by_type(p).iter().map(|w| w.abbr).collect::<Vec<_>>();
        assert_eq!(group(Streaming), vec!["HOT", "LEU", "2DC", "3DC"]);
        assert_eq!(group(PartlyRepetitive), vec!["BKP", "PAT", "DWT", "KMN"]);
        assert_eq!(
            group(MostlyRepetitive),
            vec!["SAD", "NW", "BFS", "MVT", "BIC"]
        );
        assert_eq!(group(Thrashing), vec!["SRD", "HSD", "MRQ", "STN"]);
        assert_eq!(group(RepetitiveThrashing), vec!["HWL", "SGM", "HIS", "SPV"]);
        assert_eq!(group(RegionMoving), vec!["B+T", "HYB"]);
    }

    #[test]
    fn average_footprint_matches_paper() {
        // Paper §V: "memory footprint ... vary from 4MB to 130MB with an
        // average of 45MB".
        let sizes: Vec<f64> = all().iter().map(|w| w.footprint_mb).collect();
        let min = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        let avg = sizes.iter().sum::<f64>() / sizes.len() as f64;
        assert_eq!(min, 4.0);
        assert_eq!(max, 130.0);
        assert!((avg - 45.0).abs() < 2.5, "average footprint {avg:.1} MB");
    }

    #[test]
    fn seeds_are_distinct() {
        let seeds: std::collections::HashSet<_> = all().iter().map(|w| w.seed).collect();
        assert_eq!(seeds.len(), 23);
    }
}
