//! Workload-facing types.

use gmmu::types::VirtPage;

/// The six access-pattern types of Table II (taxonomy from the HPE
/// paper, which the CPPE paper reuses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PatternType {
    /// Type I — streaming: each page referenced once, never revisited.
    Streaming,
    /// Type II — partly repetitive: streaming plus partial re-reference.
    PartlyRepetitive,
    /// Type III — mostly repetitive: repeated (often strided) sweeps.
    MostlyRepetitive,
    /// Type IV — thrashing: cyclic re-reference of the whole footprint.
    Thrashing,
    /// Type V — repetitive-thrashing: cyclic sweeps mixed with
    /// irregular accesses.
    RepetitiveThrashing,
    /// Type VI — region moving: a resident working region that drifts
    /// across the footprint.
    RegionMoving,
}

impl PatternType {
    /// Roman-numeral label used by the paper's tables.
    #[must_use]
    pub fn roman(&self) -> &'static str {
        match self {
            PatternType::Streaming => "I",
            PatternType::PartlyRepetitive => "II",
            PatternType::MostlyRepetitive => "III",
            PatternType::Thrashing => "IV",
            PatternType::RepetitiveThrashing => "V",
            PatternType::RegionMoving => "VI",
        }
    }

    /// All six types in order.
    #[must_use]
    pub fn all() -> [PatternType; 6] {
        [
            PatternType::Streaming,
            PatternType::PartlyRepetitive,
            PatternType::MostlyRepetitive,
            PatternType::Thrashing,
            PatternType::RepetitiveThrashing,
            PatternType::RegionMoving,
        ]
    }
}

/// One memory access issued by a lane (an SM warp slot): the page it
/// touches and the compute cycles the lane spends before its *next*
/// access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessStep {
    /// Virtual page touched.
    pub page: VirtPage,
    /// Cycles of compute following this access.
    pub compute: u32,
}

/// One item of a lane's execution stream: a memory access or a global
/// barrier. Barriers model kernel-launch boundaries — iterative GPU
/// applications relaunch their kernel per sweep, synchronizing all SMs,
/// which is what keeps a re-swept range behaving as one global cyclic
/// front. Every lane of a workload carries the same number of barriers,
/// in the same order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneItem {
    /// A memory access.
    Access(AccessStep),
    /// Wait until every lane reaches its next barrier.
    Barrier,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roman_labels() {
        assert_eq!(PatternType::Streaming.roman(), "I");
        assert_eq!(PatternType::RegionMoving.roman(), "VI");
    }

    #[test]
    fn all_covers_six() {
        let all = PatternType::all();
        assert_eq!(all.len(), 6);
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 6);
    }
}
