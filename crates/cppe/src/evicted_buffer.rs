//! Wrong-eviction detection buffer.
//!
//! MHPE (and HPE before it) keep "a buffer ... to record recently evicted
//! chunks. When a page fault occurs, the buffer is searched for the
//! corresponding chunk. On a hit, the number of wrong evictions is
//! increased" (§IV-B). MHPE sizes the buffer from the chunk-chain length:
//! `max(8, 8 * (chain_len / 64))` entries, so applications with similar
//! footprints get similar buffers, with a floor of two intervals' worth
//! of evictions.

use gmmu::types::ChunkId;
use sim_core::FxHashSet;
use std::collections::VecDeque;

/// Bounded FIFO of recently evicted chunks with O(1) membership tests.
#[derive(Debug)]
pub struct EvictedBuffer {
    order: VecDeque<ChunkId>,
    members: FxHashSet<ChunkId>,
    capacity: usize,
    /// High-water mark, reported by the overhead analysis (§VI-C).
    pub max_len: usize,
}

/// MHPE's sizing rule (§IV-B).
#[must_use]
pub fn mhpe_buffer_len(chain_len: usize) -> usize {
    ((chain_len / 64) * 8).max(8)
}

impl EvictedBuffer {
    /// Buffer holding at most `capacity` chunks.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "evicted buffer needs capacity");
        EvictedBuffer {
            order: VecDeque::with_capacity(capacity),
            members: FxHashSet::default(),
            capacity,
            max_len: 0,
        }
    }

    /// Record an eviction, dropping the oldest record when full.
    pub fn push(&mut self, chunk: ChunkId) {
        if self.members.contains(&chunk) {
            // Re-evicted while still recorded: refresh its position.
            self.order.retain(|&c| c != chunk);
            self.order.push_back(chunk);
            return;
        }
        if self.order.len() == self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.members.remove(&old);
            }
        }
        self.order.push_back(chunk);
        self.members.insert(chunk);
        self.max_len = self.max_len.max(self.order.len());
    }

    /// Fault-time probe: was `chunk` recently evicted? On a hit the
    /// record is consumed (the chunk is about to be re-migrated, and a
    /// single wrong eviction must not be counted once per page).
    pub fn take(&mut self, chunk: ChunkId) -> bool {
        if self.members.remove(&chunk) {
            self.order.retain(|&c| c != chunk);
            true
        } else {
            false
        }
    }

    /// Non-consuming membership test.
    #[must_use]
    pub fn contains(&self, chunk: ChunkId) -> bool {
        self.members.contains(&chunk)
    }

    /// Current length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_rule() {
        assert_eq!(mhpe_buffer_len(0), 8);
        assert_eq!(mhpe_buffer_len(63), 8);
        assert_eq!(mhpe_buffer_len(64), 8);
        assert_eq!(mhpe_buffer_len(128), 16);
        assert_eq!(mhpe_buffer_len(640), 80);
    }

    #[test]
    fn push_take_roundtrip() {
        let mut b = EvictedBuffer::new(4);
        b.push(ChunkId(1));
        assert!(b.contains(ChunkId(1)));
        assert!(b.take(ChunkId(1)));
        assert!(!b.take(ChunkId(1)), "take consumes");
        assert!(b.is_empty());
    }

    #[test]
    fn fifo_eviction_when_full() {
        let mut b = EvictedBuffer::new(3);
        for i in 0..5 {
            b.push(ChunkId(i));
        }
        assert!(!b.contains(ChunkId(0)));
        assert!(!b.contains(ChunkId(1)));
        assert!(b.contains(ChunkId(2)));
        assert!(b.contains(ChunkId(4)));
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn re_push_refreshes_position() {
        let mut b = EvictedBuffer::new(2);
        b.push(ChunkId(1));
        b.push(ChunkId(2));
        b.push(ChunkId(1)); // refresh, not duplicate
        assert_eq!(b.len(), 2);
        b.push(ChunkId(3)); // evicts 2, the oldest
        assert!(b.contains(ChunkId(1)));
        assert!(!b.contains(ChunkId(2)));
    }

    #[test]
    fn max_len_high_water() {
        let mut b = EvictedBuffer::new(10);
        for i in 0..4 {
            b.push(ChunkId(i));
        }
        b.take(ChunkId(0));
        b.take(ChunkId(1));
        assert_eq!(b.max_len, 4);
        assert_eq!(b.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = EvictedBuffer::new(0);
    }
}
