//! The chunk chain (Fig. 2 of the paper).
//!
//! HPE/MHPE "dynamically maintain a chunk chain": a recency-ordered list
//! of resident chunks, logically split into three partitions by the
//! interval in which each chunk was last referenced:
//!
//! * **new** — referenced in the *current* interval,
//! * **middle** — referenced in the *last* interval,
//! * **old** — referenced earlier.
//!
//! The head of the list is the LRU end, the tail the MRU end. The chain
//! is implemented as a slab-backed intrusive doubly-linked list with an
//! O(1) chunk-id index, so every operation the policies perform —
//! insert, move-to-tail, remove, and bounded scans from either end of
//! the *old* partition — is cheap and allocation-free in steady state.

use gmmu::types::ChunkId;
use sim_core::{FxHashMap, FxHashSet};

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    chunk: ChunkId,
    prev: u32,
    next: u32,
    /// Interval in which the chunk was last referenced (migration or,
    /// for HPE, demand fault).
    last_ref_interval: u64,
    /// HPE's per-chunk touch counter ("records the number of touches to
    /// the chunk"). MHPE ignores this field — that is the point of MHPE.
    counter: u32,
}

/// Which partition a chunk falls in, given the current interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Referenced in the current interval.
    New,
    /// Referenced in the previous interval.
    Middle,
    /// Referenced before the previous interval.
    Old,
}

/// Classify `last_ref` relative to `current` interval.
#[must_use]
pub fn partition_of(last_ref: u64, current: u64) -> Partition {
    if last_ref >= current {
        Partition::New
    } else if last_ref + 1 == current {
        Partition::Middle
    } else {
        Partition::Old
    }
}

/// Recency-ordered chunk chain with O(1) lookup.
///
/// Head = LRU end, tail = MRU end.
///
/// ```
/// use cppe::chain::ChunkChain;
/// use gmmu::types::ChunkId;
/// use sim_core::FxHashSet;
///
/// let mut chain = ChunkChain::new();
/// for i in 0..4 {
///     chain.insert_tail(ChunkId(i), 0); // interval 0
/// }
/// // At interval 2, everything is in the "old" partition: MRU selection
/// // with forward distance 1 skips chunk 3 and picks chunk 2.
/// let none = FxHashSet::default();
/// assert_eq!(chain.select_mru_old(1, 2, &none), Some(ChunkId(2)));
/// assert_eq!(chain.select_lru_old(2, &none), Some(ChunkId(0)));
/// ```
#[derive(Debug, Default)]
pub struct ChunkChain {
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    index: FxHashMap<ChunkId, u32>,
    len: usize,
}

impl ChunkChain {
    /// Empty chain.
    #[must_use]
    pub fn new() -> Self {
        ChunkChain {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            index: FxHashMap::default(),
            len: 0,
        }
    }

    /// Number of chunks in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chain holds no chunks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is `chunk` present?
    #[must_use]
    pub fn contains(&self, chunk: ChunkId) -> bool {
        self.index.contains_key(&chunk)
    }

    fn alloc(&mut self, node: Node) -> u32 {
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let n = &self.nodes[i as usize];
            (n.prev, n.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
    }

    fn link_tail(&mut self, i: u32) {
        self.nodes[i as usize].prev = self.tail;
        self.nodes[i as usize].next = NIL;
        if self.tail == NIL {
            self.head = i;
        } else {
            self.nodes[self.tail as usize].next = i;
        }
        self.tail = i;
    }

    fn link_head(&mut self, i: u32) {
        self.nodes[i as usize].next = self.head;
        self.nodes[i as usize].prev = NIL;
        if self.head == NIL {
            self.tail = i;
        } else {
            self.nodes[self.head as usize].prev = i;
        }
        self.head = i;
    }

    /// Insert `chunk` at the tail (MRU position). If already present,
    /// move it to the tail and refresh its interval instead.
    pub fn insert_tail(&mut self, chunk: ChunkId, interval: u64) {
        if let Some(&i) = self.index.get(&chunk) {
            self.unlink(i);
            self.nodes[i as usize].last_ref_interval = interval;
            self.link_tail(i);
            return;
        }
        let i = self.alloc(Node {
            chunk,
            prev: NIL,
            next: NIL,
            last_ref_interval: interval,
            counter: 0,
        });
        self.link_tail(i);
        self.index.insert(chunk, i);
        self.len += 1;
    }

    /// Insert `chunk` at the head (LRU position) — MHPE places wrongly
    /// evicted chunks here so they stay away from the MRU victim window.
    pub fn insert_head(&mut self, chunk: ChunkId, interval: u64) {
        if let Some(&i) = self.index.get(&chunk) {
            self.unlink(i);
            self.nodes[i as usize].last_ref_interval = interval;
            self.link_head(i);
            return;
        }
        let i = self.alloc(Node {
            chunk,
            prev: NIL,
            next: NIL,
            last_ref_interval: interval,
            counter: 0,
        });
        self.link_head(i);
        self.index.insert(chunk, i);
        self.len += 1;
    }

    /// Remove `chunk`. Returns true if it was present.
    pub fn remove(&mut self, chunk: ChunkId) -> bool {
        let Some(i) = self.index.remove(&chunk) else {
            return false;
        };
        self.unlink(i);
        self.free.push(i);
        self.len -= 1;
        true
    }

    /// HPE: record a touch — bump the counter and move to MRU.
    pub fn touch(&mut self, chunk: ChunkId, interval: u64, touches: u32) {
        if let Some(&i) = self.index.get(&chunk) {
            self.unlink(i);
            {
                let n = &mut self.nodes[i as usize];
                n.last_ref_interval = interval;
                n.counter = n.counter.saturating_add(touches);
            }
            self.link_tail(i);
        }
    }

    /// HPE counter of `chunk` (None if absent).
    #[must_use]
    pub fn counter(&self, chunk: ChunkId) -> Option<u32> {
        self.index
            .get(&chunk)
            .map(|&i| self.nodes[i as usize].counter)
    }

    /// Last-referenced interval of `chunk`.
    #[must_use]
    pub fn last_ref(&self, chunk: ChunkId) -> Option<u64> {
        self.index
            .get(&chunk)
            .map(|&i| self.nodes[i as usize].last_ref_interval)
    }

    /// Iterate chunks from the head (LRU end) towards the tail.
    pub fn iter_lru(&self) -> ChainIter<'_> {
        ChainIter {
            chain: self,
            cur: self.head,
            forward: true,
        }
    }

    /// Iterate chunks from the tail (MRU end) towards the head.
    pub fn iter_mru(&self) -> ChainIter<'_> {
        ChainIter {
            chain: self,
            cur: self.tail,
            forward: false,
        }
    }

    /// Victim search used by MRU-family strategies: walk from the MRU end
    /// considering only *old*-partition chunks that are not `exclude`d
    /// (the driver excludes chunks whose migration is in flight in the
    /// current fault batch — pinned pages are not eviction candidates),
    /// skip `forward_distance` of them, and return the next one. If the
    /// old partition is shorter than `forward_distance + 1`, returns its
    /// LRU-most member; if the old partition is empty, falls back to the
    /// global LRU head.
    #[must_use]
    pub fn select_mru_old(
        &self,
        forward_distance: usize,
        current_interval: u64,
        exclude: &FxHashSet<ChunkId>,
    ) -> Option<ChunkId> {
        let mut skipped = 0usize;
        let mut last_old = None;
        for (chunk, last_ref) in self.iter_mru_with_interval() {
            if exclude.contains(&chunk) {
                continue;
            }
            if partition_of(last_ref, current_interval) == Partition::Old {
                if skipped == forward_distance {
                    return Some(chunk);
                }
                skipped += 1;
                last_old = Some(chunk);
            }
        }
        last_old.or_else(|| self.iter_lru().find(|c| !exclude.contains(c)))
    }

    /// Victim search for LRU-family strategies: the LRU-most chunk of the
    /// old partition (skipping `exclude`d chunks), falling back to the
    /// global LRU head.
    #[must_use]
    pub fn select_lru_old(
        &self,
        current_interval: u64,
        exclude: &FxHashSet<ChunkId>,
    ) -> Option<ChunkId> {
        for (chunk, last_ref) in self.iter_lru_with_interval() {
            if exclude.contains(&chunk) {
                continue;
            }
            if partition_of(last_ref, current_interval) == Partition::Old {
                return Some(chunk);
            }
        }
        self.iter_lru().find(|c| !exclude.contains(c))
    }

    /// The `pos`-th non-excluded chunk from the head (LRU end); `pos = 0`
    /// is the first eligible chunk. Used by Reserved-LRU and Random.
    /// Saturates to the last eligible chunk.
    #[must_use]
    pub fn nth_from_lru(&self, pos: usize, exclude: &FxHashSet<ChunkId>) -> Option<ChunkId> {
        let mut last = None;
        for (i, chunk) in self.iter_lru().filter(|c| !exclude.contains(c)).enumerate() {
            last = Some(chunk);
            if i == pos {
                return last;
            }
        }
        last
    }

    /// Iterate `(chunk, last_ref_interval)` LRU→MRU.
    pub fn iter_lru_with_interval(&self) -> impl Iterator<Item = (ChunkId, u64)> + '_ {
        IntervalIter {
            chain: self,
            cur: self.head,
            forward: true,
        }
    }

    /// Iterate `(chunk, last_ref_interval)` MRU→LRU.
    pub fn iter_mru_with_interval(&self) -> impl Iterator<Item = (ChunkId, u64)> + '_ {
        IntervalIter {
            chain: self,
            cur: self.tail,
            forward: false,
        }
    }

    /// Iterate full [`ChainEntry`] records MRU→LRU (HPE's MRU-C search
    /// needs the counters).
    pub fn iter_mru_entries(&self) -> impl Iterator<Item = ChainEntry> + '_ {
        EntryIter {
            chain: self,
            cur: self.tail,
            forward: false,
        }
    }

    /// Iterate full [`ChainEntry`] records LRU→MRU.
    pub fn iter_lru_entries(&self) -> impl Iterator<Item = ChainEntry> + '_ {
        EntryIter {
            chain: self,
            cur: self.head,
            forward: true,
        }
    }

    /// Count of old-partition chunks (diagnostics / tests).
    #[must_use]
    pub fn old_len(&self, current_interval: u64) -> usize {
        self.iter_lru_with_interval()
            .filter(|&(_, r)| partition_of(r, current_interval) == Partition::Old)
            .count()
    }
}

/// Iterator over chunk ids in chain order.
pub struct ChainIter<'a> {
    chain: &'a ChunkChain,
    cur: u32,
    forward: bool,
}

impl Iterator for ChainIter<'_> {
    type Item = ChunkId;

    fn next(&mut self) -> Option<ChunkId> {
        if self.cur == NIL {
            return None;
        }
        let n = &self.chain.nodes[self.cur as usize];
        self.cur = if self.forward { n.next } else { n.prev };
        Some(n.chunk)
    }
}

/// A full view of one chain node (for policies that need the counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainEntry {
    /// The chunk this entry tracks.
    pub chunk: ChunkId,
    /// Interval of last reference.
    pub last_ref_interval: u64,
    /// HPE touch counter.
    pub counter: u32,
}

struct EntryIter<'a> {
    chain: &'a ChunkChain,
    cur: u32,
    forward: bool,
}

impl Iterator for EntryIter<'_> {
    type Item = ChainEntry;

    fn next(&mut self) -> Option<ChainEntry> {
        if self.cur == NIL {
            return None;
        }
        let n = &self.chain.nodes[self.cur as usize];
        self.cur = if self.forward { n.next } else { n.prev };
        Some(ChainEntry {
            chunk: n.chunk,
            last_ref_interval: n.last_ref_interval,
            counter: n.counter,
        })
    }
}

struct IntervalIter<'a> {
    chain: &'a ChunkChain,
    cur: u32,
    forward: bool,
}

impl Iterator for IntervalIter<'_> {
    type Item = (ChunkId, u64);

    fn next(&mut self) -> Option<(ChunkId, u64)> {
        if self.cur == NIL {
            return None;
        }
        let n = &self.chain.nodes[self.cur as usize];
        self.cur = if self.forward { n.next } else { n.prev };
        Some((n.chunk, n.last_ref_interval))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(it: impl Iterator<Item = ChunkId>) -> Vec<u64> {
        it.map(|c| c.0).collect()
    }

    #[test]
    fn insert_tail_orders_lru_to_mru() {
        let mut ch = ChunkChain::new();
        for i in 0..4 {
            ch.insert_tail(ChunkId(i), 0);
        }
        assert_eq!(ids(ch.iter_lru()), vec![0, 1, 2, 3]);
        assert_eq!(ids(ch.iter_mru()), vec![3, 2, 1, 0]);
        assert_eq!(ch.len(), 4);
    }

    #[test]
    fn reinsert_moves_to_tail() {
        let mut ch = ChunkChain::new();
        for i in 0..3 {
            ch.insert_tail(ChunkId(i), 0);
        }
        ch.insert_tail(ChunkId(0), 1);
        assert_eq!(ids(ch.iter_lru()), vec![1, 2, 0]);
        assert_eq!(ch.last_ref(ChunkId(0)), Some(1));
        assert_eq!(ch.len(), 3);
    }

    #[test]
    fn insert_head_places_at_lru() {
        let mut ch = ChunkChain::new();
        ch.insert_tail(ChunkId(1), 0);
        ch.insert_tail(ChunkId(2), 0);
        ch.insert_head(ChunkId(9), 0);
        assert_eq!(ids(ch.iter_lru()), vec![9, 1, 2]);
    }

    #[test]
    fn remove_relinks() {
        let mut ch = ChunkChain::new();
        for i in 0..5 {
            ch.insert_tail(ChunkId(i), 0);
        }
        assert!(ch.remove(ChunkId(2)));
        assert!(!ch.remove(ChunkId(2)));
        assert_eq!(ids(ch.iter_lru()), vec![0, 1, 3, 4]);
        // Removing ends works too.
        ch.remove(ChunkId(0));
        ch.remove(ChunkId(4));
        assert_eq!(ids(ch.iter_lru()), vec![1, 3]);
        assert_eq!(ch.len(), 2);
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let mut ch = ChunkChain::new();
        for i in 0..100 {
            ch.insert_tail(ChunkId(i), 0);
        }
        for i in 0..100 {
            ch.remove(ChunkId(i));
        }
        for i in 100..200 {
            ch.insert_tail(ChunkId(i), 0);
        }
        assert_eq!(ch.nodes.len(), 100, "slab capacity must be reused");
        assert_eq!(ch.len(), 100);
    }

    #[test]
    fn touch_bumps_counter_and_moves() {
        let mut ch = ChunkChain::new();
        ch.insert_tail(ChunkId(1), 0);
        ch.insert_tail(ChunkId(2), 0);
        ch.touch(ChunkId(1), 3, 2);
        assert_eq!(ch.counter(ChunkId(1)), Some(2));
        assert_eq!(ch.last_ref(ChunkId(1)), Some(3));
        assert_eq!(ids(ch.iter_mru()), vec![1, 2]);
        // Touching an absent chunk is a no-op.
        ch.touch(ChunkId(99), 3, 1);
        assert!(!ch.contains(ChunkId(99)));
    }

    #[test]
    fn partitions() {
        assert_eq!(partition_of(5, 5), Partition::New);
        assert_eq!(partition_of(4, 5), Partition::Middle);
        assert_eq!(partition_of(3, 5), Partition::Old);
        assert_eq!(partition_of(0, 5), Partition::Old);
        // Defensive: a "future" interval counts as new.
        assert_eq!(partition_of(6, 5), Partition::New);
    }

    #[test]
    fn select_mru_old_skips_forward_distance() {
        let none = FxHashSet::default();
        let mut ch = ChunkChain::new();
        // Old partition: chunks 0..6 (interval 0), current interval 2.
        for i in 0..6 {
            ch.insert_tail(ChunkId(i), 0);
        }
        // New chunks at MRU end must be skipped entirely.
        ch.insert_tail(ChunkId(10), 2);
        // fd = 0 → MRU-most old chunk = 5.
        assert_eq!(ch.select_mru_old(0, 2, &none), Some(ChunkId(5)));
        // fd = 2 → skip 5, 4 → pick 3 (paper Fig. 5: skipping two chunks
        // from the MRU position evicts C2 when C4 was the MRU-most).
        assert_eq!(ch.select_mru_old(2, 2, &none), Some(ChunkId(3)));
    }

    #[test]
    fn select_respects_exclusion() {
        let mut ch = ChunkChain::new();
        for i in 0..4 {
            ch.insert_tail(ChunkId(i), 0);
        }
        let mut ex = FxHashSet::default();
        ex.insert(ChunkId(3));
        ex.insert(ChunkId(0));
        assert_eq!(ch.select_mru_old(0, 2, &ex), Some(ChunkId(2)));
        assert_eq!(ch.select_lru_old(2, &ex), Some(ChunkId(1)));
        assert_eq!(ch.nth_from_lru(0, &ex), Some(ChunkId(1)));
        // Everything excluded → None.
        for i in 0..4 {
            ex.insert(ChunkId(i));
        }
        assert_eq!(ch.select_mru_old(0, 2, &ex), None);
        assert_eq!(ch.select_lru_old(2, &ex), None);
        assert_eq!(ch.nth_from_lru(0, &ex), None);
    }

    #[test]
    fn select_mru_old_saturates_to_oldest_old() {
        let mut ch = ChunkChain::new();
        ch.insert_tail(ChunkId(0), 0);
        ch.insert_tail(ChunkId(1), 0);
        ch.insert_tail(ChunkId(9), 5); // new
                                       // fd larger than old partition → LRU-most old chunk.
        assert_eq!(
            ch.select_mru_old(10, 5, &FxHashSet::default()),
            Some(ChunkId(0))
        );
    }

    #[test]
    fn select_mru_old_falls_back_to_head_when_no_old() {
        let mut ch = ChunkChain::new();
        ch.insert_tail(ChunkId(1), 5);
        ch.insert_tail(ChunkId(2), 5);
        assert_eq!(
            ch.select_mru_old(3, 5, &FxHashSet::default()),
            Some(ChunkId(1))
        );
    }

    #[test]
    fn select_lru_old_prefers_oldest() {
        let mut ch = ChunkChain::new();
        ch.insert_tail(ChunkId(3), 0);
        ch.insert_tail(ChunkId(4), 1);
        ch.insert_tail(ChunkId(5), 5);
        assert_eq!(
            ch.select_lru_old(5, &FxHashSet::default()),
            Some(ChunkId(3))
        );
    }

    #[test]
    fn select_on_empty_chain_is_none() {
        let none = FxHashSet::default();
        let ch = ChunkChain::new();
        assert_eq!(ch.select_mru_old(2, 5, &none), None);
        assert_eq!(ch.select_lru_old(5, &none), None);
        assert_eq!(ch.nth_from_lru(0, &none), None);
    }

    #[test]
    fn nth_from_lru_positions() {
        let mut ch = ChunkChain::new();
        for i in 0..5 {
            ch.insert_tail(ChunkId(i), 0);
        }
        let none = FxHashSet::default();
        assert_eq!(ch.nth_from_lru(0, &none), Some(ChunkId(0)));
        assert_eq!(ch.nth_from_lru(3, &none), Some(ChunkId(3)));
        // Saturates at the MRU end.
        assert_eq!(ch.nth_from_lru(50, &none), Some(ChunkId(4)));
    }

    #[test]
    fn old_len_counts() {
        let mut ch = ChunkChain::new();
        ch.insert_tail(ChunkId(0), 0);
        ch.insert_tail(ChunkId(1), 4);
        ch.insert_tail(ChunkId(2), 5);
        assert_eq!(ch.old_len(5), 1);
    }
}
