//! Named policy configurations used throughout the evaluation.
//!
//! Each [`PolicyPreset`] is one bar/series in the paper's figures; the
//! harness sweeps over these. [`PolicyPreset::build`] constructs a fresh
//! [`PolicyEngine`] (policies are stateful, so each run gets its own).

use crate::engine::PolicyEngine;
use crate::evict::clock::ClockPolicy;
use crate::evict::hpe::HpePolicy;
use crate::evict::lru::LruPolicy;
use crate::evict::mhpe::{MhpeConfig, MhpePolicy};
use crate::evict::random::RandomPolicy;
use crate::evict::reserved_lru::ReservedLruPolicy;
use crate::evict::rrip::SrripPolicy;
use crate::prefetch::pattern::{DeletionScheme, PatternAwarePrefetcher};
use crate::prefetch::sequential::SequentialLocalPrefetcher;
use crate::prefetch::tree::TreeNeighborhoodPrefetcher;
use crate::prefetch::NonePrefetcher;

/// The policy combinations evaluated in the paper (plus extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyPreset {
    /// State-of-the-art baseline: LRU pre-eviction + naïve sequential-
    /// local prefetcher (Figs. 8–10 normalize to this).
    Baseline,
    /// Random eviction + naïve prefetcher (Figs. 3, 9).
    Random,
    /// Reserved LRU, top 10 % protected, + naïve prefetcher.
    ReservedLru10,
    /// Reserved LRU, top 20 % protected, + naïve prefetcher.
    ReservedLru20,
    /// LRU + prefetcher disabled once memory fills (Figs. 4, 10).
    DisablePfOnFull,
    /// CPPE = MHPE + pattern-aware prefetcher, Scheme-2 (the default).
    Cppe,
    /// CPPE with deletion Scheme-1 (Fig. 7 comparison).
    CppeScheme1,
    /// MHPE + naïve prefetcher (ablation: eviction policy alone).
    MhpeOnly,
    /// HPE + naïve prefetcher (motivation: counter pollution).
    HpeNaive,
    /// HPE without prefetching (HPE as originally published).
    HpeNoPf,
    /// LRU without prefetching.
    LruNoPf,
    /// LRU + tree-neighbourhood prefetcher (extension/ablation).
    LruTree,
    /// MHPE with a pinned forward distance (sensitivity, §IV-B).
    MhpeFixedFd(usize),
    /// MHPE with a custom T3 limit (sensitivity, §VI-A).
    MhpeT3(usize),
    /// MHPE pinned to MRU with switching disabled (Tables III/IV data
    /// collection).
    MhpeNoSwitch,
    /// CLOCK (second chance) + naïve prefetcher (extension baseline).
    Clock,
    /// Chunk-level SRRIP + naïve prefetcher (extension baseline; the
    /// paper cites RRIP as the CPU-cache answer to thrashing).
    Srrip,
}

impl PolicyPreset {
    /// Human-readable name matching the paper's figure labels.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PolicyPreset::Baseline => "baseline".into(),
            PolicyPreset::Random => "random".into(),
            PolicyPreset::ReservedLru10 => "lru-10%".into(),
            PolicyPreset::ReservedLru20 => "lru-20%".into(),
            PolicyPreset::DisablePfOnFull => "nopf-on-full".into(),
            PolicyPreset::Cppe => "cppe".into(),
            PolicyPreset::CppeScheme1 => "cppe-s1".into(),
            PolicyPreset::MhpeOnly => "mhpe-naive-pf".into(),
            PolicyPreset::HpeNaive => "hpe-naive-pf".into(),
            PolicyPreset::HpeNoPf => "hpe-nopf".into(),
            PolicyPreset::LruNoPf => "lru-nopf".into(),
            PolicyPreset::LruTree => "lru-tree".into(),
            PolicyPreset::MhpeFixedFd(fd) => format!("mhpe-fd{fd}"),
            PolicyPreset::MhpeT3(t3) => format!("mhpe-t3-{t3}"),
            PolicyPreset::MhpeNoSwitch => "mhpe-noswitch".into(),
            PolicyPreset::Clock => "clock".into(),
            PolicyPreset::Srrip => "srrip".into(),
        }
    }

    /// Build a fresh engine for this preset. `seed` feeds the Random
    /// policy (ignored by deterministic policies).
    #[must_use]
    pub fn build(&self, seed: u64) -> PolicyEngine {
        match self {
            PolicyPreset::Baseline => PolicyEngine::new(
                Box::new(LruPolicy::new()),
                Box::new(SequentialLocalPrefetcher::naive()),
            ),
            PolicyPreset::Random => PolicyEngine::new(
                Box::new(RandomPolicy::new(seed)),
                Box::new(SequentialLocalPrefetcher::naive()),
            ),
            PolicyPreset::ReservedLru10 => PolicyEngine::new(
                Box::new(ReservedLruPolicy::new(10)),
                Box::new(SequentialLocalPrefetcher::naive()),
            ),
            PolicyPreset::ReservedLru20 => PolicyEngine::new(
                Box::new(ReservedLruPolicy::new(20)),
                Box::new(SequentialLocalPrefetcher::naive()),
            ),
            PolicyPreset::DisablePfOnFull => PolicyEngine::new(
                Box::new(LruPolicy::new()),
                Box::new(SequentialLocalPrefetcher::disable_on_full()),
            ),
            PolicyPreset::Cppe => PolicyEngine::new(
                Box::new(MhpePolicy::new()),
                Box::new(PatternAwarePrefetcher::with_scheme(DeletionScheme::Scheme2)),
            ),
            PolicyPreset::CppeScheme1 => PolicyEngine::new(
                Box::new(MhpePolicy::new()),
                Box::new(PatternAwarePrefetcher::with_scheme(DeletionScheme::Scheme1)),
            ),
            PolicyPreset::MhpeOnly => PolicyEngine::new(
                Box::new(MhpePolicy::new()),
                Box::new(SequentialLocalPrefetcher::naive()),
            ),
            PolicyPreset::HpeNaive => PolicyEngine::new(
                Box::new(HpePolicy::new()),
                Box::new(SequentialLocalPrefetcher::naive()),
            ),
            PolicyPreset::HpeNoPf => {
                PolicyEngine::new(Box::new(HpePolicy::new()), Box::new(NonePrefetcher::new()))
            }
            PolicyPreset::LruNoPf => {
                PolicyEngine::new(Box::new(LruPolicy::new()), Box::new(NonePrefetcher::new()))
            }
            PolicyPreset::LruTree => PolicyEngine::new(
                Box::new(LruPolicy::new()),
                Box::new(TreeNeighborhoodPrefetcher::new()),
            ),
            PolicyPreset::MhpeFixedFd(fd) => PolicyEngine::new(
                Box::new(MhpePolicy::with_config(MhpeConfig {
                    fixed_fd: Some(*fd),
                    ..MhpeConfig::default()
                })),
                Box::new(PatternAwarePrefetcher::new()),
            ),
            PolicyPreset::MhpeT3(t3) => PolicyEngine::new(
                Box::new(MhpePolicy::with_config(MhpeConfig {
                    t3: *t3,
                    ..MhpeConfig::default()
                })),
                Box::new(PatternAwarePrefetcher::new()),
            ),
            PolicyPreset::MhpeNoSwitch => PolicyEngine::new(
                Box::new(MhpePolicy::with_config(MhpeConfig {
                    disable_switch: true,
                    ..MhpeConfig::default()
                })),
                Box::new(PatternAwarePrefetcher::new()),
            ),
            PolicyPreset::Clock => PolicyEngine::new(
                Box::new(ClockPolicy::new()),
                Box::new(SequentialLocalPrefetcher::naive()),
            ),
            PolicyPreset::Srrip => PolicyEngine::new(
                Box::new(SrripPolicy::new()),
                Box::new(SequentialLocalPrefetcher::naive()),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_builds() {
        let presets = [
            PolicyPreset::Baseline,
            PolicyPreset::Random,
            PolicyPreset::ReservedLru10,
            PolicyPreset::ReservedLru20,
            PolicyPreset::DisablePfOnFull,
            PolicyPreset::Cppe,
            PolicyPreset::CppeScheme1,
            PolicyPreset::MhpeOnly,
            PolicyPreset::HpeNaive,
            PolicyPreset::HpeNoPf,
            PolicyPreset::LruNoPf,
            PolicyPreset::LruTree,
            PolicyPreset::MhpeFixedFd(5),
            PolicyPreset::MhpeT3(24),
            PolicyPreset::MhpeNoSwitch,
            PolicyPreset::Clock,
            PolicyPreset::Srrip,
        ];
        for p in presets {
            let e = p.build(42);
            assert!(!e.name().is_empty());
            assert!(!p.label().is_empty());
        }
    }

    #[test]
    fn baseline_matches_paper_description() {
        let e = PolicyPreset::Baseline.build(0);
        assert_eq!(e.name(), "lru+seq-local");
    }

    #[test]
    fn cppe_is_mhpe_plus_pattern_aware() {
        let e = PolicyPreset::Cppe.build(0);
        assert_eq!(e.name(), "mhpe+pattern-aware-s2");
        let e1 = PolicyPreset::CppeScheme1.build(0);
        assert_eq!(e1.name(), "mhpe+pattern-aware-s1");
    }

    #[test]
    fn parameterized_labels() {
        assert_eq!(PolicyPreset::MhpeFixedFd(7).label(), "mhpe-fd7");
        assert_eq!(PolicyPreset::MhpeT3(28).label(), "mhpe-t3-28");
    }
}
