//! CPPE's access pattern-aware prefetcher (paper §IV-C).
//!
//! A **pattern buffer** records the touch pattern (16-bit vector) of
//! evicted chunks whose untouch level is ≥ 8 (half a chunk). On a fault:
//!
//! * buffer **miss** → prefetch the whole chunk (the locality default);
//! * buffer **hit** and the faulted page *matches* the pattern →
//!   prefetch only the pattern's touched pages (skipping the stride-
//!   mismatched pages that would thrash, e.g. NW's stride-2 and MVT's
//!   stride-4 rows);
//! * buffer **hit** and the faulted page does *not* match → prefetch the
//!   whole chunk and delete the pattern according to the deletion scheme:
//!   **Scheme-1** deletes on any mismatch, **Scheme-2** deletes only if
//!   the mismatch happens on the *first* lookup after recording (Fig. 6;
//!   Scheme-2 wins on average and is CPPE's default, §VI-B).

use super::{non_resident_pages_into, PrefetchCtx, Prefetcher};
use gmmu::page_table::PageTable;
use gmmu::types::{ChunkId, VirtPage};
use sim_core::{FxHashMap, TouchVec};

/// Pattern deletion schemes (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeletionScheme {
    /// Delete a pattern whenever a faulted page mismatches it.
    Scheme1,
    /// Delete only if the mismatch is the first lookup after recording.
    Scheme2,
}

#[derive(Debug, Clone, Copy)]
struct PatternEntry {
    pattern: TouchVec,
    /// Has this entry been looked up since it was recorded?
    probed: bool,
}

/// The pattern buffer: chunk-id tagged touch patterns.
///
/// ```
/// use cppe::prefetch::pattern::{DeletionScheme, PatternBuffer, ProbeResult};
/// use gmmu::types::ChunkId;
/// use sim_core::TouchVec;
///
/// let mut buf = PatternBuffer::new();
/// // An evicted chunk with a stride-2 touch pattern (untouch level 8).
/// buf.record(ChunkId(0), TouchVec::from_bits(0x5555));
/// // A fault on an even page matches; odd pages mismatch.
/// assert!(matches!(
///     buf.probe(ChunkId(0).page(4), DeletionScheme::Scheme2),
///     ProbeResult::Match(_)
/// ));
/// assert!(matches!(
///     buf.probe(ChunkId(0).page(5), DeletionScheme::Scheme2),
///     ProbeResult::Mismatch { deleted: false } // matched once: kept
/// ));
/// ```
#[derive(Debug, Default)]
pub struct PatternBuffer {
    map: FxHashMap<ChunkId, PatternEntry>,
    /// High-water mark (overhead analysis, §VI-C).
    pub max_len: usize,
    /// Patterns recorded.
    pub recorded: u64,
    /// Patterns deleted on mismatch.
    pub deleted: u64,
}

/// Minimum untouch level for a pattern to be worth recording
/// (§IV-C: "only chunks that have an untouch level larger than or equal
/// to 8 (i.e., a half of a chunk) are recorded").
pub const RECORD_THRESHOLD: u32 = 8;

/// Outcome of a fault-time probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// No pattern recorded for this chunk.
    Miss,
    /// Pattern hit and the faulted page matches: prefetch `pattern` pages.
    Match(TouchVec),
    /// Pattern hit but the faulted page mismatches: whole-chunk prefetch.
    /// `deleted` reports whether the scheme removed the pattern.
    Mismatch {
        /// True if the entry was deleted by the active scheme.
        deleted: bool,
    },
}

impl PatternBuffer {
    /// Empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the touch pattern of an evicted chunk (only if its untouch
    /// level reaches [`RECORD_THRESHOLD`]). Re-recording overwrites and
    /// rearms the first-search state. An eviction whose touch vector is
    /// dense (untouch < 8) *removes* any stale pattern: "chunks without
    /// a fixed pattern are removed from the buffer" (§IV-C) — keeping a
    /// stale sparse pattern across a densely-touched episode would make
    /// the prefetcher under-fetch dense phases forever.
    pub fn record(&mut self, chunk: ChunkId, touch: TouchVec) {
        if touch.untouch_level() < RECORD_THRESHOLD {
            self.map.remove(&chunk);
            return;
        }
        self.map.insert(
            chunk,
            PatternEntry {
                pattern: touch,
                probed: false,
            },
        );
        self.recorded += 1;
        self.max_len = self.max_len.max(self.map.len());
    }

    /// Fault-time probe for `fault`'s chunk under `scheme`.
    pub fn probe(&mut self, fault: VirtPage, scheme: DeletionScheme) -> ProbeResult {
        let chunk = fault.chunk();
        let Some(entry) = self.map.get_mut(&chunk) else {
            return ProbeResult::Miss;
        };
        let first = !entry.probed;
        entry.probed = true;
        if entry.pattern.get(fault.index_in_chunk()) {
            ProbeResult::Match(entry.pattern)
        } else {
            let delete = match scheme {
                DeletionScheme::Scheme1 => true,
                DeletionScheme::Scheme2 => first,
            };
            if delete {
                self.map.remove(&chunk);
                self.deleted += 1;
            }
            ProbeResult::Mismatch { deleted: delete }
        }
    }

    /// Current number of recorded patterns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no patterns are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Does the buffer hold a pattern for `chunk`?
    #[must_use]
    pub fn contains(&self, chunk: ChunkId) -> bool {
        self.map.contains_key(&chunk)
    }
}

/// The pattern-aware prefetcher: sequential-local behaviour plus the
/// pattern buffer.
#[derive(Debug)]
pub struct PatternAwarePrefetcher {
    buffer: PatternBuffer,
    scheme: DeletionScheme,
    last_origin: &'static str,
}

impl PatternAwarePrefetcher {
    /// CPPE default: Scheme-2.
    #[must_use]
    pub fn new() -> Self {
        Self::with_scheme(DeletionScheme::Scheme2)
    }

    /// Explicit deletion scheme (the Fig. 7 comparison).
    #[must_use]
    pub fn with_scheme(scheme: DeletionScheme) -> Self {
        PatternAwarePrefetcher {
            buffer: PatternBuffer::new(),
            scheme,
            last_origin: "whole-chunk-miss",
        }
    }

    /// Access to the underlying buffer (overhead analysis and tests).
    #[must_use]
    pub fn buffer(&self) -> &PatternBuffer {
        &self.buffer
    }

    fn pattern_pages_into(
        chunk: ChunkId,
        pattern: TouchVec,
        pt: &PageTable,
        out: &mut Vec<VirtPage>,
    ) {
        out.extend(
            pattern
                .touched()
                .map(|i| chunk.page(i))
                .filter(|&p| !pt.is_resident(p)),
        );
    }
}

impl Default for PatternAwarePrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Prefetcher for PatternAwarePrefetcher {
    fn name(&self) -> &'static str {
        match self.scheme {
            DeletionScheme::Scheme1 => "pattern-aware-s1",
            DeletionScheme::Scheme2 => "pattern-aware-s2",
        }
    }

    fn plan_into(&mut self, fault: VirtPage, ctx: &PrefetchCtx<'_>, out: &mut Vec<VirtPage>) {
        let chunk = fault.chunk();
        match self.buffer.probe(fault, self.scheme) {
            ProbeResult::Match(pattern) => {
                self.last_origin = "pattern-hit";
                Self::pattern_pages_into(chunk, pattern, ctx.page_table, out);
                // The faulted page always migrates; it matches the
                // pattern here, so it is already in `out` unless it
                // somehow became resident (it cannot — it just faulted),
                // but be defensive.
                if !out.contains(&fault) {
                    out.push(fault);
                    out.sort_unstable_by_key(|p| p.0);
                }
            }
            ProbeResult::Miss => {
                self.last_origin = "whole-chunk-miss";
                non_resident_pages_into(chunk, ctx.page_table, out);
            }
            ProbeResult::Mismatch { .. } => {
                self.last_origin = "whole-chunk-mismatch";
                non_resident_pages_into(chunk, ctx.page_table, out);
            }
        }
    }

    fn plan_origin(&self) -> &'static str {
        self.last_origin
    }

    fn on_evict(&mut self, chunk: ChunkId, touch: TouchVec) {
        self.buffer.record(chunk, touch);
    }

    fn pattern_buffer_len(&self) -> usize {
        self.buffer.len()
    }

    fn pattern_buffer_max_len(&self) -> usize {
        self.buffer.max_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmmu::types::Frame;

    fn stride2_pattern() -> TouchVec {
        // Pages 0,2,4,...,14 touched — NW-style stride 2.
        let mut t = TouchVec::empty();
        for i in (0..16).step_by(2) {
            t.set(i);
        }
        t
    }

    fn ctx(pt: &PageTable) -> PrefetchCtx<'_> {
        PrefetchCtx {
            page_table: pt,
            memory_full: true,
        }
    }

    #[test]
    fn records_only_high_untouch_patterns() {
        let mut b = PatternBuffer::new();
        b.record(ChunkId(1), stride2_pattern()); // untouch = 8 → recorded
        assert!(b.contains(ChunkId(1)));
        let mut nearly_full = TouchVec::empty();
        for i in 0..9 {
            nearly_full.set(i);
        }
        // untouch = 7 < 8 → not recorded
        b.record(ChunkId(2), nearly_full);
        assert!(!b.contains(ChunkId(2)));
    }

    #[test]
    fn dense_re_eviction_removes_stale_pattern() {
        // §IV-C: "chunks without a fixed pattern are removed from the
        // buffer" — a densely-touched eviction episode proves the old
        // sparse pattern no longer holds.
        let mut b = PatternBuffer::new();
        b.record(ChunkId(1), stride2_pattern());
        b.record(ChunkId(1), TouchVec::full());
        assert!(!b.contains(ChunkId(1)));
    }

    #[test]
    fn match_prefetches_only_pattern_pages() {
        let mut p = PatternAwarePrefetcher::new();
        p.on_evict(ChunkId(0), stride2_pattern());
        let pt = PageTable::new();
        // Page 4 matches the stride-2 pattern.
        let plan = p.plan(VirtPage(4), &ctx(&pt));
        assert_eq!(plan.len(), 8);
        assert!(plan.iter().all(|pg| pg.0 % 2 == 0));
        assert!(plan.contains(&VirtPage(4)));
    }

    #[test]
    fn mismatch_prefetches_whole_chunk() {
        let mut p = PatternAwarePrefetcher::new();
        p.on_evict(ChunkId(0), stride2_pattern());
        let pt = PageTable::new();
        // Page 5 mismatches (odd).
        let plan = p.plan(VirtPage(5), &ctx(&pt));
        assert_eq!(plan.len(), 16);
    }

    #[test]
    fn scheme1_deletes_on_any_mismatch() {
        let mut p = PatternAwarePrefetcher::with_scheme(DeletionScheme::Scheme1);
        p.on_evict(ChunkId(0), stride2_pattern());
        let mut pt = PageTable::new();
        // First probe matches → pattern kept.
        let plan = p.plan(VirtPage(2), &ctx(&pt));
        for &pg in &plan {
            pt.map(pg, Frame(pg.0 as u32), false);
        }
        assert!(p.buffer().contains(ChunkId(0)));
        // Later mismatch deletes under Scheme-1.
        p.plan(VirtPage(5), &ctx(&pt));
        assert!(!p.buffer().contains(ChunkId(0)));
    }

    #[test]
    fn scheme2_keeps_pattern_after_first_match() {
        // Paper Fig. 6, access stream (2): 80001 (match), 80002 (mismatch).
        let mut p = PatternAwarePrefetcher::with_scheme(DeletionScheme::Scheme2);
        p.on_evict(ChunkId(0), stride2_pattern());
        let mut pt = PageTable::new();
        let plan = p.plan(VirtPage(2), &ctx(&pt)); // match on first search
        for &pg in &plan {
            pt.map(pg, Frame(pg.0 as u32), false);
        }
        let plan2 = p.plan(VirtPage(5), &ctx(&pt)); // mismatch, not first
        assert!(p.buffer().contains(ChunkId(0)), "Scheme-2 keeps pattern");
        // Whole chunk except already-resident pattern pages.
        assert_eq!(plan2.len(), 8);
        assert!(plan2.iter().all(|pg| pg.0 % 2 == 1));
    }

    #[test]
    fn scheme2_deletes_on_first_search_mismatch() {
        // Paper Fig. 6, access stream (1): 80002 mismatches immediately.
        let mut p = PatternAwarePrefetcher::with_scheme(DeletionScheme::Scheme2);
        p.on_evict(ChunkId(0), stride2_pattern());
        let pt = PageTable::new();
        p.plan(VirtPage(5), &ctx(&pt));
        assert!(!p.buffer().contains(ChunkId(0)));
    }

    #[test]
    fn miss_defaults_to_whole_chunk() {
        let mut p = PatternAwarePrefetcher::new();
        let pt = PageTable::new();
        assert_eq!(p.plan(VirtPage(100), &ctx(&pt)).len(), 16);
    }

    #[test]
    fn buffer_counters_track() {
        let mut p = PatternAwarePrefetcher::with_scheme(DeletionScheme::Scheme1);
        p.on_evict(ChunkId(0), stride2_pattern());
        p.on_evict(ChunkId(1), stride2_pattern());
        assert_eq!(p.pattern_buffer_len(), 2);
        assert_eq!(p.pattern_buffer_max_len(), 2);
        let pt = PageTable::new();
        p.plan(ChunkId(0).page(5), &ctx(&pt)); // mismatch → delete
        assert_eq!(p.pattern_buffer_len(), 1);
        assert_eq!(p.pattern_buffer_max_len(), 2);
        assert_eq!(p.buffer().deleted, 1);
        assert_eq!(p.buffer().recorded, 2);
    }

    #[test]
    fn probe_miss_on_unrecorded_chunk() {
        let mut b = PatternBuffer::new();
        assert_eq!(
            b.probe(VirtPage(3), DeletionScheme::Scheme2),
            ProbeResult::Miss
        );
    }
}
