//! Sequential-local (locality) prefetcher — Zheng et al., HPCA'16.
//!
//! On a fault, migrate the remainder of the faulted page's 64 KB chunk
//! ("prefetches a chunk (16 pages) each time, same as prefetching the
//! 64KB basic block"). Two variants:
//!
//! * **naïve** (`disable_when_full = false`) — keeps whole-chunk
//!   prefetching even under oversubscription. Combined with LRU this is
//!   the paper's *baseline*, and the behaviour that makes *MVT*/*BIC*
//!   thrash to death (Fig. 4).
//! * **disable-on-full** (`disable_when_full = true`) — Li et al.'s
//!   mitigation: stop prefetching once memory is exhausted, migrating
//!   only single faulted pages. Helps severe thrashers, slows everything
//!   else by up to ~85 % (Fig. 10).

use super::{non_resident_pages_into, PrefetchCtx, Prefetcher};
use gmmu::types::VirtPage;

/// The locality prefetcher.
#[derive(Debug)]
pub struct SequentialLocalPrefetcher {
    disable_when_full: bool,
    last_origin: &'static str,
}

impl SequentialLocalPrefetcher {
    /// Naïve variant: always prefetch the whole chunk (baseline).
    #[must_use]
    pub fn naive() -> Self {
        SequentialLocalPrefetcher {
            disable_when_full: false,
            last_origin: "whole-chunk",
        }
    }

    /// Variant that turns prefetching off once GPU memory is full.
    #[must_use]
    pub fn disable_on_full() -> Self {
        SequentialLocalPrefetcher {
            disable_when_full: true,
            last_origin: "whole-chunk",
        }
    }
}

impl Prefetcher for SequentialLocalPrefetcher {
    fn name(&self) -> &'static str {
        if self.disable_when_full {
            "seq-local-nopf-on-full"
        } else {
            "seq-local"
        }
    }

    fn plan_into(&mut self, fault: VirtPage, ctx: &PrefetchCtx<'_>, out: &mut Vec<VirtPage>) {
        if self.disable_when_full && ctx.memory_full {
            self.last_origin = "fault-only-on-full";
            out.push(fault);
            return;
        }
        self.last_origin = "whole-chunk";
        non_resident_pages_into(fault.chunk(), ctx.page_table, out);
    }

    fn plan_origin(&self) -> &'static str {
        self.last_origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmmu::page_table::PageTable;
    use gmmu::types::Frame;

    fn ctx(pt: &PageTable, full: bool) -> PrefetchCtx<'_> {
        PrefetchCtx {
            page_table: pt,
            memory_full: full,
        }
    }

    #[test]
    fn naive_prefetches_whole_chunk() {
        let pt = PageTable::new();
        let mut p = SequentialLocalPrefetcher::naive();
        let plan = p.plan(VirtPage(20), &ctx(&pt, false));
        assert_eq!(plan.len(), 16);
        assert!(plan.contains(&VirtPage(20)));
        assert_eq!(plan[0], VirtPage(16), "address order within chunk");
    }

    #[test]
    fn naive_keeps_prefetching_when_full() {
        let pt = PageTable::new();
        let mut p = SequentialLocalPrefetcher::naive();
        assert_eq!(p.plan(VirtPage(20), &ctx(&pt, true)).len(), 16);
    }

    #[test]
    fn skips_resident_pages() {
        let mut pt = PageTable::new();
        pt.map(VirtPage(16), Frame(0), true);
        pt.map(VirtPage(17), Frame(1), false);
        let mut p = SequentialLocalPrefetcher::naive();
        let plan = p.plan(VirtPage(20), &ctx(&pt, false));
        assert_eq!(plan.len(), 14);
        assert!(!plan.contains(&VirtPage(16)));
    }

    #[test]
    fn disable_on_full_degrades_to_single_page() {
        let pt = PageTable::new();
        let mut p = SequentialLocalPrefetcher::disable_on_full();
        assert_eq!(p.plan(VirtPage(20), &ctx(&pt, false)).len(), 16);
        assert_eq!(p.plan(VirtPage(20), &ctx(&pt, true)), vec![VirtPage(20)]);
    }

    #[test]
    fn names() {
        assert_eq!(SequentialLocalPrefetcher::naive().name(), "seq-local");
        assert_eq!(
            SequentialLocalPrefetcher::disable_on_full().name(),
            "seq-local-nopf-on-full"
        );
    }
}
