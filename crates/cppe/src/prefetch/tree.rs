//! Tree-based neighbourhood prefetcher (Ganguly et al., ISCA'19).
//!
//! Ganguly et al. reverse-engineered the NVIDIA CUDA driver's prefetcher
//! with micro-benchmarks: within each 2 MB large-page region, the driver
//! maintains a binary tree over 64 KB basic blocks. A fault migrates the
//! faulted 64 KB block; then, walking up the tree, if the *populated
//! fraction* of a node's 2× larger parent would exceed 50 % after the
//! migration, the rest of that parent is prefetched too.
//!
//! The paper uses the sequential-local prefetcher as its baseline, so
//! this implementation serves as an extension/ablation target (the
//! `bench` crate compares it against seq-local and pattern-aware).

use super::{non_resident_pages_into, PrefetchCtx, Prefetcher};
use gmmu::page_table::PageTable;
use gmmu::types::{VirtPage, PAGES_PER_CHUNK};

/// Pages per 2 MB root block (512 × 4 KB).
const ROOT_PAGES: u64 = 512;

/// The tree-neighbourhood prefetcher.
#[derive(Debug, Default)]
pub struct TreeNeighborhoodPrefetcher;

impl TreeNeighborhoodPrefetcher {
    /// New prefetcher.
    #[must_use]
    pub fn new() -> Self {
        TreeNeighborhoodPrefetcher
    }

    /// Count resident-or-planned pages in `[start, start+len)`.
    fn populated(start: u64, len: u64, pt: &PageTable, planned: &[VirtPage]) -> u64 {
        (start..start + len)
            .filter(|&p| pt.is_resident(VirtPage(p)) || planned.contains(&VirtPage(p)))
            .count() as u64
    }
}

impl Prefetcher for TreeNeighborhoodPrefetcher {
    fn name(&self) -> &'static str {
        "tree-neighborhood"
    }

    fn plan_into(&mut self, fault: VirtPage, ctx: &PrefetchCtx<'_>, plan: &mut Vec<VirtPage>) {
        let pt = ctx.page_table;
        // Level 0: the faulted 64 KB basic block.
        non_resident_pages_into(fault.chunk(), pt, plan);
        // Walk up: 128 KB, 256 KB, ..., 2 MB nodes containing the fault.
        let mut node_pages = PAGES_PER_CHUNK;
        while node_pages < ROOT_PAGES {
            node_pages *= 2;
            let start = (fault.0 / node_pages) * node_pages;
            let populated = Self::populated(start, node_pages, pt, plan);
            if populated * 2 > node_pages {
                for p in start..start + node_pages {
                    let vp = VirtPage(p);
                    if !pt.is_resident(vp) && !plan.contains(&vp) {
                        plan.push(vp);
                    }
                }
            } else {
                break;
            }
        }
        plan.sort_unstable_by_key(|p| p.0);
    }

    fn plan_origin(&self) -> &'static str {
        // Every plan is the faulted block plus whatever tree nodes the
        // populated-fraction walk pulled in — a single strategy branch.
        "tree-neighborhood"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmmu::types::{ChunkId, Frame};

    fn ctx(pt: &PageTable) -> PrefetchCtx<'_> {
        PrefetchCtx {
            page_table: pt,
            memory_full: false,
        }
    }

    fn map_chunk(pt: &mut PageTable, chunk: u64) {
        for p in ChunkId(chunk).pages() {
            pt.map(p, Frame(p.0 as u32), false);
        }
    }

    #[test]
    fn cold_fault_migrates_one_chunk() {
        let pt = PageTable::new();
        let mut p = TreeNeighborhoodPrefetcher::new();
        // Nothing resident → 16/32 = 50 % at the 128 KB level, not >50 %.
        assert_eq!(p.plan(VirtPage(0), &ctx(&pt)).len(), 16);
    }

    #[test]
    fn buddy_present_pulls_parent() {
        let mut pt = PageTable::new();
        map_chunk(&mut pt, 1); // buddy of chunk 0 within the 128 KB node
        let mut p = TreeNeighborhoodPrefetcher::new();
        let plan = p.plan(VirtPage(0), &ctx(&pt));
        // 128 KB node: 16 resident + 16 planned = 32/32 > 50 % → parent
        // (256 KB) check: 32/64 = 50 %, stop. Plan = chunk 0 only (chunk 1
        // already resident).
        assert_eq!(plan.len(), 16);
        // Now make the 256 KB node majority-populated: chunks 1, 2, 3.
        map_chunk(&mut pt, 2);
        map_chunk(&mut pt, 3);
        let mut p = TreeNeighborhoodPrefetcher::new();
        let plan = p.plan(VirtPage(0), &ctx(&pt));
        // 48 resident + 16 planned = 64/64 at 256 KB → escalate to 512 KB:
        // 64/128 = 50 % → stop. Chunks 0 plus nothing new (1-3 resident).
        assert_eq!(plan.len(), 16);
    }

    #[test]
    fn majority_populated_parent_prefetches_rest() {
        let mut pt = PageTable::new();
        // Populate chunks 1 and 2 fully and chunk 3 partially: at the
        // 256 KB level (chunks 0-3), resident = 16+16+8 = 40, plan adds
        // 16 → 56/64 > 50 % → the rest of the 256 KB node is prefetched.
        map_chunk(&mut pt, 1);
        map_chunk(&mut pt, 2);
        for p in ChunkId(3).pages().take(8) {
            pt.map(p, Frame(p.0 as u32), false);
        }
        let mut p = TreeNeighborhoodPrefetcher::new();
        let plan = p.plan(VirtPage(0), &ctx(&pt));
        // chunk 0 (16) + remaining half of chunk 3 (8) = 24, then the
        // 512 KB level: 64/128 = 50 % → stop.
        assert_eq!(plan.len(), 24);
    }

    #[test]
    fn plan_is_sorted_and_non_resident() {
        let mut pt = PageTable::new();
        map_chunk(&mut pt, 1);
        pt.map(VirtPage(5), Frame(5), false);
        let mut p = TreeNeighborhoodPrefetcher::new();
        let plan = p.plan(VirtPage(0), &ctx(&pt));
        let mut sorted = plan.clone();
        sorted.sort_unstable_by_key(|x| x.0);
        assert_eq!(plan, sorted);
        assert!(plan.iter().all(|&pg| !pt.is_resident(pg)));
        assert!(plan.contains(&VirtPage(0)));
    }

    #[test]
    fn never_crosses_2mb_root() {
        let mut pt = PageTable::new();
        // Populate pages 0..511 except the last chunk.
        for p in 0..(ROOT_PAGES - 16) {
            pt.map(VirtPage(p), Frame(p as u32), false);
        }
        let mut p = TreeNeighborhoodPrefetcher::new();
        let plan = p.plan(VirtPage(ROOT_PAGES - 16), &ctx(&pt));
        assert!(plan.iter().all(|pg| pg.0 < ROOT_PAGES));
        assert_eq!(plan.len(), 16);
    }
}
