//! Page prefetchers.
//!
//! On every far fault the driver asks the prefetcher which pages to
//! migrate along with the faulted page. Implementations:
//!
//! | Prefetcher | Paper role |
//! |---|---|
//! | [`NonePrefetcher`] | prefetching disabled (HPE's original setting) |
//! | [`SequentialLocalPrefetcher`](sequential::SequentialLocalPrefetcher) | Zheng et al.'s locality prefetcher: the rest of the faulted 64 KB chunk; optionally disabled once memory is full (Fig. 4 / Fig. 10) |
//! | [`TreeNeighborhoodPrefetcher`](tree::TreeNeighborhoodPrefetcher) | the CUDA-driver-style tree prefetcher Ganguly et al. reverse-engineered (extension/ablation) |
//! | [`PatternAwarePrefetcher`](pattern::PatternAwarePrefetcher) | CPPE's access pattern-aware prefetcher (§IV-C) |

pub mod pattern;
pub mod sequential;
pub mod tree;

use gmmu::page_table::PageTable;
use gmmu::types::{ChunkId, VirtPage};
use sim_core::TouchVec;

/// Context a prefetcher may consult when planning a migration.
pub struct PrefetchCtx<'a> {
    /// Residency oracle (the GPU page table).
    pub page_table: &'a PageTable,
    /// True once GPU memory has filled to capacity — several strategies
    /// change behaviour at this point.
    pub memory_full: bool,
}

/// A page prefetcher.
pub trait Prefetcher: Send {
    /// Short stable identifier for reports.
    fn name(&self) -> &'static str;

    /// Plan the migration for a fault on `fault`, appending the pages to
    /// bring in to `out` (which must be empty on entry — the caller
    /// clears and reuses one buffer across faults, so steady-state
    /// planning allocates nothing). The plan must include `fault` itself
    /// and must only contain non-resident pages.
    fn plan_into(&mut self, fault: VirtPage, ctx: &PrefetchCtx<'_>, out: &mut Vec<VirtPage>);

    /// Allocating convenience wrapper over [`Prefetcher::plan_into`].
    fn plan(&mut self, fault: VirtPage, ctx: &PrefetchCtx<'_>) -> Vec<VirtPage> {
        let mut out = Vec::new();
        self.plan_into(fault, ctx, &mut out);
        out
    }

    /// Which strategy branch produced the most recent
    /// [`Prefetcher::plan`] — a stable label the decision audit layer
    /// records as prefetch provenance (e.g. `whole-chunk`,
    /// `pattern-hit`, `fault-only-on-full`). Implementations update the
    /// label unconditionally inside `plan` (a plain store; it never
    /// affects the plan itself).
    fn plan_origin(&self) -> &'static str {
        "fault-only"
    }

    /// A chunk was evicted with the given touch pattern (pattern-aware
    /// prefetching records patterns here).
    fn on_evict(&mut self, chunk: ChunkId, touch: TouchVec) {
        let _ = (chunk, touch);
    }

    /// Current pattern-buffer length (0 for bufferless prefetchers) —
    /// reported by the §VI-C overhead analysis.
    fn pattern_buffer_len(&self) -> usize {
        0
    }

    /// Pattern-buffer high-water mark.
    fn pattern_buffer_max_len(&self) -> usize {
        0
    }
}

/// Prefetching disabled: migrate only the faulted page.
#[derive(Debug, Default)]
pub struct NonePrefetcher;

impl NonePrefetcher {
    /// New no-op prefetcher.
    #[must_use]
    pub fn new() -> Self {
        NonePrefetcher
    }
}

impl Prefetcher for NonePrefetcher {
    fn name(&self) -> &'static str {
        "none"
    }

    fn plan_into(&mut self, fault: VirtPage, _ctx: &PrefetchCtx<'_>, out: &mut Vec<VirtPage>) {
        out.push(fault);
    }
}

/// Helper shared by chunk-granularity strategies: append every
/// non-resident page of `chunk`, in address order, to `out`.
pub fn non_resident_pages_into(chunk: ChunkId, pt: &PageTable, out: &mut Vec<VirtPage>) {
    out.extend(chunk.pages().filter(|&p| !pt.is_resident(p)));
}

/// Allocating convenience wrapper over [`non_resident_pages_into`].
#[must_use]
pub fn non_resident_pages(chunk: ChunkId, pt: &PageTable) -> Vec<VirtPage> {
    let mut out = Vec::new();
    non_resident_pages_into(chunk, pt, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmmu::types::Frame;

    #[test]
    fn none_prefetcher_returns_only_fault() {
        let pt = PageTable::new();
        let ctx = PrefetchCtx {
            page_table: &pt,
            memory_full: true,
        };
        let mut p = NonePrefetcher::new();
        assert_eq!(p.plan(VirtPage(37), &ctx), vec![VirtPage(37)]);
    }

    #[test]
    fn non_resident_pages_filters() {
        let mut pt = PageTable::new();
        pt.map(VirtPage(0), Frame(0), true);
        pt.map(VirtPage(5), Frame(1), true);
        let pages = non_resident_pages(ChunkId(0), &pt);
        assert_eq!(pages.len(), 14);
        assert!(!pages.contains(&VirtPage(0)));
        assert!(!pages.contains(&VirtPage(5)));
        assert!(pages.contains(&VirtPage(1)));
    }
}
