//! CLOCK (second-chance) eviction — an OS-classic baseline (extension;
//! not evaluated in the paper).
//!
//! Chunks sit on a circular list with a reference bit. The hand sweeps:
//! a set bit buys the chunk a second chance (bit cleared), a clear bit
//! makes it the victim. In this driver-side setting the reference bit is
//! set on (re-)migration and on demand faults that hit a resident
//! chunk's siblings — the driver-visible events, mirroring how the LRU
//! baseline only sees migrations.

use super::EvictPolicy;
use crate::chain::ChunkChain;
use gmmu::types::{ChunkId, VirtPage};
use sim_core::{FxHashMap, FxHashSet};

/// CLOCK over resident chunks.
#[derive(Debug, Default)]
pub struct ClockPolicy {
    /// Reference bits; chunks absent from the map are treated as clear.
    refs: FxHashMap<ChunkId, bool>,
    /// Circular order (we reuse the chain's LRU→MRU order and keep our
    /// own hand position as an index into that order).
    hand: usize,
}

impl ClockPolicy {
    /// New CLOCK policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl EvictPolicy for ClockPolicy {
    fn name(&self) -> &'static str {
        "clock"
    }

    fn on_migrate(&mut self, _chain: &mut ChunkChain, chunk: ChunkId, _pages: u32, _interval: u64) {
        self.refs.insert(chunk, true);
    }

    fn on_fault(&mut self, page: VirtPage) {
        // A fault near a resident chunk re-references it (the chunk the
        // page belongs to may be partially resident).
        if let Some(bit) = self.refs.get_mut(&page.chunk()) {
            *bit = true;
        }
    }

    fn select_victim(
        &mut self,
        chain: &ChunkChain,
        _interval: u64,
        exclude: &FxHashSet<ChunkId>,
    ) -> Option<ChunkId> {
        let order: Vec<ChunkId> = chain.iter_lru().collect();
        if order.is_empty() {
            return None;
        }
        // Sweep at most two full turns: the first clears bits, the
        // second is then guaranteed to find a clear-bit victim among
        // the non-excluded chunks (if any exist).
        let n = order.len();
        let mut swept = 0;
        while swept < 2 * n {
            let idx = self.hand % n;
            let chunk = order[idx];
            self.hand = (self.hand + 1) % n;
            swept += 1;
            if exclude.contains(&chunk) {
                continue;
            }
            let bit = self.refs.entry(chunk).or_insert(false);
            if *bit {
                *bit = false;
            } else {
                return Some(chunk);
            }
        }
        order.into_iter().find(|c| !exclude.contains(c))
    }

    fn candidate_set(
        &self,
        chain: &ChunkChain,
        _interval: u64,
        exclude: &FxHashSet<ChunkId>,
        limit: usize,
    ) -> Vec<ChunkId> {
        // The inspection window of the next sweep: chunks in circular
        // order starting at the hand. Read-only — the preview must not
        // advance the hand or clear reference bits.
        let order: Vec<ChunkId> = chain.iter_lru().collect();
        if order.is_empty() {
            return Vec::new();
        }
        let n = order.len();
        (0..n)
            .map(|i| order[(self.hand + i) % n])
            .filter(|c| !exclude.contains(c))
            .take(limit)
            .collect()
    }

    fn on_evict(&mut self, chunk: ChunkId, _untouch: u32) {
        self.refs.remove(&chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_of(n: u64) -> ChunkChain {
        let mut ch = ChunkChain::new();
        for i in 0..n {
            ch.insert_tail(ChunkId(i), 0);
        }
        ch
    }

    fn migrate_all(p: &mut ClockPolicy, ch: &mut ChunkChain, n: u64) {
        for i in 0..n {
            p.on_migrate(ch, ChunkId(i), 16, 0);
        }
    }

    #[test]
    fn first_sweep_clears_then_evicts_oldest() {
        let mut ch = chain_of(3);
        let mut p = ClockPolicy::new();
        migrate_all(&mut p, &mut ch, 3);
        // All bits set → first sweep clears 0,1,2 then returns 0.
        let v = p.select_victim(&ch, 0, &FxHashSet::default());
        assert_eq!(v, Some(ChunkId(0)));
    }

    #[test]
    fn referenced_chunk_gets_second_chance() {
        let mut ch = chain_of(3);
        let mut p = ClockPolicy::new();
        migrate_all(&mut p, &mut ch, 3);
        let _ = p.select_victim(&ch, 0, &FxHashSet::default()); // clears all, picks 0
                                                                // Re-reference chunk 1 via a fault on one of its pages.
        p.on_fault(ChunkId(1).first_page());
        let v = p.select_victim(&ch, 0, &FxHashSet::default());
        // Hand continues from position 1: chunk 1 has its bit set again
        // (second chance), chunk 2's bit is clear → victim 2.
        assert_eq!(v, Some(ChunkId(2)));
    }

    #[test]
    fn respects_exclusion() {
        let mut ch = chain_of(2);
        let mut p = ClockPolicy::new();
        migrate_all(&mut p, &mut ch, 2);
        let mut ex = FxHashSet::default();
        ex.insert(ChunkId(0));
        let v = p.select_victim(&ch, 0, &ex);
        assert_eq!(v, Some(ChunkId(1)));
    }

    #[test]
    fn empty_chain_gives_none() {
        let mut p = ClockPolicy::new();
        assert_eq!(
            p.select_victim(&ChunkChain::new(), 0, &FxHashSet::default()),
            None
        );
    }

    #[test]
    fn eviction_clears_state() {
        let mut ch = chain_of(2);
        let mut p = ClockPolicy::new();
        migrate_all(&mut p, &mut ch, 2);
        p.on_evict(ChunkId(0), 0);
        assert!(!p.refs.contains_key(&ChunkId(0)));
    }
}
