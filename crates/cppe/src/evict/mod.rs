//! Eviction (page replacement) policies.
//!
//! Every policy operates on the shared [`ChunkChain`] and selects
//! *chunks* as eviction victims — the prefetch-semantics-aware
//! pre-eviction granularity of Ganguly et al. that the paper's baseline
//! and CPPE both use ("pre-evicts contiguous pages in bulk the way they
//! were brought in by the prefetcher").
//!
//! Implemented policies:
//!
//! | Policy | Paper role |
//! |---|---|
//! | [`LruPolicy`](lru::LruPolicy) | baseline (with sequential-local prefetcher) |
//! | [`RandomPolicy`](random::RandomPolicy) | comparison point (Fig. 3, Fig. 9) |
//! | [`ReservedLruPolicy`](reserved_lru::ReservedLruPolicy) | Ganguly et al.'s reserved LRU (Fig. 3, Fig. 9) |
//! | [`HpePolicy`](hpe::HpePolicy) | prior work, counter-based (motivation §III) |
//! | [`MhpePolicy`](mhpe::MhpePolicy) | the paper's modified HPE (§IV-B) |
//! | [`ClockPolicy`](clock::ClockPolicy) | extension: OS-classic second chance |
//! | [`SrripPolicy`](rrip::SrripPolicy) | extension: chunk-level SRRIP (paper ref \[13\]) |

pub mod clock;
pub mod hpe;
pub mod lru;
pub mod mhpe;
pub mod random;
pub mod reserved_lru;
pub mod rrip;

use crate::chain::ChunkChain;
use gmmu::types::{ChunkId, VirtPage};
use sim_core::FxHashSet;

/// Where a newly migrated chunk enters the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertAt {
    /// MRU position (the default for fresh migrations).
    Tail,
    /// LRU position — MHPE parks wrongly evicted chunks here so the MRU
    /// victim window cannot thrash them again.
    Head,
}

/// MHPE's runtime trace, surfaced for Tables III/IV and the sensitivity
/// studies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MhpeTrace {
    /// Per-interval (since memory full) total untouch level — U1 history.
    pub interval_untouch: Vec<u32>,
    /// Forward distance at each interval boundary.
    pub fd_trace: Vec<usize>,
    /// Interval (1-based) at which MHPE switched MRU→LRU, if it did.
    pub switched_at: Option<u64>,
}

impl MhpeTrace {
    /// Max per-interval untouch level over the first four intervals
    /// (Table III's statistic).
    #[must_use]
    pub fn max_untouch_first4(&self) -> u32 {
        self.interval_untouch
            .iter()
            .take(4)
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Total untouch level over the first four intervals (Table IV).
    #[must_use]
    pub fn total_untouch_first4(&self) -> u32 {
        self.interval_untouch.iter().take(4).sum()
    }
}

/// A chunk-granularity eviction policy.
///
/// The [`PolicyEngine`](crate::engine::PolicyEngine) drives the policy
/// through these hooks; the engine owns the chain and performs the
/// actual structural updates, asking the policy only for decisions.
pub trait EvictPolicy: Send {
    /// Short stable identifier used in reports ("lru", "mhpe", ...).
    fn name(&self) -> &'static str;

    /// GPU memory filled to capacity for the first time. `chain` holds
    /// every resident chunk; policies size their auxiliary structures
    /// (forward distance, wrong-eviction buffer) from its length.
    fn on_memory_full(&mut self, chain: &ChunkChain) {
        let _ = chain;
    }

    /// A demand fault on `page` was observed (before any migration).
    /// Policies with wrong-eviction buffers probe them here.
    fn on_fault(&mut self, page: VirtPage) {
        let _ = page;
    }

    /// Chain position for the chunk about to be (re-)inserted.
    fn insert_position(&mut self, chunk: ChunkId) -> InsertAt {
        let _ = chunk;
        InsertAt::Tail
    }

    /// `pages` pages of `chunk` were migrated to the GPU. The engine has
    /// already placed the chunk in the chain; HPE uses this hook to
    /// maintain its touch counters (which prefetch *pollutes* — the
    /// paper's Inefficiency 1 reproduces through this hook).
    fn on_migrate(&mut self, chain: &mut ChunkChain, chunk: ChunkId, pages: u32, interval: u64) {
        let _ = (chain, chunk, pages, interval);
    }

    /// Select the next victim chunk, never one of the `exclude`d chunks
    /// (their migration is in flight in the current fault batch — the
    /// driver pins them). Called only when memory is full.
    fn select_victim(
        &mut self,
        chain: &ChunkChain,
        interval: u64,
        exclude: &FxHashSet<ChunkId>,
    ) -> Option<ChunkId>;

    /// Non-mutating preview of the candidate window the next
    /// [`EvictPolicy::select_victim`] call would draw from, in
    /// consideration order, capped at `limit`. Consumed by the decision
    /// audit layer for eviction provenance.
    ///
    /// Implementations MUST NOT mutate policy state (advance RNGs,
    /// move clock hands, age RRPVs, pop buffers): the preview runs just
    /// before the real selection, and auditing must never change what
    /// gets selected. The default is the LRU-first window — correct for
    /// plain LRU and a reasonable fallback for recency policies.
    fn candidate_set(
        &self,
        chain: &ChunkChain,
        interval: u64,
        exclude: &FxHashSet<ChunkId>,
        limit: usize,
    ) -> Vec<ChunkId> {
        let _ = interval;
        chain
            .iter_lru()
            .filter(|c| !exclude.contains(c))
            .take(limit)
            .collect()
    }

    /// `chunk` was evicted; `untouch` is its untouch level (resident
    /// pages that were never touched — read from the page-table access
    /// bits at eviction time).
    fn on_evict(&mut self, chunk: ChunkId, untouch: u32) {
        let _ = (chunk, untouch);
    }

    /// An interval (64 migrated pages) completed. `k` counts completed
    /// intervals since memory filled, starting at 1.
    fn on_interval(&mut self, k: u64) {
        let _ = k;
    }

    /// Wrong evictions recorded so far (0 for policies without a buffer).
    fn wrong_evictions(&self) -> u64 {
        0
    }

    /// High-water mark of the policy's auxiliary buffer (overhead
    /// analysis, §VI-C). 0 for buffer-less policies.
    fn aux_buffer_max_len(&self) -> usize {
        0
    }

    /// MHPE's runtime trace; `None` for every other policy.
    fn mhpe_trace(&self) -> Option<MhpeTrace> {
        None
    }
}
