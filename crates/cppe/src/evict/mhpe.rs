//! MHPE — Modified Hierarchical Page Eviction (paper §IV-B, Algorithm 1).
//!
//! MHPE makes HPE compatible with page prefetching by replacing the
//! (prefetch-polluted) touch counters with the **untouch level** of
//! evicted chunks, read from the page-table access bits at eviction.
//!
//! * Starts with the **MRU** strategy and an initial forward distance of
//!   `clamp(chain_len / 100, 2, 8)`.
//! * Switches permanently to **LRU** when the per-interval untouch level
//!   `U1 ≥ T1` (default 32), or — checked once, at the fourth interval —
//!   when the cumulative first-four-intervals level `U2 ≥ T2` (default 40).
//! * While on MRU, after each interval the forward distance grows by
//!   `max(bucket(U1), W)` where `W` is the interval's wrong-eviction
//!   count and `bucket` quantizes `U1 ∈ [0, T1)` into five values
//!   (§VI-A: `[0-3]→0, [4-10]→1, [11-17]→2, [18-24]→3, [25-31]→4`);
//!   growth stops once the distance exceeds `T3` (default 32).
//! * Wrongly evicted chunks (a fault hits the evicted-chunk buffer) are
//!   re-inserted at the **head** of the chain — the LRU position —
//!   keeping them out of the MRU victim window.

use super::{EvictPolicy, InsertAt, MhpeTrace};
use crate::chain::ChunkChain;
use crate::evicted_buffer::{mhpe_buffer_len, EvictedBuffer};
use gmmu::types::{ChunkId, VirtPage};
use sim_core::FxHashSet;

/// Eviction strategy MHPE is currently using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Evict from the MRU end of the old partition (plus forward distance).
    Mru,
    /// Evict from the LRU end of the old partition. Terminal: MHPE never
    /// switches back (unlike HPE).
    Lru,
}

/// MHPE tuning knobs. Defaults are the values the paper selects in the
/// §VI-A sensitivity study.
#[derive(Debug, Clone, Copy)]
pub struct MhpeConfig {
    /// First switch threshold on per-interval untouch level (paper: 32).
    pub t1: u32,
    /// Second switch threshold on the first-four-intervals total (paper: 40).
    pub t2: u32,
    /// Forward-distance growth limit (paper: 32).
    pub t3: usize,
    /// Range the initial forward distance is clamped into (paper: 2..=8).
    pub initial_fd_range: (usize, usize),
    /// Chain-length divisor for the initial forward distance (paper: 100).
    pub initial_fd_divisor: usize,
    /// Override: pin the forward distance (sensitivity studies, §IV-B).
    pub fixed_fd: Option<usize>,
    /// Disable the MRU→LRU switch (used when collecting Tables III/IV,
    /// where every run must stay on MRU to measure untouch levels).
    pub disable_switch: bool,
}

impl Default for MhpeConfig {
    fn default() -> Self {
        MhpeConfig {
            t1: 32,
            t2: 40,
            t3: 32,
            initial_fd_range: (2, 8),
            initial_fd_divisor: 100,
            fixed_fd: None,
            disable_switch: false,
        }
    }
}

/// Quantize a per-interval untouch level `u1 < t1` into the 0..=4 scale
/// the forward-distance adjustment uses. The five ranges partition
/// `[0, t1)` the way §VI-A describes for `t1 = 32`.
#[must_use]
pub fn untouch_bucket(u1: u32, t1: u32) -> u32 {
    debug_assert!(u1 < t1);
    if t1 == 32 {
        // Exactly the paper's split (§VI-A): [0-3]→0, [4-10]→1,
        // [11-17]→2, [18-24]→3, [25-31]→4.
        return match u1 {
            0..=3 => 0,
            4..=10 => 1,
            11..=17 => 2,
            18..=24 => 3,
            _ => 4,
        };
    }
    // Generalized equal split for non-default T1 (sensitivity studies).
    if t1 < 5 {
        return u1.min(4);
    }
    let width = t1.div_ceil(5);
    (u1 / width).min(4)
}

/// The MHPE policy.
#[derive(Debug)]
pub struct MhpePolicy {
    cfg: MhpeConfig,
    strategy: Strategy,
    forward_distance: usize,
    memory_full: bool,
    /// Completed intervals since memory filled.
    intervals_done: u64,
    /// U1: untouch accumulated in the current interval.
    u1: u32,
    /// U2: untouch accumulated over the first four intervals.
    u2: u32,
    /// W: wrong evictions in the current interval.
    w: u32,
    buffer: Option<EvictedBuffer>,
    /// Chunks that must re-enter the chain at the head.
    wrong_marks: FxHashSet<ChunkId>,
    total_wrong: u64,
    /// Per-interval U1 history (drives Tables III and IV).
    pub interval_untouch: Vec<u32>,
    /// Forward-distance value at each interval boundary (diagnostics).
    pub fd_trace: Vec<usize>,
    /// Interval index (1-based, since full) at which MHPE switched to
    /// LRU, if it did.
    pub switched_at: Option<u64>,
}

impl MhpePolicy {
    /// MHPE with paper-default thresholds.
    #[must_use]
    pub fn new() -> Self {
        Self::with_config(MhpeConfig::default())
    }

    /// MHPE with explicit configuration.
    #[must_use]
    pub fn with_config(cfg: MhpeConfig) -> Self {
        MhpePolicy {
            cfg,
            strategy: Strategy::Mru,
            forward_distance: cfg.fixed_fd.unwrap_or(cfg.initial_fd_range.0),
            memory_full: false,
            intervals_done: 0,
            u1: 0,
            u2: 0,
            w: 0,
            buffer: None,
            wrong_marks: FxHashSet::default(),
            total_wrong: 0,
            interval_untouch: Vec::new(),
            fd_trace: Vec::new(),
            switched_at: None,
        }
    }

    /// Current strategy.
    #[must_use]
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Current forward distance.
    #[must_use]
    pub fn forward_distance(&self) -> usize {
        self.forward_distance
    }

    fn initial_fd(&self, chain_len: usize) -> usize {
        if let Some(fd) = self.cfg.fixed_fd {
            return fd;
        }
        let (lo, hi) = self.cfg.initial_fd_range;
        (chain_len / self.cfg.initial_fd_divisor).clamp(lo, hi)
    }
}

impl Default for MhpePolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl EvictPolicy for MhpePolicy {
    fn name(&self) -> &'static str {
        "mhpe"
    }

    fn on_memory_full(&mut self, chain: &ChunkChain) {
        if self.memory_full {
            return;
        }
        self.memory_full = true;
        // Algorithm 1, line 7: calculate the initial forward distance.
        self.forward_distance = self.initial_fd(chain.len());
        self.buffer = Some(EvictedBuffer::new(mhpe_buffer_len(chain.len())));
    }

    fn on_fault(&mut self, page: VirtPage) {
        let chunk = page.chunk();
        if let Some(buf) = &mut self.buffer {
            if buf.take(chunk) {
                self.w += 1;
                self.total_wrong += 1;
                self.wrong_marks.insert(chunk);
            }
        }
    }

    fn insert_position(&mut self, chunk: ChunkId) -> InsertAt {
        if self.wrong_marks.remove(&chunk) {
            InsertAt::Head
        } else {
            InsertAt::Tail
        }
    }

    fn select_victim(
        &mut self,
        chain: &ChunkChain,
        interval: u64,
        exclude: &FxHashSet<ChunkId>,
    ) -> Option<ChunkId> {
        match self.strategy {
            Strategy::Mru => chain.select_mru_old(self.forward_distance, interval, exclude),
            Strategy::Lru => chain.select_lru_old(interval, exclude),
        }
    }

    fn candidate_set(
        &self,
        chain: &ChunkChain,
        interval: u64,
        exclude: &FxHashSet<ChunkId>,
        limit: usize,
    ) -> Vec<ChunkId> {
        // The old-partition window the active strategy draws from: MRU
        // order past the forward distance, or LRU order. Falls back to
        // the whole chain when the old partition is empty (mirroring
        // select_mru_old / select_lru_old). Read-only preview.
        let win: Vec<ChunkId> = match self.strategy {
            Strategy::Mru => chain
                .iter_mru_entries()
                .filter(|e| {
                    !exclude.contains(&e.chunk)
                        && crate::chain::partition_of(e.last_ref_interval, interval)
                            == crate::chain::Partition::Old
                })
                .skip(self.forward_distance)
                .map(|e| e.chunk)
                .take(limit)
                .collect(),
            Strategy::Lru => chain
                .iter_lru_entries()
                .filter(|e| {
                    !exclude.contains(&e.chunk)
                        && crate::chain::partition_of(e.last_ref_interval, interval)
                            == crate::chain::Partition::Old
                })
                .map(|e| e.chunk)
                .take(limit)
                .collect(),
        };
        if win.is_empty() {
            chain
                .iter_lru()
                .filter(|c| !exclude.contains(c))
                .take(limit)
                .collect()
        } else {
            win
        }
    }

    fn on_evict(&mut self, chunk: ChunkId, untouch: u32) {
        self.u1 += untouch;
        if self.intervals_done < 4 {
            self.u2 += untouch;
        }
        if let Some(buf) = &mut self.buffer {
            buf.push(chunk);
        }
    }

    fn on_interval(&mut self, k: u64) {
        self.intervals_done = k;
        self.interval_untouch.push(self.u1);
        self.fd_trace.push(self.forward_distance);

        if self.strategy == Strategy::Mru && !self.cfg.disable_switch {
            // Algorithm 1, line 11: the two switch conditions. U2 is
            // compared to T2 only once, at the fourth interval.
            let cond1 = self.u1 >= self.cfg.t1;
            let cond2 = k == 4 && self.u2 >= self.cfg.t2;
            if cond1 || cond2 {
                self.strategy = Strategy::Lru;
                self.switched_at = Some(k);
            }
        }
        if self.strategy == Strategy::Mru && self.cfg.fixed_fd.is_none() {
            // Algorithm 1, lines 14-15: grow the forward distance by
            // max(bucket(U1), W), but only while fd <= T3.
            if self.forward_distance <= self.cfg.t3 {
                let adj = if self.u1 < self.cfg.t1 {
                    untouch_bucket(self.u1, self.cfg.t1).max(self.w)
                } else {
                    self.w
                };
                self.forward_distance += adj as usize;
            }
        }
        self.u1 = 0;
        self.w = 0;
    }

    fn wrong_evictions(&self) -> u64 {
        self.total_wrong
    }

    fn aux_buffer_max_len(&self) -> usize {
        self.buffer.as_ref().map_or(0, |b| b.max_len)
    }

    fn mhpe_trace(&self) -> Option<MhpeTrace> {
        Some(MhpeTrace {
            interval_untouch: self.interval_untouch.clone(),
            fd_trace: self.fd_trace.clone(),
            switched_at: self.switched_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_chain(n: u64, interval: u64) -> ChunkChain {
        let mut ch = ChunkChain::new();
        for i in 0..n {
            ch.insert_tail(ChunkId(i), interval);
        }
        ch
    }

    #[test]
    fn starts_with_mru() {
        let p = MhpePolicy::new();
        assert_eq!(p.strategy(), Strategy::Mru);
    }

    #[test]
    fn initial_fd_clamped_to_2_8() {
        let mut p = MhpePolicy::new();
        p.on_memory_full(&full_chain(50, 0)); // 50/100 = 0 → clamp to 2
        assert_eq!(p.forward_distance(), 2);

        let mut p = MhpePolicy::new();
        p.on_memory_full(&full_chain(500, 0)); // 500/100 = 5
        assert_eq!(p.forward_distance(), 5);

        let mut p = MhpePolicy::new();
        p.on_memory_full(&full_chain(2000, 0)); // 2000/100 = 20 → clamp to 8
        assert_eq!(p.forward_distance(), 8);
    }

    #[test]
    fn memory_full_is_idempotent() {
        let mut p = MhpePolicy::new();
        p.on_memory_full(&full_chain(500, 0));
        let fd = p.forward_distance();
        p.on_memory_full(&full_chain(2000, 0));
        assert_eq!(p.forward_distance(), fd);
    }

    #[test]
    fn mru_selects_forward_of_mru_old() {
        let mut p = MhpePolicy::new();
        // 300 chunks, all old (interval 0), current interval 2.
        let ch = full_chain(300, 0);
        p.on_memory_full(&ch); // fd = 3
        assert_eq!(p.forward_distance(), 3);
        // MRU-most old chunk is 299; skip 3 → 296.
        assert_eq!(
            p.select_victim(&ch, 2, &FxHashSet::default()),
            Some(ChunkId(296))
        );
    }

    #[test]
    fn switches_to_lru_when_u1_exceeds_t1() {
        let mut p = MhpePolicy::new();
        p.on_memory_full(&full_chain(300, 0));
        // Four evictions with untouch level 8 each → U1 = 32 = T1.
        for i in 0..4 {
            p.on_evict(ChunkId(i), 8);
        }
        p.on_interval(1);
        assert_eq!(p.strategy(), Strategy::Lru);
        assert_eq!(p.switched_at, Some(1));
    }

    #[test]
    fn switches_to_lru_via_t2_at_fourth_interval() {
        let mut p = MhpePolicy::new();
        p.on_memory_full(&full_chain(300, 0));
        // 10+10+10+10 = 40 = T2 over four intervals; each interval's
        // U1 = 10 stays below T1 = 32.
        for k in 1..=4 {
            p.on_evict(ChunkId(k), 10);
            p.on_interval(k);
        }
        assert_eq!(p.strategy(), Strategy::Lru);
        assert_eq!(p.switched_at, Some(4));
    }

    #[test]
    fn t2_not_checked_before_or_after_fourth_interval() {
        let mut p = MhpePolicy::new();
        p.on_memory_full(&full_chain(300, 0));
        // U2 = 39 < 40 by interval 4; then more untouch later must not
        // trigger the T2 condition.
        for k in 1..=3 {
            p.on_evict(ChunkId(k), 13);
            p.on_interval(k);
        }
        p.on_interval(4); // U2 = 39
        assert_eq!(p.strategy(), Strategy::Mru);
        p.on_evict(ChunkId(9), 31);
        p.on_interval(5); // U1 = 31 < T1; U2 no longer checked
        assert_eq!(p.strategy(), Strategy::Mru);
    }

    #[test]
    fn switch_is_permanent() {
        let mut p = MhpePolicy::new();
        p.on_memory_full(&full_chain(300, 0));
        for i in 0..4 {
            p.on_evict(ChunkId(i), 8);
        }
        p.on_interval(1);
        assert_eq!(p.strategy(), Strategy::Lru);
        // Quiet intervals follow; MHPE must not switch back (unlike HPE).
        for k in 2..10 {
            p.on_interval(k);
        }
        assert_eq!(p.strategy(), Strategy::Lru);
    }

    #[test]
    fn forward_distance_grows_by_bucket() {
        let mut p = MhpePolicy::new();
        p.on_memory_full(&full_chain(300, 0)); // fd = 3
        p.on_evict(ChunkId(0), 12); // U1 = 12 → bucket [11-17] = 2
        p.on_interval(1);
        assert_eq!(p.forward_distance(), 5);
    }

    #[test]
    fn forward_distance_uses_max_of_untouch_and_wrong() {
        let mut p = MhpePolicy::new();
        p.on_memory_full(&full_chain(300, 0)); // fd = 3
                                               // Wrong evictions: evict then fault on the same chunk, 3 times.
        for i in 0..3u64 {
            p.on_evict(ChunkId(i), 0);
            p.on_fault(ChunkId(i).first_page());
        }
        p.on_interval(1); // U1 bucket = 0, W = 3 → max = 3
        assert_eq!(p.forward_distance(), 6);
    }

    #[test]
    fn forward_distance_capped_by_t3() {
        let mut p = MhpePolicy::with_config(MhpeConfig {
            t3: 6,
            ..MhpeConfig::default()
        });
        p.on_memory_full(&full_chain(300, 0)); // fd = 3
        for k in 1..20 {
            p.on_evict(ChunkId(k), 25); // bucket 4, below T1? 25<32 yes
            p.on_interval(k);
        }
        // fd grows by 4 per interval while fd <= 6: 3 → 7, then frozen.
        assert_eq!(p.forward_distance(), 7);
    }

    #[test]
    fn fixed_fd_never_adjusts() {
        let mut p = MhpePolicy::with_config(MhpeConfig {
            fixed_fd: Some(5),
            ..MhpeConfig::default()
        });
        p.on_memory_full(&full_chain(300, 0));
        assert_eq!(p.forward_distance(), 5);
        p.on_evict(ChunkId(0), 20);
        p.on_interval(1);
        assert_eq!(p.forward_distance(), 5);
    }

    #[test]
    fn disable_switch_pins_mru() {
        let mut p = MhpePolicy::with_config(MhpeConfig {
            disable_switch: true,
            ..MhpeConfig::default()
        });
        p.on_memory_full(&full_chain(300, 0));
        for i in 0..4 {
            p.on_evict(ChunkId(i), 16);
        }
        p.on_interval(1);
        assert_eq!(p.strategy(), Strategy::Mru);
    }

    #[test]
    fn wrong_eviction_reinserts_at_head() {
        let mut p = MhpePolicy::new();
        p.on_memory_full(&full_chain(300, 0));
        p.on_evict(ChunkId(7), 0);
        // Fault on a page of the evicted chunk → wrong eviction.
        p.on_fault(ChunkId(7).page(3));
        assert_eq!(p.wrong_evictions(), 1);
        assert_eq!(p.insert_position(ChunkId(7)), InsertAt::Head);
        // Mark is consumed: the next migration of the same chunk is normal.
        assert_eq!(p.insert_position(ChunkId(7)), InsertAt::Tail);
        // Unrelated chunks go to the tail.
        assert_eq!(p.insert_position(ChunkId(8)), InsertAt::Tail);
    }

    #[test]
    fn wrong_eviction_counted_once_per_chunk_episode() {
        let mut p = MhpePolicy::new();
        p.on_memory_full(&full_chain(300, 0));
        p.on_evict(ChunkId(7), 0);
        p.on_fault(ChunkId(7).page(0));
        p.on_fault(ChunkId(7).page(1)); // same episode, already consumed
        assert_eq!(p.wrong_evictions(), 1);
    }

    #[test]
    fn lru_mode_selects_lru_old() {
        let mut p = MhpePolicy::new();
        let mut ch = ChunkChain::new();
        for i in 0..10 {
            ch.insert_tail(ChunkId(i), 0);
        }
        ch.insert_tail(ChunkId(100), 5);
        p.on_memory_full(&ch);
        for i in 0..4 {
            p.on_evict(ChunkId(i), 16);
        }
        p.on_interval(1); // switch to LRU
        assert_eq!(
            p.select_victim(&ch, 5, &FxHashSet::default()),
            Some(ChunkId(0))
        );
    }

    #[test]
    fn interval_untouch_trace_records_per_interval_sums() {
        let mut p = MhpePolicy::new();
        p.on_memory_full(&full_chain(300, 0));
        p.on_evict(ChunkId(0), 5);
        p.on_evict(ChunkId(1), 6);
        p.on_interval(1);
        p.on_evict(ChunkId(2), 1);
        p.on_interval(2);
        assert_eq!(p.interval_untouch, vec![11, 1]);
    }

    #[test]
    fn bucket_ranges_match_paper() {
        // §VI-A: [0-3]→0, [4-10]→1, [11-17]→2, [18-24]→3, [25-31]→4.
        assert_eq!(untouch_bucket(0, 32), 0);
        assert_eq!(untouch_bucket(3, 32), 0);
        assert_eq!(untouch_bucket(4, 32), 1);
        assert_eq!(untouch_bucket(10, 32), 1);
        assert_eq!(untouch_bucket(11, 32), 2);
        assert_eq!(untouch_bucket(17, 32), 2);
        assert_eq!(untouch_bucket(18, 32), 3);
        assert_eq!(untouch_bucket(24, 32), 3);
        assert_eq!(untouch_bucket(25, 32), 4);
        assert_eq!(untouch_bucket(31, 32), 4);
        // Generalized split stays within the 0..=4 scale.
        for u in 0..20 {
            assert!(untouch_bucket(u, 20) <= 4);
        }
    }
}
