//! Random eviction.
//!
//! Zheng et al. evaluated Random next to LRU for oversubscribed GPU
//! memory; the paper uses it as a comparison point in Figs. 3 and 9
//! (notably, Random *beats* reserved LRU on several thrashing apps).
//! Deterministic via the workspace PRNG so figures are reproducible.

use super::EvictPolicy;
use crate::chain::ChunkChain;
use gmmu::types::ChunkId;
use sim_core::rng::Xoshiro256ss;
use sim_core::FxHashSet;

/// Uniformly random victim selection over resident chunks.
#[derive(Debug)]
pub struct RandomPolicy {
    rng: Xoshiro256ss,
}

impl RandomPolicy {
    /// New policy with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: Xoshiro256ss::new(seed),
        }
    }
}

impl EvictPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select_victim(
        &mut self,
        chain: &ChunkChain,
        _interval: u64,
        exclude: &FxHashSet<ChunkId>,
    ) -> Option<ChunkId> {
        let len = chain.len().saturating_sub(exclude.len());
        if len == 0 {
            return None;
        }
        let pos = self.rng.gen_range(len as u64) as usize;
        chain.nth_from_lru(pos, exclude)
    }

    fn candidate_set(
        &self,
        chain: &ChunkChain,
        _interval: u64,
        exclude: &FxHashSet<ChunkId>,
        limit: usize,
    ) -> Vec<ChunkId> {
        // Any non-excluded chunk is equally likely; report the window in
        // LRU order. Must not touch the RNG — the preview would shift
        // the subsequent real draw.
        chain
            .iter_lru()
            .filter(|c| !exclude.contains(c))
            .take(limit)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: u64) -> ChunkChain {
        let mut ch = ChunkChain::new();
        for i in 0..n {
            ch.insert_tail(ChunkId(i), 0);
        }
        ch
    }

    #[test]
    fn picks_only_resident_chunks() {
        let mut p = RandomPolicy::new(1);
        let ch = chain(16);
        for _ in 0..200 {
            let v = p.select_victim(&ch, 0, &FxHashSet::default()).unwrap();
            assert!(v.0 < 16);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ch = chain(64);
        let picks = |seed| {
            let mut p = RandomPolicy::new(seed);
            (0..20)
                .map(|_| p.select_victim(&ch, 0, &FxHashSet::default()).unwrap().0)
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8));
    }

    #[test]
    fn covers_the_whole_chain() {
        let mut p = RandomPolicy::new(3);
        let ch = chain(8);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[p.select_victim(&ch, 0, &FxHashSet::default()).unwrap().0 as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all chunks should be selectable");
    }

    #[test]
    fn empty_chain_gives_none() {
        let mut p = RandomPolicy::new(0);
        assert_eq!(
            p.select_victim(&ChunkChain::new(), 0, &FxHashSet::default()),
            None
        );
    }
}
