//! SRRIP at chunk granularity — Static Re-Reference Interval Prediction
//! (Jaleel et al., ISCA'10; the paper cites RRIP as the classic CPU
//! answer to LRU's thrashing problem — reference \[13\]). Extension; not
//! evaluated in the paper.
//!
//! Each chunk carries a re-reference prediction value (RRPV) in
//! `0..=MAX`. New chunks insert at `MAX - 1` ("long" re-reference
//! interval — the anti-thrash bias), re-references promote to 0, and the
//! victim is any chunk at `MAX`, aging everyone when none exists.

use super::EvictPolicy;
use crate::chain::ChunkChain;
use gmmu::types::{ChunkId, VirtPage};
use sim_core::{FxHashMap, FxHashSet};

/// Maximum RRPV (2-bit RRIP, as in the paper's reference).
pub const MAX_RRPV: u8 = 3;

/// Chunk-granularity SRRIP.
#[derive(Debug, Default)]
pub struct SrripPolicy {
    rrpv: FxHashMap<ChunkId, u8>,
}

impl SrripPolicy {
    /// New SRRIP policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current RRPV of a chunk (tests/diagnostics).
    #[must_use]
    pub fn rrpv(&self, chunk: ChunkId) -> Option<u8> {
        self.rrpv.get(&chunk).copied()
    }
}

impl EvictPolicy for SrripPolicy {
    fn name(&self) -> &'static str {
        "srrip"
    }

    fn on_migrate(&mut self, _chain: &mut ChunkChain, chunk: ChunkId, _pages: u32, _interval: u64) {
        // Re-migration counts as a re-reference; fresh chunks insert at
        // the long interval.
        let e = self.rrpv.entry(chunk).or_insert(MAX_RRPV - 1);
        if *e != MAX_RRPV - 1 {
            *e = 0;
        }
    }

    fn on_fault(&mut self, page: VirtPage) {
        if let Some(v) = self.rrpv.get_mut(&page.chunk()) {
            *v = 0;
        }
    }

    fn select_victim(
        &mut self,
        chain: &ChunkChain,
        _interval: u64,
        exclude: &FxHashSet<ChunkId>,
    ) -> Option<ChunkId> {
        let candidates: Vec<ChunkId> = chain.iter_lru().filter(|c| !exclude.contains(c)).collect();
        if candidates.is_empty() {
            return None;
        }
        loop {
            // Oldest (LRU-most) chunk at MAX_RRPV wins; otherwise age.
            if let Some(&victim) = candidates
                .iter()
                .find(|c| self.rrpv.get(c).copied().unwrap_or(MAX_RRPV) >= MAX_RRPV)
            {
                return Some(victim);
            }
            for c in &candidates {
                let v = self.rrpv.entry(*c).or_insert(MAX_RRPV);
                *v = v.saturating_add(1).min(MAX_RRPV);
            }
        }
    }

    fn candidate_set(
        &self,
        chain: &ChunkChain,
        _interval: u64,
        exclude: &FxHashSet<ChunkId>,
        limit: usize,
    ) -> Vec<ChunkId> {
        // The chunks at the currently highest RRPV — the set the next
        // selection resolves to after its (state-mutating) aging rounds,
        // computed here without aging anything.
        let candidates: Vec<ChunkId> = chain.iter_lru().filter(|c| !exclude.contains(c)).collect();
        let Some(worst) = candidates
            .iter()
            .map(|c| self.rrpv.get(c).copied().unwrap_or(MAX_RRPV))
            .max()
        else {
            return Vec::new();
        };
        candidates
            .into_iter()
            .filter(|c| self.rrpv.get(c).copied().unwrap_or(MAX_RRPV) == worst)
            .take(limit)
            .collect()
    }

    fn on_evict(&mut self, chunk: ChunkId, _untouch: u32) {
        self.rrpv.remove(&chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: u64) -> (SrripPolicy, ChunkChain) {
        let mut ch = ChunkChain::new();
        let mut p = SrripPolicy::new();
        for i in 0..n {
            ch.insert_tail(ChunkId(i), 0);
            p.on_migrate(&mut ch, ChunkId(i), 16, 0);
        }
        (p, ch)
    }

    #[test]
    fn fresh_chunks_insert_at_long_interval() {
        let (p, _) = setup(2);
        assert_eq!(p.rrpv(ChunkId(0)), Some(MAX_RRPV - 1));
    }

    #[test]
    fn aging_finds_a_victim() {
        let (mut p, ch) = setup(3);
        // Nobody at MAX yet → one aging round promotes all to MAX, the
        // LRU-most (0) wins.
        let v = p.select_victim(&ch, 0, &FxHashSet::default());
        assert_eq!(v, Some(ChunkId(0)));
    }

    #[test]
    fn re_referenced_chunk_survives_longer() {
        let (mut p, ch) = setup(3);
        p.on_fault(ChunkId(0).first_page()); // RRPV 0
        let v = p.select_victim(&ch, 0, &FxHashSet::default());
        // 1 and 2 reach MAX after one aging round; 0 is at 1.
        assert_eq!(v, Some(ChunkId(1)));
    }

    #[test]
    fn respects_exclusion_and_empty() {
        let (mut p, ch) = setup(2);
        let mut ex = FxHashSet::default();
        ex.insert(ChunkId(0));
        assert_eq!(p.select_victim(&ch, 0, &ex), Some(ChunkId(1)));
        ex.insert(ChunkId(1));
        assert_eq!(p.select_victim(&ch, 0, &ex), None);
    }

    #[test]
    fn eviction_drops_state() {
        let (mut p, _) = setup(1);
        p.on_evict(ChunkId(0), 0);
        assert_eq!(p.rrpv(ChunkId(0)), None);
    }
}
