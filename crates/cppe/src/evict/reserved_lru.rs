//! Reserved LRU (Ganguly et al., ISCA'19).
//!
//! "Reserved LRU avoids selecting the top portion (percentage) of the
//! LRU page list as eviction candidates." For a cyclic (thrashing)
//! pattern the chunks a sweep revisits *soonest* are exactly the oldest
//! ones, so reserving the LRU-most `p%` of the chain and evicting the
//! first chunk past the reserved region lets the head of the cycle stay
//! resident — the source of reserved LRU's "limited" thrashing gains
//! (Fig. 3). Conversely, for region-moving apps (B+T, HYB) the reserved
//! chunks are stale dead weight and the policy loses up to 27 %
//! (Fig. 9, Type VI at LRU-10 %), which this implementation reproduces.
//!
//! The reservation percentage must be chosen *a priori* — the paper's
//! criticism — so it is a constructor parameter here.

use super::EvictPolicy;
use crate::chain::ChunkChain;
use gmmu::types::ChunkId;
use sim_core::FxHashSet;

/// LRU with the bottom `percent`% of the chain protected from eviction.
#[derive(Debug)]
pub struct ReservedLruPolicy {
    percent: u32,
    name: &'static str,
}

impl ReservedLruPolicy {
    /// Reserve `percent` (0..=100) of the chain.
    ///
    /// # Panics
    /// Panics if `percent > 100`.
    #[must_use]
    pub fn new(percent: u32) -> Self {
        assert!(percent <= 100, "reservation percent out of range");
        let name = match percent {
            10 => "lru-10%",
            20 => "lru-20%",
            _ => "lru-reserved",
        };
        ReservedLruPolicy { percent, name }
    }

    /// Number of protected chunks for a chain of `len`.
    #[must_use]
    pub fn reserved_count(&self, len: usize) -> usize {
        (len * self.percent as usize).div_ceil(100)
    }
}

impl EvictPolicy for ReservedLruPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn select_victim(
        &mut self,
        chain: &ChunkChain,
        _interval: u64,
        exclude: &FxHashSet<ChunkId>,
    ) -> Option<ChunkId> {
        if chain.is_empty() {
            return None;
        }
        let skip = self.reserved_count(chain.len()).min(chain.len() - 1);
        chain.nth_from_lru(skip, exclude)
    }

    fn candidate_set(
        &self,
        chain: &ChunkChain,
        _interval: u64,
        exclude: &FxHashSet<ChunkId>,
        limit: usize,
    ) -> Vec<ChunkId> {
        // Everything past the reserved LRU-most region, in LRU order —
        // the same counting nth_from_lru uses (reserved slots are counted
        // over non-excluded chunks).
        if chain.is_empty() {
            return Vec::new();
        }
        let skip = self.reserved_count(chain.len()).min(chain.len() - 1);
        chain
            .iter_lru()
            .filter(|c| !exclude.contains(c))
            .skip(skip)
            .take(limit)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: u64) -> ChunkChain {
        let mut ch = ChunkChain::new();
        for i in 0..n {
            ch.insert_tail(ChunkId(i), 0);
        }
        ch
    }

    #[test]
    fn reserves_bottom_of_chain() {
        let mut p = ReservedLruPolicy::new(20);
        let ch = chain(10);
        // 20% of 10 = 2 chunks protected; victim is position 2.
        assert_eq!(
            p.select_victim(&ch, 0, &FxHashSet::default()),
            Some(ChunkId(2))
        );
    }

    #[test]
    fn zero_percent_degenerates_to_lru() {
        let mut p = ReservedLruPolicy::new(0);
        let ch = chain(10);
        assert_eq!(
            p.select_victim(&ch, 0, &FxHashSet::default()),
            Some(ChunkId(0))
        );
    }

    #[test]
    fn rounding_up_protects_at_least_one() {
        let p = ReservedLruPolicy::new(10);
        // 10% of 5 = 0.5 → 1 chunk protected.
        assert_eq!(p.reserved_count(5), 1);
    }

    #[test]
    fn never_skips_past_the_tail() {
        let mut p = ReservedLruPolicy::new(100);
        let ch = chain(4);
        // Reserving everything still must yield a victim (the MRU chunk).
        assert_eq!(
            p.select_victim(&ch, 0, &FxHashSet::default()),
            Some(ChunkId(3))
        );
    }

    #[test]
    fn single_chunk_chain() {
        let mut p = ReservedLruPolicy::new(20);
        let ch = chain(1);
        assert_eq!(
            p.select_victim(&ch, 0, &FxHashSet::default()),
            Some(ChunkId(0))
        );
    }

    #[test]
    fn empty_chain_gives_none() {
        let mut p = ReservedLruPolicy::new(20);
        assert_eq!(
            p.select_victim(&ChunkChain::new(), 0, &FxHashSet::default()),
            None
        );
    }

    #[test]
    fn names_match_figures() {
        assert_eq!(ReservedLruPolicy::new(10).name(), "lru-10%");
        assert_eq!(ReservedLruPolicy::new(20).name(), "lru-20%");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn over_100_percent_panics() {
        let _ = ReservedLruPolicy::new(101);
    }
}
