//! HPE — Hierarchical Page Eviction (Yu et al., ISPASS'19 / TCAD), the
//! prior-work policy the paper modifies.
//!
//! HPE keeps a per-chunk *touch counter* and, when memory first fills,
//! classifies the application from the counter distribution:
//!
//! * **regular** — most chunks fully populated → **MRU-C** (search from
//!   the MRU end of the old partition for a *qualified* chunk, i.e. one
//!   whose counter shows full population),
//! * **irregular#1** — sparse counters → **LRU**,
//! * **irregular#2** — in between → start with LRU and *switch* between
//!   LRU and MRU-C at runtime based on wrong evictions (unlike MHPE,
//!   HPE may switch back and forth).
//!
//! Faithfulness note (documented in DESIGN.md): the published HPE papers
//! leave several knobs loosely specified (classification thresholds, the
//! MRU-C qualification rule, the switch hysteresis). We use reasonable
//! values and — importantly for this paper — reproduce **Inefficiency 1**
//! exactly: with prefetching enabled, [`EvictPolicy::on_migrate`] bumps
//! the counter by the number of *migrated* pages, so a single fault that
//! prefetches a whole chunk sets the counter to 16 and every application
//! classifies as "regular", which is precisely the counter pollution the
//! paper describes.

use super::EvictPolicy;
use crate::chain::ChunkChain;
use crate::evicted_buffer::EvictedBuffer;
use gmmu::types::{ChunkId, VirtPage, PAGES_PER_CHUNK};
use sim_core::FxHashSet;

/// Application class HPE infers from chunk counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HpeClass {
    /// Mostly fully-populated chunks → MRU-C.
    Regular,
    /// Sparsely populated chunks → LRU.
    Irregular1,
    /// Mixed → dynamic switching.
    Irregular2,
}

/// HPE's two strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HpeStrategy {
    /// MRU with counter qualification.
    MruC,
    /// Plain LRU over the old partition.
    Lru,
}

/// The HPE policy.
#[derive(Debug)]
pub struct HpePolicy {
    class: Option<HpeClass>,
    strategy: HpeStrategy,
    /// MRU-C search start point (chunks skipped from the MRU end),
    /// adjusted by wrong evictions at runtime.
    start_skip: usize,
    buffer: EvictedBuffer,
    wrong_this_interval: u32,
    total_wrong: u64,
    /// Wrong-eviction threshold that flips irregular#2's strategy.
    switch_threshold: u32,
}

impl HpePolicy {
    /// HPE with default parameters (64-entry wrong-eviction buffer —
    /// HPE "uses a fixed interval length" for its buffer, unlike MHPE).
    #[must_use]
    pub fn new() -> Self {
        HpePolicy {
            class: None,
            strategy: HpeStrategy::MruC,
            start_skip: 0,
            buffer: EvictedBuffer::new(64),
            wrong_this_interval: 0,
            total_wrong: 0,
            switch_threshold: 2,
        }
    }

    /// The inferred class, once memory has filled.
    #[must_use]
    pub fn class(&self) -> Option<HpeClass> {
        self.class
    }

    /// The active strategy.
    #[must_use]
    pub fn strategy(&self) -> HpeStrategy {
        self.strategy
    }

    fn classify(chain: &ChunkChain) -> HpeClass {
        let len = chain.len().max(1);
        let full = chain
            .iter_lru_entries()
            .filter(|e| u64::from(e.counter) >= PAGES_PER_CHUNK)
            .count();
        let frac = full as f64 / len as f64;
        if frac >= 0.7 {
            HpeClass::Regular
        } else if frac <= 0.3 {
            HpeClass::Irregular1
        } else {
            HpeClass::Irregular2
        }
    }

    /// MRU-C: from the MRU end of the old partition, skip `start_skip`
    /// old chunks, then return the first *qualified* chunk (counter ≥
    /// chunk size). Falls back to the plain MRU-old selection when no
    /// chunk qualifies.
    fn select_mru_c(
        &self,
        chain: &ChunkChain,
        interval: u64,
        exclude: &FxHashSet<ChunkId>,
    ) -> Option<ChunkId> {
        let mut skipped = 0usize;
        for e in chain.iter_mru_entries() {
            if exclude.contains(&e.chunk) {
                continue;
            }
            let old = crate::chain::partition_of(e.last_ref_interval, interval)
                == crate::chain::Partition::Old;
            if !old {
                continue;
            }
            if skipped < self.start_skip {
                skipped += 1;
                continue;
            }
            if u64::from(e.counter) >= PAGES_PER_CHUNK {
                return Some(e.chunk);
            }
        }
        chain.select_mru_old(self.start_skip, interval, exclude)
    }
}

impl Default for HpePolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl EvictPolicy for HpePolicy {
    fn name(&self) -> &'static str {
        "hpe"
    }

    fn on_memory_full(&mut self, chain: &ChunkChain) {
        if self.class.is_some() {
            return;
        }
        let class = Self::classify(chain);
        self.class = Some(class);
        self.strategy = match class {
            HpeClass::Regular => HpeStrategy::MruC,
            HpeClass::Irregular1 | HpeClass::Irregular2 => HpeStrategy::Lru,
        };
    }

    fn on_fault(&mut self, page: VirtPage) {
        if self.buffer.take(page.chunk()) {
            self.wrong_this_interval += 1;
            self.total_wrong += 1;
        }
    }

    fn on_migrate(&mut self, chain: &mut ChunkChain, chunk: ChunkId, pages: u32, interval: u64) {
        // The counter hook: every migrated page counts as a touch. With
        // prefetch enabled this is exactly the pollution of
        // Inefficiency 1 — one fault adds 16 "touches".
        chain.touch(chunk, interval, pages);
    }

    fn select_victim(
        &mut self,
        chain: &ChunkChain,
        interval: u64,
        exclude: &FxHashSet<ChunkId>,
    ) -> Option<ChunkId> {
        match self.strategy {
            HpeStrategy::MruC => self.select_mru_c(chain, interval, exclude),
            HpeStrategy::Lru => chain.select_lru_old(interval, exclude),
        }
    }

    fn candidate_set(
        &self,
        chain: &ChunkChain,
        interval: u64,
        exclude: &FxHashSet<ChunkId>,
        limit: usize,
    ) -> Vec<ChunkId> {
        match self.strategy {
            HpeStrategy::MruC => {
                // Qualified old chunks past the start-skip window, in the
                // MRU→LRU search order; the plain MRU-old window when no
                // chunk qualifies (mirroring select_mru_c's fallback).
                let mut skipped = 0usize;
                let mut qualified = Vec::new();
                let mut fallback = Vec::new();
                for e in chain.iter_mru_entries() {
                    if exclude.contains(&e.chunk) {
                        continue;
                    }
                    let old = crate::chain::partition_of(e.last_ref_interval, interval)
                        == crate::chain::Partition::Old;
                    if !old {
                        continue;
                    }
                    if skipped < self.start_skip {
                        skipped += 1;
                        continue;
                    }
                    if u64::from(e.counter) >= PAGES_PER_CHUNK {
                        if qualified.len() < limit {
                            qualified.push(e.chunk);
                        }
                    } else if fallback.len() < limit {
                        fallback.push(e.chunk);
                    }
                    if qualified.len() >= limit {
                        break;
                    }
                }
                if qualified.is_empty() {
                    fallback
                } else {
                    qualified
                }
            }
            HpeStrategy::Lru => {
                let win: Vec<ChunkId> = chain
                    .iter_lru_entries()
                    .filter(|e| {
                        !exclude.contains(&e.chunk)
                            && crate::chain::partition_of(e.last_ref_interval, interval)
                                == crate::chain::Partition::Old
                    })
                    .map(|e| e.chunk)
                    .take(limit)
                    .collect();
                if win.is_empty() {
                    chain
                        .iter_lru()
                        .filter(|c| !exclude.contains(c))
                        .take(limit)
                        .collect()
                } else {
                    win
                }
            }
        }
    }

    fn on_evict(&mut self, chunk: ChunkId, _untouch: u32) {
        // HPE inserts wrongly evicted chunks at the *tail* (the paper
        // contrasts this with MHPE's head insertion), which is the
        // default insert position — no mark needed.
        self.buffer.push(chunk);
    }

    fn on_interval(&mut self, _k: u64) {
        match self.class {
            Some(HpeClass::Regular) => {
                // Regular apps stay on MRU-C but adjust the search start
                // point when evictions keep going wrong.
                self.start_skip =
                    (self.start_skip + self.wrong_this_interval as usize).min(32);
            }
            Some(HpeClass::Irregular2)
                // Switch between MRU-C and LRU when the current strategy
                // keeps evicting chunks that fault right back.
                if self.wrong_this_interval > self.switch_threshold => {
                    self.strategy = match self.strategy {
                        HpeStrategy::MruC => HpeStrategy::Lru,
                        HpeStrategy::Lru => HpeStrategy::MruC,
                    };
                }
            _ => {}
        }
        self.wrong_this_interval = 0;
    }

    fn wrong_evictions(&self) -> u64 {
        self.total_wrong
    }

    fn aux_buffer_max_len(&self) -> usize {
        self.buffer.max_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_with_counters(counts: &[u32]) -> ChunkChain {
        let mut ch = ChunkChain::new();
        for (i, &c) in counts.iter().enumerate() {
            ch.insert_tail(ChunkId(i as u64), 0);
            ch.touch(ChunkId(i as u64), 0, c);
        }
        ch
    }

    #[test]
    fn classifies_regular_when_chunks_full() {
        let mut p = HpePolicy::new();
        p.on_memory_full(&chain_with_counters(&[16; 10]));
        assert_eq!(p.class(), Some(HpeClass::Regular));
        assert_eq!(p.strategy(), HpeStrategy::MruC);
    }

    #[test]
    fn classifies_irregular1_when_sparse() {
        let mut p = HpePolicy::new();
        p.on_memory_full(&chain_with_counters(&[2; 10]));
        assert_eq!(p.class(), Some(HpeClass::Irregular1));
        assert_eq!(p.strategy(), HpeStrategy::Lru);
    }

    #[test]
    fn classifies_irregular2_when_mixed() {
        let mut p = HpePolicy::new();
        let counts: Vec<u32> = (0..10).map(|i| if i % 2 == 0 { 16 } else { 2 }).collect();
        p.on_memory_full(&chain_with_counters(&counts));
        assert_eq!(p.class(), Some(HpeClass::Irregular2));
    }

    #[test]
    fn prefetch_pollution_forces_regular_class() {
        // Inefficiency 1: with whole-chunk prefetch, on_migrate bumps
        // every counter to 16 and an irregular app classifies regular.
        let mut p = HpePolicy::new();
        let mut ch = ChunkChain::new();
        for i in 0..10 {
            ch.insert_tail(ChunkId(i), 0);
            p.on_migrate(&mut ch, ChunkId(i), 16, 0);
        }
        p.on_memory_full(&ch);
        assert_eq!(p.class(), Some(HpeClass::Regular));
    }

    #[test]
    fn mru_c_prefers_qualified_chunks() {
        let mut p = HpePolicy::new();
        // Old partition MRU→LRU: 4 (counter 3), 3 (counter 16), ...
        let mut ch = ChunkChain::new();
        for i in 0..5 {
            ch.insert_tail(ChunkId(i), 0);
            let c = if i == 3 { 16 } else { 3 };
            // touch() moves to tail, so re-establish order by touching in
            // insertion order.
            ch.touch(ChunkId(i), 0, c);
        }
        p.on_memory_full(&ch);
        p.strategy = HpeStrategy::MruC;
        // MRU-most old chunk is 4 (counter 3, unqualified); first
        // qualified walking MRU→LRU is 3.
        assert_eq!(
            p.select_victim(&ch, 2, &FxHashSet::default()),
            Some(ChunkId(3))
        );
    }

    #[test]
    fn mru_c_falls_back_to_mru_when_none_qualified() {
        let mut p = HpePolicy::new();
        let ch = chain_with_counters(&[3; 5]);
        p.on_memory_full(&ch);
        p.strategy = HpeStrategy::MruC;
        assert_eq!(
            p.select_victim(&ch, 2, &FxHashSet::default()),
            Some(ChunkId(4))
        );
    }

    #[test]
    fn irregular2_switches_on_wrong_evictions() {
        let mut p = HpePolicy::new();
        let counts: Vec<u32> = (0..10).map(|i| if i % 2 == 0 { 16 } else { 2 }).collect();
        p.on_memory_full(&chain_with_counters(&counts));
        assert_eq!(p.strategy(), HpeStrategy::Lru);
        // Three wrong evictions in one interval.
        for i in 0..3u64 {
            p.on_evict(ChunkId(i), 0);
            p.on_fault(ChunkId(i).first_page());
        }
        p.on_interval(1);
        assert_eq!(p.strategy(), HpeStrategy::MruC, "switched after thrash");
        // And can switch back — HPE switching is bidirectional.
        for i in 3..6u64 {
            p.on_evict(ChunkId(i), 0);
            p.on_fault(ChunkId(i).first_page());
        }
        p.on_interval(2);
        assert_eq!(p.strategy(), HpeStrategy::Lru);
    }

    #[test]
    fn regular_adjusts_start_skip() {
        let mut p = HpePolicy::new();
        p.on_memory_full(&chain_with_counters(&[16; 10]));
        for i in 0..2u64 {
            p.on_evict(ChunkId(i), 0);
            p.on_fault(ChunkId(i).first_page());
        }
        p.on_interval(1);
        assert_eq!(p.start_skip, 2);
    }

    #[test]
    fn wrong_evictions_counted() {
        let mut p = HpePolicy::new();
        p.on_memory_full(&chain_with_counters(&[16; 4]));
        p.on_evict(ChunkId(0), 0);
        p.on_fault(ChunkId(0).first_page());
        assert_eq!(p.wrong_evictions(), 1);
    }
}
