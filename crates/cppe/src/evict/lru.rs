//! LRU pre-eviction — the paper's baseline policy.
//!
//! With demand paging the driver only observes *migrations*, not every
//! access, so "LRU" here is migration-order LRU exactly as in Ganguly
//! et al.'s prefetch-semantics-aware pre-eviction: chunks are ordered by
//! the time they were brought in (re-migration refreshes recency) and
//! the oldest chunk is evicted first, 16 pages at a time.

use super::EvictPolicy;
use crate::chain::ChunkChain;
use gmmu::types::ChunkId;
use sim_core::FxHashSet;

/// Migration-order LRU over chunks.
#[derive(Debug, Default)]
pub struct LruPolicy;

impl LruPolicy {
    /// New LRU policy.
    #[must_use]
    pub fn new() -> Self {
        LruPolicy
    }
}

impl EvictPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn select_victim(
        &mut self,
        chain: &ChunkChain,
        _interval: u64,
        exclude: &FxHashSet<ChunkId>,
    ) -> Option<ChunkId> {
        chain.iter_lru().find(|c| !exclude.contains(c))
    }

    fn candidate_set(
        &self,
        chain: &ChunkChain,
        _interval: u64,
        exclude: &FxHashSet<ChunkId>,
        limit: usize,
    ) -> Vec<ChunkId> {
        // The LRU-first prefix is exactly the window LRU draws from.
        chain
            .iter_lru()
            .filter(|c| !exclude.contains(c))
            .take(limit)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_oldest_migrated() {
        let mut p = LruPolicy::new();
        let mut ch = ChunkChain::new();
        ch.insert_tail(ChunkId(10), 0);
        ch.insert_tail(ChunkId(11), 0);
        ch.insert_tail(ChunkId(12), 1);
        assert_eq!(
            p.select_victim(&ch, 1, &FxHashSet::default()),
            Some(ChunkId(10))
        );
    }

    #[test]
    fn remigration_refreshes_recency() {
        let mut p = LruPolicy::new();
        let mut ch = ChunkChain::new();
        ch.insert_tail(ChunkId(1), 0);
        ch.insert_tail(ChunkId(2), 0);
        ch.insert_tail(ChunkId(1), 1); // chunk 1 re-migrated
        assert_eq!(
            p.select_victim(&ch, 1, &FxHashSet::default()),
            Some(ChunkId(2))
        );
    }

    #[test]
    fn empty_chain_gives_none() {
        let mut p = LruPolicy::new();
        assert_eq!(
            p.select_victim(&ChunkChain::new(), 0, &FxHashSet::default()),
            None
        );
    }

    #[test]
    fn thrashes_on_cyclic_pattern() {
        // The classic failure the paper motivates: a cyclic sweep over
        // N+1 chunks with capacity N evicts exactly the chunk needed
        // next, every time.
        let mut p = LruPolicy::new();
        let mut ch = ChunkChain::new();
        for i in 0..4 {
            ch.insert_tail(ChunkId(i), 0);
        }
        // Next access is chunk 4; capacity forces one eviction. LRU
        // evicts chunk 0 — precisely the chunk the cyclic pattern
        // revisits after 4.
        assert_eq!(
            p.select_victim(&ch, 0, &FxHashSet::default()),
            Some(ChunkId(0))
        );
    }
}
