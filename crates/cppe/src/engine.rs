//! The policy engine — the driver-side coordination layer.
//!
//! [`PolicyEngine`] owns the chunk chain and one prefetcher + one
//! eviction policy, and is driven by the `uvm` fault handler. This is
//! where CPPE's *fine-grained coordination* lives:
//!
//! * the eviction policy selects chunks that were brought in by the
//!   prefetcher (prefetch-semantics awareness), and
//! * at eviction the chunk's touch vector — assembled from the page
//!   table's access bits — is handed to the prefetcher, which records it
//!   in its pattern buffer and uses it to plan future prefetches.
//!
//! The engine also maintains the *interval* clock: one interval = 64
//! migrated pages (§IV-B; four 16-page chunk migrations per interval),
//! and interval accounting for MHPE starts once memory first fills.

use crate::chain::ChunkChain;
use crate::evict::{EvictPolicy, InsertAt};
use crate::prefetch::{PrefetchCtx, Prefetcher};
use gmmu::page_table::PageTable;
use gmmu::types::{ChunkId, VirtPage};
use sim_core::{FxHashSet, TouchVec};

/// Pages per interval (§IV-B: "the interval length is 64").
pub const INTERVAL_PAGES: u64 = 64;

/// Aggregate counters the engine maintains for the evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Demand faults observed.
    pub faults: u64,
    /// Pages migrated host→GPU (faulted + prefetched).
    pub pages_migrated: u64,
    /// Pages migrated beyond the faulted page.
    pub pages_prefetched: u64,
    /// Chunk evictions performed.
    pub chunk_evictions: u64,
    /// Pages evicted GPU→host.
    pub pages_evicted: u64,
    /// Sum of untouch levels over all evictions.
    pub total_untouch: u64,
    /// Chain length high-water mark.
    pub chain_max_len: usize,
}

impl EngineStats {
    /// Counters under their stable telemetry names, in schema order.
    #[must_use]
    pub fn metrics(&self) -> [(&'static str, u64); 6] {
        [
            ("cppe.faults", self.faults),
            ("cppe.pages_migrated", self.pages_migrated),
            ("cppe.pages_prefetched", self.pages_prefetched),
            ("cppe.chunk_evictions", self.chunk_evictions),
            ("cppe.pages_evicted", self.pages_evicted),
            ("cppe.total_untouch", self.total_untouch),
        ]
    }
}

/// Policy pair parked by [`PolicyEngine::fallback_to_baseline`] so the
/// recovery rung can re-arm it.
struct SuspendedPolicies {
    evict: Box<dyn EvictPolicy>,
    prefetch: Box<dyn Prefetcher>,
    /// Had the suspended eviction policy seen `on_memory_full`?
    saw_full: bool,
}

/// The engine.
pub struct PolicyEngine {
    chain: ChunkChain,
    evict: Box<dyn EvictPolicy>,
    prefetch: Box<dyn Prefetcher>,
    interval: u64,
    pages_into_interval: u64,
    memory_full: bool,
    intervals_since_full: u64,
    /// Prefetch plans are cut to `1/throttle` of their size (degradation
    /// ladder, shed 1). 1 = no throttling.
    throttle: u32,
    /// Has the engine fallen back to the baseline policy pair?
    fell_back: bool,
    /// The original policy pair, parked across a fallback so recovery
    /// can re-arm it.
    suspended: Option<SuspendedPolicies>,
    /// Wrong-eviction count carried across a policy fallback.
    wrong_evictions_carry: u64,
    /// Aux-buffer high-water marks carried across a policy fallback.
    evicted_buffer_carry: usize,
    pattern_buffer_carry: usize,
    /// Chain length when memory first filled (overhead analysis).
    pub chain_len_at_full: usize,
    /// Aggregate counters.
    pub stats: EngineStats,
}

impl PolicyEngine {
    /// Combine an eviction policy and a prefetcher.
    #[must_use]
    pub fn new(evict: Box<dyn EvictPolicy>, prefetch: Box<dyn Prefetcher>) -> Self {
        PolicyEngine {
            chain: ChunkChain::new(),
            evict,
            prefetch,
            interval: 0,
            pages_into_interval: 0,
            memory_full: false,
            intervals_since_full: 0,
            throttle: 1,
            fell_back: false,
            suspended: None,
            wrong_evictions_carry: 0,
            evicted_buffer_carry: 0,
            pattern_buffer_carry: 0,
            chain_len_at_full: 0,
            stats: EngineStats::default(),
        }
    }

    /// `"<evict>+<prefetch>"`, e.g. `"mhpe+pattern-aware-s2"`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("{}+{}", self.evict.name(), self.prefetch.name())
    }

    /// The chunk chain (read-only).
    #[must_use]
    pub fn chain(&self) -> &ChunkChain {
        &self.chain
    }

    /// Has memory filled at least once?
    #[must_use]
    pub fn memory_full(&self) -> bool {
        self.memory_full
    }

    /// Current interval number (from program start).
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The `uvm` driver reports that GPU memory is at capacity. Policies
    /// size their auxiliary structures on the first call.
    pub fn note_memory_full(&mut self) {
        if !self.memory_full {
            self.memory_full = true;
            self.chain_len_at_full = self.chain.len();
            self.evict.on_memory_full(&self.chain);
        }
    }

    /// A demand fault on `page` was observed (pre-migration bookkeeping:
    /// wrong-eviction buffers).
    pub fn note_fault(&mut self, page: VirtPage) {
        self.stats.faults += 1;
        self.evict.on_fault(page);
    }

    /// Plan the pages to migrate for a fault on `page`, writing them
    /// into `plan` (cleared first). The caller reuses one buffer across
    /// faults so steady-state planning allocates nothing.
    pub fn plan_prefetch_into(&mut self, page: VirtPage, pt: &PageTable, plan: &mut Vec<VirtPage>) {
        plan.clear();
        let ctx = PrefetchCtx {
            page_table: pt,
            memory_full: self.memory_full,
        };
        self.prefetch.plan_into(page, &ctx, plan);
        debug_assert!(plan.contains(&page), "plan must include the faulted page");
        debug_assert!(
            plan.iter().all(|&p| !pt.is_resident(p)),
            "plan must only contain non-resident pages"
        );
        if self.throttle > 1 && plan.len() > 1 {
            // Degraded mode (ladder shed 1): keep the faulted page plus
            // the first 1/throttle of the planned pages, shrinking the
            // migration traffic the thrash detector flagged as wasteful.
            let keep = (plan.len() / self.throttle as usize).max(1);
            plan.retain(|&p| p != page);
            plan.truncate(keep.saturating_sub(1));
            plan.push(page);
            plan.sort_unstable_by_key(|p| p.0);
        }
    }

    /// Allocating convenience wrapper over
    /// [`PolicyEngine::plan_prefetch_into`].
    pub fn plan_prefetch(&mut self, page: VirtPage, pt: &PageTable) -> Vec<VirtPage> {
        let mut plan = Vec::new();
        self.plan_prefetch_into(page, pt, &mut plan);
        plan
    }

    /// Select a victim chunk (memory must be full). `exclude` holds the
    /// chunks pinned by the in-flight fault batch; if exclusion makes
    /// selection impossible the pinned set is ignored (better a pinned
    /// victim than an unservable fault).
    pub fn select_victim(&mut self, exclude: &FxHashSet<ChunkId>) -> Option<ChunkId> {
        self.evict
            .select_victim(&self.chain, self.interval, exclude)
            .or_else(|| {
                self.evict
                    .select_victim(&self.chain, self.interval, &FxHashSet::default())
            })
    }

    /// Stable name of the active eviction policy (decision provenance).
    #[must_use]
    pub fn evict_name(&self) -> &'static str {
        self.evict.name()
    }

    /// Stable name of the active prefetcher (decision provenance).
    #[must_use]
    pub fn prefetch_name(&self) -> &'static str {
        self.prefetch.name()
    }

    /// Which strategy branch produced the most recent prefetch plan
    /// (decision provenance; see [`Prefetcher::plan_origin`]).
    #[must_use]
    pub fn plan_origin(&self) -> &'static str {
        self.prefetch.plan_origin()
    }

    /// Non-mutating preview of the eviction policy's candidate window —
    /// the chunks the next [`PolicyEngine::select_victim`] call will
    /// consider, capped at `limit`. Mirrors `select_victim`'s pinned-set
    /// relaxation: if exclusion empties the window, the pinned set is
    /// ignored. Recorded by the decision audit layer; never called on
    /// the hot path when auditing is off.
    #[must_use]
    pub fn victim_candidates(&self, exclude: &FxHashSet<ChunkId>, limit: usize) -> Vec<ChunkId> {
        let cands = self
            .evict
            .candidate_set(&self.chain, self.interval, exclude, limit);
        if cands.is_empty() && !exclude.is_empty() {
            return self.evict.candidate_set(
                &self.chain,
                self.interval,
                &FxHashSet::default(),
                limit,
            );
        }
        cands
    }

    /// `chunk` was evicted; `touch` is its touch vector with bits set
    /// only for pages that were resident *and* touched (read from the
    /// page-table access bits), and `resident` the number of pages that
    /// were actually resident (= transferred back to the host).
    pub fn note_evicted(&mut self, chunk: ChunkId, touch: TouchVec, resident: u32) {
        let untouch = resident.saturating_sub(touch.count_touched());
        self.stats.chunk_evictions += 1;
        self.stats.pages_evicted += u64::from(resident);
        self.stats.total_untouch += u64::from(untouch);
        self.chain.remove(chunk);
        self.evict.on_evict(chunk, untouch);
        self.prefetch.on_evict(chunk, touch);
    }

    /// `pages` pages of `chunk` were migrated in (one of them the
    /// demand-faulted page when `demand` is true). Advances the interval
    /// clock and fires `on_interval` at boundaries.
    pub fn note_migrated(&mut self, chunk: ChunkId, pages: u32, demand: bool) {
        let pos = self.evict.insert_position(chunk);
        match pos {
            InsertAt::Tail => self.chain.insert_tail(chunk, self.interval),
            InsertAt::Head => self.chain.insert_head(chunk, self.interval),
        }
        self.evict
            .on_migrate(&mut self.chain, chunk, pages, self.interval);
        self.stats.pages_migrated += u64::from(pages);
        if demand {
            self.stats.pages_prefetched += u64::from(pages.saturating_sub(1));
        } else {
            self.stats.pages_prefetched += u64::from(pages);
        }
        self.stats.chain_max_len = self.stats.chain_max_len.max(self.chain.len());

        self.pages_into_interval += u64::from(pages);
        while self.pages_into_interval >= INTERVAL_PAGES {
            self.pages_into_interval -= INTERVAL_PAGES;
            self.interval += 1;
            if self.memory_full {
                self.intervals_since_full += 1;
                self.evict.on_interval(self.intervals_since_full);
            }
        }
    }

    /// Halve prefetch aggressiveness (degradation ladder, shed 1).
    /// Each call doubles the throttle divisor, capped at 16.
    pub fn shed_prefetch(&mut self) {
        self.throttle = (self.throttle * 2).min(16);
    }

    /// Replace the policy pair with the conservative fallback — plain
    /// LRU eviction plus a sequential-local prefetcher that stops
    /// prefetching once memory is full (degradation ladder, shed 2).
    ///
    /// The chunk chain and all aggregate stats survive the swap; the
    /// outgoing policies' wrong-eviction count and buffer high-water
    /// marks are carried so [`PolicyEngine::wrong_evictions`] and
    /// [`PolicyEngine::overhead`] stay monotone across the fallback.
    pub fn fallback_to_baseline(&mut self) {
        use crate::evict::lru::LruPolicy;
        use crate::prefetch::sequential::SequentialLocalPrefetcher;
        self.wrong_evictions_carry += self.evict.wrong_evictions();
        self.evicted_buffer_carry = self
            .evicted_buffer_carry
            .max(self.evict.aux_buffer_max_len());
        self.pattern_buffer_carry = self
            .pattern_buffer_carry
            .max(self.prefetch.pattern_buffer_max_len());
        let evict = std::mem::replace(&mut self.evict, Box::new(LruPolicy::new()));
        let prefetch = std::mem::replace(
            &mut self.prefetch,
            Box::new(SequentialLocalPrefetcher::disable_on_full()),
        );
        self.suspended = Some(SuspendedPolicies {
            evict,
            prefetch,
            saw_full: self.memory_full,
        });
        if self.memory_full {
            self.evict.on_memory_full(&self.chain);
        }
        self.throttle = 1;
        self.fell_back = true;
    }

    /// Re-arm the policy pair parked by
    /// [`PolicyEngine::fallback_to_baseline`] (recovery rung: the thrash
    /// detector has been quiet long enough). Returns `false` when there
    /// is nothing to restore.
    ///
    /// Counter continuity: the fallback pair's wrong evictions and
    /// buffer high-water marks are retired into the carries; the
    /// suspended pair's wrong-eviction count was added to the carry at
    /// fallback time and is deducted again now that the pair reports it
    /// directly (it cannot have changed while parked), so
    /// [`PolicyEngine::wrong_evictions`] stays continuous in both
    /// directions.
    pub fn restore_policies(&mut self) -> bool {
        let Some(parked) = self.suspended.take() else {
            return false;
        };
        self.wrong_evictions_carry += self.evict.wrong_evictions();
        self.wrong_evictions_carry -= parked.evict.wrong_evictions();
        self.evicted_buffer_carry = self
            .evicted_buffer_carry
            .max(self.evict.aux_buffer_max_len());
        self.pattern_buffer_carry = self
            .pattern_buffer_carry
            .max(self.prefetch.pattern_buffer_max_len());
        self.evict = parked.evict;
        self.prefetch = parked.prefetch;
        if self.memory_full && !parked.saw_full {
            self.evict.on_memory_full(&self.chain);
        }
        self.fell_back = false;
        true
    }

    /// Step the prefetch throttle back toward full aggressiveness — the
    /// inverse of one [`PolicyEngine::shed_prefetch`] (recovery rung).
    pub fn restore_prefetch(&mut self) {
        self.throttle = (self.throttle / 2).max(1);
    }

    /// Has [`PolicyEngine::fallback_to_baseline`] run without a
    /// [`PolicyEngine::restore_policies`] since?
    #[must_use]
    pub fn fell_back(&self) -> bool {
        self.fell_back
    }

    /// Current prefetch throttle divisor (1 = full aggressiveness).
    #[must_use]
    pub fn prefetch_throttle(&self) -> u32 {
        self.throttle
    }

    /// Wrong evictions recorded by the policy (summed across a
    /// degradation fallback, if one happened).
    #[must_use]
    pub fn wrong_evictions(&self) -> u64 {
        self.wrong_evictions_carry + self.evict.wrong_evictions()
    }

    /// Overhead-analysis snapshot (§VI-C): chain length at full, the
    /// eviction policy's buffer high-water mark, and the prefetcher's
    /// pattern-buffer high-water mark.
    #[must_use]
    pub fn overhead(&self) -> OverheadSnapshot {
        OverheadSnapshot {
            chain_len_at_full: self.chain_len_at_full,
            chain_max_len: self.stats.chain_max_len,
            evicted_buffer_max: self
                .evicted_buffer_carry
                .max(self.evict.aux_buffer_max_len()),
            pattern_buffer_max: self
                .pattern_buffer_carry
                .max(self.prefetch.pattern_buffer_max_len()),
        }
    }

    /// Mutable access to the eviction policy (downcasting in the
    /// harness for MHPE-specific traces).
    pub fn evict_policy_mut(&mut self) -> &mut dyn EvictPolicy {
        self.evict.as_mut()
    }
}

/// Structure sizes for the §VI-C overhead analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverheadSnapshot {
    /// Chain length when memory first filled.
    pub chain_len_at_full: usize,
    /// Chain length high-water mark.
    pub chain_max_len: usize,
    /// Wrong-eviction buffer high-water mark.
    pub evicted_buffer_max: usize,
    /// Pattern buffer high-water mark.
    pub pattern_buffer_max: usize,
}

impl OverheadSnapshot {
    /// Total entries across the three structures (paper counts one
    /// 12-byte entry per chunk in each structure).
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.chain_max_len + self.evicted_buffer_max + self.pattern_buffer_max
    }

    /// Storage bytes at 12 B/entry (§VI-C: 8 B tag + 4 B bit set).
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.total_entries() * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evict::lru::LruPolicy;
    use crate::evict::mhpe::MhpePolicy;
    use crate::prefetch::sequential::SequentialLocalPrefetcher;

    fn baseline() -> PolicyEngine {
        PolicyEngine::new(
            Box::new(LruPolicy::new()),
            Box::new(SequentialLocalPrefetcher::naive()),
        )
    }

    #[test]
    fn name_combines_policy_and_prefetcher() {
        assert_eq!(baseline().name(), "lru+seq-local");
    }

    #[test]
    fn plan_includes_fault_and_filters_resident() {
        let mut e = baseline();
        let mut pt = PageTable::new();
        pt.map(VirtPage(1), gmmu::types::Frame(0), false);
        let plan = e.plan_prefetch(VirtPage(3), &pt);
        assert!(plan.contains(&VirtPage(3)));
        assert!(!plan.contains(&VirtPage(1)));
        assert_eq!(plan.len(), 15);
    }

    #[test]
    fn interval_advances_every_64_pages() {
        let mut e = baseline();
        assert_eq!(e.interval(), 0);
        for i in 0..3 {
            e.note_migrated(ChunkId(i), 16, true);
        }
        assert_eq!(e.interval(), 0);
        e.note_migrated(ChunkId(3), 16, true);
        assert_eq!(e.interval(), 1);
        for i in 4..8 {
            e.note_migrated(ChunkId(i), 16, true);
        }
        assert_eq!(e.interval(), 2);
    }

    #[test]
    fn policy_interval_hook_fires_only_after_full() {
        let mut e = PolicyEngine::new(
            Box::new(MhpePolicy::new()),
            Box::new(SequentialLocalPrefetcher::naive()),
        );
        // 8 chunk migrations = 2 intervals, memory not yet full.
        for i in 0..8 {
            e.note_migrated(ChunkId(i), 16, true);
        }
        e.note_memory_full();
        // MHPE's trace must be empty: no intervals counted pre-full.
        for i in 8..12 {
            e.note_evicted(ChunkId(i - 8), TouchVec::full(), 16);
            e.note_migrated(ChunkId(i), 16, true);
        }
        // One interval since full.
        let st = e.stats;
        assert_eq!(st.chunk_evictions, 4);
        assert_eq!(e.interval(), 3);
    }

    #[test]
    fn eviction_stats_and_chain_update() {
        let mut e = baseline();
        e.note_migrated(ChunkId(0), 16, true);
        e.note_migrated(ChunkId(1), 16, true);
        assert_eq!(e.chain().len(), 2);
        let mut touch = TouchVec::empty();
        touch.set(0);
        touch.set(1);
        e.note_evicted(ChunkId(0), touch, 16);
        assert_eq!(e.chain().len(), 1);
        assert_eq!(e.stats.pages_evicted, 16);
        assert_eq!(e.stats.total_untouch, 14);
    }

    #[test]
    fn untouch_respects_partial_residency() {
        let mut e = baseline();
        e.note_migrated(ChunkId(0), 8, true);
        let mut touch = TouchVec::empty();
        touch.set(0);
        // Only 8 pages were resident; 1 touched → untouch = 7.
        e.note_evicted(ChunkId(0), touch, 8);
        assert_eq!(e.stats.total_untouch, 7);
    }

    #[test]
    fn prefetched_page_accounting() {
        let mut e = baseline();
        e.note_migrated(ChunkId(0), 16, true); // 1 faulted + 15 prefetched
        e.note_migrated(ChunkId(1), 4, false); // all 4 prefetched
        assert_eq!(e.stats.pages_migrated, 20);
        assert_eq!(e.stats.pages_prefetched, 19);
    }

    #[test]
    fn victim_selection_roundtrip() {
        let mut e = baseline();
        for i in 0..4 {
            e.note_migrated(ChunkId(i), 16, true);
        }
        e.note_memory_full();
        assert_eq!(e.select_victim(&FxHashSet::default()), Some(ChunkId(0)));
        e.note_evicted(ChunkId(0), TouchVec::full(), 16);
        assert_eq!(e.select_victim(&FxHashSet::default()), Some(ChunkId(1)));
    }

    #[test]
    fn memory_full_latches_chain_len() {
        let mut e = baseline();
        for i in 0..5 {
            e.note_migrated(ChunkId(i), 16, true);
        }
        e.note_memory_full();
        assert_eq!(e.chain_len_at_full, 5);
        e.note_migrated(ChunkId(9), 16, true);
        e.note_memory_full(); // second call must not overwrite
        assert_eq!(e.chain_len_at_full, 5);
    }

    #[test]
    fn overhead_snapshot_math() {
        let s = OverheadSnapshot {
            chain_len_at_full: 100,
            chain_max_len: 120,
            evicted_buffer_max: 16,
            pattern_buffer_max: 10,
        };
        assert_eq!(s.total_entries(), 146);
        assert_eq!(s.storage_bytes(), 146 * 12);
    }

    #[test]
    fn wrong_eviction_reinserts_at_chain_head() {
        let mut e = PolicyEngine::new(
            Box::new(MhpePolicy::new()),
            Box::new(SequentialLocalPrefetcher::naive()),
        );
        for i in 0..6 {
            e.note_migrated(ChunkId(i), 16, true);
        }
        e.note_memory_full();
        e.note_evicted(ChunkId(2), TouchVec::full(), 16);
        // Fault on the just-evicted chunk: wrong eviction detected.
        e.note_fault(ChunkId(2).page(0));
        assert_eq!(e.wrong_evictions(), 1);
        e.note_migrated(ChunkId(2), 16, true);
        // The chunk must sit at the LRU end (head) of the chain.
        assert_eq!(e.chain().iter_lru().next(), Some(ChunkId(2)));
    }

    #[test]
    fn shed_prefetch_throttles_plans() {
        let mut e = baseline();
        let pt = PageTable::new();
        assert_eq!(e.plan_prefetch(VirtPage(3), &pt).len(), 16);
        e.shed_prefetch();
        assert_eq!(e.prefetch_throttle(), 2);
        let plan = e.plan_prefetch(VirtPage(3), &pt);
        assert_eq!(plan.len(), 8, "half the chunk under throttle 2");
        assert!(plan.contains(&VirtPage(3)));
        // Repeated sheds double the divisor, capped at 16.
        for _ in 0..10 {
            e.shed_prefetch();
        }
        assert_eq!(e.prefetch_throttle(), 16);
        assert_eq!(e.plan_prefetch(VirtPage(3), &pt).len(), 1);
    }

    #[test]
    fn fallback_preserves_counters_and_keeps_chain() {
        use crate::prefetch::pattern::PatternAwarePrefetcher;
        let mut e = PolicyEngine::new(
            Box::new(MhpePolicy::new()),
            Box::new(PatternAwarePrefetcher::new()),
        );
        for i in 0..6 {
            e.note_migrated(ChunkId(i), 16, true);
        }
        e.note_memory_full();
        e.note_evicted(ChunkId(2), TouchVec::full(), 16);
        e.note_fault(ChunkId(2).page(0)); // wrong eviction
        assert_eq!(e.wrong_evictions(), 1);
        let pre = e.overhead();
        assert!(!e.fell_back());
        e.fallback_to_baseline();
        assert!(e.fell_back());
        assert_eq!(
            e.name(),
            "lru+seq-local-nopf-on-full",
            "baseline fallback pair"
        );
        assert_eq!(e.wrong_evictions(), 1, "carried across the swap");
        let post = e.overhead();
        assert!(post.evicted_buffer_max >= pre.evicted_buffer_max);
        assert!(post.pattern_buffer_max >= pre.pattern_buffer_max);
        // Chain survives the swap: LRU can still pick a victim.
        assert!(e.select_victim(&FxHashSet::default()).is_some());
        // Memory-full latched → the fallback prefetcher plans only the
        // faulted page, killing the wasteful traffic.
        let pt = PageTable::new();
        assert_eq!(e.plan_prefetch(VirtPage(100), &pt), vec![VirtPage(100)]);
    }

    #[test]
    fn restore_rearms_suspended_policies_with_continuous_counters() {
        use crate::prefetch::pattern::PatternAwarePrefetcher;
        let mut e = PolicyEngine::new(
            Box::new(MhpePolicy::new()),
            Box::new(PatternAwarePrefetcher::new()),
        );
        for i in 0..6 {
            e.note_migrated(ChunkId(i), 16, true);
        }
        e.note_memory_full();
        e.note_evicted(ChunkId(2), TouchVec::full(), 16);
        e.note_fault(ChunkId(2).page(0)); // wrong eviction on the originals
        assert_eq!(e.wrong_evictions(), 1);
        e.fallback_to_baseline();
        assert_eq!(e.wrong_evictions(), 1, "monotone through fallback");
        assert!(e.restore_policies(), "a parked pair was re-armed");
        assert!(!e.fell_back());
        assert_eq!(e.name(), "mhpe+pattern-aware-s2", "originals are back");
        assert_eq!(e.wrong_evictions(), 1, "continuous through restore");
        assert!(!e.restore_policies(), "nothing left to restore");
        // The re-armed policies still work against the surviving chain.
        assert!(e.select_victim(&FxHashSet::default()).is_some());
    }

    #[test]
    fn victim_candidates_preview_is_non_mutating_and_covers_victim() {
        // The audit preview must not perturb selection: previewing the
        // candidate window and then selecting must give the same victim
        // as selecting cold, and the victim must be in the window.
        use crate::evict::clock::ClockPolicy;
        use crate::evict::random::RandomPolicy;
        use crate::evict::rrip::SrripPolicy;
        let make: Vec<Box<dyn Fn() -> Box<dyn EvictPolicy>>> = vec![
            Box::new(|| Box::new(LruPolicy::new())),
            Box::new(|| Box::new(RandomPolicy::new(42))),
            Box::new(|| Box::new(ClockPolicy::new())),
            Box::new(|| Box::new(SrripPolicy::new())),
            Box::new(|| Box::new(MhpePolicy::new())),
            Box::new(|| Box::new(crate::evict::hpe::HpePolicy::new())),
            Box::new(|| Box::new(crate::evict::reserved_lru::ReservedLruPolicy::new(20))),
        ];
        for mk in &make {
            let drive = |preview: bool| {
                let mut e = PolicyEngine::new(mk(), Box::new(SequentialLocalPrefetcher::naive()));
                for i in 0..12 {
                    e.note_migrated(ChunkId(i), 16, true);
                }
                e.note_memory_full();
                let cands = preview.then(|| e.victim_candidates(&FxHashSet::default(), 8));
                let v = e.select_victim(&FxHashSet::default());
                (cands, v)
            };
            let (_, cold) = drive(false);
            let (cands, previewed) = drive(true);
            let name = mk().name();
            assert_eq!(previewed, cold, "{name}: preview changed selection");
            let cands = cands.unwrap();
            assert!(!cands.is_empty(), "{name}: empty candidate window");
            assert!(cands.len() <= 8, "{name}: window over limit");
            assert!(
                cands.contains(&cold.unwrap()),
                "{name}: victim {cold:?} outside window {cands:?}"
            );
        }
    }

    #[test]
    fn victim_candidates_relax_pinned_set_like_selection() {
        let mut e = baseline();
        for i in 0..3 {
            e.note_migrated(ChunkId(i), 16, true);
        }
        e.note_memory_full();
        let mut pin = FxHashSet::default();
        for i in 0..3 {
            pin.insert(ChunkId(i));
        }
        // Everything pinned: selection falls back to ignoring the pinned
        // set, and the preview must report the same relaxed window.
        let cands = e.victim_candidates(&pin, 8);
        assert_eq!(cands.len(), 3);
        assert_eq!(e.select_victim(&pin), Some(ChunkId(0)));
        assert!(cands.contains(&ChunkId(0)));
    }

    #[test]
    fn counters_stay_continuous_across_repeated_fallback_cycles() {
        // The single-transition carry is covered above; thrash storms
        // drive the ladder through fallback→recovery repeatedly, and the
        // wrong-eviction count must stay monotone and exact throughout.
        use crate::prefetch::pattern::PatternAwarePrefetcher;
        let mut e = PolicyEngine::new(
            Box::new(MhpePolicy::new()),
            Box::new(PatternAwarePrefetcher::new()),
        );
        for i in 0..6 {
            e.note_migrated(ChunkId(i), 16, true);
        }
        e.note_memory_full();
        let mut expected = 0u64;
        // Fresh chunk ids (100..) churned in per episode.
        for (next, cycle) in (100u64..).zip(0..4) {
            // One wrong eviction on whichever pair is active.
            let victim = e.select_victim(&FxHashSet::default()).unwrap();
            e.note_evicted(victim, TouchVec::full(), 16);
            e.note_fault(victim.first_page());
            e.note_migrated(victim, 16, true);
            expected += 1;
            assert_eq!(e.wrong_evictions(), expected, "cycle {cycle}: pre-fallback");

            e.fallback_to_baseline();
            assert_eq!(
                e.wrong_evictions(),
                expected,
                "cycle {cycle}: post-fallback"
            );

            // An evict/refault episode while degraded: the plain-LRU
            // fallback keeps no wrong-eviction buffer, so the count must
            // hold steady — neither lost nor double-counted later.
            let victim = e.select_victim(&FxHashSet::default()).unwrap();
            e.note_evicted(victim, TouchVec::full(), 16);
            e.note_fault(victim.first_page());
            e.note_migrated(victim, 16, true);
            assert_eq!(e.wrong_evictions(), expected, "cycle {cycle}: degraded");

            assert!(e.restore_policies(), "cycle {cycle}: restore");
            assert_eq!(e.wrong_evictions(), expected, "cycle {cycle}: post-restore");
            assert_eq!(
                e.name(),
                "mhpe+pattern-aware-s2",
                "cycle {cycle}: originals"
            );

            // Churn between cycles so state keeps evolving.
            e.note_migrated(ChunkId(next), 16, true);
        }
        // Buffer high-water marks stay monotone through every swap.
        let oh = e.overhead();
        assert!(oh.evicted_buffer_max > 0);
    }

    #[test]
    fn restore_prefetch_steps_throttle_back_down() {
        let mut e = baseline();
        e.shed_prefetch();
        e.shed_prefetch();
        assert_eq!(e.prefetch_throttle(), 4);
        e.restore_prefetch();
        assert_eq!(e.prefetch_throttle(), 2);
        e.restore_prefetch();
        assert_eq!(e.prefetch_throttle(), 1);
        e.restore_prefetch();
        assert_eq!(e.prefetch_throttle(), 1, "floored at full aggressiveness");
    }

    #[test]
    fn stats_metrics_use_stable_dotted_names() {
        let mut e = baseline();
        e.note_migrated(ChunkId(0), 16, true);
        let m = e.stats.metrics();
        assert_eq!(m[0].0, "cppe.faults");
        assert!(m.iter().all(|(n, _)| n.starts_with("cppe.")));
        assert_eq!(
            m.iter()
                .find(|(n, _)| *n == "cppe.pages_migrated")
                .unwrap()
                .1,
            16
        );
    }

    #[test]
    fn coordination_pattern_flows_to_prefetcher() {
        // The CPPE loop: evict with a stride pattern → prefetcher records
        // it → next fault on a matching page prefetches only the pattern.
        use crate::prefetch::pattern::PatternAwarePrefetcher;
        let mut e = PolicyEngine::new(
            Box::new(MhpePolicy::new()),
            Box::new(PatternAwarePrefetcher::new()),
        );
        let mut touch = TouchVec::empty();
        for i in (0..16).step_by(2) {
            touch.set(i);
        }
        e.note_migrated(ChunkId(0), 16, true);
        e.note_memory_full();
        e.note_evicted(ChunkId(0), touch, 16);
        let pt = PageTable::new();
        let plan = e.plan_prefetch(ChunkId(0).page(2), &pt);
        assert_eq!(plan.len(), 8, "only the stride-2 pattern pages");
    }
}
