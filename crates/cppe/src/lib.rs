//! # cppe — Coordinated Page Prefetch and Eviction
//!
//! The primary contribution of Yu et al., *"Coordinated Page Prefetch
//! and Eviction for Memory Oversubscription Management in GPUs"*
//! (IPDPS 2020), implemented as a reusable policy library:
//!
//! * [`chain`] — the three-partition chunk chain (Fig. 2),
//! * [`evict`] — eviction policies: LRU, Random, Reserved-LRU, HPE, and
//!   the paper's **MHPE** (§IV-B, Algorithm 1),
//! * [`prefetch`] — prefetchers: sequential-local (Zheng et al.),
//!   disable-on-full, tree-neighbourhood (Ganguly et al.), and the
//!   paper's **access pattern-aware prefetcher** (§IV-C) with its
//!   pattern buffer and the Scheme-1/Scheme-2 deletion policies,
//! * [`evicted_buffer`] — the wrong-eviction detection buffer,
//! * [`engine`] — [`PolicyEngine`], the driver-side coordinator that
//!   makes eviction prefetch-aware and prefetch eviction-aware,
//! * [`presets`] — the named policy combinations used in every figure.
//!
//! # Quick example
//!
//! ```
//! use cppe::presets::PolicyPreset;
//! use gmmu::page_table::PageTable;
//! use gmmu::types::{ChunkId, VirtPage};
//! use sim_core::TouchVec;
//!
//! // CPPE = MHPE eviction + pattern-aware prefetch.
//! let mut engine = PolicyPreset::Cppe.build(42);
//! let pt = PageTable::new();
//!
//! // A fault on page 3 plans a whole-chunk migration (no pattern yet).
//! engine.note_fault(VirtPage(3));
//! let plan = engine.plan_prefetch(VirtPage(3), &pt);
//! assert_eq!(plan.len(), 16);
//! engine.note_migrated(VirtPage(3).chunk(), plan.len() as u32, true);
//!
//! // Once memory fills, MHPE picks victims and the prefetcher learns
//! // the evicted chunk's touch pattern.
//! engine.note_memory_full();
//! let victim = engine.select_victim(&Default::default()).unwrap();
//! assert_eq!(victim, ChunkId(0));
//! engine.note_evicted(victim, TouchVec::full(), 16);
//! ```

pub mod chain;
pub mod engine;
pub mod evict;
pub mod evicted_buffer;
pub mod prefetch;
pub mod presets;

pub use chain::{ChainEntry, ChunkChain, Partition};
pub use engine::{EngineStats, OverheadSnapshot, PolicyEngine, INTERVAL_PAGES};
pub use evict::{EvictPolicy, InsertAt};
pub use evicted_buffer::EvictedBuffer;
pub use prefetch::{PrefetchCtx, Prefetcher};
pub use presets::PolicyPreset;
