//! Latency attribution: from raw span records to "where did the time
//! go".
//!
//! [`LatencyAttribution::from_spans`] folds a run's span set into
//! per-stage latency distributions (count / total / mean / p50 / p95 /
//! p99 / max, via [`sim_core::stats::Histogram`]), a queueing-vs-service
//! decomposition per contended resource, and fault-time totals per SM
//! and per page region — the three views the paper's 20 µs far-fault
//! budget breaks down into. The harness renders these as report tables;
//! the `profile` binary exports them as `BENCH_profile.json`.

use crate::span::{SpanRecord, SpanStage};
use sim_core::stats::Histogram;
use std::collections::BTreeMap;

/// Pages per attribution region, as a power of two. 64 pages = 256 KiB
/// with 4 KiB pages — coarse enough to group hot data structures,
/// fine enough to separate them.
pub const REGION_PAGES_LOG2: u32 = 6;

/// Latency distribution of one pipeline stage.
#[derive(Debug, Clone)]
pub struct StageSummary {
    /// The stage.
    pub stage: SpanStage,
    /// Spans recorded for this stage.
    pub count: u64,
    /// Sum of span durations (cycles).
    pub total_cycles: u64,
    /// Mean duration (cycles).
    pub mean: f64,
    /// Median duration (nearest-rank).
    pub p50: u64,
    /// 95th percentile duration.
    pub p95: u64,
    /// 99th percentile duration.
    pub p99: u64,
    /// Largest duration.
    pub max: u64,
}

/// Queueing vs. service decomposition for one contended resource.
#[derive(Debug, Clone, Copy)]
pub struct QueueServiceSplit {
    /// The waiting stage.
    pub queue: SpanStage,
    /// The working stage that drains it.
    pub service: SpanStage,
    /// Total cycles spent queueing.
    pub queue_cycles: u64,
    /// Total cycles spent in service.
    pub service_cycles: u64,
}

impl QueueServiceSplit {
    /// Fraction of the resource's total time spent queueing
    /// (0.0 when the resource was never used).
    #[must_use]
    pub fn queue_fraction(&self) -> f64 {
        let total = self.queue_cycles + self.service_cycles;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.queue_cycles as f64 / total as f64
            }
        }
    }
}

/// Fault-latency total attributed to one key (an SM or a page region).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttributedTotal {
    /// The SM index or region index.
    pub key: u64,
    /// Faults whose lifecycle completed under this key.
    pub faults: u64,
    /// Sum of their end-to-end latencies (cycles).
    pub total_cycles: u64,
}

/// The folded view of a run's spans.
#[derive(Debug, Clone, Default)]
pub struct LatencyAttribution {
    /// Per-stage summaries, in [`SpanStage::ALL`] order; stages with no
    /// spans are omitted.
    pub stages: Vec<StageSummary>,
    /// Queueing vs. service per contended resource (walker, driver
    /// fault queue, PCIe retry path), resources with no spans omitted.
    pub splits: Vec<QueueServiceSplit>,
    /// End-to-end fault time per SM, ascending SM index.
    pub per_sm: Vec<AttributedTotal>,
    /// End-to-end fault time per page region
    /// (`page >> REGION_PAGES_LOG2`), ascending region index.
    pub per_region: Vec<AttributedTotal>,
}

impl LatencyAttribution {
    /// Fold `spans` into the attribution views.
    #[must_use]
    pub fn from_spans(spans: &[SpanRecord]) -> Self {
        let mut hists: BTreeMap<SpanStage, Histogram> = BTreeMap::new();
        let mut per_sm: BTreeMap<u64, AttributedTotal> = BTreeMap::new();
        let mut per_region: BTreeMap<u64, AttributedTotal> = BTreeMap::new();
        for s in spans {
            hists.entry(s.stage).or_default().record(s.duration());
            if s.stage == SpanStage::FaultTotal {
                let region = s.page >> REGION_PAGES_LOG2;
                for (key, map) in [(u64::from(s.sm), &mut per_sm), (region, &mut per_region)] {
                    let t = map.entry(key).or_insert(AttributedTotal {
                        key,
                        faults: 0,
                        total_cycles: 0,
                    });
                    t.faults += 1;
                    t.total_cycles += s.duration();
                }
            }
        }

        let stages: Vec<StageSummary> = SpanStage::ALL
            .iter()
            .filter_map(|&stage| {
                let h = hists.get(&stage)?;
                Some(StageSummary {
                    stage,
                    count: h.count(),
                    total_cycles: h.sum(),
                    mean: h.mean(),
                    p50: h.p50(),
                    p95: h.p95(),
                    p99: h.p99(),
                    max: h.max(),
                })
            })
            .collect();

        let total_of = |stage: SpanStage| hists.get(&stage).map_or(0, Histogram::sum);
        let present = |stage: SpanStage| hists.contains_key(&stage);
        let splits = [
            (SpanStage::WalkerQueue, SpanStage::PageWalk),
            (SpanStage::FaultQueueWait, SpanStage::BatchService),
            (SpanStage::RetryBackoff, SpanStage::PcieTransfer),
        ]
        .into_iter()
        .filter(|&(q, s)| present(q) || present(s))
        .map(|(queue, service)| QueueServiceSplit {
            queue,
            service,
            queue_cycles: total_of(queue),
            service_cycles: total_of(service),
        })
        .collect();

        LatencyAttribution {
            stages,
            splits,
            per_sm: per_sm.into_values().collect(),
            per_region: per_region.into_values().collect(),
        }
    }

    /// Summary of `stage`, if any span was recorded for it.
    #[must_use]
    pub fn stage(&self, stage: SpanStage) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.stage == stage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanId, SpanRecorder};

    fn fault_tree(r: &mut SpanRecorder, sm: u16, lane: u32, page: u64, t0: u64) {
        let root = r.open(SpanStage::FaultTotal, t0, SpanId::NONE, sm, lane, page);
        r.complete(SpanStage::TlbL1, t0, t0 + 1, root, sm, lane, page);
        r.complete(
            SpanStage::WalkerQueue,
            t0 + 1,
            t0 + 51,
            root,
            sm,
            lane,
            page,
        );
        r.complete(SpanStage::PageWalk, t0 + 51, t0 + 101, root, sm, lane, page);
        r.complete(
            SpanStage::FaultQueueWait,
            t0 + 101,
            t0 + 201,
            root,
            sm,
            lane,
            page,
        );
        r.close(root, t0 + 301);
    }

    #[test]
    fn per_stage_summaries_and_quantiles() {
        let mut rec = SpanRecorder::new(64);
        for i in 0..10u64 {
            fault_tree(&mut rec, 0, i as u32, i, i * 1000);
        }
        let (spans, _, _) = rec.finish();
        let a = LatencyAttribution::from_spans(&spans);
        let total = a.stage(SpanStage::FaultTotal).unwrap();
        assert_eq!(total.count, 10);
        assert_eq!(total.p50, 301);
        assert_eq!(total.p99, 301);
        assert_eq!(total.max, 301);
        assert!(
            a.stage(SpanStage::Replay).is_none(),
            "absent stages omitted"
        );
    }

    #[test]
    fn queueing_vs_service_split() {
        let mut rec = SpanRecorder::new(64);
        fault_tree(&mut rec, 0, 0, 0, 0);
        let (spans, _, _) = rec.finish();
        let a = LatencyAttribution::from_spans(&spans);
        let walker = a
            .splits
            .iter()
            .find(|s| s.queue == SpanStage::WalkerQueue)
            .unwrap();
        assert_eq!(walker.queue_cycles, 50);
        assert_eq!(walker.service_cycles, 50);
        assert!((walker.queue_fraction() - 0.5).abs() < 1e-12);
        assert!(
            !a.splits.iter().any(|s| s.queue == SpanStage::RetryBackoff),
            "unused resources omitted"
        );
    }

    #[test]
    fn per_sm_and_per_region_totals() {
        let mut rec = SpanRecorder::new(64);
        fault_tree(&mut rec, 0, 0, 0, 0); // region 0
        fault_tree(&mut rec, 0, 1, 1, 5000); // region 0
        fault_tree(&mut rec, 3, 12, 64, 9000); // region 1
        let (spans, _, _) = rec.finish();
        let a = LatencyAttribution::from_spans(&spans);
        assert_eq!(a.per_sm.len(), 2);
        assert_eq!(
            a.per_sm[0],
            AttributedTotal {
                key: 0,
                faults: 2,
                total_cycles: 602
            }
        );
        assert_eq!(a.per_sm[1].key, 3);
        assert_eq!(a.per_region.len(), 2);
        assert_eq!(a.per_region[0].faults, 2, "pages 0 and 1 share region 0");
        assert_eq!(
            a.per_region[1],
            AttributedTotal {
                key: 1,
                faults: 1,
                total_cycles: 301
            }
        );
    }

    #[test]
    fn empty_spans_fold_to_empty_attribution() {
        let a = LatencyAttribution::from_spans(&[]);
        assert!(a.stages.is_empty());
        assert!(a.splits.is_empty());
        assert!(a.per_sm.is_empty());
    }
}
