//! The one CSV writer.
//!
//! Every CSV the workspace emits (harness tables, the per-epoch
//! timeline) routes through [`CsvWriter`], so escaping and schema
//! discipline live in exactly one place: fields containing commas,
//! quotes or newlines are quoted with doubled quotes (RFC 4180), and
//! every row is checked against the header width.

use std::fmt::Write as _;

/// Escape one CSV field if it needs quoting.
#[must_use]
pub fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Schema-checked CSV emitter.
#[derive(Debug, Clone)]
pub struct CsvWriter {
    width: usize,
    out: String,
}

impl CsvWriter {
    /// Start a CSV with the given header.
    ///
    /// # Panics
    /// Panics on an empty header.
    #[must_use]
    pub fn new<S: AsRef<str>>(header: &[S]) -> Self {
        assert!(!header.is_empty(), "CSV needs at least one column");
        let mut w = CsvWriter {
            width: header.len(),
            out: String::new(),
        };
        w.write_row(header);
        w
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics when the row width does not match the header.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        assert_eq!(
            cells.len(),
            self.width,
            "CSV row width {} != header width {}",
            cells.len(),
            self.width
        );
        self.write_row(cells);
    }

    fn write_row<S: AsRef<str>>(&mut self, cells: &[S]) {
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{}", escape(c.as_ref()));
        }
        self.out.push('\n');
    }

    /// The finished CSV text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

/// Validate that `csv` parses with a consistent column count and return
/// its header fields. Quoted fields (RFC 4180, doubled quotes) are
/// handled; a quote opened and never closed is an error.
///
/// # Errors
/// Returns a description of the first malformed line.
pub fn validate(csv: &str) -> Result<Vec<String>, String> {
    let mut header: Option<Vec<String>> = None;
    let mut line_no = 0usize;
    let mut rest = csv;
    while !rest.is_empty() {
        line_no += 1;
        let (fields, consumed) = parse_record(rest, line_no)?;
        rest = &rest[consumed..];
        match &header {
            None => header = Some(fields),
            Some(h) => {
                if fields.len() != h.len() {
                    return Err(format!(
                        "line {line_no}: {} fields, header has {}",
                        fields.len(),
                        h.len()
                    ));
                }
            }
        }
    }
    header.ok_or_else(|| "empty CSV".to_string())
}

/// Parse one CSV record starting at the head of `s`; returns the fields
/// and the bytes consumed (including the record terminator).
fn parse_record(s: &str, line_no: usize) -> Result<(Vec<String>, usize), String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = s.char_indices().peekable();
    let mut in_quotes = false;
    while let Some((i, c)) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek().is_some_and(|&(_, n)| n == '"') {
                        field.push('"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' if field.is_empty() => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut field)),
                '\n' => {
                    fields.push(field);
                    return Ok((fields, i + 1));
                }
                '\r' => {}
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(format!("line {line_no}: unterminated quoted field"));
    }
    fields.push(field);
    Ok((fields, s.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_rows_roundtrip() {
        let mut w = CsvWriter::new(&["a", "b"]);
        w.row(&["1", "2"]);
        let csv = w.finish();
        assert_eq!(csv, "a,b\n1,2\n");
        assert_eq!(validate(&csv).unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn escaping_commas_quotes_newlines() {
        let mut w = CsvWriter::new(&["x", "y"]);
        w.row(&["a,b", "say \"hi\"\nthere"]);
        let csv = w.finish();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\nthere\""));
        assert_eq!(validate(&csv).unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut w = CsvWriter::new(&["a", "b"]);
        w.row(&["only-one"]);
    }

    #[test]
    fn validate_rejects_ragged_and_unterminated() {
        assert!(validate("a,b\n1,2,3\n").is_err());
        assert!(validate("a,b\n\"unterminated,2\n").is_err());
        assert!(validate("").is_err());
    }
}
