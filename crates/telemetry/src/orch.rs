//! Orchestrator metrics: counters for the crash-safe sweep service.
//!
//! `harness::orchestrator` aggregates these behind its scheduler lock
//! (they are control-plane counters, not hot-path samples) and renders
//! them into its end-of-run report and the result store's summary. The
//! dotted names follow the registry conventions in [`crate::metrics`]
//! so dashboards can treat sweep-level and run-level series uniformly.

use crate::json;
use std::fmt::Write as _;

/// Counters describing one orchestrated sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrchMetrics {
    /// Cells requested by the spec (before dedupe/resume filtering).
    pub cells_requested: u64,
    /// Duplicate submissions collapsed by fingerprint within one spec.
    pub cells_deduped: u64,
    /// Cells skipped because the result store already held their
    /// fingerprint (`--resume`).
    pub cells_resumed: u64,
    /// Cells that completed (any simulator outcome, including a run
    /// that crashed *in simulation* — that is still a computed result).
    pub cells_completed: u64,
    /// Cells recorded as `Failed` after exhausting their retry budget.
    pub cells_failed: u64,
    /// Leases handed to workers.
    pub leases_issued: u64,
    /// Leases expired past their deadline and re-queued (or failed).
    pub leases_expired: u64,
    /// Cell attempts re-issued after a panic or an expired lease.
    pub retries: u64,
    /// Worker panics contained by `catch_unwind`.
    pub panics_caught: u64,
    /// Worker threads that died (chaos kill or panic escape).
    pub workers_died: u64,
    /// Completions that arrived after their lease had expired and the
    /// cell was already resolved elsewhere (discarded).
    pub stale_completions: u64,
    /// 1 when the pool shed to serial in-process execution because
    /// every worker died with cells still pending.
    pub shed_serial: u64,
    /// Journal lines appended this run.
    pub journal_appends: u64,
    /// Journal bytes written this run.
    pub journal_bytes: u64,
    /// Snapshot compactions performed.
    pub compactions: u64,
}

impl OrchMetrics {
    /// Render as one JSON object under stable dotted names.
    #[must_use]
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.entries().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json::string(name));
        }
        out.push('}');
        out
    }

    /// `(dotted name, value)` pairs, in schema order.
    #[must_use]
    pub fn entries(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("orch.cells.requested", self.cells_requested),
            ("orch.cells.deduped", self.cells_deduped),
            ("orch.cells.resumed", self.cells_resumed),
            ("orch.cells.completed", self.cells_completed),
            ("orch.cells.failed", self.cells_failed),
            ("orch.leases.issued", self.leases_issued),
            ("orch.leases.expired", self.leases_expired),
            ("orch.retries", self.retries),
            ("orch.panics.caught", self.panics_caught),
            ("orch.workers.died", self.workers_died),
            ("orch.stale.completions", self.stale_completions),
            ("orch.shed.serial", self.shed_serial),
            ("orch.journal.appends", self.journal_appends),
            ("orch.journal.bytes", self.journal_bytes),
            ("orch.compactions", self.compactions),
        ]
    }

    /// Plain-text report section (one `name = value` line per counter,
    /// zero-valued counters included — absence of a line would be
    /// ambiguous in a crash-investigation artifact).
    #[must_use]
    pub fn report_section(&self) -> String {
        let mut out = String::from("orchestrator counters\n");
        for (name, v) in self.entries() {
            let _ = writeln!(out, "  {name} = {v}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_json_is_well_formed() {
        let m = OrchMetrics {
            cells_requested: 12,
            leases_issued: 14,
            journal_bytes: 4096,
            ..OrchMetrics::default()
        };
        let doc = m.summary_json();
        json::validate(&doc).unwrap();
        let v = json::parse(&doc).unwrap();
        assert_eq!(v.get("orch.cells.requested").unwrap().as_u64(), Some(12));
        assert_eq!(v.get("orch.journal.bytes").unwrap().as_u64(), Some(4096));
    }

    #[test]
    fn report_section_lists_every_counter() {
        let m = OrchMetrics::default();
        let s = m.report_section();
        assert_eq!(s.lines().count(), 1 + m.entries().len());
        assert!(s.contains("orch.leases.expired = 0"));
    }
}
