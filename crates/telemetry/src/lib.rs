//! # telemetry — unified observability for the simulator stack
//!
//! Before this crate, observability was scattered across four
//! disconnected carriers: `sim_core::stats::StatSet`, the bespoke
//! per-run timeline in `gpu::sim`, `uvm::DriverStats`, and per-binary
//! CSV glue in the harness. This crate unifies them:
//!
//! * [`event`] — the typed [`TraceEvent`] taxonomy (far-fault
//!   lifecycle, migration DMA start/retry/abort, evictions, prefetch
//!   decisions, thrash-ladder rung transitions, injected faults),
//! * [`ring`] — the bounded [`TraceRing`] event buffer (drop-oldest,
//!   never panics, counts drops),
//! * [`metrics`] — [`MetricsRegistry`]: counters/gauges/histograms
//!   under stable dotted names, absorbing [`sim_core::StatSet`], with
//!   an epoch sampler that snapshots totals at fault-batch granularity
//!   ([`EpochSeries`]),
//! * [`tracer`] — [`Tracer`], the cheap handle the `uvm` driver and
//!   `gpu` simulator carry; a disabled tracer is a no-op that allocates
//!   nothing and draws no state, so runs with telemetry off are
//!   bit-identical to runs that never heard of this crate,
//! * [`span`] — [`SpanRecorder`]: cycle-stamped span trees over the
//!   fault lifecycle (TLB probes → walker → fault-queue wait → batch
//!   service → replay) and the driver batch pipeline, with the same
//!   bounded-ring and zero-cost-when-disabled guarantees as the event
//!   ring,
//! * [`attr`] — [`LatencyAttribution`]: spans folded into per-stage
//!   latency quantiles, queueing-vs-service splits, and per-SM /
//!   per-page-region fault-time totals,
//! * [`csv`] — the one escaped, schema-checked CSV writer every
//!   emitter routes through,
//! * [`json`] — dependency-free JSON emission helpers and a validating
//!   parser (used by the golden-schema tests and the CI artifact
//!   check),
//! * [`export`] — the exporters: wide per-epoch timeline CSV, JSON run
//!   summary, Chrome trace-event JSON loadable in Perfetto, and the
//!   crash-safe [`export::write_atomic`] file writer,
//! * [`orch`] — [`OrchMetrics`], the sweep-orchestrator counters
//!   (leases issued/expired, cells resumed/deduped, journal bytes),
//! * [`monitor`] — [`Monitor`]: the periodic in-run snapshot sampler
//!   walking the registry on cycle/wall cadence into a bounded ring of
//!   [`MonitorSnapshot`]s (the live view the status server and flight
//!   recorder read),
//! * [`expose`] — [`StatusServer`]: a std-only `/metrics` (Prometheus
//!   text exposition) + `/status` (JSON) + `/healthz` server for
//!   long-running sweeps, plus the exposition renderer itself,
//! * [`flightrec`] — [`FlightRecorder`]: breadcrumbs, open spans and
//!   the last monitor snapshots dumped as an atomic-rename JSON dossier
//!   when a run dies (chaos kill, contained panic).
//!
//! ## Overhead guarantee
//!
//! Every entry point checks [`Tracer::enabled`] first (one branch on a
//! niche-optimized `Option`); event payloads are built inside closures
//! that are never invoked when tracing is off. Telemetry observes
//! simulation state and never mutates it, so enabling it cannot change
//! a run's timing or results either — only record them.

pub mod attr;
pub mod csv;
pub mod decision;
pub mod event;
pub mod export;
pub mod expose;
pub mod flightrec;
pub mod json;
pub mod ledger;
pub mod metrics;
pub mod monitor;
pub mod orch;
pub mod ring;
pub mod span;
pub mod tracer;

pub use attr::{AttributedTotal, LatencyAttribution, QueueServiceSplit, StageSummary};
pub use csv::CsvWriter;
pub use decision::{DecisionEvent, DecisionKind, DecisionRecord, DecisionRing};
pub use event::{EventRecord, InjectedFaultKind, TraceEvent};
pub use export::TraceFormat;
pub use expose::{OpsSource, StatusServer};
pub use flightrec::FlightRecorder;
pub use ledger::{PageLedger, PageLife};
pub use metrics::{EpochRow, EpochSeries, MetricKind, MetricsRegistry};
pub use monitor::{saturating_millis, Monitor, MonitorSeries, MonitorSnapshot};
pub use orch::OrchMetrics;
pub use ring::TraceRing;
pub use span::{SpanId, SpanRecord, SpanRecorder, SpanStage};
pub use tracer::{RunTelemetry, TraceConfig, Tracer};
