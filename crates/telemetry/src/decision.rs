//! Typed policy-decision provenance events.
//!
//! The event ring ([`crate::ring`]) answers *what happened*; the
//! decision ring answers *why*: every eviction and prefetch the driver
//! performs while auditing is on records which policy made the call,
//! which degradation-ladder rung it was made under, and the candidate
//! window (eviction) or planned page set (prefetch) it chose from.
//! Decision events carry `Vec` payloads, so they live in their own
//! non-`Copy` ring instead of widening [`crate::event::TraceEvent`] —
//! the existing exporters never see them and stay bit-identical when
//! auditing is off.

use std::collections::VecDeque;

/// Which kind of policy decision was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// A victim chunk was selected for eviction.
    Eviction,
    /// A migration plan was drawn up for a far fault.
    Prefetch,
}

impl DecisionKind {
    /// Stable lowercase name for exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DecisionKind::Eviction => "eviction",
            DecisionKind::Prefetch => "prefetch",
        }
    }
}

/// One policy decision with full provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionEvent {
    /// Eviction or prefetch.
    pub kind: DecisionKind,
    /// Name of the policy that made the call (eviction policy or
    /// prefetcher), as reported by the engine *at decision time* — so
    /// fallback-ladder decisions carry the fallback policy's name.
    pub policy: &'static str,
    /// Which branch of the policy produced the decision (prefetchers:
    /// the plan origin, e.g. `pattern-hit`; evictions: the selection
    /// trigger, e.g. `capacity`).
    pub origin: &'static str,
    /// Thrash-degradation-ladder rung at decision time.
    pub rung: u32,
    /// What was chosen: the victim chunk id (eviction) or the faulted
    /// virtual page the plan is anchored on (prefetch).
    pub chosen: u64,
    /// The set the decision drew from: candidate chunk ids in
    /// consideration order (eviction, bounded preview) or the exact
    /// planned virtual pages after driver capping (prefetch).
    pub pages: Vec<u64>,
}

/// A decision stamped with the simulated cycle it was recorded at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Simulated-cycle timestamp.
    pub cycle: u64,
    /// The decision.
    pub event: DecisionEvent,
}

/// Drop-oldest bounded buffer of [`DecisionRecord`]s (the non-`Copy`
/// sibling of [`crate::ring::TraceRing`]).
#[derive(Debug, Clone)]
pub struct DecisionRing {
    buf: VecDeque<DecisionRecord>,
    capacity: usize,
    dropped: u64,
}

impl DecisionRing {
    /// Ring holding at most `capacity` decisions (capacity 0 keeps
    /// nothing and counts everything as dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        DecisionRing {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Record a decision, evicting the oldest if the ring is full.
    pub fn push(&mut self, rec: DecisionRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }

    /// Decisions currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the ring empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Decisions dropped because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate held decisions, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &DecisionRecord> {
        self.buf.iter()
    }

    /// Drain into a `Vec`, oldest first.
    #[must_use]
    pub fn into_vec(self) -> Vec<DecisionRecord> {
        self.buf.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: u64) -> DecisionRecord {
        DecisionRecord {
            cycle,
            event: DecisionEvent {
                kind: DecisionKind::Eviction,
                policy: "lru",
                origin: "capacity",
                rung: 0,
                chosen: cycle,
                pages: vec![cycle, cycle + 1],
            },
        }
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(DecisionKind::Eviction.name(), "eviction");
        assert_eq!(DecisionKind::Prefetch.name(), "prefetch");
    }

    #[test]
    fn overflow_drops_oldest_without_panicking() {
        let mut r = DecisionRing::new(3);
        for i in 0..10 {
            r.push(rec(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        let cycles: Vec<u64> = r.iter().map(|d| d.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9], "newest survive");
    }

    #[test]
    fn zero_capacity_counts_only() {
        let mut r = DecisionRing::new(0);
        r.push(rec(1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn into_vec_preserves_order_and_payloads() {
        let mut r = DecisionRing::new(8);
        for i in 0..4 {
            r.push(rec(i));
        }
        let v = r.into_vec();
        assert_eq!(v.len(), 4);
        assert!(v.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        assert_eq!(v[2].event.pages, vec![2, 3]);
    }
}
