//! Live exposition: Prometheus text rendering and a std-only status
//! server.
//!
//! [`prometheus_text`] renders any `(name, kind, value)` metric set in
//! the Prometheus text exposition format (version 0.0.4): dotted names
//! sanitized to `[a-zA-Z0-9_]`, one `# TYPE` line per metric.
//!
//! [`StatusServer`] is the long-run escape hatch from "black box until
//! exit": a `std::net::TcpListener` on a background thread serving
//!
//! * `GET /metrics`  — Prometheus exposition of the caller's registry,
//! * `GET /status`   — a caller-defined JSON status document,
//! * `GET /healthz`  — `ok`.
//!
//! No new dependencies: a minimal HTTP/1.1 responder is ~40 lines and
//! all we need — every response carries `Content-Length` and
//! `Connection: close`, so `curl`, Prometheus scrapers and browsers are
//! all happy. The accept loop polls non-blockingly and exits on a stop
//! flag; dropping the server joins the thread, so tests and binaries
//! shut down cleanly.

use crate::metrics::MetricKind;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sanitize a dotted metric name into the Prometheus charset
/// (`[a-zA-Z0-9_]`, non-digit first character).
#[must_use]
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render metrics in the Prometheus text exposition format.
#[must_use]
pub fn prometheus_text<'a>(
    metrics: impl IntoIterator<Item = (&'a str, MetricKind, u64)>,
) -> String {
    let mut s = String::new();
    for (name, kind, value) in metrics {
        let name = prometheus_name(name);
        let kind = match kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        };
        s.push_str(&format!("# TYPE {name} {kind}\n{name} {value}\n"));
    }
    s
}

/// What the server exposes. The implementor renders fresh documents on
/// every request (the server holds no metric state of its own).
pub trait OpsSource: Send + Sync {
    /// Body for `GET /metrics` (Prometheus text exposition).
    fn metrics_text(&self) -> String;
    /// Body for `GET /status` (one JSON document).
    fn status_json(&self) -> String;
}

/// The background status server. Drop (or [`StatusServer::shutdown`])
/// stops the accept loop and joins the thread.
#[derive(Debug)]
pub struct StatusServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl StatusServer {
    /// Bind `addr` (use port 0 for an ephemeral port — read the actual
    /// one back from [`StatusServer::local_addr`]) and serve `source`
    /// until dropped.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn start(addr: &str, source: Arc<dyn OpsSource>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("status-server".into())
            .spawn(move || accept_loop(&listener, &stop_flag, source.as_ref()))?;
        Ok(StatusServer {
            local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves an ephemeral port request).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stop the accept loop and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, source: &dyn OpsSource) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One request per connection; errors on a single
                // connection never take the server down.
                let _ = serve_one(stream, source);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(15)),
        }
    }
}

fn serve_one(mut stream: TcpStream, source: &dyn OpsSource) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 4096];
    let mut req = Vec::new();
    // Read until the end of the request head (we ignore any body).
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        req.extend_from_slice(&buf[..n]);
        if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 16 * 1024 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&req);
    let path = head
        .lines()
        .next()
        .and_then(|line| {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("GET"), Some(path)) => Some(path.to_string()),
                _ => None,
            }
        })
        .unwrap_or_default();
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", source.metrics_text()),
        "/status" => ("200 OK", "application/json", source.status_json()),
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        _ => (
            "404 Not Found",
            "text/plain",
            "not found (try /metrics, /status, /healthz)\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeSource;

    impl OpsSource for FakeSource {
        fn metrics_text(&self) -> String {
            prometheus_text([
                ("orch.cells.completed", MetricKind::Counter, 7),
                ("orch.cells.pending", MetricKind::Gauge, 3),
            ])
        }
        fn status_json(&self) -> String {
            "{\"schema\":\"test-status\",\"ok\":true}".to_string()
        }
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("orch.cells.done"), "orch_cells_done");
        assert_eq!(prometheus_name("a-b c"), "a_b_c");
        assert_eq!(prometheus_name("9lives"), "_9lives");
    }

    #[test]
    fn prometheus_text_has_type_lines() {
        let t = prometheus_text([("cppe.faults", MetricKind::Counter, 42)]);
        assert_eq!(t, "# TYPE cppe_faults counter\ncppe_faults 42\n");
    }

    #[test]
    fn server_serves_all_routes_on_ephemeral_port() {
        let server = StatusServer::start("127.0.0.1:0", Arc::new(FakeSource)).unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0, "ephemeral port resolved");

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("# TYPE orch_cells_completed counter"));
        assert!(metrics.contains("orch_cells_pending 3"));

        let status = get(addr, "/status");
        assert!(status.contains("application/json"));
        assert!(status.contains("\"schema\":\"test-status\""));

        let health = get(addr, "/healthz");
        assert!(health.ends_with("ok\n"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        server.shutdown();
    }
}
