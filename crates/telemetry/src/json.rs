//! Minimal JSON emission and validation helpers.
//!
//! The exporters build JSON by hand (this crate takes no external
//! dependencies), so the escaping rules and a syntax checker live here.
//! [`validate`] is a strict recursive-descent parser used by tests and
//! the `validate-trace` binary to guarantee every emitted document is
//! well-formed.

use std::fmt::Write as _;

/// Escape a string for embedding inside JSON quotes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A quoted, escaped JSON string literal.
#[must_use]
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Validate that `s` is one well-formed JSON value.
///
/// # Errors
/// Returns a description (with byte offset) of the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, b"true"),
        Some(b'f') => parse_literal(b, pos, b"false"),
        Some(b'n') => parse_literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // [
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b
                        .get(*pos + 2..*pos + 6)
                        .ok_or_else(|| format!("truncated \\u escape at byte {pos}", pos = *pos))?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
            },
            c if c < 0x20 => {
                return Err(format!(
                    "unescaped control byte in string at {pos}",
                    pos = *pos
                ))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("expected digits at byte {pos}", pos = *pos));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!(
                "expected fraction digits at byte {pos}",
                pos = *pos
            ));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("expected exponent digits at byte {start}"));
        }
    }
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    *pos - start
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.get(*pos..*pos + lit.len()) == Some(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(string("x"), "\"x\"");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn accepts_well_formed_documents() {
        validate("{}").unwrap();
        validate("[]").unwrap();
        validate("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":null},\"d\":\"x\\ny\"}").unwrap();
        validate("  [true, false, null]  ").unwrap();
        validate(&string("quote \" backslash \\")).unwrap();
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(validate("{").is_err());
        assert!(validate("[1,]").is_err());
        assert!(validate("{\"a\":1,}").is_err());
        assert!(validate("{'a':1}").is_err());
        assert!(validate("[1] trailing").is_err());
        assert!(validate("\"unterminated").is_err());
        assert!(validate("01abc").is_err());
        assert!(validate("1.").is_err());
    }
}
