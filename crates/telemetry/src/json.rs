//! Minimal JSON emission, parsing and validation helpers.
//!
//! The exporters build JSON by hand (this crate takes no external
//! dependencies), so the escaping rules and a parser live here.
//! [`validate`] is a strict syntax check used by tests and the
//! `validate-trace` binary to guarantee every emitted document is
//! well-formed; [`parse`] returns the document as a [`Value`] tree —
//! the orchestrator's result store uses it to read its JSONL journal
//! and snapshot back on `--resume`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string for embedding inside JSON quotes.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A quoted, escaped JSON string literal.
#[must_use]
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// One parsed JSON value.
///
/// Numbers keep their raw source text ([`Value::Num`]) so 64-bit
/// counters round-trip bit-exactly — `u64::MAX` survives a
/// journal-write/journal-read cycle that an `f64` representation would
/// silently round.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source text (e.g. `"-3e2"`, `"42"`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order normalised).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup (`None` for non-objects / missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64` (exact — integer source text only).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// True for `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parse one well-formed JSON document into a [`Value`].
///
/// # Errors
/// Returns a description (with byte offset) of the first syntax error.
pub fn parse(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

/// Validate that `s` is one well-formed JSON value.
///
/// # Errors
/// Returns a description (with byte offset) of the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    parse(s).map(|_| ())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => parse_literal(b, pos, b"true").map(|()| Value::Bool(true)),
        Some(b'f') => parse_literal(b, pos, b"false").map(|()| Value::Bool(false)),
        Some(b'n') => parse_literal(b, pos, b"null").map(|()| Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // {
    skip_ws(b, pos);
    let mut map = BTreeMap::new();
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // [
    skip_ws(b, pos);
    let mut items = Vec::new();
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        skip_ws(b, pos);
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"') => {
                    out.push('"');
                    *pos += 2;
                }
                Some(b'\\') => {
                    out.push('\\');
                    *pos += 2;
                }
                Some(b'/') => {
                    out.push('/');
                    *pos += 2;
                }
                Some(b'b') => {
                    out.push('\u{8}');
                    *pos += 2;
                }
                Some(b'f') => {
                    out.push('\u{c}');
                    *pos += 2;
                }
                Some(b'n') => {
                    out.push('\n');
                    *pos += 2;
                }
                Some(b'r') => {
                    out.push('\r');
                    *pos += 2;
                }
                Some(b't') => {
                    out.push('\t');
                    *pos += 2;
                }
                Some(b'u') => {
                    let hex = b
                        .get(*pos + 2..*pos + 6)
                        .ok_or_else(|| format!("truncated \\u escape at byte {pos}", pos = *pos))?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                    }
                    // Safe: all-hex ASCII checked above.
                    let code = u32::from_str_radix(std::str::from_utf8(hex).unwrap(), 16).unwrap();
                    // Our own escaper only emits \u00xx control codes;
                    // lone surrogates from foreign documents degrade to
                    // the replacement character rather than erroring.
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
            },
            c if c < 0x20 => {
                return Err(format!(
                    "unescaped control byte in string at {pos}",
                    pos = *pos
                ))
            }
            _ => {
                // Consume one full UTF-8 scalar (input is a &str, so
                // the byte stream is valid UTF-8 by construction).
                let start = *pos;
                *pos += 1;
                while b.get(*pos).is_some_and(|&nb| nb & 0xC0 == 0x80) {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).unwrap());
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("expected digits at byte {pos}", pos = *pos));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!(
                "expected fraction digits at byte {pos}",
                pos = *pos
            ));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("expected exponent digits at byte {start}"));
        }
    }
    // Safe: the slice is ASCII digits/sign/dot/exponent by construction.
    Ok(Value::Num(
        std::str::from_utf8(&b[start..*pos]).unwrap().to_string(),
    ))
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    *pos - start
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.get(*pos..*pos + lit.len()) == Some(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(string("x"), "\"x\"");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn accepts_well_formed_documents() {
        validate("{}").unwrap();
        validate("[]").unwrap();
        validate("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":null},\"d\":\"x\\ny\"}").unwrap();
        validate("  [true, false, null]  ").unwrap();
        validate(&string("quote \" backslash \\")).unwrap();
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(validate("{").is_err());
        assert!(validate("[1,]").is_err());
        assert!(validate("{\"a\":1,}").is_err());
        assert!(validate("{'a':1}").is_err());
        assert!(validate("[1] trailing").is_err());
        assert!(validate("\"unterminated").is_err());
        assert!(validate("01abc").is_err());
        assert!(validate("1.").is_err());
    }

    #[test]
    fn parses_typed_values() {
        let v = parse("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":null},\"d\":true}").unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert!((arr[1].as_f64().unwrap() - 2.5).abs() < 1e-12);
        assert!((arr[2].as_f64().unwrap() + 300.0).abs() < 1e-12);
        assert!(v.get("b").unwrap().get("c").unwrap().is_null());
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn u64_round_trips_exactly() {
        let doc = format!("{{\"n\":{}}}", u64::MAX);
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::MAX));
        // f64 would have rounded this; the raw-text path must not.
        assert_eq!(v.get("n").unwrap().as_f64(), Some(u64::MAX as f64));
    }

    #[test]
    fn strings_unescape_through_parse() {
        let v = parse(&string("tab\there \"q\" back\\slash \u{1}")).unwrap();
        assert_eq!(v.as_str(), Some("tab\there \"q\" back\\slash \u{1}"));
        let uni = parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(uni.as_str(), Some("Aé"));
    }

    #[test]
    fn multibyte_strings_survive() {
        let v = parse("\"héllo → wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
    }
}
