//! The tracer handle carried through the stack.
//!
//! [`Tracer`] is a niche-optimized `Option<Box<_>>`: disabled it is one
//! machine word, every method is a single branch, and event payloads
//! are built inside closures that never run. The `uvm` driver owns the
//! run's tracer; [`Tracer::finish`] turns it into the [`RunTelemetry`]
//! attached to `gpu::RunResult`.
//!
//! Besides point events and epoch metrics, the tracer records the span
//! trees of [`crate::span`]: `span_open`/`span_close` bracket a stage
//! whose end is not yet known, `span` records one whose endpoints are.
//! All three are no-ops (returning [`SpanId::NONE`]) when disabled.

use crate::decision::{DecisionEvent, DecisionRecord, DecisionRing};
use crate::event::{EventRecord, TraceEvent};
use crate::metrics::{EpochSeries, MetricKind, MetricsRegistry};
use crate::monitor::{Monitor, MonitorSeries};
use crate::ring::TraceRing;
use crate::span::{SpanId, SpanRecord, SpanRecorder, SpanStage};
use sim_core::stats::Histogram;
use std::collections::BTreeMap;

/// Tracing knobs (part of `gpu::GpuConfig`; `Copy` so configs stay
/// plain data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. Off (the default) records nothing, allocates
    /// nothing and leaves runs bit-identical.
    pub enabled: bool,
    /// Event ring capacity (newest events win on overflow).
    pub ring_capacity: usize,
    /// Span ring capacity (newest closed spans win on overflow).
    pub span_capacity: usize,
    /// Record policy-decision provenance ([`DecisionEvent`]s). Off by
    /// default — decisions carry owned candidate/plan sets, so auditing
    /// is opt-in on top of `enabled` (it has no effect when `enabled`
    /// is false) and leaves every existing export bit-identical when
    /// off.
    pub audit: bool,
    /// Decision ring capacity (newest decisions win on overflow).
    pub decision_capacity: usize,
    /// Periodic monitor sampling ([`crate::monitor`]). Off by default;
    /// like `audit` it has no effect when `enabled` is false and leaves
    /// every existing export bit-identical when off.
    pub monitor: bool,
    /// Minimum simulated cycles between monitor samples (`u64::MAX`
    /// disables cycle-driven sampling).
    pub monitor_cadence: u64,
    /// Wall-clock milliseconds between forced monitor samples (0
    /// disables wall-driven sampling).
    pub monitor_wall_ms: u64,
    /// Monitor ring capacity (newest snapshots win on overflow).
    pub monitor_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            ring_capacity: 65_536,
            span_capacity: 65_536,
            audit: false,
            decision_capacity: 65_536,
            monitor: false,
            monitor_cadence: 50_000,
            monitor_wall_ms: 250,
            monitor_capacity: 4_096,
        }
    }
}

impl TraceConfig {
    /// Tracing on with the default ring capacities.
    #[must_use]
    pub fn on() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }

    /// Tracing *and* decision auditing on with the default capacities.
    #[must_use]
    pub fn audited() -> Self {
        TraceConfig {
            enabled: true,
            audit: true,
            ..TraceConfig::default()
        }
    }

    /// Tracing *and* periodic monitor sampling on with the default
    /// cadence and capacities.
    #[must_use]
    pub fn monitored() -> Self {
        TraceConfig {
            enabled: true,
            monitor: true,
            ..TraceConfig::default()
        }
    }
}

#[derive(Debug)]
struct TracerInner {
    ring: TraceRing,
    registry: MetricsRegistry,
    spans: SpanRecorder,
    /// Present only when `TraceConfig::audit` was set.
    decisions: Option<DecisionRing>,
    /// Present only when `TraceConfig::monitor` was set.
    monitor: Option<Monitor>,
}

/// The recording handle. Cheap to hold, free when disabled.
#[derive(Debug, Default)]
pub struct Tracer {
    inner: Option<Box<TracerInner>>,
}

impl Tracer {
    /// A tracer that records nothing (the default).
    #[must_use]
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Build from a config — disabled unless `cfg.enabled`.
    #[must_use]
    pub fn new(cfg: TraceConfig) -> Self {
        if !cfg.enabled {
            return Tracer::disabled();
        }
        Tracer {
            inner: Some(Box::new(TracerInner {
                ring: TraceRing::new(cfg.ring_capacity),
                registry: MetricsRegistry::new(),
                spans: SpanRecorder::new(cfg.span_capacity),
                decisions: cfg.audit.then(|| DecisionRing::new(cfg.decision_capacity)),
                monitor: cfg.monitor.then(|| {
                    Monitor::new(
                        cfg.monitor_cadence,
                        cfg.monitor_wall_ms,
                        cfg.monitor_capacity,
                    )
                }),
            })),
        }
    }

    /// Is this tracer recording?
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Is decision auditing recording? (Implies [`Tracer::enabled`].)
    #[inline]
    #[must_use]
    pub fn audit_enabled(&self) -> bool {
        self.inner.as_deref().is_some_and(|i| i.decisions.is_some())
    }

    /// Is monitor sampling on? (Implies [`Tracer::enabled`].)
    #[inline]
    #[must_use]
    pub fn monitor_enabled(&self) -> bool {
        self.inner.as_deref().is_some_and(|i| i.monitor.is_some())
    }

    /// Record an event at `cycle`. The payload closure only runs when
    /// tracing is on.
    #[inline]
    pub fn emit(&mut self, cycle: u64, event: impl FnOnce() -> TraceEvent) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.ring.push(EventRecord {
                cycle,
                event: event(),
            });
        }
    }

    /// Record a policy decision at `cycle`. The payload closure only
    /// runs when auditing is on, so candidate/plan sets are never built
    /// otherwise; callers that need to gather the set *before* a
    /// mutating selection call should gate on [`Tracer::audit_enabled`].
    #[inline]
    pub fn decision(&mut self, cycle: u64, event: impl FnOnce() -> DecisionEvent) {
        if let Some(ring) = self.inner.as_deref_mut().and_then(|i| i.decisions.as_mut()) {
            ring.push(DecisionRecord {
                cycle,
                event: event(),
            });
        }
    }

    /// Open a span at `start` under `parent` (pass [`SpanId::NONE`] for
    /// a root). Returns [`SpanId::NONE`] when disabled; closing that is
    /// a no-op, so callers need no enabled-check of their own.
    #[inline]
    pub fn span_open(
        &mut self,
        stage: SpanStage,
        start: u64,
        parent: SpanId,
        sm: u16,
        lane: u32,
        page: u64,
    ) -> SpanId {
        match self.inner.as_deref_mut() {
            Some(inner) => inner.spans.open(stage, start, parent, sm, lane, page),
            None => SpanId::NONE,
        }
    }

    /// Close span `id` at `end`. Returns whether a span was actually
    /// closed (false when disabled, already closed, or `NONE`).
    #[inline]
    pub fn span_close(&mut self, id: SpanId, end: u64) -> bool {
        match self.inner.as_deref_mut() {
            Some(inner) => inner.spans.close(id, end),
            None => false,
        }
    }

    /// Record a complete span (both endpoints known).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        stage: SpanStage,
        start: u64,
        end: u64,
        parent: SpanId,
        sm: u16,
        lane: u32,
        page: u64,
    ) -> SpanId {
        match self.inner.as_deref_mut() {
            Some(inner) => inner
                .spans
                .complete(stage, start, end, parent, sm, lane, page),
            None => SpanId::NONE,
        }
    }

    /// Sample one epoch: set every `(name, kind, value)` into the
    /// registry (registering on first sight) and snapshot the totals at
    /// `cycle`. Emitters must pass a stable set in a stable order. The
    /// tracer appends its own loss accounting — `telemetry.ring.dropped`
    /// and `telemetry.spans.dropped` — so ring overflow is visible in
    /// the exported timeline, not just at end of run.
    pub fn sample_epoch<'a>(
        &mut self,
        cycle: u64,
        metrics: impl IntoIterator<Item = (&'a str, MetricKind, u64)>,
    ) {
        if let Some(inner) = self.inner.as_deref_mut() {
            for (name, kind, value) in metrics {
                inner.registry.set(name, kind, value);
            }
            let ring_dropped = inner.ring.dropped();
            let span_dropped = inner.spans.dropped();
            inner
                .registry
                .set("telemetry.ring.dropped", MetricKind::Counter, ring_dropped);
            inner
                .registry
                .set("telemetry.spans.dropped", MetricKind::Counter, span_dropped);
            // Only audited runs grow the schema — timeline CSVs of
            // non-audited runs keep their exact column set.
            if let Some(decisions) = inner.decisions.as_ref() {
                inner.registry.set(
                    "telemetry.decisions.dropped",
                    MetricKind::Counter,
                    decisions.dropped(),
                );
            }
            // Same gating for the monitor: only monitored runs grow
            // the schema. The monitor samples *after* its own loss
            // counter lands, so snapshots carry it like any metric.
            if let Some(monitor) = inner.monitor.as_mut() {
                inner.registry.set(
                    "telemetry.monitor.dropped",
                    MetricKind::Counter,
                    monitor.dropped(),
                );
                monitor.maybe_sample(cycle, &inner.registry);
            }
            inner.registry.snapshot_epoch(cycle);
        }
    }

    /// The metrics registry, when tracing is on (harness-side extras:
    /// absorbing a `StatSet`, histograms).
    pub fn registry_mut(&mut self) -> Option<&mut MetricsRegistry> {
        self.inner.as_deref_mut().map(|i| &mut i.registry)
    }

    /// Consume the tracer into the run's telemetry (`None` when it was
    /// disabled). Every closed span's duration is folded into a
    /// per-stage latency histogram (`latency.<stage>`) before export;
    /// spans still open are discarded and counted so the exported set is
    /// always balanced.
    #[must_use]
    pub fn finish(self) -> Option<RunTelemetry> {
        self.inner.map(|inner| {
            let TracerInner {
                ring,
                mut registry,
                spans,
                decisions,
                monitor,
            } = *inner;
            let dropped = ring.dropped();
            let (spans, dropped_spans, unclosed_spans) = spans.finish();
            for s in &spans {
                registry.observe(s.stage.metric(), s.duration());
            }
            let (decisions, dropped_decisions) = match decisions {
                Some(ring) => {
                    let dropped = ring.dropped();
                    (ring.into_vec(), dropped)
                }
                None => (Vec::new(), 0),
            };
            let monitor = monitor.map(Monitor::into_series).unwrap_or_default();
            let (series, hists) = registry.into_parts();
            RunTelemetry {
                events: ring.into_vec(),
                dropped_events: dropped,
                series,
                spans,
                dropped_spans,
                unclosed_spans,
                decisions,
                dropped_decisions,
                monitor,
                hists,
            }
        })
    }
}

/// Everything one run recorded.
#[derive(Debug, Clone, Default)]
pub struct RunTelemetry {
    /// Traced events, oldest first (ring-bounded).
    pub events: Vec<EventRecord>,
    /// Events dropped by the ring.
    pub dropped_events: u64,
    /// The per-epoch metric series.
    pub series: EpochSeries,
    /// Closed spans, in close order (ring-bounded).
    pub spans: Vec<SpanRecord>,
    /// Closed spans dropped by the span ring.
    pub dropped_spans: u64,
    /// Spans still open at run end, discarded to keep the set balanced.
    pub unclosed_spans: u64,
    /// Audited policy decisions, oldest first (ring-bounded; empty when
    /// auditing was off).
    pub decisions: Vec<DecisionRecord>,
    /// Decisions dropped by the decision ring.
    pub dropped_decisions: u64,
    /// The monitor's snapshot time series (empty when monitoring was
    /// off).
    pub monitor: MonitorSeries,
    /// Observed histograms by name — per-stage span latencies
    /// (`latency.<stage>`) plus anything the harness observed directly.
    pub hists: BTreeMap<String, Histogram>,
}

impl RunTelemetry {
    /// Were any events, spans, decisions or monitor snapshots lost to
    /// ring overflow?
    #[must_use]
    pub fn lossy(&self) -> bool {
        self.dropped_events > 0
            || self.dropped_spans > 0
            || self.dropped_decisions > 0
            || self.monitor.dropped > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let mut t = Tracer::disabled();
        assert!(!t.enabled());
        let mut built = false;
        t.emit(5, || {
            built = true;
            TraceEvent::FarFault { page: 1 }
        });
        assert!(!built, "payload closure must not run when disabled");
        t.sample_epoch(5, [("x", MetricKind::Counter, 1)]);
        let s = t.span_open(SpanStage::FaultTotal, 0, SpanId::NONE, 0, 0, 0);
        assert!(s.is_none());
        assert!(!t.span_close(s, 10));
        assert!(t
            .span(SpanStage::TlbL1, 0, 1, SpanId::NONE, 0, 0, 0)
            .is_none());
        assert!(t.registry_mut().is_none());
        assert!(t.finish().is_none());
    }

    #[test]
    fn enabled_tracer_records_events_and_epochs() {
        let mut t = Tracer::new(TraceConfig::on());
        t.emit(10, || TraceEvent::FarFault { page: 3 });
        t.sample_epoch(
            10,
            [
                ("d.batches", MetricKind::Counter, 1),
                ("m.resident", MetricKind::Gauge, 16),
            ],
        );
        t.sample_epoch(
            20,
            [
                ("d.batches", MetricKind::Counter, 2),
                ("m.resident", MetricKind::Gauge, 32),
            ],
        );
        let r = t.finish().unwrap();
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.series.rows.len(), 2);
        assert_eq!(r.series.final_total("d.batches"), 2);
        assert_eq!(r.series.final_total("telemetry.ring.dropped"), 0);
        assert_eq!(r.series.final_total("telemetry.spans.dropped"), 0);
        r.series.parity().unwrap();
    }

    #[test]
    fn spans_fold_into_latency_histograms() {
        let mut t = Tracer::new(TraceConfig::on());
        let root = t.span_open(SpanStage::FaultTotal, 100, SpanId::NONE, 2, 9, 7);
        t.span(SpanStage::PageWalk, 100, 700, root, 2, 9, 7);
        assert!(t.span_close(root, 1100));
        let leak = t.span_open(SpanStage::Replay, 1100, root, 2, 9, 7);
        assert!(!leak.is_none());
        let r = t.finish().unwrap();
        assert_eq!(r.spans.len(), 2);
        assert_eq!(r.unclosed_spans, 1, "open replay span discarded");
        assert!(!r.lossy());
        let h = r.hists.get("latency.fault_total").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(r.hists.get("latency.page_walk").unwrap().p50(), 600);
    }

    #[test]
    fn span_ring_overflow_is_counted_and_sampled() {
        let mut t = Tracer::new(TraceConfig {
            ring_capacity: 4,
            span_capacity: 2,
            ..TraceConfig::on()
        });
        for i in 0..5u64 {
            t.span(SpanStage::TlbL1, i, i + 1, SpanId::NONE, 0, 0, i);
        }
        t.sample_epoch(100, []);
        let r = t.finish().unwrap();
        assert_eq!(r.spans.len(), 2);
        assert_eq!(r.dropped_spans, 3);
        assert!(r.lossy());
        assert_eq!(r.series.final_total("telemetry.spans.dropped"), 3);
    }

    #[test]
    fn config_off_yields_disabled() {
        let t = Tracer::new(TraceConfig::default());
        assert!(!t.enabled());
        assert!(Tracer::new(TraceConfig::on()).enabled());
    }

    fn sample_decision(chosen: u64) -> crate::decision::DecisionEvent {
        crate::decision::DecisionEvent {
            kind: crate::decision::DecisionKind::Eviction,
            policy: "lru",
            origin: "capacity",
            rung: 0,
            chosen,
            pages: vec![chosen, chosen + 1],
        }
    }

    #[test]
    fn tracing_without_audit_records_no_decisions() {
        let mut t = Tracer::new(TraceConfig::on());
        assert!(t.enabled());
        assert!(!t.audit_enabled());
        let mut built = false;
        t.decision(5, || {
            built = true;
            sample_decision(1)
        });
        assert!(!built, "decision closure must not run without audit");
        t.sample_epoch(10, []);
        let r = t.finish().unwrap();
        assert!(r.decisions.is_empty());
        assert_eq!(r.dropped_decisions, 0);
        assert!(
            !r.series
                .schema
                .iter()
                .any(|(n, _)| n == "telemetry.decisions.dropped"),
            "non-audited schema must not grow"
        );
    }

    #[test]
    fn audited_tracer_records_decisions_and_loss() {
        let mut t = Tracer::new(TraceConfig {
            decision_capacity: 2,
            ..TraceConfig::audited()
        });
        assert!(t.audit_enabled());
        for i in 0..5u64 {
            t.decision(i, || sample_decision(i));
        }
        t.sample_epoch(100, []);
        let r = t.finish().unwrap();
        assert_eq!(r.decisions.len(), 2);
        assert_eq!(r.dropped_decisions, 3);
        assert!(r.lossy());
        assert_eq!(r.series.final_total("telemetry.decisions.dropped"), 3);
        assert_eq!(r.decisions[0].event.pages, vec![3, 4], "newest survive");
    }

    #[test]
    fn tracing_without_monitor_records_no_snapshots() {
        let mut t = Tracer::new(TraceConfig::on());
        assert!(!t.monitor_enabled());
        t.sample_epoch(10, [("x", MetricKind::Counter, 1)]);
        let r = t.finish().unwrap();
        assert!(r.monitor.snapshots.is_empty());
        assert_eq!(r.monitor.sampled, 0);
        assert!(
            !r.series
                .schema
                .iter()
                .any(|(n, _)| n == "telemetry.monitor.dropped"),
            "non-monitored schema must not grow"
        );
    }

    #[test]
    fn monitored_tracer_samples_on_cadence() {
        let mut t = Tracer::new(TraceConfig {
            monitor_cadence: 100,
            monitor_wall_ms: 0,
            ..TraceConfig::monitored()
        });
        assert!(t.monitor_enabled());
        for cycle in [10u64, 50, 120, 130, 250] {
            t.sample_epoch(cycle, [("x", MetricKind::Counter, cycle)]);
        }
        let r = t.finish().unwrap();
        assert_eq!(r.monitor.sampled, 3, "cycles 10, 120, 250");
        assert_eq!(r.monitor.snapshots.len(), 3);
        assert_eq!(r.series.final_total("telemetry.monitor.dropped"), 0);
        assert!(!r.lossy());
        // Snapshots carry registry totals, including the loss counter.
        let idx = r.monitor.schema.iter().position(|(n, _)| n == "x").unwrap();
        assert_eq!(r.monitor.snapshots[2].totals[idx], 250);
        r.series.parity().unwrap();
    }

    #[test]
    fn monitor_ring_overflow_is_counted_and_sampled() {
        let mut t = Tracer::new(TraceConfig {
            monitor_cadence: 0,
            monitor_wall_ms: 0,
            monitor_capacity: 2,
            ..TraceConfig::monitored()
        });
        for cycle in 0..6u64 {
            t.sample_epoch(cycle, [("x", MetricKind::Counter, cycle)]);
        }
        let r = t.finish().unwrap();
        assert_eq!(r.monitor.sampled, 6);
        assert_eq!(r.monitor.snapshots.len(), 2);
        assert_eq!(r.monitor.dropped, 4);
        assert!(r.lossy());
        assert_eq!(r.monitor.snapshots[0].seq, 4, "oldest dropped first");
        // The loss counter lands in the epoch series one epoch behind
        // the drop itself (it is set before the sample that drops).
        assert_eq!(r.series.final_total("telemetry.monitor.dropped"), 3);
    }
}
