//! The tracer handle carried through the stack.
//!
//! [`Tracer`] is a niche-optimized `Option<Box<_>>`: disabled it is one
//! machine word, every method is a single branch, and event payloads
//! are built inside closures that never run. The `uvm` driver owns the
//! run's tracer; [`Tracer::finish`] turns it into the [`RunTelemetry`]
//! attached to `gpu::RunResult`.

use crate::event::{EventRecord, TraceEvent};
use crate::metrics::{EpochSeries, MetricKind, MetricsRegistry};
use crate::ring::TraceRing;

/// Tracing knobs (part of `gpu::GpuConfig`; `Copy` so configs stay
/// plain data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. Off (the default) records nothing, allocates
    /// nothing and leaves runs bit-identical.
    pub enabled: bool,
    /// Event ring capacity (newest events win on overflow).
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            ring_capacity: 65_536,
        }
    }
}

impl TraceConfig {
    /// Tracing on with the default ring capacity.
    #[must_use]
    pub fn on() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }
}

#[derive(Debug)]
struct TracerInner {
    ring: TraceRing,
    registry: MetricsRegistry,
}

/// The recording handle. Cheap to hold, free when disabled.
#[derive(Debug, Default)]
pub struct Tracer {
    inner: Option<Box<TracerInner>>,
}

impl Tracer {
    /// A tracer that records nothing (the default).
    #[must_use]
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Build from a config — disabled unless `cfg.enabled`.
    #[must_use]
    pub fn new(cfg: TraceConfig) -> Self {
        if !cfg.enabled {
            return Tracer::disabled();
        }
        Tracer {
            inner: Some(Box::new(TracerInner {
                ring: TraceRing::new(cfg.ring_capacity),
                registry: MetricsRegistry::new(),
            })),
        }
    }

    /// Is this tracer recording?
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record an event at `cycle`. The payload closure only runs when
    /// tracing is on.
    #[inline]
    pub fn emit(&mut self, cycle: u64, event: impl FnOnce() -> TraceEvent) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.ring.push(EventRecord {
                cycle,
                event: event(),
            });
        }
    }

    /// Sample one epoch: set every `(name, kind, value)` into the
    /// registry (registering on first sight) and snapshot the totals at
    /// `cycle`. Emitters must pass a stable set in a stable order.
    pub fn sample_epoch<'a>(
        &mut self,
        cycle: u64,
        metrics: impl IntoIterator<Item = (&'a str, MetricKind, u64)>,
    ) {
        if let Some(inner) = self.inner.as_deref_mut() {
            for (name, kind, value) in metrics {
                inner.registry.set(name, kind, value);
            }
            inner.registry.snapshot_epoch(cycle);
        }
    }

    /// The metrics registry, when tracing is on (harness-side extras:
    /// absorbing a `StatSet`, histograms).
    pub fn registry_mut(&mut self) -> Option<&mut MetricsRegistry> {
        self.inner.as_deref_mut().map(|i| &mut i.registry)
    }

    /// Consume the tracer into the run's telemetry (`None` when it was
    /// disabled).
    #[must_use]
    pub fn finish(self) -> Option<RunTelemetry> {
        self.inner.map(|inner| {
            let dropped = inner.ring.dropped();
            RunTelemetry {
                events: inner.ring.into_vec(),
                dropped_events: dropped,
                series: inner.registry.into_series(),
            }
        })
    }
}

/// Everything one run recorded.
#[derive(Debug, Clone, Default)]
pub struct RunTelemetry {
    /// Traced events, oldest first (ring-bounded).
    pub events: Vec<EventRecord>,
    /// Events dropped by the ring.
    pub dropped_events: u64,
    /// The per-epoch metric series.
    pub series: EpochSeries,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let mut t = Tracer::disabled();
        assert!(!t.enabled());
        let mut built = false;
        t.emit(5, || {
            built = true;
            TraceEvent::FarFault { page: 1 }
        });
        assert!(!built, "payload closure must not run when disabled");
        t.sample_epoch(5, [("x", MetricKind::Counter, 1)]);
        assert!(t.registry_mut().is_none());
        assert!(t.finish().is_none());
    }

    #[test]
    fn enabled_tracer_records_events_and_epochs() {
        let mut t = Tracer::new(TraceConfig::on());
        t.emit(10, || TraceEvent::FarFault { page: 3 });
        t.sample_epoch(
            10,
            [
                ("d.batches", MetricKind::Counter, 1),
                ("m.resident", MetricKind::Gauge, 16),
            ],
        );
        t.sample_epoch(
            20,
            [
                ("d.batches", MetricKind::Counter, 2),
                ("m.resident", MetricKind::Gauge, 32),
            ],
        );
        let r = t.finish().unwrap();
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.series.rows.len(), 2);
        assert_eq!(r.series.final_total("d.batches"), 2);
        r.series.parity().unwrap();
    }

    #[test]
    fn config_off_yields_disabled() {
        let t = Tracer::new(TraceConfig::default());
        assert!(!t.enabled());
        assert!(Tracer::new(TraceConfig::on()).enabled());
    }
}
