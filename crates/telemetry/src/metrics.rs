//! Metrics registry and the per-epoch sampler.
//!
//! Metric names are dotted paths (`driver.retries`,
//! `cppe.pages_evicted`, `mem.resident_pages`) registered once and kept
//! in registration order, so every exporter sees the same stable column
//! schema. Counters are monotone totals; gauges are point-in-time
//! levels; histograms wrap [`sim_core::Histogram`] for distribution
//! summaries. [`MetricsRegistry::absorb_statset`] imports a legacy
//! [`StatSet`] under a prefix, retiring the old ad-hoc carrier.
//!
//! The epoch sampler snapshots every registered value at fault-batch
//! granularity; [`EpochSeries`] then exposes totals and per-epoch
//! deltas, with the invariant (checked by [`EpochSeries::parity`]) that
//! the deltas of every counter sum exactly to its end-of-run total.

use sim_core::stats::{Histogram, StatSet};
use std::collections::BTreeMap;

/// What kind of quantity a metric is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing total; exporters emit per-epoch
    /// deltas.
    Counter,
    /// Point-in-time level; exporters emit the sampled value.
    Gauge,
}

/// One sampled epoch: the totals of every registered metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochRow {
    /// Epoch index (0-based, one per fault batch).
    pub epoch: u64,
    /// Simulated cycle of the sample (the batch dispatch).
    pub cycle: u64,
    /// Metric totals, in schema order.
    pub totals: Vec<u64>,
}

/// The sampled epoch series: a stable schema plus one row per epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochSeries {
    /// `(dotted name, kind)` in registration order.
    pub schema: Vec<(String, MetricKind)>,
    /// One row per epoch, in time order.
    pub rows: Vec<EpochRow>,
}

impl EpochSeries {
    /// Column index of `name`, if registered.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.schema.iter().position(|(n, _)| n == name)
    }

    /// Final total of metric `name` (0 when absent or no epochs).
    #[must_use]
    pub fn final_total(&self, name: &str) -> u64 {
        match (self.index_of(name), self.rows.last()) {
            (Some(i), Some(row)) => row.totals[i],
            _ => 0,
        }
    }

    /// Total of metric `name` at the last epoch sampled at or before
    /// `cycle` (0 when none).
    #[must_use]
    pub fn total_at(&self, name: &str, cycle: u64) -> u64 {
        let Some(i) = self.index_of(name) else {
            return 0;
        };
        self.rows
            .iter()
            .take_while(|r| r.cycle <= cycle)
            .last()
            .map_or(0, |r| r.totals[i])
    }

    /// Per-epoch values for row `i`: counters as deltas against the
    /// previous epoch, gauges as sampled.
    #[must_use]
    pub fn epoch_values(&self, i: usize) -> Vec<u64> {
        let row = &self.rows[i];
        self.schema
            .iter()
            .enumerate()
            .map(|(c, &(_, kind))| match kind {
                MetricKind::Gauge => row.totals[c],
                MetricKind::Counter => {
                    let prev = if i == 0 {
                        0
                    } else {
                        self.rows[i - 1].totals[c]
                    };
                    row.totals[c].saturating_sub(prev)
                }
            })
            .collect()
    }

    /// Verify counter parity: for every counter, the sum of per-epoch
    /// deltas must equal the final total, and totals must be monotone.
    ///
    /// # Errors
    /// Returns the first offending metric name.
    pub fn parity(&self) -> Result<(), String> {
        for (c, (name, kind)) in self.schema.iter().enumerate() {
            if *kind != MetricKind::Counter {
                continue;
            }
            let mut prev = 0u64;
            let mut delta_sum = 0u64;
            for row in &self.rows {
                let v = row.totals[c];
                if v < prev {
                    return Err(format!("{name}: non-monotone total {v} after {prev}"));
                }
                delta_sum += v - prev;
                prev = v;
            }
            if delta_sum != prev {
                return Err(format!(
                    "{name}: delta sum {delta_sum} != final total {prev}"
                ));
            }
        }
        Ok(())
    }
}

/// Counters, gauges and histograms under stable dotted names.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    schema: Vec<(String, MetricKind)>,
    index: BTreeMap<String, usize>,
    values: Vec<u64>,
    hists: BTreeMap<String, Histogram>,
    rows: Vec<EpochRow>,
}

impl MetricsRegistry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `name` with `kind` (idempotent; the first registration
    /// wins the kind and the column position). Returns the column
    /// index.
    pub fn register(&mut self, name: &str, kind: MetricKind) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.schema.len();
        self.schema.push((name.to_string(), kind));
        self.index.insert(name.to_string(), i);
        self.values.push(0);
        i
    }

    /// Set metric `name` to `value` (registering it as `kind` if new).
    pub fn set(&mut self, name: &str, kind: MetricKind, value: u64) {
        let i = self.register(name, kind);
        self.values[i] = value;
    }

    /// Add `n` to counter `name` (registering it if new).
    pub fn add(&mut self, name: &str, n: u64) {
        let i = self.register(name, MetricKind::Counter);
        self.values[i] += n;
    }

    /// Current value of `name` (0 when unregistered).
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.index.get(name).map_or(0, |&i| self.values[i])
    }

    /// Number of registered scalar metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.schema.len()
    }

    /// No metrics registered yet?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.schema.is_empty()
    }

    /// Import every counter of a legacy [`StatSet`] as
    /// `<prefix>.<name>`.
    pub fn absorb_statset(&mut self, prefix: &str, stats: &StatSet) {
        for (name, value) in stats.iter() {
            self.set(&format!("{prefix}.{name}"), MetricKind::Counter, value);
        }
    }

    /// Record `value` into histogram `name` (created on first use).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.hists
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Histogram `name`, if any value was observed.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Iterate `(name, kind, value)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, MetricKind, u64)> {
        self.schema
            .iter()
            .zip(&self.values)
            .map(|(&(ref n, k), &v)| (n.as_str(), k, v))
    }

    /// Snapshot every registered value as one epoch at `cycle`.
    pub fn snapshot_epoch(&mut self, cycle: u64) {
        self.rows.push(EpochRow {
            epoch: self.rows.len() as u64,
            cycle,
            totals: self.values.clone(),
        });
    }

    /// Epochs sampled so far.
    #[must_use]
    pub fn epochs(&self) -> usize {
        self.rows.len()
    }

    /// Consume the registry into its epoch series.
    #[must_use]
    pub fn into_series(self) -> EpochSeries {
        self.into_parts().0
    }

    /// Consume the registry into its epoch series plus every observed
    /// histogram (the per-stage latency distributions live here).
    #[must_use]
    pub fn into_parts(self) -> (EpochSeries, BTreeMap<String, Histogram>) {
        (
            EpochSeries {
                schema: self.schema,
                rows: self.rows,
            },
            self.hists,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_ordered() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.register("a.x", MetricKind::Counter), 0);
        assert_eq!(r.register("b.y", MetricKind::Gauge), 1);
        assert_eq!(r.register("a.x", MetricKind::Gauge), 0, "first kind wins");
        assert_eq!(r.schema[0].1, MetricKind::Counter);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn set_add_get_roundtrip() {
        let mut r = MetricsRegistry::new();
        r.set("d.batches", MetricKind::Counter, 3);
        r.add("d.batches", 2);
        assert_eq!(r.get("d.batches"), 5);
        assert_eq!(r.get("missing"), 0);
    }

    #[test]
    fn absorbs_statset_under_prefix() {
        let mut s = StatSet::new();
        s.add("faults", 7);
        s.add("evictions", 2);
        let mut r = MetricsRegistry::new();
        r.absorb_statset("app", &s);
        assert_eq!(r.get("app.faults"), 7);
        assert_eq!(r.get("app.evictions"), 2);
    }

    #[test]
    fn histogram_observation() {
        let mut r = MetricsRegistry::new();
        r.observe("walk.depth", 2);
        r.observe("walk.depth", 4);
        let h = r.histogram("walk.depth").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 4);
        assert!(r.histogram("none").is_none());
    }

    #[test]
    fn epoch_deltas_and_parity() {
        let mut r = MetricsRegistry::new();
        r.register("c", MetricKind::Counter);
        r.register("g", MetricKind::Gauge);
        r.set("c", MetricKind::Counter, 4);
        r.set("g", MetricKind::Gauge, 10);
        r.snapshot_epoch(100);
        r.set("c", MetricKind::Counter, 9);
        r.set("g", MetricKind::Gauge, 6);
        r.snapshot_epoch(250);
        let s = r.into_series();
        assert_eq!(s.epoch_values(0), vec![4, 10]);
        assert_eq!(s.epoch_values(1), vec![5, 6], "counter delta, gauge level");
        assert_eq!(s.final_total("c"), 9);
        assert_eq!(s.total_at("c", 100), 4);
        assert_eq!(s.total_at("c", 99), 0);
        s.parity().expect("deltas reconcile");
    }

    #[test]
    fn parity_catches_non_monotone_counters() {
        let mut r = MetricsRegistry::new();
        r.set("c", MetricKind::Counter, 5);
        r.snapshot_epoch(1);
        r.set("c", MetricKind::Counter, 3);
        r.snapshot_epoch(2);
        assert!(r.into_series().parity().is_err());
    }
}
