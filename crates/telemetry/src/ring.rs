//! Bounded event ring buffer.
//!
//! Long runs emit far more events than anyone wants to keep; the ring
//! keeps the most recent `capacity` and counts what it dropped, so the
//! exporters can say "…and 1 234 earlier events" instead of the process
//! eating memory or panicking.

use crate::event::EventRecord;
use std::collections::VecDeque;

/// Drop-oldest bounded buffer of [`EventRecord`]s.
#[derive(Debug, Clone)]
pub struct TraceRing {
    buf: VecDeque<EventRecord>,
    capacity: usize,
    dropped: u64,
}

impl TraceRing {
    /// Ring holding at most `capacity` events (capacity 0 keeps nothing
    /// and counts everything as dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Record an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, rec: EventRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }

    /// Events currently held, oldest first.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the ring empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events dropped because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate held events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &EventRecord> {
        self.buf.iter()
    }

    /// Drain into a `Vec`, oldest first.
    #[must_use]
    pub fn into_vec(self) -> Vec<EventRecord> {
        self.buf.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn rec(cycle: u64) -> EventRecord {
        EventRecord {
            cycle,
            event: TraceEvent::FarFault { page: cycle },
        }
    }

    #[test]
    fn overflow_drops_oldest_without_panicking() {
        let mut r = TraceRing::new(3);
        for i in 0..10 {
            r.push(rec(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9], "newest survive");
    }

    #[test]
    fn zero_capacity_counts_only() {
        let mut r = TraceRing::new(0);
        r.push(rec(1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn into_vec_preserves_order() {
        let mut r = TraceRing::new(8);
        for i in 0..4 {
            r.push(rec(i));
        }
        let v = r.into_vec();
        assert_eq!(v.len(), 4);
        assert!(v.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }
}
