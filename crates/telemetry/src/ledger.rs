//! Page-lifetime ledger: the per-page decision-audit state machine.
//!
//! Built *offline* from one run's recorded telemetry (trace events plus
//! audited decisions), so it costs the simulation hot path nothing. The
//! ledger replays the stream and tracks every page through
//! first-touch → resident → evicted → re-faulted, computing:
//!
//! * **re-fault distance** — cycles (and intervening distinct faults)
//!   between a page's eviction and its next far fault,
//! * **residency durations** — a histogram of completed
//!   migration→eviction intervals,
//! * **per-page thrash scores** — how often each page re-faulted, the
//!   page-level signature of a wrong eviction.
//!
//! Residency comes from *prefetch decisions* (which carry the exact
//! planned page set after driver capping) and *eviction events* (which
//! carry the victim chunk); the ledger therefore needs an audited run
//! ([`crate::tracer::TraceConfig::audit`]) with rings sized to hold the
//! full history — [`PageLedger::from_telemetry`] is exact only when
//! [`crate::tracer::RunTelemetry::lossy`] is false.

use crate::csv::CsvWriter;
use crate::decision::DecisionKind;
use crate::event::TraceEvent;
use crate::tracer::RunTelemetry;
use sim_core::stats::Histogram;
use sim_core::{FxHashMap, FxHashSet};

/// One page's lifetime through the run.
#[derive(Debug, Clone, Default)]
pub struct PageLife {
    /// Cycle of the first fault or migration that mentioned the page.
    pub first_seen: u64,
    /// Far faults taken on the page.
    pub faults: u32,
    /// Faults on the page after it had been evicted at least once —
    /// the page's thrash score.
    pub refaults: u32,
    /// Times the page became resident (demand or prefetch).
    pub migrations: u32,
    /// Times the page was evicted.
    pub evictions: u32,
    /// Is the page resident at the end of the recorded stream?
    pub resident: bool,
    /// Total cycles spent resident (open residency closed at the last
    /// recorded cycle).
    pub total_residency: u64,
    /// Sum of eviction→re-fault distances in cycles.
    pub refault_distance_sum: u64,
    /// Sum of distinct far faults between eviction and re-fault.
    pub refault_gap_faults_sum: u64,
    resident_since: Option<u64>,
    last_evicted: Option<(u64, u64)>,
}

impl PageLife {
    /// Mean eviction→re-fault distance in cycles (0 when the page never
    /// re-faulted).
    #[must_use]
    pub fn mean_refault_distance(&self) -> u64 {
        if self.refaults == 0 {
            0
        } else {
            self.refault_distance_sum / u64::from(self.refaults)
        }
    }
}

/// The assembled per-page audit of one run.
#[derive(Debug, Clone, Default)]
pub struct PageLedger {
    /// Per-page lifetimes keyed by virtual page index.
    pub pages: FxHashMap<u64, PageLife>,
    /// Completed residency durations (migration→eviction, cycles).
    pub residency: Histogram,
    /// Eviction→re-fault distances (cycles).
    pub refault_distance: Histogram,
    /// Distinct far faults between an eviction and the re-fault.
    pub refault_gap_faults: Histogram,
    /// Chunk-granularity in-migrations (a chunk going from zero to some
    /// resident pages) — the actual fetch count the Belady comparator
    /// weighs against the oracle.
    pub chunk_migrations: u64,
    /// Far faults replayed.
    pub total_faults: u64,
    /// Re-faults replayed (faults on previously evicted pages).
    pub total_refaults: u64,
    /// Eviction events whose chunk had no ledger-resident pages (stream
    /// truncated by ring overflow, or injected aborts) — non-zero means
    /// the ledger is approximate.
    pub unmatched_evictions: u64,
    pages_per_chunk: u64,
}

impl PageLedger {
    /// Replay `telemetry` into a ledger. `pages_per_chunk` maps pages
    /// to eviction-granularity chunks (the emitters' `PAGES_PER_CHUNK`).
    ///
    /// # Panics
    /// Panics if `pages_per_chunk` is zero.
    #[must_use]
    pub fn from_telemetry(telemetry: &RunTelemetry, pages_per_chunk: u64) -> Self {
        assert!(pages_per_chunk > 0, "pages_per_chunk must be positive");
        let mut ledger = PageLedger {
            pages_per_chunk,
            ..PageLedger::default()
        };
        let mut chunk_resident: FxHashMap<u64, FxHashSet<u64>> = FxHashMap::default();
        let mut fault_index = 0u64;
        let mut last_cycle = 0u64;

        // Merge the event and decision streams by cycle; events win
        // ties so a fault is registered before the plan it triggered
        // makes its page resident.
        let (events, decisions) = (&telemetry.events, &telemetry.decisions);
        let (mut ei, mut di) = (0usize, 0usize);
        loop {
            let take_event = match (events.get(ei), decisions.get(di)) {
                (Some(e), Some(d)) => e.cycle <= d.cycle,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_event {
                let rec = &events[ei];
                ei += 1;
                last_cycle = last_cycle.max(rec.cycle);
                match rec.event {
                    TraceEvent::FarFault { page } => {
                        fault_index += 1;
                        ledger.total_faults += 1;
                        let life = ledger.pages.entry(page).or_insert_with(|| PageLife {
                            first_seen: rec.cycle,
                            ..PageLife::default()
                        });
                        life.faults += 1;
                        if let Some((evicted_at, evicted_fault_index)) = life.last_evicted {
                            if !life.resident {
                                let distance = rec.cycle.saturating_sub(evicted_at);
                                let gap = fault_index.saturating_sub(evicted_fault_index + 1);
                                life.refaults += 1;
                                life.refault_distance_sum += distance;
                                life.refault_gap_faults_sum += gap;
                                ledger.total_refaults += 1;
                                ledger.refault_distance.record(distance);
                                ledger.refault_gap_faults.record(gap);
                                life.last_evicted = None;
                            }
                        }
                    }
                    TraceEvent::Eviction { chunk, .. } => {
                        let Some(residents) = chunk_resident.remove(&chunk) else {
                            ledger.unmatched_evictions += 1;
                            continue;
                        };
                        for page in residents {
                            let life = ledger.pages.entry(page).or_default();
                            life.resident = false;
                            life.evictions += 1;
                            life.last_evicted = Some((rec.cycle, fault_index));
                            if let Some(since) = life.resident_since.take() {
                                let dur = rec.cycle.saturating_sub(since);
                                life.total_residency += dur;
                                ledger.residency.record(dur);
                            }
                        }
                    }
                    _ => {}
                }
            } else {
                let rec = &decisions[di];
                di += 1;
                last_cycle = last_cycle.max(rec.cycle);
                if rec.event.kind != DecisionKind::Prefetch {
                    continue; // eviction decisions are provenance-only
                }
                for &page in &rec.event.pages {
                    let life = ledger.pages.entry(page).or_insert_with(|| PageLife {
                        first_seen: rec.cycle,
                        ..PageLife::default()
                    });
                    if life.resident {
                        continue;
                    }
                    life.resident = true;
                    life.migrations += 1;
                    life.resident_since = Some(rec.cycle);
                    let chunk = page / pages_per_chunk;
                    let residents = chunk_resident.entry(chunk).or_default();
                    if residents.is_empty() {
                        ledger.chunk_migrations += 1;
                    }
                    residents.insert(page);
                }
            }
        }

        // Close out open residencies at the last recorded cycle so
        // total_residency covers the whole stream (the open interval is
        // deliberately kept out of the completed-residency histogram).
        for life in ledger.pages.values_mut() {
            if let Some(since) = life.resident_since {
                life.total_residency += last_cycle.saturating_sub(since);
            }
        }
        ledger
    }

    /// Pages the ledger tracked.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Highest per-page thrash score (re-fault count), with its page.
    #[must_use]
    pub fn max_thrash(&self) -> Option<(u64, u32)> {
        self.pages
            .iter()
            .filter(|(_, l)| l.refaults > 0)
            .max_by_key(|(page, l)| (l.refaults, std::cmp::Reverse(**page)))
            .map(|(page, l)| (*page, l.refaults))
    }

    /// The `n` highest-thrash pages, hottest first (ties: lowest page).
    #[must_use]
    pub fn top_thrash(&self, n: usize) -> Vec<(u64, u32)> {
        let mut v: Vec<(u64, u32)> = self
            .pages
            .iter()
            .filter(|(_, l)| l.refaults > 0)
            .map(|(page, l)| (*page, l.refaults))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Render the per-page lifetime table as CSV, sorted by page.
    #[must_use]
    pub fn lifetime_csv(&self) -> String {
        let mut w = CsvWriter::new(&[
            "page",
            "chunk",
            "first_seen_cycle",
            "faults",
            "refaults",
            "migrations",
            "evictions",
            "resident_at_end",
            "total_residency_cycles",
            "mean_refault_distance_cycles",
        ]);
        let mut pages: Vec<(&u64, &PageLife)> = self.pages.iter().collect();
        pages.sort_by_key(|(page, _)| **page);
        for (page, life) in pages {
            w.row(&[
                page.to_string(),
                (page / self.pages_per_chunk).to_string(),
                life.first_seen.to_string(),
                life.faults.to_string(),
                life.refaults.to_string(),
                life.migrations.to_string(),
                life.evictions.to_string(),
                u8::from(life.resident).to_string(),
                life.total_residency.to_string(),
                life.mean_refault_distance().to_string(),
            ]);
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::{DecisionEvent, DecisionRecord};
    use crate::event::EventRecord;

    fn fault(cycle: u64, page: u64) -> EventRecord {
        EventRecord {
            cycle,
            event: TraceEvent::FarFault { page },
        }
    }

    fn evict(cycle: u64, chunk: u64) -> EventRecord {
        EventRecord {
            cycle,
            event: TraceEvent::Eviction {
                chunk,
                resident: 2,
                untouch: 1,
            },
        }
    }

    fn plan(cycle: u64, anchor: u64, pages: Vec<u64>) -> DecisionRecord {
        DecisionRecord {
            cycle,
            event: DecisionEvent {
                kind: DecisionKind::Prefetch,
                policy: "seq-local",
                origin: "whole-chunk",
                rung: 0,
                chosen: anchor,
                pages,
            },
        }
    }

    fn telemetry(events: Vec<EventRecord>, decisions: Vec<DecisionRecord>) -> RunTelemetry {
        RunTelemetry {
            events,
            decisions,
            ..RunTelemetry::default()
        }
    }

    #[test]
    fn tracks_first_touch_residency_eviction_and_refault() {
        // Page 0 faults at 10, pages 0-1 migrate, chunk 0 is evicted at
        // 100, page 0 re-faults at 150 and migrates again.
        let t = telemetry(
            vec![fault(10, 0), evict(100, 0), fault(150, 0)],
            vec![plan(10, 0, vec![0, 1]), plan(150, 0, vec![0])],
        );
        let ledger = PageLedger::from_telemetry(&t, 16);
        assert_eq!(ledger.page_count(), 2);
        assert_eq!(ledger.total_faults, 2);
        assert_eq!(ledger.total_refaults, 1);
        assert_eq!(ledger.chunk_migrations, 2, "chunk 0 fetched twice");
        assert_eq!(ledger.unmatched_evictions, 0);

        let p0 = &ledger.pages[&0];
        assert_eq!(p0.faults, 2);
        assert_eq!(p0.refaults, 1);
        assert_eq!(p0.migrations, 2);
        assert_eq!(p0.evictions, 1);
        assert!(p0.resident, "re-migrated at 150");
        assert_eq!(p0.mean_refault_distance(), 50);
        assert_eq!(p0.refault_gap_faults_sum, 0, "no faults in between");
        // Residency 10→100 for both pages.
        assert_eq!(ledger.residency.count(), 2);
        assert_eq!(ledger.residency.max(), 90);
        assert_eq!(ledger.refault_distance.max(), 50);

        let p1 = &ledger.pages[&1];
        assert_eq!(p1.faults, 0, "prefetched, never faulted");
        assert_eq!(p1.evictions, 1);
        assert!(!p1.resident);
    }

    #[test]
    fn refault_gap_counts_intervening_faults() {
        let t = telemetry(
            vec![
                fault(10, 0),
                evict(100, 0),
                fault(110, 32), // a different chunk faults in between
                fault(150, 0),
            ],
            vec![
                plan(10, 0, vec![0]),
                plan(110, 32, vec![32]),
                plan(150, 0, vec![0]),
            ],
        );
        let ledger = PageLedger::from_telemetry(&t, 16);
        assert_eq!(ledger.pages[&0].refault_gap_faults_sum, 1);
        assert_eq!(ledger.refault_gap_faults.max(), 1);
        assert_eq!(ledger.chunk_migrations, 3);
    }

    #[test]
    fn fault_before_same_cycle_plan_is_one_first_touch() {
        let t = telemetry(vec![fault(10, 5)], vec![plan(10, 5, vec![5])]);
        let ledger = PageLedger::from_telemetry(&t, 16);
        let p = &ledger.pages[&5];
        assert_eq!((p.faults, p.refaults, p.migrations), (1, 0, 1));
        assert!(p.resident);
        assert_eq!(p.total_residency, 0, "stream ends at the same cycle");
    }

    #[test]
    fn unmatched_eviction_is_counted_not_crashed() {
        let t = telemetry(vec![evict(50, 9)], vec![]);
        let ledger = PageLedger::from_telemetry(&t, 16);
        assert_eq!(ledger.unmatched_evictions, 1);
        assert_eq!(ledger.page_count(), 0);
    }

    #[test]
    fn open_residency_closes_at_last_cycle() {
        let t = telemetry(
            vec![fault(10, 0), fault(500, 16)],
            vec![plan(10, 0, vec![0])],
        );
        let ledger = PageLedger::from_telemetry(&t, 16);
        assert_eq!(ledger.pages[&0].total_residency, 490);
        assert_eq!(ledger.residency.count(), 0, "open interval not in hist");
    }

    #[test]
    fn lifetime_csv_is_sorted_and_valid() {
        let t = telemetry(
            vec![fault(10, 17), fault(20, 3), evict(100, 0), fault(150, 3)],
            vec![
                plan(10, 17, vec![17]),
                plan(20, 3, vec![3, 4]),
                plan(150, 3, vec![3]),
            ],
        );
        let ledger = PageLedger::from_telemetry(&t, 16);
        let csv = ledger.lifetime_csv();
        crate::csv::validate(&csv).expect("well-formed CSV");
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("page,chunk,first_seen_cycle"));
        assert!(lines[1].starts_with("3,0,"), "sorted by page");
        assert!(lines[3].starts_with("17,1,"));
        assert_eq!(ledger.max_thrash(), Some((3, 1)));
        assert_eq!(ledger.top_thrash(4), vec![(3, 1)]);
    }
}
