//! Periodic in-run snapshot sampler over the metrics registry.
//!
//! The epoch series ([`crate::metrics::EpochSeries`]) records *every*
//! fault batch — exhaustive, but only consumable after the run. The
//! [`Monitor`] is the live-view counterpart: on a fixed cadence
//! (simulated cycles, wall-clock ticks, or both) it copies the current
//! registry totals into a bounded drop-oldest ring of
//! [`MonitorSnapshot`]s. A status server can render the ring mid-run,
//! and the crash flight recorder dumps it post-mortem — the "last N
//! seconds of vitals" a black-box recorder keeps.
//!
//! Ring conventions match [`crate::ring::TraceRing`]: bounded, oldest
//! snapshots dropped first, drops counted (surfaced as
//! `telemetry.monitor.dropped`, registered only when the monitor is on
//! so non-monitored schemas never grow), capacity 0 counts without
//! storing. Like the rest of the tracer, the monitor only *reads*
//! simulation state, so enabling it cannot change a run's results.

use crate::json;
use crate::metrics::{MetricKind, MetricsRegistry};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Schema marker for monitor snapshot dumps.
pub const MONITOR_SCHEMA: &str = "cppe-monitor-v1";

/// A [`Duration`] as whole milliseconds, saturating at `u64::MAX`.
///
/// `Duration::as_millis` returns `u128`; the `as u64` narrowing the
/// telemetry structs used to do silently wraps for durations past
/// ~584 million years. Unreachable in practice, but wall-clock fields
/// feed monotonicity checks in validators — saturate instead of wrap
/// so even absurd clock readings can never produce a *smaller* value.
#[must_use]
pub fn saturating_millis(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// One sampled snapshot: every registered metric total at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorSnapshot {
    /// Monotone sample number (counts drops too: `seq` of the oldest
    /// retained snapshot tells how many were lost before it).
    pub seq: u64,
    /// Simulated cycle of the sample.
    pub cycle: u64,
    /// Wall-clock milliseconds since the monitor started.
    pub wall_ms: u64,
    /// Metric totals in schema order. Early snapshots may be shorter
    /// than the final schema — metrics register on first sight, and a
    /// snapshot only covers what existed when it was taken.
    pub totals: Vec<u64>,
}

/// The finished time series a run's monitor produced.
#[derive(Debug, Clone, Default)]
pub struct MonitorSeries {
    /// `(dotted name, kind)` in registration order.
    pub schema: Vec<(String, MetricKind)>,
    /// Retained snapshots, oldest first.
    pub snapshots: Vec<MonitorSnapshot>,
    /// Samples taken over the run (retained + dropped).
    pub sampled: u64,
    /// Snapshots evicted by the ring (oldest first).
    pub dropped: u64,
}

/// The sampler. Owned by the tracer when `TraceConfig::monitor` is on;
/// the orchestrator's ops plane owns one directly (wall ticks only).
#[derive(Debug)]
pub struct Monitor {
    /// Minimum simulated cycles between samples (`u64::MAX` disables
    /// cycle-driven sampling).
    cadence: u64,
    /// Wall-clock tick forcing a sample (`None` disables).
    wall_tick: Option<Duration>,
    capacity: usize,
    schema: Vec<(String, MetricKind)>,
    buf: VecDeque<MonitorSnapshot>,
    sampled: u64,
    dropped: u64,
    last_cycle: Option<u64>,
    started: Instant,
    last_wall: Instant,
}

impl Monitor {
    /// Sampler with the given cycle cadence, wall tick (0 ms = wall
    /// ticks off) and ring capacity (0 = count samples, store none).
    #[must_use]
    pub fn new(cadence: u64, wall_tick_ms: u64, capacity: usize) -> Self {
        let now = Instant::now();
        Monitor {
            cadence,
            wall_tick: (wall_tick_ms > 0).then(|| Duration::from_millis(wall_tick_ms)),
            capacity,
            schema: Vec::new(),
            buf: VecDeque::with_capacity(capacity.min(4096)),
            sampled: 0,
            dropped: 0,
            last_cycle: None,
            started: now,
            last_wall: now,
        }
    }

    /// Snapshots evicted so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Samples taken so far (retained + dropped).
    #[must_use]
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Sample if a tick is due: the first call always samples, then
    /// whenever `cycle` has advanced past the cadence or the wall tick
    /// has elapsed.
    pub fn maybe_sample(&mut self, cycle: u64, registry: &MetricsRegistry) {
        let due_cycle = self
            .last_cycle
            .is_none_or(|last| cycle >= last.saturating_add(self.cadence));
        let due_wall = self
            .wall_tick
            .is_some_and(|tick| self.last_wall.elapsed() >= tick);
        if due_cycle || due_wall {
            self.force_sample(cycle, registry);
        }
    }

    /// Sample unconditionally (cadence state still advances).
    pub fn force_sample(&mut self, cycle: u64, registry: &MetricsRegistry) {
        // Registration is append-only, so the known schema is always a
        // prefix of the registry's — extend with the new tail.
        for (name, kind, _) in registry.iter().skip(self.schema.len()) {
            self.schema.push((name.to_string(), kind));
        }
        let snap = MonitorSnapshot {
            seq: self.sampled,
            cycle,
            wall_ms: saturating_millis(self.started.elapsed()),
            totals: registry.iter().map(|(_, _, v)| v).collect(),
        };
        self.sampled += 1;
        self.last_cycle = Some(cycle);
        self.last_wall = Instant::now();
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(snap);
    }

    /// Clone the series sampled so far (the live `/status` and flight
    /// recorder view; the run is still going).
    #[must_use]
    pub fn series(&self) -> MonitorSeries {
        MonitorSeries {
            schema: self.schema.clone(),
            snapshots: self.buf.iter().cloned().collect(),
            sampled: self.sampled,
            dropped: self.dropped,
        }
    }

    /// Consume into the finished series.
    #[must_use]
    pub fn into_series(self) -> MonitorSeries {
        MonitorSeries {
            schema: self.schema,
            snapshots: self.buf.into(),
            sampled: self.sampled,
            dropped: self.dropped,
        }
    }
}

/// Render a monitor series as one JSON document (schema
/// [`MONITOR_SCHEMA`]).
#[must_use]
pub fn monitor_json(series: &MonitorSeries) -> String {
    let mut s = String::from("{");
    let _ = write!(
        s,
        "\"schema\":{},\"sampled\":{},\"dropped\":{},\"metrics\":[",
        json::string(MONITOR_SCHEMA),
        series.sampled,
        series.dropped
    );
    for (i, (name, kind)) in series.schema.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let kind = match kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        };
        let _ = write!(s, "{{\"name\":{},\"kind\":\"{kind}\"}}", json::string(name));
    }
    s.push_str("],\"snapshots\":[");
    for (i, snap) in series.snapshots.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"seq\":{},\"cycle\":{},\"wall_ms\":{},\"totals\":[",
            snap.seq, snap.cycle, snap.wall_ms
        );
        for (j, v) in snap.totals.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "{v}");
        }
        s.push_str("]}");
    }
    s.push_str("]}");
    s
}

/// Schema-check a monitor dump (the `validate-trace` hook). Returns a
/// one-line summary.
///
/// # Errors
/// Describes the first malformation: bad JSON, wrong/missing schema
/// marker, non-monotone `seq`/`cycle`, or a snapshot wider than the
/// metric schema.
pub fn validate_doc(body: &str) -> Result<String, String> {
    let v = json::parse(body)?;
    match v.get("schema").and_then(json::Value::as_str) {
        Some(MONITOR_SCHEMA) => {}
        other => return Err(format!("schema marker {other:?}, want {MONITOR_SCHEMA:?}")),
    }
    let metrics = v
        .get("metrics")
        .and_then(json::Value::as_array)
        .ok_or("missing \"metrics\" array")?;
    for m in metrics {
        if m.get("name").and_then(json::Value::as_str).is_none() {
            return Err("metric entry without a name".into());
        }
        match m.get("kind").and_then(json::Value::as_str) {
            Some("counter" | "gauge") => {}
            other => return Err(format!("metric kind {other:?}")),
        }
    }
    let snapshots = v
        .get("snapshots")
        .and_then(json::Value::as_array)
        .ok_or("missing \"snapshots\" array")?;
    let sampled = v
        .get("sampled")
        .and_then(json::Value::as_u64)
        .ok_or("missing \"sampled\"")?;
    let dropped = v
        .get("dropped")
        .and_then(json::Value::as_u64)
        .ok_or("missing \"dropped\"")?;
    if (snapshots.len() as u64).saturating_add(dropped) != sampled {
        return Err(format!(
            "accounting mismatch: {} retained + {dropped} dropped != {sampled} sampled",
            snapshots.len()
        ));
    }
    let mut prev: Option<(u64, u64)> = None;
    for snap in snapshots {
        let seq = snap
            .get("seq")
            .and_then(json::Value::as_u64)
            .ok_or("snapshot without seq")?;
        let cycle = snap
            .get("cycle")
            .and_then(json::Value::as_u64)
            .ok_or("snapshot without cycle")?;
        let totals = snap
            .get("totals")
            .and_then(json::Value::as_array)
            .ok_or("snapshot without totals")?;
        if totals.len() > metrics.len() {
            return Err(format!(
                "snapshot seq {seq}: {} totals but only {} metrics",
                totals.len(),
                metrics.len()
            ));
        }
        if let Some((pseq, pcycle)) = prev {
            if seq <= pseq {
                return Err(format!("non-monotone seq {seq} after {pseq}"));
            }
            if cycle < pcycle {
                return Err(format!("non-monotone cycle {cycle} after {pcycle}"));
            }
        }
        prev = Some((seq, cycle));
    }
    Ok(format!(
        "{} snapshots over {} metrics ({dropped} dropped)",
        snapshots.len(),
        metrics.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.set("a.count", MetricKind::Counter, 1);
        r.set("b.level", MetricKind::Gauge, 10);
        r
    }

    #[test]
    fn saturating_millis_never_wraps() {
        assert_eq!(saturating_millis(Duration::ZERO), 0);
        assert_eq!(saturating_millis(Duration::from_millis(1234)), 1234);
        // In-range u128 millis convert exactly...
        assert_eq!(
            saturating_millis(Duration::from_secs(u64::MAX / 1000)),
            (u64::MAX / 1000) * 1000
        );
        // ...while Duration::MAX (~5.8e17 s → millis > u64::MAX) pins to
        // the ceiling instead of wrapping to a tiny value like `as u64`.
        assert_eq!(saturating_millis(Duration::MAX), u64::MAX);
        assert!(Duration::MAX.as_millis() > u128::from(u64::MAX));
    }

    #[test]
    fn first_sample_always_fires_then_cadence_gates() {
        let mut m = Monitor::new(100, 0, 16);
        let r = registry();
        m.maybe_sample(5, &r);
        assert_eq!(m.sampled(), 1);
        m.maybe_sample(50, &r);
        assert_eq!(m.sampled(), 1, "within cadence: skipped");
        m.maybe_sample(105, &r);
        assert_eq!(m.sampled(), 2);
        let s = m.into_series();
        assert_eq!(s.snapshots.len(), 2);
        assert_eq!(s.snapshots[0].cycle, 5);
        assert_eq!(s.snapshots[1].totals, vec![1, 10]);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn cadence_max_disables_cycle_ticks() {
        let mut m = Monitor::new(u64::MAX, 0, 16);
        let r = registry();
        m.maybe_sample(5, &r);
        m.maybe_sample(u64::MAX - 1, &r);
        assert_eq!(m.sampled(), 1, "only the unconditional first sample");
    }

    #[test]
    fn wall_tick_forces_sample_within_cadence() {
        let mut m = Monitor::new(u64::MAX, 1, 16);
        let r = registry();
        m.maybe_sample(10, &r);
        std::thread::sleep(Duration::from_millis(3));
        m.maybe_sample(11, &r);
        assert_eq!(m.sampled(), 2, "wall tick elapsed");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut m = Monitor::new(0, 0, 2);
        let r = registry();
        for c in 0..5 {
            m.maybe_sample(c, &r);
        }
        assert_eq!(m.dropped(), 3);
        let s = m.into_series();
        assert_eq!(s.sampled, 5);
        assert_eq!(s.snapshots.len(), 2);
        assert_eq!(s.snapshots[0].seq, 3, "oldest dropped first");
    }

    #[test]
    fn capacity_zero_counts_without_storing() {
        let mut m = Monitor::new(0, 0, 0);
        let r = registry();
        for c in 0..3 {
            m.maybe_sample(c, &r);
        }
        let s = m.into_series();
        assert!(s.snapshots.is_empty());
        assert_eq!(s.dropped, 3);
        assert_eq!(s.sampled, 3);
    }

    #[test]
    fn schema_grows_with_registry_and_old_snapshots_stay_short() {
        let mut m = Monitor::new(0, 0, 16);
        let mut r = registry();
        m.maybe_sample(1, &r);
        r.set("c.new", MetricKind::Counter, 7);
        m.maybe_sample(2, &r);
        let s = m.into_series();
        assert_eq!(s.schema.len(), 3);
        assert_eq!(s.snapshots[0].totals.len(), 2);
        assert_eq!(s.snapshots[1].totals, vec![1, 10, 7]);
    }

    #[test]
    fn json_roundtrips_through_validate() {
        let mut m = Monitor::new(0, 0, 2);
        let r = registry();
        for c in 0..4 {
            m.maybe_sample(c * 10, &r);
        }
        let doc = monitor_json(&m.into_series());
        json::validate(&doc).unwrap();
        let detail = validate_doc(&doc).unwrap();
        assert!(detail.contains("2 snapshots"), "{detail}");
        assert!(detail.contains("2 dropped"), "{detail}");
    }

    #[test]
    fn validate_rejects_malformed_docs() {
        assert!(validate_doc("{}").is_err(), "missing schema");
        assert!(
            validate_doc("{\"schema\":\"cppe-monitor-v0\"}").is_err(),
            "wrong schema"
        );
        let bad_accounting = "{\"schema\":\"cppe-monitor-v1\",\"sampled\":5,\
             \"dropped\":0,\"metrics\":[],\"snapshots\":[]}";
        assert!(validate_doc(bad_accounting)
            .unwrap_err()
            .contains("accounting"));
        let bad_seq = "{\"schema\":\"cppe-monitor-v1\",\"sampled\":2,\"dropped\":0,\
             \"metrics\":[{\"name\":\"a\",\"kind\":\"counter\"}],\
             \"snapshots\":[{\"seq\":1,\"cycle\":5,\"wall_ms\":0,\"totals\":[1]},\
             {\"seq\":1,\"cycle\":6,\"wall_ms\":0,\"totals\":[2]}]}";
        assert!(validate_doc(bad_seq).unwrap_err().contains("seq"));
    }

    #[test]
    fn empty_series_renders_and_validates() {
        let doc = monitor_json(&MonitorSeries::default());
        json::validate(&doc).unwrap();
        validate_doc(&doc).unwrap();
    }
}
