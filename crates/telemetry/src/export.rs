//! Exporters: timeline CSV, JSON run summary, Chrome trace-event JSON.
//!
//! Three views of one run's telemetry:
//!
//! * [`timeline_csv`] — one wide row per epoch (fault batch) with every
//!   registered metric: counters as per-epoch deltas, gauges as levels.
//! * [`run_summary_json`] — end-of-run totals as one JSON document.
//! * [`chrome_trace_json`] — the event ring in Chrome trace-event
//!   format; load it at `ui.perfetto.dev` or `chrome://tracing` to see
//!   fault batches, DMA spans, evictions and ladder transitions on a
//!   shared timeline.

use crate::csv::CsvWriter;
use crate::event::TraceEvent;
use crate::json;
use crate::metrics::{EpochSeries, MetricKind};
use crate::span::{SpanRecord, SpanStage};
use crate::tracer::RunTelemetry;
use sim_core::time::GPU_CLOCK_GHZ;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Which exports a harness run should write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// Per-epoch timeline CSV (the default for `--trace`).
    #[default]
    Csv,
    /// JSON run summary.
    Json,
    /// Chrome trace-event JSON.
    Chrome,
    /// All of the above.
    All,
}

impl TraceFormat {
    /// Parse a `--trace-format` argument.
    ///
    /// # Errors
    /// Returns the unrecognised value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "csv" => Ok(TraceFormat::Csv),
            "json" => Ok(TraceFormat::Json),
            "chrome" => Ok(TraceFormat::Chrome),
            "all" => Ok(TraceFormat::All),
            other => Err(format!(
                "unknown trace format {other:?} (expected csv|json|chrome|all)"
            )),
        }
    }

    /// Should the timeline CSV be written?
    #[must_use]
    pub fn wants_csv(self) -> bool {
        matches!(self, TraceFormat::Csv | TraceFormat::All)
    }

    /// Should the JSON summary be written?
    #[must_use]
    pub fn wants_json(self) -> bool {
        matches!(self, TraceFormat::Json | TraceFormat::All)
    }

    /// Should the Chrome trace be written?
    #[must_use]
    pub fn wants_chrome(self) -> bool {
        matches!(self, TraceFormat::Chrome | TraceFormat::All)
    }
}

/// Render the epoch series as a wide CSV: `epoch,cycle` then every
/// registered metric in schema order (counters as per-epoch deltas,
/// gauges as sampled levels).
#[must_use]
pub fn timeline_csv(series: &EpochSeries) -> String {
    let mut header = vec!["epoch".to_string(), "cycle".to_string()];
    header.extend(series.schema.iter().map(|(n, _)| n.clone()));
    let mut w = CsvWriter::new(&header);
    for (i, row) in series.rows.iter().enumerate() {
        let mut cells = vec![row.epoch.to_string(), row.cycle.to_string()];
        cells.extend(series.epoch_values(i).iter().map(u64::to_string));
        w.row(&cells);
    }
    w.finish()
}

/// Render an end-of-run summary as one JSON document: outcome, total
/// cycles, event accounting and the final total of every metric.
#[must_use]
pub fn run_summary_json(outcome: &str, cycles: u64, telemetry: &RunTelemetry) -> String {
    let mut s = String::from("{");
    let _ = write!(
        s,
        "\"outcome\":{},\"cycles\":{cycles},\"epochs\":{},",
        json::string(outcome),
        telemetry.series.rows.len()
    );
    let _ = write!(
        s,
        "\"events\":{{\"recorded\":{},\"dropped\":{}}},",
        telemetry.events.len(),
        telemetry.dropped_events
    );
    let _ = write!(
        s,
        "\"spans\":{{\"recorded\":{},\"dropped\":{},\"unclosed\":{}}},",
        telemetry.spans.len(),
        telemetry.dropped_spans,
        telemetry.unclosed_spans
    );
    // Decision accounting appears only for audited runs, so summaries
    // of non-audited runs stay byte-identical to earlier versions.
    if !telemetry.decisions.is_empty() || telemetry.dropped_decisions > 0 {
        let _ = write!(
            s,
            "\"decisions\":{{\"recorded\":{},\"dropped\":{}}},",
            telemetry.decisions.len(),
            telemetry.dropped_decisions
        );
    }
    // Monitor accounting likewise appears only for monitored runs.
    if telemetry.monitor.sampled > 0 || telemetry.monitor.dropped > 0 {
        let _ = write!(
            s,
            "\"monitor\":{{\"sampled\":{},\"recorded\":{},\"dropped\":{}}},",
            telemetry.monitor.sampled,
            telemetry.monitor.snapshots.len(),
            telemetry.monitor.dropped
        );
    }
    s.push_str("\"metrics\":{");
    for (i, (name, kind)) in telemetry.series.schema.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let value = telemetry.series.final_total(name);
        let kind = match kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        };
        let _ = write!(
            s,
            "{}:{{\"kind\":\"{kind}\",\"value\":{value}}}",
            json::string(name)
        );
    }
    s.push_str("}}");
    s
}

/// Cycle timestamp in Chrome-trace microseconds (the GPU clock defines
/// the conversion).
fn ts_us(cycle: u64) -> String {
    // Keep nanosecond precision: 1 cycle @ 1.4 GHz is ~0.714 ns.
    #[allow(clippy::cast_precision_loss)]
    let us = cycle as f64 / (GPU_CLOCK_GHZ * 1000.0);
    format!("{us:.3}")
}

/// Render the event ring and span trees as Chrome trace-event JSON (the
/// `{"traceEvents":[...]}` wrapper format Perfetto loads directly).
///
/// Batch service and migration DMA *events* become duration (`ph:"X"`)
/// spans on their tracks and the remaining events thread-scoped instants
/// (`ph:"i"`), exactly as before. Recorded *spans* add the flame view:
/// each lane's fault trees render as nested `ph:"B"`/`ph:"E"` pairs on a
/// per-lane track (tid `1000 + lane`), and driver-side spans (batch /
/// host service / retry backoff / PCIe and eviction DMAs) render as `X`
/// slices on per-stage tracks — driver batches overlap in time (the host
/// frees up before the last transfer lands), which `B`/`E` nesting
/// cannot express.
#[must_use]
pub fn chrome_trace_json(telemetry: &RunTelemetry) -> String {
    // Stable tid per event track, in lifecycle order; driver-side span
    // stages follow, lane span tracks start at LANE_TID_BASE.
    const TRACKS: [&str; 6] = ["driver", "fault", "dma", "evict", "ladder", "inject"];
    const SPAN_TRACKS: [(SpanStage, usize); 5] = [
        (SpanStage::DriverBatch, 6),
        (SpanStage::HostService, 7),
        (SpanStage::RetryBackoff, 8),
        (SpanStage::PcieTransfer, 9),
        (SpanStage::EvictionDma, 10),
    ];
    const LANE_TID_BASE: u64 = 1000;
    let tid = |track: &str| TRACKS.iter().position(|t| *t == track).unwrap_or(0);

    let mut s = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: &mut String, item: &str| {
        if !std::mem::take(&mut first) {
            s.push(',');
        }
        s.push_str(item);
    };

    for (i, track) in TRACKS.iter().enumerate() {
        push(
            &mut s,
            &format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                json::string(track)
            ),
        );
    }

    for rec in &telemetry.events {
        let e = &rec.event;
        let dur_cycles = match *e {
            TraceEvent::BatchServiced {
                host_done_cycle, ..
            } => Some(host_done_cycle.saturating_sub(rec.cycle)),
            TraceEvent::MigrationDma { done_cycle, .. } => {
                Some(done_cycle.saturating_sub(rec.cycle))
            }
            _ => None,
        };
        let common = format!(
            "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{}",
            e.name(),
            e.track(),
            tid(e.track()),
            ts_us(rec.cycle),
            e.args_json()
        );
        let item = match dur_cycles {
            Some(d) => format!("{{\"ph\":\"X\",{common},\"dur\":{}}}", ts_us(d)),
            None => format!("{{\"ph\":\"i\",\"s\":\"t\",{common}}}"),
        };
        push(&mut s, &item);
    }

    // Driver-side spans: X slices on per-stage tracks.
    for &(stage, stage_tid) in &SPAN_TRACKS {
        if telemetry.spans.iter().any(|sp| sp.stage == stage) {
            push(
                &mut s,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{stage_tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":{}}}}}",
                    json::string(&format!("span.{}", stage.name()))
                ),
            );
        }
    }
    for sp in &telemetry.spans {
        let Some(&(_, stage_tid)) = SPAN_TRACKS.iter().find(|&&(st, _)| st == sp.stage) else {
            continue;
        };
        push(
            &mut s,
            &format!(
                "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"span\",\"pid\":1,\"tid\":{stage_tid},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"page\":{}}}}}",
                sp.stage.name(),
                ts_us(sp.start),
                ts_us(sp.duration()),
                sp.page
            ),
        );
    }

    // Lane-side fault trees: nested B/E pairs, one track per lane. The
    // tree recursion guarantees every B gets its E and that children
    // emit inside their parent, regardless of timestamp ties.
    let mut by_lane: BTreeMap<u32, Vec<&SpanRecord>> = BTreeMap::new();
    for sp in &telemetry.spans {
        if sp.stage.lane_scoped() {
            by_lane.entry(sp.lane).or_default().push(sp);
        }
    }
    for (lane, spans) in by_lane {
        let lane_tid = LANE_TID_BASE + u64::from(lane);
        push(
            &mut s,
            &format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane_tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"lane{lane}\"}}}}",
            ),
        );
        let ids: std::collections::BTreeSet<u64> = spans.iter().map(|sp| sp.id).collect();
        let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        let mut roots: Vec<&SpanRecord> = Vec::new();
        for sp in &spans {
            if sp.parent != 0 && ids.contains(&sp.parent) {
                children.entry(sp.parent).or_default().push(sp);
            } else {
                roots.push(sp);
            }
        }
        for list in children.values_mut() {
            list.sort_by_key(|sp| (sp.start, sp.id));
        }
        roots.sort_by_key(|sp| (sp.start, sp.id));
        // Lane trees are two levels deep (fault root → stage children),
        // so an explicit stack is overkill — recurse.
        fn emit_tree(
            s: &mut String,
            push: &mut impl FnMut(&mut String, &str),
            children: &BTreeMap<u64, Vec<&SpanRecord>>,
            sp: &SpanRecord,
            lane_tid: u64,
        ) {
            push(
                s,
                &format!(
                    "{{\"ph\":\"B\",\"name\":\"{}\",\"cat\":\"span\",\"pid\":1,\
                     \"tid\":{lane_tid},\"ts\":{},\"args\":{{\"page\":{},\"sm\":{}}}}}",
                    sp.stage.name(),
                    ts_us(sp.start),
                    sp.page,
                    sp.sm
                ),
            );
            for child in children.get(&sp.id).into_iter().flatten() {
                emit_tree(s, push, children, child, lane_tid);
            }
            push(
                s,
                &format!(
                    "{{\"ph\":\"E\",\"name\":\"{}\",\"cat\":\"span\",\"pid\":1,\
                     \"tid\":{lane_tid},\"ts\":{}}}",
                    sp.stage.name(),
                    ts_us(sp.end),
                ),
            );
        }
        for root in roots {
            emit_tree(&mut s, &mut push, &children, root, lane_tid);
        }
    }

    s.push_str("]}");
    s
}

/// Count `ph:"B"` and `ph:"E"` events in a Chrome trace and check they
/// balance. Returns the pair count.
///
/// # Errors
/// Returns a description of the imbalance.
pub fn span_balance(trace_json: &str) -> Result<usize, String> {
    let begins = trace_json.matches("\"ph\":\"B\"").count();
    let ends = trace_json.matches("\"ph\":\"E\"").count();
    if begins == ends {
        Ok(begins)
    } else {
        Err(format!("unbalanced span events: {begins} B vs {ends} E"))
    }
}

/// One-line warning when the bounded rings overflowed and telemetry is
/// therefore incomplete (`None` when nothing was lost). Reports print
/// this so a truncated trace never masquerades as a complete one.
#[must_use]
pub fn loss_banner(telemetry: &RunTelemetry) -> Option<String> {
    if !telemetry.lossy() {
        return None;
    }
    let mut banner = format!(
        "WARNING: telemetry rings overflowed — {} events and {} spans \
         dropped (oldest first); raise TraceConfig::ring_capacity / \
         span_capacity for full history",
        telemetry.dropped_events, telemetry.dropped_spans
    );
    if telemetry.dropped_decisions > 0 {
        let _ = write!(
            banner,
            " ({} audited decisions also dropped; raise decision_capacity)",
            telemetry.dropped_decisions
        );
    }
    if telemetry.monitor.dropped > 0 {
        let _ = write!(
            banner,
            " ({} monitor snapshots also dropped; raise monitor_capacity)",
            telemetry.monitor.dropped
        );
    }
    Some(banner)
}

/// Write `contents` to `path` crash-safely: the bytes land in a
/// sibling `<name>.tmp` file first, are flushed to disk, and only then
/// renamed over the destination. Readers (CI gates parsing `BENCH_*`
/// baselines, `--resume` loading a snapshot) therefore see either the
/// previous complete artifact or the new complete artifact — never a
/// truncated hybrid from a run that was killed mid-write.
///
/// # Errors
/// Propagates the underlying I/O error; on failure the destination is
/// untouched (a stale `.tmp` may remain and is overwritten next time).
pub fn write_atomic(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventRecord;
    use crate::metrics::MetricsRegistry;

    fn sample_telemetry() -> RunTelemetry {
        let mut r = MetricsRegistry::new();
        r.set("driver.batches", MetricKind::Counter, 1);
        r.set("mem.resident_pages", MetricKind::Gauge, 16);
        r.snapshot_epoch(28_000);
        r.set("driver.batches", MetricKind::Counter, 2);
        r.set("mem.resident_pages", MetricKind::Gauge, 32);
        r.snapshot_epoch(70_000);
        RunTelemetry {
            events: vec![
                EventRecord {
                    cycle: 0,
                    event: TraceEvent::BatchServiced {
                        batch: 0,
                        arrived: 4,
                        distinct: 4,
                        coalesced: 0,
                        host_done_cycle: 28_000,
                        done_cycle: 30_000,
                    },
                },
                EventRecord {
                    cycle: 100,
                    event: TraceEvent::FarFault { page: 9 },
                },
                EventRecord {
                    cycle: 200,
                    event: TraceEvent::MigrationDma {
                        page: 9,
                        pages: 16,
                        done_cycle: 5_000,
                    },
                },
            ],
            dropped_events: 0,
            series: r.into_series(),
            ..RunTelemetry::default()
        }
    }

    fn telemetry_with_spans() -> RunTelemetry {
        use crate::span::{SpanId, SpanRecorder};
        let mut rec = SpanRecorder::new(64);
        let root = rec.open(SpanStage::FaultTotal, 1_400, SpanId::NONE, 0, 3, 42);
        rec.complete(SpanStage::TlbL1, 1_400, 1_401, root, 0, 3, 42);
        rec.complete(SpanStage::PageWalk, 1_411, 2_011, root, 0, 3, 42);
        rec.close(root, 30_000);
        rec.complete(
            SpanStage::DriverBatch,
            2_011,
            30_000,
            SpanId::NONE,
            u16::MAX,
            u32::MAX,
            0,
        );
        let (spans, dropped_spans, _) = rec.finish();
        RunTelemetry {
            spans,
            dropped_spans,
            ..sample_telemetry()
        }
    }

    #[test]
    fn timeline_csv_is_wide_and_delta_based() {
        let t = sample_telemetry();
        let csv = timeline_csv(&t.series);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "epoch,cycle,driver.batches,mem.resident_pages"
        );
        assert_eq!(lines.next().unwrap(), "0,28000,1,16");
        assert_eq!(lines.next().unwrap(), "1,70000,1,32", "counter is a delta");
        crate::csv::validate(&csv).unwrap();
    }

    #[test]
    fn run_summary_is_valid_json_with_totals() {
        let t = sample_telemetry();
        let j = run_summary_json("completed", 70_000, &t);
        json::validate(&j).unwrap();
        assert!(j.contains("\"outcome\":\"completed\""));
        assert!(j.contains("\"driver.batches\":{\"kind\":\"counter\",\"value\":2}"));
        assert!(j.contains("\"mem.resident_pages\":{\"kind\":\"gauge\",\"value\":32}"));
    }

    #[test]
    fn chrome_trace_is_valid_and_has_spans() {
        let t = sample_telemetry();
        let j = chrome_trace_json(&t);
        json::validate(&j).unwrap();
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.contains("\"ph\":\"M\""), "thread metadata present");
        assert!(j.contains("\"ph\":\"X\""), "duration spans present");
        assert!(j.contains("\"ph\":\"i\""), "instants present");
        // 28_000 cycles @ 1.4 GHz = 20 µs.
        assert!(j.contains("\"dur\":20.000"));
    }

    #[test]
    fn chrome_trace_renders_span_trees_as_balanced_b_e() {
        let t = telemetry_with_spans();
        let j = chrome_trace_json(&t);
        json::validate(&j).unwrap();
        let pairs = span_balance(&j).expect("balanced");
        assert_eq!(pairs, 3, "fault_total + tlb_l1 + page_walk");
        assert!(j.contains("\"name\":\"lane3\""), "per-lane track named");
        assert!(j.contains("\"name\":\"span.driver_batch\""));
        // Children render between the root's B and E.
        let root_b = j.find("\"ph\":\"B\",\"name\":\"fault_total\"").unwrap();
        let child_b = j.find("\"ph\":\"B\",\"name\":\"page_walk\"").unwrap();
        let root_e = j.find("\"ph\":\"E\",\"name\":\"fault_total\"").unwrap();
        assert!(
            root_b < child_b && child_b < root_e,
            "children nest inside parent"
        );
    }

    #[test]
    fn span_balance_detects_imbalance() {
        assert_eq!(span_balance("{\"traceEvents\":[]}").unwrap(), 0);
        assert!(span_balance("\"ph\":\"B\" \"ph\":\"B\" \"ph\":\"E\"").is_err());
    }

    #[test]
    fn loss_banner_only_when_lossy() {
        let clean = sample_telemetry();
        assert!(loss_banner(&clean).is_none());
        let lossy = RunTelemetry {
            dropped_spans: 7,
            ..sample_telemetry()
        };
        let banner = loss_banner(&lossy).expect("lossy run warns");
        assert!(banner.contains("7 spans"));
        assert!(banner.contains("WARNING"));
    }

    #[test]
    fn run_summary_mentions_decisions_only_when_audited() {
        let clean = sample_telemetry();
        let j = run_summary_json("completed", 70_000, &clean);
        assert!(
            !j.contains("\"decisions\""),
            "non-audited summaries keep their exact shape"
        );
        let audited = RunTelemetry {
            decisions: vec![crate::decision::DecisionRecord {
                cycle: 9,
                event: crate::decision::DecisionEvent {
                    kind: crate::decision::DecisionKind::Prefetch,
                    policy: "seq-local",
                    origin: "whole-chunk",
                    rung: 0,
                    chosen: 3,
                    pages: vec![0, 1],
                },
            }],
            dropped_decisions: 2,
            ..sample_telemetry()
        };
        let j = run_summary_json("completed", 70_000, &audited);
        json::validate(&j).unwrap();
        assert!(j.contains("\"decisions\":{\"recorded\":1,\"dropped\":2}"));
        let banner = loss_banner(&audited).expect("dropped decisions are loss");
        assert!(banner.contains("2 audited decisions"));
    }

    #[test]
    fn run_summary_mentions_monitor_only_when_sampled() {
        let clean = sample_telemetry();
        let j = run_summary_json("completed", 70_000, &clean);
        assert!(
            !j.contains("\"monitor\""),
            "non-monitored summaries keep their exact shape"
        );
        let monitored = RunTelemetry {
            monitor: crate::monitor::MonitorSeries {
                schema: vec![("driver.batches".into(), MetricKind::Counter)],
                snapshots: vec![crate::monitor::MonitorSnapshot {
                    seq: 2,
                    cycle: 70_000,
                    wall_ms: 1,
                    totals: vec![2],
                }],
                sampled: 3,
                dropped: 2,
            },
            ..sample_telemetry()
        };
        let j = run_summary_json("completed", 70_000, &monitored);
        json::validate(&j).unwrap();
        assert!(j.contains("\"monitor\":{\"sampled\":3,\"recorded\":1,\"dropped\":2}"));
        let banner = loss_banner(&monitored).expect("dropped snapshots are loss");
        assert!(banner.contains("2 monitor snapshots"));
    }

    #[test]
    fn run_summary_counts_spans() {
        let t = telemetry_with_spans();
        let j = run_summary_json("completed", 30_000, &t);
        json::validate(&j).unwrap();
        assert!(j.contains("\"spans\":{\"recorded\":4,\"dropped\":0,\"unclosed\":0}"));
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("cppe-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        write_atomic(&path, "{\"v\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        write_atomic(&path, "{\"v\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        assert!(!dir.join("artifact.json.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_format_parses_and_selects() {
        assert_eq!(TraceFormat::parse("csv").unwrap(), TraceFormat::Csv);
        assert_eq!(TraceFormat::parse("all").unwrap(), TraceFormat::All);
        assert!(TraceFormat::parse("yaml").is_err());
        assert!(TraceFormat::All.wants_csv());
        assert!(TraceFormat::All.wants_chrome());
        assert!(!TraceFormat::Csv.wants_json());
        assert!(TraceFormat::Json.wants_json());
    }
}
