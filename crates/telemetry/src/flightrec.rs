//! Crash flight recorder: a post-mortem dossier for killed runs.
//!
//! The orchestrator's journal makes *results* crash-safe; nothing made
//! the *run itself* inspectable after a chaos kill or a contained
//! panic. The [`FlightRecorder`] keeps a bounded drop-oldest breadcrumb
//! ring (wall-stamped notes: leases issued, panics contained, workers
//! dying) plus the set of currently-open spans (in-flight cells), and
//! on demand dumps both — together with the last monitor snapshots and
//! a caller-supplied state document — as one atomic-rename JSON dossier
//! (schema [`FLIGHTREC_SCHEMA`]) next to the journal. Every kill or
//! panic in the chaos suite therefore leaves forensics: what was
//! running, what had just happened, and what the vitals looked like.

use crate::export::write_atomic;
use crate::json;
use crate::monitor::{monitor_json, MonitorSeries};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// Schema marker for flight-recorder dossiers.
pub const FLIGHTREC_SCHEMA: &str = "cppe-flightrec-v1";

/// The recorder. Cheap to tick; only [`FlightRecorder::dump`] does I/O.
#[derive(Debug)]
pub struct FlightRecorder {
    started: Instant,
    capacity: usize,
    crumbs: std::collections::VecDeque<(u64, String)>,
    dropped: u64,
    /// Open spans by key: `(opened wall ms, label)`.
    open: BTreeMap<String, (u64, String)>,
}

impl FlightRecorder {
    /// Recorder keeping at most `capacity` breadcrumbs (drop-oldest).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            started: Instant::now(),
            capacity,
            crumbs: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
            open: BTreeMap::new(),
        }
    }

    /// Wall-clock milliseconds since the recorder started.
    #[must_use]
    pub fn wall_ms(&self) -> u64 {
        crate::monitor::saturating_millis(self.started.elapsed())
    }

    /// Append a breadcrumb (oldest dropped at capacity).
    pub fn note(&mut self, text: impl Into<String>) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.crumbs.len() == self.capacity {
            self.crumbs.pop_front();
            self.dropped += 1;
        }
        self.crumbs.push_back((self.wall_ms(), text.into()));
    }

    /// Open (or relabel) span `key`. The open-span set is what the
    /// dossier reports as "in flight at the time of death".
    pub fn open(&mut self, key: &str, label: impl Into<String>) {
        let at = self.wall_ms();
        let entry = self
            .open
            .entry(key.to_string())
            .or_insert((at, String::new()));
        entry.1 = label.into();
    }

    /// Close span `key` (no-op when unknown).
    pub fn close(&mut self, key: &str) {
        self.open.remove(key);
    }

    /// Currently open spans.
    #[must_use]
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Render the dossier document. `monitor` attaches the last
    /// snapshots; `state` is a caller-rendered JSON document (the
    /// orchestrator passes its live queue status) — both `null` when
    /// absent.
    #[must_use]
    pub fn dossier_json(
        &self,
        reason: &str,
        monitor: Option<&MonitorSeries>,
        state: Option<&str>,
    ) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"schema\":{},\"reason\":{},\"wall_ms\":{},\"open_spans\":[",
            json::string(FLIGHTREC_SCHEMA),
            json::string(reason),
            self.wall_ms()
        );
        for (i, (key, (opened, label))) in self.open.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"key\":{},\"label\":{},\"opened_wall_ms\":{opened}}}",
                json::string(key),
                json::string(label)
            );
        }
        let _ = write!(
            s,
            "],\"breadcrumbs_dropped\":{},\"breadcrumbs\":[",
            self.dropped
        );
        for (i, (at, text)) in self.crumbs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"wall_ms\":{at},\"note\":{}}}", json::string(text));
        }
        s.push_str("],\"monitor\":");
        match monitor {
            Some(series) => s.push_str(&monitor_json(series)),
            None => s.push_str("null"),
        }
        s.push_str(",\"state\":");
        s.push_str(state.unwrap_or("null"));
        s.push('}');
        s
    }

    /// Write the dossier crash-safely to `path` (parent directories
    /// created as needed; atomic rename, so readers never see a torn
    /// dossier).
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn dump(
        &self,
        path: &Path,
        reason: &str,
        monitor: Option<&MonitorSeries>,
        state: Option<&str>,
    ) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        write_atomic(path, &self.dossier_json(reason, monitor, state))
    }
}

/// Schema-check a flight-recorder dossier (the `validate-trace` hook).
/// Returns a one-line summary.
///
/// # Errors
/// Describes the first malformation.
pub fn validate_doc(body: &str) -> Result<String, String> {
    let v = json::parse(body)?;
    match v.get("schema").and_then(json::Value::as_str) {
        Some(FLIGHTREC_SCHEMA) => {}
        other => {
            return Err(format!(
                "schema marker {other:?}, want {FLIGHTREC_SCHEMA:?}"
            ))
        }
    }
    let reason = v
        .get("reason")
        .and_then(json::Value::as_str)
        .ok_or("missing \"reason\"")?;
    if reason.is_empty() {
        return Err("empty \"reason\"".into());
    }
    let open = v
        .get("open_spans")
        .and_then(json::Value::as_array)
        .ok_or("missing \"open_spans\" array")?;
    for span in open {
        if span.get("key").and_then(json::Value::as_str).is_none()
            || span
                .get("opened_wall_ms")
                .and_then(json::Value::as_u64)
                .is_none()
        {
            return Err("open span without key/opened_wall_ms".into());
        }
    }
    let crumbs = v
        .get("breadcrumbs")
        .and_then(json::Value::as_array)
        .ok_or("missing \"breadcrumbs\" array")?;
    for crumb in crumbs {
        if crumb.get("note").and_then(json::Value::as_str).is_none() {
            return Err("breadcrumb without note".into());
        }
    }
    let monitor = v.get("monitor").ok_or("missing \"monitor\"")?;
    let monitor_detail = if monitor.is_null() {
        "no monitor".to_string()
    } else {
        // Nested monitor section follows the monitor schema exactly.
        let mut nested = String::new();
        render_value(monitor, &mut nested);
        crate::monitor::validate_doc(&nested)?
    };
    if v.get("state").is_none() {
        return Err("missing \"state\"".into());
    }
    Ok(format!(
        "reason {reason:?}, {} open spans, {} breadcrumbs, {monitor_detail}",
        open.len(),
        crumbs.len()
    ))
}

/// Re-render a parsed value as JSON (for validating nested documents).
fn render_value(v: &json::Value, out: &mut String) {
    match v {
        json::Value::Null => out.push_str("null"),
        json::Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        json::Value::Num(n) => out.push_str(n),
        json::Value::Str(s) => out.push_str(&json::string(s)),
        json::Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_value(item, out);
            }
            out.push(']');
        }
        json::Value::Obj(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json::string(k));
                out.push(':');
                render_value(item, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricKind, MetricsRegistry};
    use crate::monitor::Monitor;

    #[test]
    fn breadcrumbs_drop_oldest() {
        let mut fr = FlightRecorder::new(2);
        fr.note("first");
        fr.note("second");
        fr.note("third");
        let doc = fr.dossier_json("test", None, None);
        assert!(!doc.contains("first"));
        assert!(doc.contains("second") && doc.contains("third"));
        assert!(doc.contains("\"breadcrumbs_dropped\":1"));
    }

    #[test]
    fn open_close_tracks_in_flight() {
        let mut fr = FlightRecorder::new(8);
        fr.open("fp1", "STN/cppe");
        fr.open("fp2", "KMN/baseline");
        fr.close("fp1");
        assert_eq!(fr.open_count(), 1);
        let doc = fr.dossier_json("test", None, None);
        assert!(doc.contains("\"key\":\"fp2\""));
        assert!(!doc.contains("fp1"));
    }

    #[test]
    fn dossier_validates_with_monitor_and_state() {
        let mut fr = FlightRecorder::new(8);
        fr.note("lease issued");
        fr.open("fp1", "STN/cppe attempt 1");
        let mut mon = Monitor::new(0, 0, 4);
        let mut reg = MetricsRegistry::new();
        reg.set("orch.cells.completed", MetricKind::Counter, 3);
        mon.maybe_sample(0, &reg);
        let doc = fr.dossier_json(
            "cell panic: chaos",
            Some(&mon.series()),
            Some("{\"pending\":4}"),
        );
        json::validate(&doc).unwrap();
        let detail = validate_doc(&doc).unwrap();
        assert!(detail.contains("1 open spans"), "{detail}");
        assert!(detail.contains("1 breadcrumbs"), "{detail}");
        assert!(detail.contains("1 snapshots"), "{detail}");
    }

    #[test]
    fn validate_rejects_malformed_dossiers() {
        assert!(validate_doc("{}").is_err());
        let no_state = "{\"schema\":\"cppe-flightrec-v1\",\"reason\":\"x\",\"wall_ms\":0,\
             \"open_spans\":[],\"breadcrumbs_dropped\":0,\"breadcrumbs\":[],\"monitor\":null}";
        assert!(validate_doc(no_state).unwrap_err().contains("state"));
    }

    #[test]
    fn dump_writes_atomically_and_creates_dirs() {
        let dir = std::env::temp_dir().join(format!("cppe-flightrec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("flightrec.json");
        let mut fr = FlightRecorder::new(4);
        fr.note("dying");
        fr.dump(&path, "shutdown-by-chaos", None, None).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        validate_doc(&body).unwrap();
        assert!(!path.with_extension("json.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
