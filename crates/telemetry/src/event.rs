//! The typed event taxonomy.
//!
//! Events are small `Copy` payloads stamped with the simulated cycle at
//! which they were recorded. Pages and chunks travel as raw `u64`
//! indices so this crate stays below `gmmu` in the dependency order;
//! emitters pass `VirtPage::0` / `ChunkId::0`.

use std::fmt::Write as _;

/// Which injected perturbation fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFaultKind {
    /// A migration DMA was failed transiently.
    TransferFailure,
    /// A fault batch's base service latency was inflated.
    LatencySpike,
    /// The fault queue overflowed; `deferred` faults were pushed to the
    /// next batch.
    QueueOverflow {
        /// Faults cut off the batch tail.
        deferred: u32,
    },
}

/// One traced occurrence inside the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A distinct far fault entered host-side service.
    FarFault {
        /// Faulted virtual page.
        page: u64,
    },
    /// The prefetcher planned a migration for a fault.
    PrefetchDecision {
        /// Faulted virtual page the plan is anchored on.
        page: u64,
        /// Pages in the plan (faulted page included).
        planned: u32,
    },
    /// A migration DMA was charged to the link.
    MigrationDma {
        /// Faulted virtual page the transfer serves.
        page: u64,
        /// Pages transferred.
        pages: u32,
        /// Absolute cycle the transfer completes.
        done_cycle: u64,
    },
    /// A failed migration DMA is being retried after backoff.
    DmaRetry {
        /// Faulted virtual page.
        page: u64,
        /// 1-based retry attempt.
        attempt: u32,
        /// Backoff charged before this attempt.
        backoff_cycles: u64,
    },
    /// A migration was abandoned after the retry budget was spent.
    DmaAbort {
        /// Faulted virtual page.
        page: u64,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A victim chunk was evicted.
    Eviction {
        /// Evicted chunk id.
        chunk: u64,
        /// Pages that were resident (= transferred back).
        resident: u32,
        /// Resident pages never touched.
        untouch: u32,
    },
    /// The fault injector perturbed the run.
    InjectedFault {
        /// Which axis fired.
        kind: InjectedFaultKind,
    },
    /// The thrash degradation ladder moved — down (shedding) or up
    /// (recovery re-arming the original policy engine).
    RungTransition {
        /// Rung before the transition.
        from: u32,
        /// Rung after the transition.
        to: u32,
    },
    /// One fault batch finished host-side service (span event: the
    /// record's cycle is the batch arrival).
    BatchServiced {
        /// Batch sequence number.
        batch: u64,
        /// Faults handed over by the GPU (duplicates included).
        arrived: u32,
        /// Distinct faults serviced.
        distinct: u32,
        /// Faults already resident on arrival.
        coalesced: u32,
        /// Cycle the host frees up for the next batch.
        host_done_cycle: u64,
        /// Cycle the last transfer of the batch lands.
        done_cycle: u64,
    },
}

impl TraceEvent {
    /// Stable event name (Chrome-trace `name` field).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::FarFault { .. } => "far_fault",
            TraceEvent::PrefetchDecision { .. } => "prefetch_decision",
            TraceEvent::MigrationDma { .. } => "migration_dma",
            TraceEvent::DmaRetry { .. } => "dma_retry",
            TraceEvent::DmaAbort { .. } => "dma_abort",
            TraceEvent::Eviction { .. } => "eviction",
            TraceEvent::InjectedFault { .. } => "injected_fault",
            TraceEvent::RungTransition { .. } => "rung_transition",
            TraceEvent::BatchServiced { .. } => "batch",
        }
    }

    /// Track the event renders on in the Chrome trace (also its
    /// category). Tracks group related lifecycle stages so the
    /// fault/migration/eviction overlap is visible at a glance.
    #[must_use]
    pub fn track(&self) -> &'static str {
        match self {
            TraceEvent::FarFault { .. } | TraceEvent::PrefetchDecision { .. } => "fault",
            TraceEvent::MigrationDma { .. }
            | TraceEvent::DmaRetry { .. }
            | TraceEvent::DmaAbort { .. } => "dma",
            TraceEvent::Eviction { .. } => "evict",
            TraceEvent::InjectedFault { .. } => "inject",
            TraceEvent::RungTransition { .. } => "ladder",
            TraceEvent::BatchServiced { .. } => "driver",
        }
    }

    /// Event arguments as a JSON object body (Chrome-trace `args`).
    #[must_use]
    pub fn args_json(&self) -> String {
        let mut s = String::from("{");
        let field = |s: &mut String, k: &str, v: u64| {
            if s.len() > 1 {
                s.push(',');
            }
            let _ = write!(s, "\"{k}\":{v}");
        };
        match *self {
            TraceEvent::FarFault { page } => field(&mut s, "page", page),
            TraceEvent::PrefetchDecision { page, planned } => {
                field(&mut s, "page", page);
                field(&mut s, "planned", u64::from(planned));
            }
            TraceEvent::MigrationDma {
                page,
                pages,
                done_cycle,
            } => {
                field(&mut s, "page", page);
                field(&mut s, "pages", u64::from(pages));
                field(&mut s, "done_cycle", done_cycle);
            }
            TraceEvent::DmaRetry {
                page,
                attempt,
                backoff_cycles,
            } => {
                field(&mut s, "page", page);
                field(&mut s, "attempt", u64::from(attempt));
                field(&mut s, "backoff_cycles", backoff_cycles);
            }
            TraceEvent::DmaAbort { page, attempts } => {
                field(&mut s, "page", page);
                field(&mut s, "attempts", u64::from(attempts));
            }
            TraceEvent::Eviction {
                chunk,
                resident,
                untouch,
            } => {
                field(&mut s, "chunk", chunk);
                field(&mut s, "resident", u64::from(resident));
                field(&mut s, "untouch", u64::from(untouch));
            }
            TraceEvent::InjectedFault { kind } => {
                let (name, deferred) = match kind {
                    InjectedFaultKind::TransferFailure => ("transfer_failure", None),
                    InjectedFaultKind::LatencySpike => ("latency_spike", None),
                    InjectedFaultKind::QueueOverflow { deferred } => {
                        ("queue_overflow", Some(deferred))
                    }
                };
                let _ = write!(s, "\"kind\":\"{name}\"");
                if let Some(d) = deferred {
                    field(&mut s, "deferred", u64::from(d));
                }
            }
            TraceEvent::RungTransition { from, to } => {
                field(&mut s, "from", u64::from(from));
                field(&mut s, "to", u64::from(to));
            }
            TraceEvent::BatchServiced {
                batch,
                arrived,
                distinct,
                coalesced,
                host_done_cycle,
                done_cycle,
            } => {
                field(&mut s, "batch", batch);
                field(&mut s, "arrived", u64::from(arrived));
                field(&mut s, "distinct", u64::from(distinct));
                field(&mut s, "coalesced", u64::from(coalesced));
                field(&mut s, "host_done_cycle", host_done_cycle);
                field(&mut s, "done_cycle", done_cycle);
            }
        }
        s.push('}');
        s
    }
}

/// An event stamped with the simulated cycle it was recorded at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Simulated-cycle timestamp.
    pub cycle: u64,
    /// The event.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_tracks_are_stable() {
        let e = TraceEvent::Eviction {
            chunk: 3,
            resident: 16,
            untouch: 15,
        };
        assert_eq!(e.name(), "eviction");
        assert_eq!(e.track(), "evict");
        assert_eq!(
            TraceEvent::RungTransition { from: 1, to: 0 }.track(),
            "ladder"
        );
    }

    #[test]
    fn args_render_as_json_objects() {
        let e = TraceEvent::DmaRetry {
            page: 7,
            attempt: 2,
            backoff_cycles: 4000,
        };
        assert_eq!(
            e.args_json(),
            "{\"page\":7,\"attempt\":2,\"backoff_cycles\":4000}"
        );
        let q = TraceEvent::InjectedFault {
            kind: InjectedFaultKind::QueueOverflow { deferred: 3 },
        };
        assert_eq!(
            q.args_json(),
            "{\"kind\":\"queue_overflow\",\"deferred\":3}"
        );
        crate::json::validate(&q.args_json()).expect("valid JSON");
    }
}
