//! Cycle-stamped span trees for the fault lifecycle.
//!
//! Where [`crate::event::TraceEvent`] records *that* something happened,
//! a span records *how long a stage took* and *which stages it contains*:
//! every far fault owns a span tree — TLB probes → walker queue/walk →
//! fault-queue wait → driver batch service → replay — and every driver
//! batch owns one for its host-side pipeline (host service, retry
//! backoff, PCIe transfer, eviction DMA). The latency attribution engine
//! ([`crate::attr`]) and the Chrome flame view are built on these
//! records.
//!
//! Same guarantees as the event ring: recording is bounded (drop-oldest,
//! counted), never panics, and every entry point is a no-op behind a
//! disabled [`crate::Tracer`]. Spans left open when a run ends (lanes
//! still waiting on a migration at timeout/crash) are discarded and
//! counted, so the exported set is always balanced: every recorded span
//! has both endpoints.

use sim_core::FxHashMap;
use std::collections::VecDeque;

/// Opaque span handle. `SpanId::NONE` (0) means "no span" — the parent
/// of a root span, or the result of opening a span on a disabled
/// recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span: no parent / recording disabled.
    pub const NONE: SpanId = SpanId(0);

    /// Is this the null span?
    #[must_use]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// Which pipeline stage a span measures.
///
/// Lane-scoped stages decompose one far fault as seen by the faulting
/// lane; driver-scoped stages decompose one batch as seen by the host.
/// The two trees overlap in simulated time (batch service *is* part of
/// the fault-queue/service window) but are recorded separately so each
/// side reconciles internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanStage {
    /// Whole fault lifecycle: access issue → replayed access completes.
    FaultTotal,
    /// Per-SM L1 TLB probe (the miss that starts the lifecycle).
    TlbL1,
    /// Shared L2 TLB probe.
    TlbL2,
    /// Waiting for a free walker slot.
    WalkerQueue,
    /// The page-table walk itself (PWC probe + memory references).
    PageWalk,
    /// Fault raised → batch containing it dispatched to the driver.
    FaultQueueWait,
    /// Batch dispatch → this fault's migration complete (host processing
    /// plus its share of the PCIe queue).
    BatchService,
    /// Migration complete → replayed access resolves in the TLBs.
    Replay,
    /// Whole driver batch: dispatch → last transfer (eviction DMAs
    /// included) lands.
    DriverBatch,
    /// Host CPU processing: 20 µs base plus per-fault handling.
    HostService,
    /// Injected-failure retry backoff charged to the host cursor.
    RetryBackoff,
    /// One migration's host→device DMA occupying the link.
    PcieTransfer,
    /// One eviction's device→host DMA occupying the link.
    EvictionDma,
}

impl SpanStage {
    /// Every stage, lane tree first, in pipeline order.
    pub const ALL: [SpanStage; 13] = [
        SpanStage::FaultTotal,
        SpanStage::TlbL1,
        SpanStage::TlbL2,
        SpanStage::WalkerQueue,
        SpanStage::PageWalk,
        SpanStage::FaultQueueWait,
        SpanStage::BatchService,
        SpanStage::Replay,
        SpanStage::DriverBatch,
        SpanStage::HostService,
        SpanStage::RetryBackoff,
        SpanStage::PcieTransfer,
        SpanStage::EvictionDma,
    ];

    /// Stable stage name (Chrome-trace `name`, report rows, JSON keys).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanStage::FaultTotal => "fault_total",
            SpanStage::TlbL1 => "tlb_l1",
            SpanStage::TlbL2 => "tlb_l2",
            SpanStage::WalkerQueue => "walker_queue",
            SpanStage::PageWalk => "page_walk",
            SpanStage::FaultQueueWait => "fault_queue_wait",
            SpanStage::BatchService => "batch_service",
            SpanStage::Replay => "replay",
            SpanStage::DriverBatch => "driver_batch",
            SpanStage::HostService => "host_service",
            SpanStage::RetryBackoff => "retry_backoff",
            SpanStage::PcieTransfer => "pcie_transfer",
            SpanStage::EvictionDma => "eviction_dma",
        }
    }

    /// Dotted metric name of this stage's latency histogram.
    #[must_use]
    pub fn metric(self) -> &'static str {
        match self {
            SpanStage::FaultTotal => "latency.fault_total",
            SpanStage::TlbL1 => "latency.tlb_l1",
            SpanStage::TlbL2 => "latency.tlb_l2",
            SpanStage::WalkerQueue => "latency.walker_queue",
            SpanStage::PageWalk => "latency.page_walk",
            SpanStage::FaultQueueWait => "latency.fault_queue_wait",
            SpanStage::BatchService => "latency.batch_service",
            SpanStage::Replay => "latency.replay",
            SpanStage::DriverBatch => "latency.driver_batch",
            SpanStage::HostService => "latency.host_service",
            SpanStage::RetryBackoff => "latency.retry_backoff",
            SpanStage::PcieTransfer => "latency.pcie_transfer",
            SpanStage::EvictionDma => "latency.eviction_dma",
        }
    }

    /// Is this stage part of the per-lane fault tree (as opposed to the
    /// driver batch tree)?
    #[must_use]
    pub fn lane_scoped(self) -> bool {
        matches!(
            self,
            SpanStage::FaultTotal
                | SpanStage::TlbL1
                | SpanStage::TlbL2
                | SpanStage::WalkerQueue
                | SpanStage::PageWalk
                | SpanStage::FaultQueueWait
                | SpanStage::BatchService
                | SpanStage::Replay
        )
    }

    /// Does this stage measure *queueing* (waiting for a shared
    /// resource) rather than *service* (the resource working)? The
    /// attribution engine pairs each queue stage with the service stage
    /// that drains it: walker queue ↔ page walk, fault-queue wait ↔
    /// batch service, retry backoff ↔ PCIe transfer.
    #[must_use]
    pub fn is_queueing(self) -> bool {
        matches!(
            self,
            SpanStage::WalkerQueue | SpanStage::FaultQueueWait | SpanStage::RetryBackoff
        )
    }
}

/// One closed span: a stage with both endpoints stamped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// This span's id (never 0 in a recorded span).
    pub id: u64,
    /// Parent span id (0 for roots).
    pub parent: u64,
    /// What the span measures.
    pub stage: SpanStage,
    /// Issuing SM for lane-scoped spans (`u16::MAX` for driver spans).
    pub sm: u16,
    /// Issuing lane for lane-scoped spans (`u32::MAX` for driver spans).
    pub lane: u32,
    /// Virtual page (lane tree / DMA spans) or batch sequence number
    /// (`DriverBatch` / `HostService`).
    pub page: u64,
    /// Start cycle (inclusive).
    pub start: u64,
    /// End cycle (`end >= start` always holds for recorded spans).
    pub end: u64,
}

impl SpanRecord {
    /// Span duration in cycles.
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// Bounded recorder of span trees: a drop-oldest ring of closed spans
/// plus the table of currently-open ones.
#[derive(Debug, Default)]
pub struct SpanRecorder {
    closed: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
    open: FxHashMap<u64, SpanRecord>,
    next_id: u64,
}

impl SpanRecorder {
    /// Recorder keeping at most `capacity` closed spans (capacity 0
    /// keeps nothing and counts everything as dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SpanRecorder {
            closed: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            open: FxHashMap::default(),
            next_id: 1,
        }
    }

    fn push_closed(&mut self, rec: SpanRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.closed.len() == self.capacity {
            self.closed.pop_front();
            self.dropped += 1;
        }
        self.closed.push_back(rec);
    }

    /// Open a span at `start`; close it later with [`SpanRecorder::close`].
    pub fn open(
        &mut self,
        stage: SpanStage,
        start: u64,
        parent: SpanId,
        sm: u16,
        lane: u32,
        page: u64,
    ) -> SpanId {
        let id = self.next_id;
        self.next_id += 1;
        self.open.insert(
            id,
            SpanRecord {
                id,
                parent: parent.0,
                stage,
                sm,
                lane,
                page,
                start,
                end: start,
            },
        );
        SpanId(id)
    }

    /// Close span `id` at `end`. Returns whether the span was actually
    /// open — closing twice (or closing `SpanId::NONE`) is a counted
    /// no-op, which keeps the recorded set balanced even when callers
    /// race on coalesced faults.
    pub fn close(&mut self, id: SpanId, end: u64) -> bool {
        let Some(mut rec) = self.open.remove(&id.0) else {
            return false;
        };
        rec.end = end.max(rec.start);
        self.push_closed(rec);
        true
    }

    /// Record a span whose endpoints are both already known.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        stage: SpanStage,
        start: u64,
        end: u64,
        parent: SpanId,
        sm: u16,
        lane: u32,
        page: u64,
    ) -> SpanId {
        let id = SpanId(self.next_id);
        self.next_id += 1;
        self.push_closed(SpanRecord {
            id: id.0,
            parent: parent.0,
            stage,
            sm,
            lane,
            page,
            start,
            end: end.max(start),
        });
        id
    }

    /// Closed spans dropped by the ring.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Spans currently open.
    #[must_use]
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Closed spans currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.closed.len()
    }

    /// No closed spans held?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.closed.is_empty()
    }

    /// Finish recording: the closed spans in close order, the ring-drop
    /// count, and how many still-open spans were discarded (faults
    /// in flight at run end — discarding them keeps every exported span
    /// balanced).
    #[must_use]
    pub fn finish(self) -> (Vec<SpanRecord>, u64, u64) {
        let discarded = self.open.len() as u64;
        (self.closed.into(), self.dropped, discarded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_close_roundtrip() {
        let mut r = SpanRecorder::new(16);
        let root = r.open(SpanStage::FaultTotal, 100, SpanId::NONE, 0, 3, 42);
        let child = r.complete(SpanStage::TlbL1, 100, 101, root, 0, 3, 42);
        assert!(!root.is_none());
        assert_ne!(root, child);
        assert!(r.close(root, 500));
        let (spans, dropped, discarded) = r.finish();
        assert_eq!(dropped, 0);
        assert_eq!(discarded, 0);
        assert_eq!(spans.len(), 2);
        let parent = spans
            .iter()
            .find(|s| s.stage == SpanStage::FaultTotal)
            .unwrap();
        assert_eq!(parent.duration(), 400);
        assert_eq!(
            spans.iter().find(|s| s.id == child.0).unwrap().parent,
            root.0
        );
    }

    #[test]
    fn double_close_is_a_counted_noop() {
        let mut r = SpanRecorder::new(16);
        let s = r.open(SpanStage::FaultQueueWait, 10, SpanId::NONE, 0, 0, 1);
        assert!(r.close(s, 20));
        assert!(!r.close(s, 30), "second close must not record");
        assert!(!r.close(SpanId::NONE, 5));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn overflow_drops_oldest_closed_spans() {
        let mut r = SpanRecorder::new(2);
        for i in 0..5u64 {
            r.complete(SpanStage::PageWalk, i, i + 10, SpanId::NONE, 0, 0, i);
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let (spans, dropped, _) = r.finish();
        assert_eq!(dropped, 3);
        assert_eq!(spans[0].page, 3, "newest survive");
    }

    #[test]
    fn unclosed_spans_are_discarded_and_counted() {
        let mut r = SpanRecorder::new(8);
        let _ = r.open(SpanStage::Replay, 1, SpanId::NONE, 0, 0, 9);
        let done = r.open(SpanStage::FaultTotal, 2, SpanId::NONE, 0, 0, 9);
        r.close(done, 50);
        let (spans, _, discarded) = r.finish();
        assert_eq!(spans.len(), 1, "open span never exported");
        assert_eq!(discarded, 1);
    }

    #[test]
    fn backwards_close_clamps_to_start() {
        let mut r = SpanRecorder::new(4);
        let s = r.open(SpanStage::TlbL2, 100, SpanId::NONE, 0, 0, 0);
        r.close(s, 40);
        let (spans, _, _) = r.finish();
        assert_eq!(spans[0].duration(), 0, "end clamps to start");
    }

    #[test]
    fn zero_capacity_counts_only() {
        let mut r = SpanRecorder::new(0);
        r.complete(SpanStage::HostService, 0, 5, SpanId::NONE, 0, 0, 0);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn stage_names_and_scopes_are_stable() {
        assert_eq!(SpanStage::FaultTotal.name(), "fault_total");
        assert_eq!(SpanStage::PcieTransfer.metric(), "latency.pcie_transfer");
        assert!(SpanStage::Replay.lane_scoped());
        assert!(!SpanStage::DriverBatch.lane_scoped());
        assert!(SpanStage::WalkerQueue.is_queueing());
        assert!(!SpanStage::PageWalk.is_queueing());
        assert_eq!(SpanStage::ALL.len(), 13);
    }
}
