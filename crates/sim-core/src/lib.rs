//! # sim-core
//!
//! Discrete-event simulation substrate shared by every crate in the CPPE
//! reproduction workspace.
//!
//! The crate is deliberately dependency-free: it provides
//!
//! * [`time`] — the [`Cycle`] clock domain (1.4 GHz GPU core
//!   clock per Table I of the paper) and ns↔cycle conversion helpers,
//! * [`events`] — a deterministic [`EventQueue`] with
//!   stable FIFO ordering among same-cycle events,
//! * [`stats`] — counters and histograms used for the paper's metrics
//!   (page faults, evictions, untouch levels, ...),
//! * [`rng`] — a small, seedable, reproducible PRNG
//!   ([`SplitMix64`] / [`Xoshiro256ss`])
//!   so simulation results are bit-stable across runs and platforms,
//! * [`hash`] — an FxHash-style fast hasher plus `FxHashMap`/`FxHashSet`
//!   aliases (integer-keyed maps are on the simulator's hot path),
//! * [`bitvec`] — the 16-bit per-chunk touch vector
//!   ([`TouchVec`]) and a growable bit vector,
//! * [`fault`] — the deterministic, seed-driven [`FaultInjector`] used
//!   by the chaos/robustness experiments (link degradation, transient
//!   DMA failures, latency spikes, fault-queue overflow),
//! * [`error`] — typed configuration/substrate errors ([`ConfigError`],
//!   [`SimError`]) backing the fallible `try_new` constructors,
//! * [`fingerprint`] — stable FNV-1a config fingerprints identifying
//!   experiment cells across process restarts (the orchestrator's
//!   resume/dedupe key),
//! * [`hostprof`] — the host-side self-profiler: batched wall-clock
//!   attribution over the event loop plus the per-cycle cohort/conflict
//!   analyzer behind the parallelism-readiness (Amdahl ceiling)
//!   estimates.

pub mod bitvec;
pub mod error;
pub mod events;
pub mod fault;
pub mod fingerprint;
pub mod hash;
pub mod hostprof;
pub mod rng;
pub mod stats;
pub mod time;

pub use bitvec::{BitVec, TouchVec};
pub use error::{ConfigError, SimError};
pub use events::EventQueue;
pub use fault::{FaultInjector, InjectionConfig, InjectionStats};
pub use fingerprint::Fingerprint;
pub use hash::{FxHashMap, FxHashSet};
pub use hostprof::{AllocProfile, CohortProfile, HostKind, HostProfile, HostProfiler};
pub use rng::{SplitMix64, Xoshiro256ss};
pub use stats::{Counter, Histogram, StatSet};
pub use time::{Cycle, GPU_CLOCK_GHZ};
