//! Host-side self-profiler and parallelism-readiness analyzer.
//!
//! Every telemetry layer so far measures *simulated* time; this module
//! measures where the simulator itself spends *wall-clock* time and how
//! much same-cycle work is actually independent — the data the
//! ROADMAP's "intra-run parallelism" item needs before any threading of
//! the hot loop can be attempted safely.
//!
//! Two trackers, both strictly read-only with respect to simulation
//! state (runs are bit-identical with profiling on, and the whole layer
//! is skipped behind one `Option` branch when off):
//!
//! * [`HostProfiler`] — wall-clock attribution over the event loop.
//!   Reading `Instant::now()` per event would dwarf the dispatch work
//!   it measures, so the profiler batches: it counts per-kind dispatches
//!   into a small window and takes **one** clock sample every
//!   [`DEFAULT_WINDOW`] events, distributing the window's elapsed
//!   nanoseconds across kinds proportionally to their dispatch counts.
//!   Attribution is therefore exact in total (every sampled nanosecond
//!   lands on some kind; truncation loses at most a few ns per window)
//!   and statistically accurate per kind. At each sample it also records
//!   the event queue's near-ring and far-heap depths into histograms.
//!
//! * [`CohortTracker`] — deterministic cohort analysis, no clock at
//!   all. Per executed simulated cycle it records the event-cohort size,
//!   the distinct SMs represented, and the write-set conflict rate
//!   (same-cycle events touching the same virtual page; resident pages
//!   map 1:1 to frames through the flat page table, so page conflicts
//!   are frame conflicts). From these it accumulates a work-span model:
//!   `T1` = total events, `T∞` = Σ per-cycle critical paths, where a
//!   cycle's critical path is its serial (driver-side) events plus the
//!   larger of its busiest SM's count and its most-contended page's
//!   multiplicity. The resulting [`CohortProfile`] reduces to
//!   Amdahl-style speedup ceilings at finite worker counts.

use crate::stats::Histogram;
use std::time::Instant;

/// How the event loop's dispatch work is classified. Finer than the
/// raw event enum: a lane wakeup that hits, faults, drains or parks at
/// a barrier does very different amounts of host work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostKind {
    /// Lane access that hit in translation (cache access + reschedule).
    AccessHit = 0,
    /// Lane access that faulted while the driver was busy (queued).
    FaultQueued = 1,
    /// A fault or driver-free event that dispatched a service batch —
    /// the policy engine, migration and eviction work rides here.
    BatchDispatch = 2,
    /// Lane arrived at a kernel barrier.
    Barrier = 3,
    /// Lane wakeup with an exhausted stream (drain no-op).
    LaneDrained = 4,
    /// Migration completed; waiters replayed.
    PageReady = 5,
    /// Driver freed up with no queued faults.
    DriverIdle = 6,
}

/// Number of [`HostKind`] variants.
pub const KIND_COUNT: usize = 7;

/// Stable export labels, indexed by `HostKind as usize`.
pub const KIND_LABELS: [&str; KIND_COUNT] = [
    "access_hit",
    "fault_queued",
    "batch_dispatch",
    "barrier",
    "lane_drained",
    "page_ready",
    "driver_idle",
];

/// Default events-per-clock-sample window. 64 keeps the `Instant`
/// overhead around 1/64 of a syscall-free clock read per event —
/// far inside the <5 % budget — while windows stay short enough that
/// kind mixes within one window are homogeneous in practice.
pub const DEFAULT_WINDOW: u32 = 64;

/// Finite worker counts the cohort model projects speedup for.
pub const WORKER_POINTS: [u32; 4] = [2, 4, 8, 16];

/// Allocation/recycle counters for the zero-alloc hot paths, filled in
/// by the simulator at run end (the slabs live in other crates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocProfile {
    /// Waiter-slab cells handed out from the free list.
    pub waiter_reuses: u64,
    /// Waiter-slab cells that grew the slab.
    pub waiter_grows: u64,
    /// Waiter-slab high-water mark (cells ever allocated).
    pub waiter_high_water: u64,
    /// Fault batches served entirely from recycled scratch buffers.
    pub scratch_recycled: u64,
    /// Fault batches that had to allocate fresh scratch.
    pub scratch_fresh: u64,
}

impl AllocProfile {
    /// Fraction of waiter-cell allocations served by the free list.
    #[must_use]
    pub fn waiter_reuse_rate(&self) -> f64 {
        ratio(self.waiter_reuses, self.waiter_reuses + self.waiter_grows)
    }

    /// Fraction of batches that reused recycled scratch.
    #[must_use]
    pub fn scratch_reuse_rate(&self) -> f64 {
        ratio(
            self.scratch_recycled,
            self.scratch_recycled + self.scratch_fresh,
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        #[allow(clippy::cast_precision_loss)]
        {
            num as f64 / den as f64
        }
    }
}

/// Deterministic per-cycle cohort reductions (see module docs).
#[derive(Debug, Clone, Default)]
pub struct CohortProfile {
    /// Executed cycles that carried at least one event.
    pub cycles: u64,
    /// Total events across all cohorts (`T1` of the work-span model).
    pub events: u64,
    /// Cohort sizes (events per executed cycle).
    pub cohort_size: Histogram,
    /// Distinct SMs represented per executed cycle.
    pub distinct_sms: Histogram,
    /// Events that carried a page identity.
    pub page_events: u64,
    /// Page-carrying events beyond the first to touch their page in
    /// the same cycle (the write-set conflict count).
    pub conflict_events: u64,
    /// Serial (driver-side) events — no SM identity, inherently ordered.
    pub serial_events: u64,
    /// Σ per-cycle critical paths (`T∞` of the work-span model).
    pub span: u64,
    /// Modeled execution time at each [`WORKER_POINTS`] worker count.
    pub time_at: [u64; WORKER_POINTS.len()],
}

impl CohortProfile {
    /// Share of page-carrying events that conflicted within their cycle.
    #[must_use]
    pub fn conflict_rate(&self) -> f64 {
        ratio(self.conflict_events, self.page_events)
    }

    /// Mean cohort size.
    #[must_use]
    pub fn mean_size(&self) -> f64 {
        self.cohort_size.mean()
    }

    /// Speedup ceiling with unbounded workers: `T1 / T∞`.
    #[must_use]
    pub fn ceiling_inf(&self) -> f64 {
        if self.span == 0 {
            1.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                (self.events as f64 / self.span as f64).max(1.0)
            }
        }
    }

    /// Speedup ceiling at `workers` (one of [`WORKER_POINTS`]); `None`
    /// for worker counts the model did not accumulate.
    #[must_use]
    pub fn ceiling_at(&self, workers: u32) -> Option<f64> {
        let i = WORKER_POINTS.iter().position(|&w| w == workers)?;
        let t = self.time_at[i];
        Some(if t == 0 {
            1.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                (self.events as f64 / t as f64).max(1.0)
            }
        })
    }

    /// Serial fraction of all events (the Amdahl `s`).
    #[must_use]
    pub fn serial_fraction(&self) -> f64 {
        ratio(self.serial_events, self.events)
    }
}

/// Per-cycle cohort accumulator. Purely deterministic: it reads cycle
/// numbers, SM ids and page ids from the event stream and never
/// consults a clock.
#[derive(Debug)]
pub struct CohortTracker {
    current_cycle: u64,
    open: bool,
    cohort_events: u32,
    serial: u32,
    /// The sole event of a not-yet-materialized singleton cohort. Most
    /// executed cycles carry exactly one event; holding it in two
    /// scalars means the vectors below are only touched when a second
    /// same-cycle event actually arrives.
    first_sm: Option<u16>,
    first_page: Option<u64>,
    /// Per-SM event counts for the open cycle (fixed size, reset via
    /// `touched` so closing a cohort is O(cohort), not O(sms)).
    sm_counts: Vec<u32>,
    touched: Vec<u16>,
    pages: Vec<u64>,
    /// Per-value tallies of cohort size / distinct-SM count, folded
    /// into the profile's histograms once at [`CohortTracker::finish`]
    /// (a histogram insert per executed cycle is a tree operation —
    /// too hot for the event loop).
    size_tally: Vec<u64>,
    sms_tally: Vec<u64>,
    profile: CohortProfile,
}

#[inline]
fn tally(v: &mut Vec<u64>, value: usize) {
    if value >= v.len() {
        v.resize(value + 1, 0);
    }
    v[value] += 1;
}

impl CohortTracker {
    /// Tracker for a machine with `sms` streaming multiprocessors.
    #[must_use]
    pub fn new(sms: usize) -> Self {
        CohortTracker {
            current_cycle: 0,
            open: false,
            cohort_events: 0,
            serial: 0,
            first_sm: None,
            first_page: None,
            sm_counts: vec![0; sms],
            touched: Vec::new(),
            pages: Vec::new(),
            size_tally: Vec::new(),
            sms_tally: Vec::new(),
            profile: CohortProfile::default(),
        }
    }

    /// Record one event executing at `cycle`. `sm` is `None` for
    /// serial driver-side work; `page` is the virtual page the event
    /// touches, when it touches one.
    #[inline]
    pub fn note(&mut self, cycle: u64, sm: Option<u16>, page: Option<u64>) {
        if self.open {
            if cycle == self.current_cycle {
                if self.cohort_events == 1 {
                    // A second event joined: materialize the held
                    // singleton into the vectors.
                    let (fsm, fpage) = (self.first_sm, self.first_page);
                    self.record_into_vecs(fsm, fpage);
                }
                self.cohort_events += 1;
                self.serial += u32::from(sm.is_none());
                self.record_into_vecs(sm, page);
                return;
            }
            self.close_cohort();
        }
        self.start(cycle, sm, page);
    }

    #[inline]
    fn start(&mut self, cycle: u64, sm: Option<u16>, page: Option<u64>) {
        self.open = true;
        self.current_cycle = cycle;
        self.cohort_events = 1;
        self.serial = u32::from(sm.is_none());
        self.first_sm = sm;
        self.first_page = page;
    }

    fn record_into_vecs(&mut self, sm: Option<u16>, page: Option<u64>) {
        if let Some(s) = sm {
            let idx = s as usize;
            if idx < self.sm_counts.len() {
                if self.sm_counts[idx] == 0 {
                    self.touched.push(s);
                }
                self.sm_counts[idx] += 1;
            }
        }
        if let Some(p) = page {
            self.pages.push(p);
        }
    }

    #[inline]
    fn close_cohort(&mut self) {
        tally(&mut self.size_tally, self.cohort_events as usize);
        let prof = &mut self.profile;
        prof.cycles += 1;
        prof.serial_events += u64::from(self.serial);

        // Fast path: most executed cycles carry exactly one event. It
        // was never materialized into the scratch vectors (see `note`),
        // it can neither conflict nor parallelize, and its critical
        // path is 1 at every worker count — so the close is purely
        // scalar. This keeps the profiler inside its <5 % overhead
        // budget; the reductions are identical to the general path.
        if self.cohort_events == 1 {
            tally(&mut self.sms_tally, usize::from(self.first_sm.is_some()));
            prof.events += 1;
            prof.page_events += u64::from(self.first_page.is_some());
            prof.span += 1;
            for t in &mut prof.time_at {
                *t += 1;
            }
            self.cohort_events = 0;
            self.serial = 0;
            return;
        }

        let n = u64::from(self.cohort_events);
        tally(&mut self.sms_tally, self.touched.len());
        prof.events += n;

        // Conflicts: events beyond the first touching each page.
        self.pages.sort_unstable();
        let mut max_mult = 0u64;
        let mut conflicts = 0u64;
        let mut i = 0usize;
        while i < self.pages.len() {
            let mut j = i + 1;
            while j < self.pages.len() && self.pages[j] == self.pages[i] {
                j += 1;
            }
            let mult = (j - i) as u64;
            max_mult = max_mult.max(mult);
            conflicts += mult - 1;
            i = j;
        }
        prof.page_events += self.pages.len() as u64;
        prof.conflict_events += conflicts;

        // Work-span: parallel work is bounded below by the busiest SM
        // and by the most-contended page (its touches serialize).
        let parallel = n - u64::from(self.serial);
        let busiest = self
            .touched
            .iter()
            .map(|&s| u64::from(self.sm_counts[s as usize]))
            .max()
            .unwrap_or(0);
        let cp_par = busiest.max(max_mult).min(parallel);
        prof.span += u64::from(self.serial) + cp_par;
        for (i, &w) in WORKER_POINTS.iter().enumerate() {
            let spread = parallel.div_ceil(u64::from(w));
            prof.time_at[i] += u64::from(self.serial) + cp_par.max(spread);
        }

        // Reset scratch for the next cohort.
        for s in self.touched.drain(..) {
            self.sm_counts[s as usize] = 0;
        }
        self.pages.clear();
        self.cohort_events = 0;
        self.serial = 0;
    }

    /// Close any open cohort, fold the tallies into the histograms and
    /// return the reductions.
    #[must_use]
    pub fn finish(mut self) -> CohortProfile {
        if self.open {
            self.close_cohort();
        }
        for (value, &n) in self.size_tally.iter().enumerate() {
            self.profile.cohort_size.record_n(value as u64, n);
        }
        for (value, &n) in self.sms_tally.iter().enumerate() {
            self.profile.distinct_sms.record_n(value as u64, n);
        }
        self.profile
    }
}

/// Everything the profiler measured, carried on the run result.
#[derive(Debug, Clone, Default)]
pub struct HostProfile {
    /// Wall nanoseconds from profiler creation to finish (the loop wall
    /// time the attribution is judged against).
    pub loop_wall_ns: u64,
    /// Total events dispatched.
    pub events: u64,
    /// Clock samples taken (one per full or final partial window).
    pub instant_samples: u64,
    /// Events per clock sample.
    pub sample_window: u32,
    /// Dispatch counts per [`HostKind`].
    pub counts: [u64; KIND_COUNT],
    /// Attributed wall nanoseconds per [`HostKind`].
    pub wall_ns: [u64; KIND_COUNT],
    /// Near-ring depth at each clock sample.
    pub ring_depth: Histogram,
    /// Far-heap depth at each clock sample.
    pub far_depth: Histogram,
    /// Cohort/conflict reductions.
    pub cohorts: CohortProfile,
    /// Zero-alloc path counters.
    pub alloc: AllocProfile,
}

impl HostProfile {
    /// Total wall nanoseconds attributed to event kinds.
    #[must_use]
    pub fn attributed_ns(&self) -> u64 {
        self.wall_ns.iter().sum()
    }

    /// Attributed share of the loop wall time (≈1.0 by construction;
    /// per-window truncation and pre-first-event setup are the only
    /// losses).
    #[must_use]
    pub fn attributed_share(&self) -> f64 {
        if self.loop_wall_ns == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.attributed_ns() as f64 / self.loop_wall_ns as f64
            }
        }
    }

    /// `(label, count, wall_ns)` rows sorted by wall share, descending.
    #[must_use]
    pub fn ranked_kinds(&self) -> Vec<(&'static str, u64, u64)> {
        let mut rows: Vec<_> = (0..KIND_COUNT)
            .map(|k| (KIND_LABELS[k], self.counts[k], self.wall_ns[k]))
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
        rows
    }
}

/// The batched wall-clock attribution profiler (see module docs).
#[derive(Debug)]
pub struct HostProfiler {
    window: u32,
    in_window: u32,
    window_counts: [u32; KIND_COUNT],
    counts: [u64; KIND_COUNT],
    wall_ns: [u128; KIND_COUNT],
    events: u64,
    samples: u64,
    last: Instant,
    started: Instant,
    ring_depth: Histogram,
    far_depth: Histogram,
    cohorts: CohortTracker,
}

impl HostProfiler {
    /// Profiler sampling the clock every `window` events, tracking
    /// cohorts for a machine with `sms` SMs.
    #[must_use]
    pub fn new(window: u32, sms: usize) -> Self {
        let now = Instant::now();
        HostProfiler {
            window: window.max(1),
            in_window: 0,
            window_counts: [0; KIND_COUNT],
            counts: [0; KIND_COUNT],
            wall_ns: [0; KIND_COUNT],
            events: 0,
            samples: 0,
            last: now,
            started: now,
            ring_depth: Histogram::new(),
            far_depth: Histogram::new(),
            cohorts: CohortTracker::new(sms),
        }
    }

    /// Record one dispatched event: its kind, execution cycle, SM and
    /// page identities (for the cohort model) and the queue depths
    /// (recorded only at window flushes, so passing them is two loads).
    #[inline]
    pub fn note(
        &mut self,
        kind: HostKind,
        cycle: u64,
        sm: Option<u16>,
        page: Option<u64>,
        ring_depth: usize,
        far_depth: usize,
    ) {
        // The totals (`counts`, `events`) are folded in at flush time —
        // the per-event path is two increments plus the cohort note.
        self.window_counts[kind as usize] += 1;
        self.in_window += 1;
        self.cohorts.note(cycle, sm, page);
        if self.in_window >= self.window {
            self.flush(ring_depth, far_depth);
        }
    }

    /// Distribute the window's elapsed wall time across the kinds seen
    /// in it, proportional to their dispatch counts.
    fn flush(&mut self, ring_depth: usize, far_depth: usize) {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last).as_nanos();
        self.last = now;
        self.samples += 1;
        let total = u128::from(self.in_window);
        self.events += u64::from(self.in_window);
        for k in 0..KIND_COUNT {
            let c = self.window_counts[k];
            if c > 0 {
                self.counts[k] += u64::from(c);
                // total > 0 whenever any count is (c ≤ total), but the
                // checked form keeps that invariant local.
                self.wall_ns[k] += (elapsed * u128::from(c)).checked_div(total).unwrap_or(0);
            }
        }
        self.window_counts = [0; KIND_COUNT];
        self.in_window = 0;
        self.ring_depth.record(ring_depth as u64);
        self.far_depth.record(far_depth as u64);
    }

    /// Flush the partial final window and assemble the profile.
    /// `alloc` carries the zero-alloc counters the caller read from the
    /// waiter slab and driver scratch pool.
    #[must_use]
    pub fn finish(
        mut self,
        ring_depth: usize,
        far_depth: usize,
        alloc: AllocProfile,
    ) -> HostProfile {
        if self.in_window > 0 {
            self.flush(ring_depth, far_depth);
        }
        let loop_wall = self.started.elapsed().as_nanos();
        let sat = |v: u128| u64::try_from(v).unwrap_or(u64::MAX);
        let mut wall_ns = [0u64; KIND_COUNT];
        for (out, &acc) in wall_ns.iter_mut().zip(self.wall_ns.iter()) {
            *out = sat(acc);
        }
        HostProfile {
            loop_wall_ns: sat(loop_wall),
            events: self.events,
            instant_samples: self.samples,
            sample_window: self.window,
            counts: self.counts,
            wall_ns,
            ring_depth: self.ring_depth,
            far_depth: self.far_depth,
            cohorts: self.cohorts.finish(),
            alloc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_is_bounded_by_loop_wall() {
        let mut p = HostProfiler::new(8, 4);
        for i in 0..1000u64 {
            let kind = if i % 3 == 0 {
                HostKind::AccessHit
            } else {
                HostKind::PageReady
            };
            p.note(kind, i / 4, Some((i % 4) as u16), Some(i % 17), 5, 2);
            // A little work so windows have nonzero elapsed time.
            std::hint::black_box(i.wrapping_mul(0x9E37_79B9));
        }
        let prof = p.finish(0, 0, AllocProfile::default());
        assert_eq!(prof.events, 1000);
        assert_eq!(prof.counts.iter().sum::<u64>(), 1000);
        assert!(prof.attributed_ns() <= prof.loop_wall_ns);
        // Batched attribution covers (nearly) everything: each window's
        // elapsed time is fully distributed, truncation loses ≤7 ns per
        // window.
        assert!(
            prof.attributed_share() > 0.90,
            "share = {}",
            prof.attributed_share()
        );
        // 1000 events / window 8 = 125 full windows, no partial.
        assert_eq!(prof.instant_samples, 125);
        assert_eq!(prof.ring_depth.count(), 125);
    }

    #[test]
    fn partial_final_window_is_flushed() {
        let mut p = HostProfiler::new(64, 1);
        for i in 0..10u64 {
            p.note(HostKind::Barrier, i, Some(0), None, 1, 0);
        }
        let prof = p.finish(3, 4, AllocProfile::default());
        assert_eq!(prof.events, 10);
        assert_eq!(prof.instant_samples, 1);
        assert_eq!(prof.ring_depth.max(), 3);
        assert_eq!(prof.far_depth.max(), 4);
        assert_eq!(prof.counts[HostKind::Barrier as usize], 10);
    }

    #[test]
    fn ranked_kinds_sorted_by_wall_share() {
        let mut prof = HostProfile::default();
        prof.counts[HostKind::AccessHit as usize] = 5;
        prof.wall_ns[HostKind::AccessHit as usize] = 100;
        prof.counts[HostKind::BatchDispatch as usize] = 1;
        prof.wall_ns[HostKind::BatchDispatch as usize] = 900;
        let ranked = prof.ranked_kinds();
        assert_eq!(ranked[0].0, "batch_dispatch");
        assert_eq!(ranked[0].2, 900);
        assert_eq!(ranked[1].0, "access_hit");
    }

    #[test]
    fn cohorts_split_on_cycle_boundaries() {
        let mut t = CohortTracker::new(4);
        // Cycle 10: three events, two SMs, two touching page 7.
        t.note(10, Some(0), Some(7));
        t.note(10, Some(1), Some(7));
        t.note(10, Some(0), Some(9));
        // Cycle 11: one serial driver event.
        t.note(11, None, None);
        let prof = t.finish();
        assert_eq!(prof.cycles, 2);
        assert_eq!(prof.events, 4);
        assert_eq!(prof.cohort_size.max(), 3);
        assert_eq!(prof.distinct_sms.max(), 2);
        assert_eq!(prof.page_events, 3);
        assert_eq!(prof.conflict_events, 1, "page 7 touched twice");
        assert_eq!(prof.serial_events, 1);
        assert!((prof.conflict_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn work_span_model_accumulates_critical_paths() {
        let mut t = CohortTracker::new(8);
        // Cycle 1: 4 events on 4 distinct SMs, distinct pages →
        // critical path 1 (perfectly parallel).
        for sm in 0..4u16 {
            t.note(1, Some(sm), Some(u64::from(sm)));
        }
        // Cycle 2: 1 serial event → critical path 1.
        t.note(2, None, None);
        let prof = t.finish();
        assert_eq!(prof.events, 5);
        assert_eq!(prof.span, 2);
        assert!((prof.ceiling_inf() - 2.5).abs() < 1e-12);
        // At 2 workers cycle 1 takes ceil(4/2)=2, cycle 2 takes 1.
        assert!((prof.ceiling_at(2).unwrap() - 5.0 / 3.0).abs() < 1e-12);
        // ≥4 workers reach the span bound.
        assert!((prof.ceiling_at(4).unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(prof.ceiling_at(3), None, "unmodeled worker count");
        assert!((prof.serial_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn contended_page_serializes_the_cohort() {
        let mut t = CohortTracker::new(8);
        // 4 events on 4 SMs all touching page 3: page multiplicity 4
        // caps the parallelism despite the SM spread.
        for sm in 0..4u16 {
            t.note(5, Some(sm), Some(3));
        }
        let prof = t.finish();
        assert_eq!(prof.span, 4);
        assert_eq!(prof.conflict_events, 3);
        assert!((prof.ceiling_inf() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profiler_finishes_cleanly() {
        let p = HostProfiler::new(64, 2);
        let prof = p.finish(0, 0, AllocProfile::default());
        assert_eq!(prof.events, 0);
        assert_eq!(prof.instant_samples, 0);
        assert_eq!(prof.attributed_ns(), 0);
        assert_eq!(prof.cohorts.cycles, 0);
        assert!((prof.cohorts.ceiling_inf() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alloc_profile_rates() {
        let a = AllocProfile {
            waiter_reuses: 90,
            waiter_grows: 10,
            waiter_high_water: 10,
            scratch_recycled: 3,
            scratch_fresh: 1,
        };
        assert!((a.waiter_reuse_rate() - 0.9).abs() < 1e-12);
        assert!((a.scratch_reuse_rate() - 0.75).abs() < 1e-12);
        assert_eq!(AllocProfile::default().waiter_reuse_rate(), 0.0);
    }
}
