//! Small, deterministic, seedable PRNGs.
//!
//! The simulator must be bit-reproducible: the paper's figures are
//! regenerated from fixed seeds, and the test suite asserts on exact
//! counter values. We therefore ship our own tiny generators
//! (SplitMix64 for seeding, xoshiro256** for streams) instead of relying
//! on `rand`'s unspecified default engine. `rand` is still used by the
//! workload crate through the [`Xoshiro256ss`] adapter below when
//! distribution sampling is convenient.

/// SplitMix64 — used to expand a single `u64` seed into generator state.
///
/// Reference: Sebastiano Vigna, <https://prng.di.unimi.it/splitmix64.c>.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — the workhorse stream generator.
///
/// Reference: Blackman & Vigna, <https://prng.di.unimi.it/xoshiro256starstar.c>.
#[derive(Debug, Clone)]
pub struct Xoshiro256ss {
    s: [u64; 4],
}

impl Xoshiro256ss {
    /// Seed via SplitMix64 expansion (never produces the all-zero state).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256ss {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift
    /// reduction (unbiased enough for simulation workloads; the slight
    /// modulo bias of the fast path is irrelevant at our bound sizes
    /// but we keep the widening multiply anyway for quality).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be nonzero");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Zipf-distributed rank in `1..=n` with exponent `alpha > 1`
    /// (Devroye's rejection method; no per-`n` precomputation). Values
    /// of `alpha <= 1` are clamped to 1.001 — the sampler is meant for
    /// the skewed-popularity workloads (graphs, key-value traces) where
    /// `alpha` is typically 1.05–1.5.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn gen_zipf(&mut self, n: u64, alpha: f64) -> u64 {
        assert!(n > 0, "gen_zipf needs a nonzero range");
        if n == 1 {
            return 1;
        }
        let a = alpha.max(1.001);
        let am1 = a - 1.0;
        let b = 2f64.powf(am1);
        loop {
            let u = 1.0 - self.gen_f64(); // (0, 1]
            let v = self.gen_f64();
            let x = u.powf(-1.0 / am1).floor();
            if x < 1.0 || x > n as f64 {
                continue;
            }
            let t = (1.0 + 1.0 / x).powf(am1);
            if v * x * (t - 1.0) / (b - 1.0) <= t / b {
                return x as u64;
            }
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0 from the reference implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256ss::new(42);
        let mut b = Xoshiro256ss::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256ss::new(1);
        let mut b = Xoshiro256ss::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = Xoshiro256ss::new(7);
        for _ in 0..10_000 {
            assert!(r.gen_range(37) < 37);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = Xoshiro256ss::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn gen_range_zero_panics() {
        Xoshiro256ss::new(0).gen_range(0);
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = Xoshiro256ss::new(5);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_rate_roughly_matches_p() {
        let mut r = Xoshiro256ss::new(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn zipf_in_range_and_skewed() {
        let mut r = Xoshiro256ss::new(21);
        let n = 1000u64;
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..50_000 {
            let x = r.gen_zipf(n, 1.2);
            assert!((1..=n).contains(&x));
            counts[x as usize] += 1;
        }
        // Rank 1 must dominate, and the top 10% of ranks should carry
        // well over a proportional share of the mass.
        assert!(counts[1] > counts[100] * 5);
        let head: u64 = counts[1..=100].iter().sum();
        assert!(
            head > 50_000 / 2,
            "head mass {head} too small for zipf(1.2)"
        );
    }

    #[test]
    fn zipf_deterministic_and_edge_cases() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256ss::new(4);
            (0..100).map(|_| r.gen_zipf(50, 1.1)).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256ss::new(4);
            (0..100).map(|_| r.gen_zipf(50, 1.1)).collect()
        };
        assert_eq!(a, b);
        let mut r = Xoshiro256ss::new(4);
        assert_eq!(r.gen_zipf(1, 1.5), 1);
        // alpha <= 1 is clamped, still valid.
        assert!((1..=10).contains(&r.gen_zipf(10, 0.5)));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zipf_zero_range_panics() {
        Xoshiro256ss::new(0).gen_zipf(0, 1.2);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256ss::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elems should not be identity");
    }

    #[test]
    fn shuffle_empty_and_single() {
        let mut r = Xoshiro256ss::new(3);
        let mut empty: [u8; 0] = [];
        r.shuffle(&mut empty);
        let mut one = [42];
        r.shuffle(&mut one);
        assert_eq!(one, [42]);
    }
}
