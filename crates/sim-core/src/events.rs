//! Deterministic discrete-event queue.
//!
//! The whole-GPU simulator in the `gpu` crate is a classic discrete-event
//! simulation: SM lane wakeups, page-table-walk completions, fault-batch
//! service completions and PCIe transfer completions are all events with a
//! firing timestamp. Correct *determinism* matters more than raw speed
//! here — the reproduction must be bit-stable across runs — so same-cycle
//! events fire in strict insertion (FIFO) order via a monotone sequence
//! number tie-break.

use crate::time::Cycle;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within a
        // cycle, the first-inserted) entry is popped first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-ordered event queue keyed by [`Cycle`], FIFO among equal cycles.
///
/// ```
/// use sim_core::{EventQueue, Cycle};
/// let mut q = EventQueue::new();
/// q.push(Cycle(10), "b");
/// q.push(Cycle(5), "a");
/// q.push(Cycle(10), "c");
/// assert_eq!(q.pop(), Some((Cycle(5), "a")));
/// assert_eq!(q.pop(), Some((Cycle(10), "b")));
/// assert_eq!(q.pop(), Some((Cycle(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`Cycle::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Cycle::ZERO,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the time of the last popped event:
    /// scheduling into the past is always a simulator bug.
    pub fn push(&mut self, at: Cycle, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedule `event` to fire `delta` cycles from the current time.
    pub fn push_after(&mut self, delta: u64, event: E) {
        self.push(self.now.after(delta), event);
    }

    /// Pop the earliest event, advancing the queue's notion of "now".
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Simulated time of the most recently popped event.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(Cycle(3), 30);
        q.push(Cycle(1), 10);
        q.push(Cycle(3), 31);
        q.push(Cycle(2), 20);
        q.push(Cycle(3), 32);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (Cycle(1), 10),
                (Cycle(2), 20),
                (Cycle(3), 30),
                (Cycle(3), 31),
                (Cycle(3), 32)
            ]
        );
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(Cycle(7), ());
        assert_eq!(q.now(), Cycle::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycle(7));
    }

    #[test]
    fn push_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), 1);
        q.pop();
        q.push_after(5, 2);
        assert_eq!(q.pop(), Some((Cycle(15), 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), ());
        q.pop();
        q.push(Cycle(9), ());
    }

    #[test]
    fn same_cycle_reschedule_allowed() {
        // An event handler may schedule follow-up work at the current cycle.
        let mut q = EventQueue::new();
        q.push(Cycle(10), 1);
        q.pop();
        q.push(Cycle(10), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 2)));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycle(1), ());
        q.push(Cycle(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(Cycle(4), ());
        assert_eq!(q.peek_time(), Some(Cycle(4)));
        assert_eq!(q.now(), Cycle::ZERO);
    }

    #[test]
    fn large_interleaved_workload_stays_sorted() {
        // Deterministic pseudo-random schedule; ensures heap discipline
        // under thousands of events.
        let mut q = EventQueue::new();
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 0..5000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.push(Cycle(x % 10_000), i);
        }
        let mut last = Cycle::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            n += 1;
        }
        assert_eq!(n, 5000);
    }
}
