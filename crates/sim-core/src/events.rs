//! Deterministic discrete-event queue.
//!
//! The whole-GPU simulator in the `gpu` crate is a classic discrete-event
//! simulation: SM lane wakeups, page-table-walk completions, fault-batch
//! service completions and PCIe transfer completions are all events with a
//! firing timestamp. Correct *determinism* matters more than raw speed
//! here — the reproduction must be bit-stable across runs — so same-cycle
//! events fire in strict insertion (FIFO) order via a monotone sequence
//! number tie-break.
//!
//! # Calendar-queue tiering
//!
//! Almost every event is scheduled a *small* delta ahead of the current
//! time: TLB hits (1–10 cycles), page walks (hundreds), compute bursts
//! (low hundreds). Only fault-batch round trips (tens of thousands) and
//! long DMA tails look far into the future. The queue exploits that split
//! with two tiers:
//!
//! * a **near ring** of [`RING`] per-cycle buckets covering the window
//!   `[now, now + RING)`, indexed by `at & (RING - 1)` with a bitmap for
//!   O(words) next-bucket scans, and
//! * a **far heap** ([`BinaryHeap`]) for events at `now + RING` or later.
//!
//! Every time `now` advances (every pop), far events whose cycle has
//! entered the window migrate into the ring in `(at, seq)` heap order.
//! This maintains two invariants that make ordering trivial:
//!
//! 1. the far heap never holds an event inside the window, so any ring
//!    event fires before any far event, and
//! 2. a bucket receives its window cycle's events in seq order — far
//!    events (older seqs, pushed before the window reached them) drain in
//!    first, then later same-cycle pushes append FIFO.
//!
//! Within the window each bucket maps to exactly one absolute cycle, so
//! buckets need no per-entry timestamps. Bucket entries live in one
//! shared slab threaded by intrusive FIFO lists (per-bucket head/tail
//! indices), so pushes and pops never allocate once the slab is warm —
//! the queue's steady state is allocation-free.

use crate::time::Cycle;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Near-window size in cycles. Must be a power of two. Sized to swallow
/// TLB/walk/compute deltas; fault-batch service (≥28k cycles) overflows
/// to the far heap, which is fine — there are only dozens of batches.
const RING: u64 = 2048;
const RING_MASK: u64 = RING - 1;
/// Occupancy bitmap words (64 buckets per word).
const WORDS: usize = (RING / 64) as usize;
// The word-summary bitmap is a u32 whose circular scan is a single
// rotate; both assume exactly 32 words.
const _: () = assert!(WORDS == 32, "summary bitmap sized for RING = 2048");
/// Null slab index for the intrusive bucket lists.
const NIL: u32 = u32::MAX;

/// One slab cell: an event threaded into a bucket's FIFO list, or a
/// free-list link when vacant (`event == None`).
struct Node<E> {
    event: Option<E>,
    next: u32,
}

struct Entry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within a
        // cycle, the first-inserted) entry is popped first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-ordered event queue keyed by [`Cycle`], FIFO among equal cycles.
///
/// ```
/// use sim_core::{EventQueue, Cycle};
/// let mut q = EventQueue::new();
/// q.push(Cycle(10), "b");
/// q.push(Cycle(5), "a");
/// q.push(Cycle(10), "c");
/// assert_eq!(q.pop(), Some((Cycle(5), "a")));
/// assert_eq!(q.pop(), Some((Cycle(10), "b")));
/// assert_eq!(q.pop(), Some((Cycle(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// Per-bucket FIFO list heads/tails into `slab`; bucket
    /// `at & RING_MASK` holds the events for the single window cycle
    /// that maps there.
    heads: Vec<u32>,
    tails: Vec<u32>,
    /// Shared cell storage for all buckets, plus a free list.
    slab: Vec<Node<E>>,
    free: u32,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// One bit per `occupied` word: set iff that word is non-zero.
    /// Makes the worst-case next-bucket scan one rotate + one
    /// trailing_zeros instead of a 32-word walk. `WORDS` is 32, so the
    /// whole summary fits a `u32` and circular order is a rotate.
    summary: u32,
    /// Events scheduled at `now + RING` or later, plus their seqs.
    far: BinaryHeap<Entry<E>>,
    ring_len: usize,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`Cycle::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heads: vec![NIL; RING as usize],
            tails: vec![NIL; RING as usize],
            slab: Vec::new(),
            free: NIL,
            occupied: [0; WORDS],
            summary: 0,
            far: BinaryHeap::new(),
            ring_len: 0,
            next_seq: 0,
            now: Cycle::ZERO,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the time of the last popped event:
    /// scheduling into the past is always a simulator bug.
    pub fn push(&mut self, at: Cycle, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        if at.0 - self.now.0 < RING {
            self.bucket_push(at, event);
        } else {
            self.far.push(Entry { at, seq, event });
        }
    }

    /// Schedule `event` to fire `delta` cycles from the current time.
    pub fn push_after(&mut self, delta: u64, event: E) {
        self.push(self.now.after(delta), event);
    }

    /// Schedule a batch of events all firing at `at`, in iterator order
    /// (FIFO-equivalent to pushing them one by one). The tier check,
    /// bucket index and occupancy-bit updates are paid once per batch
    /// instead of once per event — the bulk path for barrier releases
    /// and fault-completion lane wakes, which are always same-cycle.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the time of the last popped event.
    pub fn push_n<I: IntoIterator<Item = E>>(&mut self, at: Cycle, events: I) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        if at.0 - self.now.0 >= RING {
            for event in events {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.far.push(Entry { at, seq, event });
            }
            return;
        }
        let idx = (at.0 & RING_MASK) as usize;
        let mut tail = self.tails[idx];
        let mut n = 0u64;
        for event in events {
            let cell = self.alloc_cell(event);
            if tail == NIL {
                self.heads[idx] = cell;
            } else {
                self.slab[tail as usize].next = cell;
            }
            tail = cell;
            n += 1;
        }
        if n == 0 {
            return;
        }
        self.tails[idx] = tail;
        self.occupied[idx / 64] |= 1 << (idx % 64);
        self.summary |= 1 << (idx / 64);
        self.ring_len += n as usize;
        self.next_seq += n;
    }

    /// Pop the earliest event, advancing the queue's notion of "now".
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        // Same-cycle drain: while the clock stands still the bucket `now`
        // maps to can only hold events at exactly `now` (nothing earlier
        // can exist), the far heap cannot have entered the window, and
        // FIFO is the bucket's list order. Dense cohorts — barrier
        // releases, batch-completion wakes, same-cycle reschedules — pop
        // with one load and no bitmap scan.
        let idx_now = (self.now.0 & RING_MASK) as usize;
        if self.heads[idx_now] != NIL {
            let event = self.bucket_pop(idx_now);
            return Some((self.now, event));
        }
        if self.ring_len > 0 {
            let idx = self.next_bucket().expect("ring_len > 0 has a bucket");
            let at = self.bucket_cycle(idx);
            let event = self.bucket_pop(idx);
            debug_assert!(at >= self.now);
            self.now = at;
            self.drain_far();
            return Some((at, event));
        }
        // Ring empty: the far minimum is the global minimum (heap order
        // breaks same-cycle ties by seq).
        let entry = self.far.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.drain_far();
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<Cycle> {
        // Mirror of `pop`'s same-cycle fast path.
        if self.heads[(self.now.0 & RING_MASK) as usize] != NIL {
            return Some(self.now);
        }
        if self.ring_len > 0 {
            // Ring events always precede far events (invariant: the far
            // heap holds nothing inside the window).
            return self.next_bucket().map(|idx| self.bucket_cycle(idx));
        }
        self.far.peek().map(|e| e.at)
    }

    /// Simulated time of the most recently popped event.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring_len + self.far.len()
    }

    /// Pending events in the near ring (the `[now, now + RING)` window).
    /// Observability accessor for the host profiler's queue-occupancy
    /// histograms; reads existing bookkeeping, costs two loads.
    #[must_use]
    pub fn ring_len(&self) -> usize {
        self.ring_len
    }

    /// Pending events in the far heap (scheduled `RING` or more cycles
    /// out — fault-batch round trips and long DMA tails).
    #[must_use]
    pub fn far_len(&self) -> usize {
        self.far.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take a slab cell for `event` from the free list (or grow the slab).
    #[inline]
    fn alloc_cell(&mut self, event: E) -> u32 {
        if self.free != NIL {
            let cell = self.free;
            let node = &mut self.slab[cell as usize];
            self.free = node.next;
            node.event = Some(event);
            node.next = NIL;
            cell
        } else {
            let cell = u32::try_from(self.slab.len()).expect("slab index fits u32");
            self.slab.push(Node {
                event: Some(event),
                next: NIL,
            });
            cell
        }
    }

    /// Append to the bucket for window cycle `at`, marking it occupied.
    fn bucket_push(&mut self, at: Cycle, event: E) {
        let idx = (at.0 & RING_MASK) as usize;
        let cell = self.alloc_cell(event);
        if self.heads[idx] == NIL {
            self.heads[idx] = cell;
        } else {
            self.slab[self.tails[idx] as usize].next = cell;
        }
        self.tails[idx] = cell;
        self.occupied[idx / 64] |= 1 << (idx % 64);
        self.summary |= 1 << (idx / 64);
        self.ring_len += 1;
    }

    /// Pop the front of bucket `idx`, clearing its bit when it empties.
    fn bucket_pop(&mut self, idx: usize) -> E {
        let cell = self.heads[idx];
        debug_assert_ne!(cell, NIL, "pop from empty bucket");
        let node = &mut self.slab[cell as usize];
        let event = node.event.take().expect("occupied cell");
        self.heads[idx] = node.next;
        node.next = self.free;
        self.free = cell;
        if self.heads[idx] == NIL {
            self.tails[idx] = NIL;
            self.occupied[idx / 64] &= !(1 << (idx % 64));
            if self.occupied[idx / 64] == 0 {
                self.summary &= !(1 << (idx / 64));
            }
        }
        self.ring_len -= 1;
        event
    }

    /// Absolute cycle of occupied bucket `idx`: the unique cycle in
    /// `[now, now + RING)` congruent to `idx` mod `RING`.
    fn bucket_cycle(&self, idx: usize) -> Cycle {
        let offset = (idx as u64).wrapping_sub(self.now.0) & RING_MASK;
        Cycle(self.now.0 + offset)
    }

    /// First occupied bucket in circular window order starting at `start`.
    ///
    /// Two-level scan: the partial first word (bits at or after `start`),
    /// then the word-summary bitmap rotated so its LSB is the *next*
    /// word — one `trailing_zeros` replaces the old up-to-32-word walk.
    /// A summary hit on the start word itself is legitimate: reaching
    /// the summary scan means the word's at-or-after bits are clear, so
    /// any remaining bits are *before* `start` — wrapped buckets, which
    /// circular order does place last.
    fn next_occupied_from(&self, start: usize) -> Option<usize> {
        let (word0, bit) = (start / 64, start % 64);
        let bits = self.occupied[word0] & (u64::MAX << bit);
        if bits != 0 {
            return Some(word0 * 64 + bits.trailing_zeros() as usize);
        }
        let rot = self.summary.rotate_right(((word0 + 1) % WORDS) as u32);
        if rot == 0 {
            return None;
        }
        let word = (word0 + 1 + rot.trailing_zeros() as usize) % WORDS;
        let bits = if word == word0 {
            // Wrapped back to the start word: only its pre-`start` bits
            // remain (the at-or-after half was checked above). `bit` is
            // non-zero here — were it zero, that check covered the whole
            // word and the summary bit could not still be set.
            self.occupied[word0] & !(u64::MAX << bit)
        } else {
            self.occupied[word]
        };
        debug_assert_ne!(bits, 0, "summary bit set on empty word");
        Some(word * 64 + bits.trailing_zeros() as usize)
    }

    fn next_bucket(&self) -> Option<usize> {
        self.next_occupied_from((self.now.0 & RING_MASK) as usize)
    }

    /// Migrate far events whose cycle has entered the window. Called
    /// after every advance of `now`, *before* control returns to event
    /// handlers, so drained (older-seq) events land ahead of any
    /// same-cycle pushes the handlers make — preserving global FIFO.
    fn drain_far(&mut self) {
        while let Some(top) = self.far.peek() {
            if top.at.0 - self.now.0 >= RING {
                break;
            }
            let entry = self.far.pop().expect("peeked");
            self.bucket_push(entry.at, entry.event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(Cycle(3), 30);
        q.push(Cycle(1), 10);
        q.push(Cycle(3), 31);
        q.push(Cycle(2), 20);
        q.push(Cycle(3), 32);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (Cycle(1), 10),
                (Cycle(2), 20),
                (Cycle(3), 30),
                (Cycle(3), 31),
                (Cycle(3), 32)
            ]
        );
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(Cycle(7), ());
        assert_eq!(q.now(), Cycle::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycle(7));
    }

    #[test]
    fn push_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), 1);
        q.pop();
        q.push_after(5, 2);
        assert_eq!(q.pop(), Some((Cycle(15), 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), ());
        q.pop();
        q.push(Cycle(9), ());
    }

    #[test]
    fn same_cycle_reschedule_allowed() {
        // An event handler may schedule follow-up work at the current cycle.
        let mut q = EventQueue::new();
        q.push(Cycle(10), 1);
        q.pop();
        q.push(Cycle(10), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 2)));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Cycle(1), ());
        q.push(Cycle(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn tier_lengths_track_ring_and_far() {
        let mut q = EventQueue::new();
        assert_eq!((q.ring_len(), q.far_len()), (0, 0));
        q.push(Cycle(3), 0); // near window
        q.push(Cycle(RING + 10), 1); // far heap
        q.push(Cycle(5), 2); // near window
        assert_eq!(q.ring_len(), 2);
        assert_eq!(q.far_len(), 1);
        assert_eq!(q.len(), 3);
        q.pop();
        q.pop();
        // Popping to cycle 5 leaves the far event still outside the
        // window; ring empties, far holds it.
        assert_eq!((q.ring_len(), q.far_len()), (0, 1));
        q.pop();
        assert_eq!((q.ring_len(), q.far_len()), (0, 0));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(Cycle(4), ());
        assert_eq!(q.peek_time(), Some(Cycle(4)));
        assert_eq!(q.now(), Cycle::ZERO);
    }

    #[test]
    fn large_interleaved_workload_stays_sorted() {
        // Deterministic pseudo-random schedule; ensures queue discipline
        // under thousands of events spanning both tiers.
        let mut q = EventQueue::new();
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        for i in 0..5000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.push(Cycle(x % 10_000), i);
        }
        let mut last = Cycle::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            n += 1;
        }
        assert_eq!(n, 5000);
    }

    #[test]
    fn far_events_cross_the_window_boundary() {
        // An event exactly at now + RING goes far, then drains into the
        // ring once the clock reaches its window; FIFO survives the move.
        let mut q = EventQueue::new();
        q.push(Cycle(RING), 1); // far tier (boundary)
        q.push(Cycle(RING - 1), 0); // ring tier
        q.push(Cycle(RING), 2); // far tier, later seq
        assert_eq!(q.pop(), Some((Cycle(RING - 1), 0)));
        // Drained in seq order ahead of any new same-cycle push.
        q.push(Cycle(RING), 3);
        assert_eq!(q.pop(), Some((Cycle(RING), 1)));
        assert_eq!(q.pop(), Some((Cycle(RING), 2)));
        assert_eq!(q.pop(), Some((Cycle(RING), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ring_wraparound_is_ordered() {
        // Pushes that wrap the ring index (at & MASK < now & MASK) must
        // still pop in time order.
        let mut q = EventQueue::new();
        q.push(Cycle(RING - 2), 0);
        q.pop();
        q.push(Cycle(RING + 5), 2); // wraps to low bucket index
        q.push(Cycle(RING - 1), 1); // high bucket index, earlier time
        assert_eq!(q.pop(), Some((Cycle(RING - 1), 1)));
        assert_eq!(q.pop(), Some((Cycle(RING + 5), 2)));
    }

    #[test]
    fn push_n_is_fifo_equivalent_to_serial_pushes() {
        // Near tier: a batch interleaved with singles pops in exactly
        // push order among equal cycles.
        let mut q = EventQueue::new();
        q.push(Cycle(5), 0);
        q.push_n(Cycle(5), [1, 2, 3]);
        q.push(Cycle(5), 4);
        q.push_n(Cycle(5), std::iter::empty::<i32>());
        q.push_n(Cycle(2), [10]);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (Cycle(2), 10),
                (Cycle(5), 0),
                (Cycle(5), 1),
                (Cycle(5), 2),
                (Cycle(5), 3),
                (Cycle(5), 4)
            ]
        );
    }

    #[test]
    fn push_n_far_tier_keeps_order_across_the_window() {
        // Far tier: batch seqs stay monotone with surrounding singles, so
        // the drain into the ring preserves global FIFO.
        let mut q = EventQueue::new();
        q.push(Cycle(RING + 7), 0);
        q.push_n(Cycle(RING + 7), [1, 2]);
        q.push(Cycle(RING + 7), 3);
        q.push(Cycle(1), 100);
        assert_eq!(q.pop(), Some((Cycle(1), 100)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (Cycle(RING + 7), 0),
                (Cycle(RING + 7), 1),
                (Cycle(RING + 7), 2),
                (Cycle(RING + 7), 3)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn push_n_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(Cycle(10), ());
        q.pop();
        q.push_n(Cycle(9), [()]);
    }

    #[test]
    fn matches_reference_heap_under_random_schedules() {
        // Model-based check: the calendar queue must pop the exact
        // (cycle, payload) sequence a plain BinaryHeap reference does,
        // including FIFO tie-breaks, under an adversarial mix of
        // short/long deltas and same-cycle reschedules.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut x: u64 = 0xD1B5_4A32_D192_ED03;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut q = EventQueue::new();
        let mut reference: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut pending = 0usize;
        let schedule = |q: &mut EventQueue<u64>,
                        reference: &mut BinaryHeap<Reverse<(u64, u64)>>,
                        seq: &mut u64,
                        now: u64,
                        r: u64| {
            // Mix: mostly small deltas, some at the window edge, some far.
            let delta = match r % 10 {
                0..=5 => r % 16,
                6 | 7 => 150 + r % 600,
                8 => RING - 2 + r % 4,
                _ => 28_000 + r % 7_000,
            };
            if (r >> 34).is_multiple_of(8) {
                // Bulk same-cycle push via push_n — must interleave with
                // singles exactly as serial pushes would.
                let n = 2 + (r >> 40) % 3;
                let base = *seq;
                q.push_n(Cycle(now + delta), (0..n).map(|i| base + i));
                for i in 0..n {
                    reference.push(Reverse((now + delta, base + i)));
                }
                *seq += n;
                return n as usize;
            }
            q.push(Cycle(now + delta), *seq);
            reference.push(Reverse((now + delta, *seq)));
            *seq += 1;
            1
        };
        for _ in 0..200 {
            pending += schedule(&mut q, &mut reference, &mut seq, 0, step());
        }
        let mut popped = 0u64;
        while pending > 0 {
            let (t, got) = q.pop().expect("pending events");
            let Reverse((rt, rseq)) = reference.pop().expect("reference pending");
            assert_eq!((t.0, got), (rt, rseq), "divergence at pop {popped}");
            pending -= 1;
            popped += 1;
            // Handlers reschedule: keep the queue busy for a while.
            if popped < 5_000 {
                let n = step() % 3;
                for _ in 0..n {
                    pending += schedule(&mut q, &mut reference, &mut seq, t.0, step());
                }
            }
        }
        assert!(popped >= 200);
        assert!(q.is_empty());
    }
}
