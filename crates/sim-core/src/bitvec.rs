//! Bit vectors.
//!
//! [`TouchVec`] is the 16-bit per-chunk touch vector from the paper
//! (§IV-B: "a bit vector is initialized for the chunk ... records touches
//! to individual pages in a chunk"; §VI-C sizes it at 16 bits for the
//! 16-page chunk). [`BitVec`] is a growable variant used by residency
//! tracking and the page table.

/// Fixed 16-bit touch vector for one chunk (bit *i* ⇔ page *i* touched).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TouchVec(u16);

impl TouchVec {
    /// Number of pages a chunk holds (paper: chunk size 16 = 64 KB of 4 KB pages).
    pub const LEN: usize = 16;

    /// All-untouched vector.
    #[must_use]
    pub fn empty() -> Self {
        TouchVec(0)
    }

    /// All-touched vector.
    #[must_use]
    pub fn full() -> Self {
        TouchVec(u16::MAX)
    }

    /// Build from a raw mask (bit i = page i).
    #[must_use]
    pub fn from_bits(bits: u16) -> Self {
        TouchVec(bits)
    }

    /// Raw mask.
    #[must_use]
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Mark page `i` touched.
    ///
    /// # Panics
    /// Panics if `i >= 16`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < Self::LEN, "page index {i} out of chunk");
        self.0 |= 1 << i;
    }

    /// Was page `i` touched?
    #[inline]
    #[must_use]
    pub fn get(self, i: usize) -> bool {
        assert!(i < Self::LEN, "page index {i} out of chunk");
        self.0 & (1 << i) != 0
    }

    /// Number of touched pages.
    #[inline]
    #[must_use]
    pub fn count_touched(self) -> u32 {
        self.0.count_ones()
    }

    /// Number of untouched pages — the paper's per-chunk "untouch level".
    #[inline]
    #[must_use]
    pub fn untouch_level(self) -> u32 {
        Self::LEN as u32 - self.count_touched()
    }

    /// Iterate over indices of touched pages, ascending.
    pub fn touched(self) -> impl Iterator<Item = usize> {
        (0..Self::LEN).filter(move |&i| self.0 & (1 << i) != 0)
    }

    /// Iterate over indices of untouched pages, ascending.
    pub fn untouched(self) -> impl Iterator<Item = usize> {
        (0..Self::LEN).filter(move |&i| self.0 & (1 << i) == 0)
    }
}

/// Growable bit vector (u64-word backed).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// `len` bits, all zero.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if it holds no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i` to `v`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        if v {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Read bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touchvec_set_get() {
        let mut t = TouchVec::empty();
        assert_eq!(t.count_touched(), 0);
        assert_eq!(t.untouch_level(), 16);
        t.set(0);
        t.set(15);
        assert!(t.get(0) && t.get(15) && !t.get(7));
        assert_eq!(t.count_touched(), 2);
        assert_eq!(t.untouch_level(), 14);
    }

    #[test]
    fn touchvec_full() {
        let t = TouchVec::full();
        assert_eq!(t.untouch_level(), 0);
        assert_eq!(t.touched().count(), 16);
        assert_eq!(t.untouched().count(), 0);
    }

    #[test]
    fn touchvec_iterators_partition() {
        let t = TouchVec::from_bits(0b1010_1010_1010_1010);
        let touched: Vec<_> = t.touched().collect();
        let untouched: Vec<_> = t.untouched().collect();
        assert_eq!(touched, vec![1, 3, 5, 7, 9, 11, 13, 15]);
        assert_eq!(untouched, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn touchvec_paper_fig6_example() {
        // Fig. 6: data "0 1 0 1" scaled to 4 pages — pages 1 and 3 touched.
        let mut t = TouchVec::empty();
        t.set(1);
        t.set(3);
        assert!(!t.get(0) && t.get(1) && !t.get(2) && t.get(3));
    }

    #[test]
    #[should_panic(expected = "out of chunk")]
    fn touchvec_oob_panics() {
        let _ = TouchVec::empty().get(16);
    }

    #[test]
    fn bitvec_basics() {
        let mut b = BitVec::zeros(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129) && !b.get(1));
        assert_eq!(b.count_ones(), 3);
        b.set(64, false);
        assert_eq!(b.count_ones(), 2);
        b.clear();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn bitvec_empty() {
        let b = BitVec::zeros(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitvec_oob_panics() {
        let _ = BitVec::zeros(10).get(10);
    }
}
