//! Typed errors for the simulation substrate.
//!
//! Construction-time validation used to be `assert!`-on-construction
//! panics scattered across the crates; the robustness work replaced the
//! hot-path ones with these enums so callers can recover (or surface a
//! diagnostic) instead of dying. The panicking `new` constructors remain
//! as convenience wrappers over the fallible `try_new` ones.

use core::fmt;

/// A configuration value failed validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// The named field must be strictly positive.
    NotPositive {
        /// Field name, e.g. `"pcie_gb_per_s"`.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The named field must lie in `[min, max]`.
    OutOfRange {
        /// Field name.
        field: &'static str,
        /// The rejected value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// The named integer field must be nonzero.
    Zero {
        /// Field name.
        field: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPositive { field, value } => {
                write!(f, "{field} must be positive, got {value}")
            }
            ConfigError::OutOfRange {
                field,
                value,
                min,
                max,
            } => write!(f, "{field} must be in [{min}, {max}], got {value}"),
            ConfigError::Zero { field } => write!(f, "{field} must be nonzero"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Errors the simulation substrate can produce.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimError {
    /// A configuration value failed validation.
    Config(ConfigError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => e.fmt(f),
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
        }
    }
}

/// Check that `value` is strictly positive.
pub fn require_positive(field: &'static str, value: f64) -> Result<(), ConfigError> {
    if value > 0.0 && value.is_finite() {
        Ok(())
    } else {
        Err(ConfigError::NotPositive { field, value })
    }
}

/// Check that `value` lies in `[min, max]`.
pub fn require_in_range(
    field: &'static str,
    value: f64,
    min: f64,
    max: f64,
) -> Result<(), ConfigError> {
    if value.is_finite() && value >= min && value <= max {
        Ok(())
    } else {
        Err(ConfigError::OutOfRange {
            field,
            value,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_field() {
        let e = ConfigError::NotPositive {
            field: "pcie_gb_per_s",
            value: -1.0,
        };
        assert!(e.to_string().contains("pcie_gb_per_s"));
        let e = ConfigError::OutOfRange {
            field: "duty",
            value: 2.0,
            min: 0.0,
            max: 1.0,
        };
        assert!(e.to_string().contains("[0, 1]"));
        assert!(ConfigError::Zero { field: "capacity" }
            .to_string()
            .contains("nonzero"));
    }

    #[test]
    fn sim_error_wraps_config() {
        let c = ConfigError::Zero { field: "capacity" };
        let s: SimError = c.into();
        assert_eq!(s, SimError::Config(c));
        assert_eq!(s.to_string(), c.to_string());
    }

    #[test]
    fn validators() {
        assert!(require_positive("x", 1.0).is_ok());
        assert!(require_positive("x", 0.0).is_err());
        assert!(require_positive("x", f64::NAN).is_err());
        assert!(require_in_range("x", 0.5, 0.0, 1.0).is_ok());
        assert!(require_in_range("x", 1.5, 0.0, 1.0).is_err());
    }
}
