//! Simulation statistics: named counters and small integer histograms.
//!
//! The paper's evaluation reports page-fault counts, eviction counts,
//! untouch levels per interval (Tables III/IV) and derived speedups.
//! [`StatSet`] is the common carrier those numbers travel in from the
//! simulator to the harness.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing named counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Histogram over small non-negative integer observations
/// (e.g. per-interval untouch levels, walk depths).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    buckets: BTreeMap<u64, u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` identical observations in one update (what per-value
    /// tally folds use — hot loops count locally and fold here once).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.buckets.entry(value).or_insert(0) += n;
        self.count += n;
        self.sum += value * n;
        self.max = self.max.max(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// How many observations equalled `value`.
    #[must_use]
    pub fn bucket(&self, value: u64) -> u64 {
        self.buckets.get(&value).copied().unwrap_or(0)
    }

    /// Nearest-rank quantile: the smallest recorded value whose
    /// cumulative count reaches `⌈q·count⌉`.
    ///
    /// Edge cases are explicit: an empty histogram reports 0 for every
    /// `q`; a single-sample histogram reports that sample for every `q`;
    /// `q` is clamped to `[0, 1]` (so `q = 1` is the maximum and `q ≤ 0`
    /// the minimum); a NaN `q` is treated as 0 and reports the minimum.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (value, n) in self.iter() {
            cum = cum.saturating_add(n);
            if cum >= rank {
                return value;
            }
        }
        self.max
    }

    /// Median (nearest-rank).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (nearest-rank).
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (nearest-rank).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Iterate `(value, count)` in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&v, &c)| (v, c))
    }
}

/// A named bag of counters, kept sorted for stable text output.
#[derive(Debug, Clone, Default)]
pub struct StatSet {
    values: BTreeMap<&'static str, u64>,
}

impl StatSet {
    /// Empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.values.entry(name).or_insert(0) += n;
    }

    /// Increment counter `name`.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Overwrite counter `name`.
    pub fn set(&mut self, name: &'static str, n: u64) {
        self.values.insert(name, n);
    }

    /// Read counter `name` (0 if absent).
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Merge another set into this one (summing overlapping names).
    pub fn merge(&mut self, other: &StatSet) {
        for (&k, &v) in &other.values {
            *self.values.entry(k).or_insert(0) += v;
        }
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.values.iter().map(|(&k, &v)| (k, v))
    }
}

impl fmt::Display for StatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:<32} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_ops() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_moments() {
        let mut h = Histogram::new();
        for v in [1, 2, 2, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10);
        assert_eq!(h.max(), 5);
        assert!((h.mean() - 2.5).abs() < 1e-12);
        assert_eq!(h.bucket(2), 2);
        assert_eq!(h.bucket(99), 0);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantiles_empty_histogram_report_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p95(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn quantiles_single_bucket_report_that_value() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(42);
        }
        assert_eq!(h.quantile(0.0), 42);
        assert_eq!(h.p50(), 42);
        assert_eq!(h.p95(), 42);
        assert_eq!(h.p99(), 42);
        assert_eq!(h.quantile(1.0), 42);
    }

    #[test]
    fn quantiles_single_sample_report_that_sample() {
        // One observation: every quantile is that sample — the rank
        // floor of 1 must not index past it and q=0 must not miss it.
        let mut h = Histogram::new();
        h.record(7);
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 7, "q = {q}");
        }
        assert_eq!(h.p50(), 7);
        assert_eq!(h.p99(), 7);
    }

    #[test]
    fn quantile_nan_q_reports_minimum() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(7);
        assert_eq!(h.quantile(f64::NAN), 3);
        assert_eq!(Histogram::new().quantile(f64::NAN), 0);
    }

    #[test]
    fn quantiles_nearest_rank_over_spread() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p95(), 95);
        assert_eq!(h.p99(), 99);
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.quantile(0.0), 1, "q=0 clamps to the first rank");
    }

    #[test]
    fn quantiles_saturate_out_of_range_q() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(7);
        assert_eq!(h.quantile(-1.0), 3, "q below 0 clamps to the minimum");
        assert_eq!(h.quantile(2.0), 7, "q above 1 clamps to the maximum");
        // u64::MAX observations must not overflow the rank arithmetic.
        let mut big = Histogram::new();
        big.record(u64::MAX);
        assert_eq!(big.p99(), u64::MAX);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = Histogram::new();
        bulk.record_n(3, 5);
        bulk.record_n(9, 2);
        bulk.record_n(7, 0); // no-op
        let mut single = Histogram::new();
        for _ in 0..5 {
            single.record(3);
        }
        for _ in 0..2 {
            single.record(9);
        }
        assert_eq!(bulk.count(), single.count());
        assert_eq!(bulk.sum(), single.sum());
        assert_eq!(bulk.max(), single.max());
        assert_eq!(bulk.p50(), single.p50());
        assert_eq!(bulk.p95(), single.p95());
        assert_eq!(
            bulk.bucket(7),
            0,
            "zero-count record_n must not create a bucket"
        );
    }

    #[test]
    fn quantile_rank_boundaries_between_buckets() {
        // Two buckets of 5: ranks 1..=5 are value 1, ranks 6..=10 are
        // value 9. The nearest-rank boundary sits exactly at q = 0.5.
        let mut h = Histogram::new();
        for _ in 0..5 {
            h.record(1);
        }
        for _ in 0..5 {
            h.record(9);
        }
        assert_eq!(h.quantile(0.5), 1, "rank 5 is still the low bucket");
        assert_eq!(h.quantile(0.500_001), 9, "rank 6 crosses over");
        assert_eq!(h.p95(), 9);
        assert_eq!(h.quantile(0.1), 1);
    }

    #[test]
    fn quantile_tiny_q_on_large_count_hits_minimum() {
        // ⌈q·count⌉ rounds to 0 for tiny q; the rank floor of 1 must
        // keep the answer at the minimum, not skip every bucket.
        let mut h = Histogram::new();
        for v in [4, 8, 15] {
            for _ in 0..1000 {
                h.record(v);
            }
        }
        assert_eq!(h.quantile(1e-9), 4);
        assert_eq!(h.quantile(0.999_999), 15);
    }

    #[test]
    fn zero_valued_observations_are_real_samples() {
        // A histogram of zeros is not "empty": count advances, the
        // quantiles legitimately report 0 and mean stays 0.
        let mut h = Histogram::new();
        for _ in 0..3 {
            h.record(0);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.bucket(0), 3);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_iter_sorted() {
        let mut h = Histogram::new();
        for v in [9, 1, 5, 1] {
            h.record(v);
        }
        let items: Vec<_> = h.iter().collect();
        assert_eq!(items, vec![(1, 2), (5, 1), (9, 1)]);
    }

    #[test]
    fn statset_roundtrip() {
        let mut s = StatSet::new();
        s.inc("faults");
        s.add("faults", 2);
        s.set("evictions", 7);
        assert_eq!(s.get("faults"), 3);
        assert_eq!(s.get("evictions"), 7);
        assert_eq!(s.get("missing"), 0);
    }

    #[test]
    fn statset_merge() {
        let mut a = StatSet::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = StatSet::new();
        b.add("y", 3);
        b.add("z", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 4);
    }

    #[test]
    fn statset_display_is_sorted() {
        let mut s = StatSet::new();
        s.set("zz", 1);
        s.set("aa", 2);
        let out = s.to_string();
        let za = out.find("zz").unwrap();
        let aa = out.find("aa").unwrap();
        assert!(aa < za);
    }
}
