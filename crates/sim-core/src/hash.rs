//! FxHash-style hashing for the simulator's integer-keyed hot maps.
//!
//! Residency maps, TLB backing stores, pattern buffers and chunk-chain
//! indexes are all keyed by page/chunk numbers and sit on the per-access
//! hot path. SipHash (std's default) costs ~10x more than needed for
//! trusted integer keys, so we implement the ~20-line Fx multiply-rotate
//! hash here rather than adding the `rustc-hash` dependency (it is not on
//! the sanctioned offline crate list — see DESIGN.md).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx (Firefox/rustc) hasher: one wrapping multiply + rotate per word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic byte path (rare in this workspace): fold 8 bytes at a time.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash + ?Sized>(x: &T) -> u64 {
        let mut h = FxHasher::default();
        x.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(&12345u64), hash_one(&12345u64));
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Not guaranteed in general, but these small keys must not collide.
        let hs: Vec<u64> = (0u64..1000).map(|i| hash_one(&i)).collect();
        let set: std::collections::HashSet<_> = hs.iter().collect();
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.remove(&2), Some("two"));
        assert!(!m.contains_key(&2));
    }

    #[test]
    fn set_basic_ops() {
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
    }

    #[test]
    fn byte_slices_hash_consistently() {
        assert_eq!(hash_one(&b"hello world"[..]), hash_one(&b"hello world"[..]));
        assert_ne!(hash_one(&b"hello world"[..]), hash_one(&b"hello worle"[..]));
    }

    #[test]
    fn tuple_keys() {
        let a = hash_one(&(1u32, 2u64));
        let b = hash_one(&(2u32, 1u64));
        assert_ne!(a, b);
    }
}
