//! Clock domain for the simulated GPU.
//!
//! Everything in the simulator is expressed in GPU core cycles at the
//! 1.4 GHz clock from Table I of the paper. Latencies that the paper gives
//! in wall time (the 20 µs far-fault service time, PCIe transfer time at
//! 16 GB/s) are converted here once so the rest of the code never deals
//! with floating point time.

/// GPU core clock frequency in GHz (Table I: "28 SMs, 1.4GHz").
pub const GPU_CLOCK_GHZ: f64 = 1.4;

/// A point in simulated time, measured in GPU core cycles.
///
/// `Cycle` is an absolute timestamp; durations are plain `u64` cycle
/// counts. The type is a thin wrapper so timestamps cannot be confused
/// with other `u64` quantities (page numbers, counters, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);

    /// The largest representable timestamp (used as "never").
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Advance this timestamp by `delta` cycles, saturating at `Cycle::MAX`.
    #[inline]
    #[must_use]
    pub fn after(self, delta: u64) -> Cycle {
        Cycle(self.0.saturating_add(delta))
    }

    /// Cycles elapsed since `earlier`. Returns 0 if `earlier` is later
    /// than `self` (defensive: the event queue guarantees monotonicity,
    /// but stats code should never panic on reordered observations).
    #[inline]
    #[must_use]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// This timestamp expressed in nanoseconds of simulated wall time.
    #[inline]
    #[must_use]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / GPU_CLOCK_GHZ
    }
}

impl core::fmt::Display for Cycle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// Convert a duration in nanoseconds to GPU cycles, rounding up so that a
/// nonzero wall-time latency never becomes a zero-cycle latency.
#[inline]
#[must_use]
pub fn ns_to_cycles(ns: f64) -> u64 {
    (ns * GPU_CLOCK_GHZ).ceil() as u64
}

/// Convert a duration in microseconds to GPU cycles (rounding up).
#[inline]
#[must_use]
pub fn us_to_cycles(us: f64) -> u64 {
    ns_to_cycles(us * 1000.0)
}

/// Cycles needed to move `bytes` over a link of `gb_per_s` GB/s
/// (rounding up; GB = 1e9 bytes, matching PCIe marketing units used by
/// the paper's "16GB/s" interconnect).
#[inline]
#[must_use]
pub fn transfer_cycles(bytes: u64, gb_per_s: f64) -> u64 {
    let ns = bytes as f64 / gb_per_s; // bytes / (GB/s) = ns
    ns_to_cycles(ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_latency_is_28k_cycles() {
        // 20 us at 1.4 GHz = 28,000 cycles — the paper's far-fault cost.
        assert_eq!(us_to_cycles(20.0), 28_000);
    }

    #[test]
    fn page_transfer_is_about_359_cycles() {
        // 4 KB over 16 GB/s = 256 ns = 358.4 cycles, rounded up.
        assert_eq!(transfer_cycles(4096, 16.0), 359);
    }

    #[test]
    fn after_and_since_roundtrip() {
        let t = Cycle(100).after(50);
        assert_eq!(t, Cycle(150));
        assert_eq!(t.since(Cycle(100)), 50);
        assert_eq!(Cycle(100).since(t), 0, "since() saturates");
    }

    #[test]
    fn after_saturates() {
        assert_eq!(Cycle::MAX.after(1), Cycle::MAX);
    }

    #[test]
    fn ns_conversion_roundtrip() {
        let cycles = ns_to_cycles(1000.0);
        assert_eq!(cycles, 1400);
        let ns = Cycle(cycles).as_ns();
        assert!((ns - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_transfer_is_free() {
        assert_eq!(transfer_cycles(0, 16.0), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", Cycle(42)), "42cy");
    }
}
