//! Stable configuration fingerprints for the sweep orchestrator.
//!
//! A fingerprint identifies one experiment cell — (app, policy, rate,
//! seed, scale, code-schema version) — across process restarts, so a
//! resumed sweep can recognise already-computed cells in its persistent
//! result store. [`FxHasher`](crate::hash::FxHasher) is unsuitable here:
//! it is an in-process hash whose goal is speed, and nothing pins its
//! output across refactors. This is FNV-1a 64 with explicit field
//! framing, chosen because the algorithm is frozen by spec — the same
//! field sequence yields the same 16-hex-digit fingerprint on every
//! platform, build, and release of this workspace (locked by tests).
//!
//! Field framing: every push folds a one-byte type tag before the value
//! and strings fold their length after the bytes, so `("ab", "c")` and
//! `("a", "bc")` — or a string that looks like an integer — can never
//! collide by concatenation.

/// FNV-1a 64-bit offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a fingerprint builder.
///
/// ```
/// use sim_core::fingerprint::Fingerprint;
/// let mut fp = Fingerprint::new();
/// fp.push_str("STN");
/// fp.push_u64(42);
/// let hex = fp.hex();
/// assert_eq!(hex.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

impl Fingerprint {
    /// Fresh fingerprint (FNV offset basis).
    #[must_use]
    pub fn new() -> Self {
        Fingerprint { state: OFFSET }
    }

    #[inline]
    fn fold(&mut self, byte: u8) {
        self.state = (self.state ^ u64::from(byte)).wrapping_mul(PRIME);
    }

    fn fold_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.fold(b);
        }
    }

    /// Fold a UTF-8 string field (tag 0x01, bytes, length).
    pub fn push_str(&mut self, s: &str) {
        self.fold(0x01);
        for b in s.as_bytes() {
            self.fold(*b);
        }
        self.fold_u64(s.len() as u64);
    }

    /// Fold an unsigned integer field (tag 0x02).
    pub fn push_u64(&mut self, v: u64) {
        self.fold(0x02);
        self.fold_u64(v);
    }

    /// Fold a float field by its IEEE-754 bit pattern (tag 0x03), so
    /// `0.5` and `0.5000001` are distinct and `-0.0 != 0.0` (a config
    /// difference, however silly, must change the fingerprint).
    pub fn push_f64(&mut self, v: f64) {
        self.fold(0x03);
        self.fold_u64(v.to_bits());
    }

    /// The 64-bit digest of everything pushed so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// The digest as a fixed-width lowercase hex string (16 chars) —
    /// the form stored in journals and compared on resume.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp_of(f: impl FnOnce(&mut Fingerprint)) -> u64 {
        let mut fp = Fingerprint::new();
        f(&mut fp);
        fp.finish()
    }

    #[test]
    fn deterministic_across_builders() {
        let a = fp_of(|f| {
            f.push_str("STN");
            f.push_u64(7);
            f.push_f64(0.5);
        });
        let b = fp_of(|f| {
            f.push_str("STN");
            f.push_u64(7);
            f.push_f64(0.5);
        });
        assert_eq!(a, b);
    }

    #[test]
    fn golden_values_are_frozen() {
        // These constants pin the algorithm: if they change, every
        // persisted result store in the wild silently stops matching.
        // Do not update them without bumping the orchestrator schema.
        assert_eq!(fp_of(|_| {}), OFFSET);
        assert_eq!(fp_of(|f| f.push_u64(0)), 0x0cd9_2cf5_4dc6_15e5);
        assert_eq!(fp_of(|f| f.push_str("cppe")), 0x0f0c_7088_a597_9f64);
    }

    #[test]
    fn concatenation_cannot_collide() {
        let ab_c = fp_of(|f| {
            f.push_str("ab");
            f.push_str("c");
        });
        let a_bc = fp_of(|f| {
            f.push_str("a");
            f.push_str("bc");
        });
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn type_tags_separate_domains() {
        // A string of digit bytes must not collide with the integer.
        let s = fp_of(|f| f.push_str("7"));
        let n = fp_of(|f| f.push_u64(7));
        assert_ne!(s, n);
    }

    #[test]
    fn float_bits_distinguish_near_values() {
        let a = fp_of(|f| f.push_f64(0.5));
        let b = fp_of(|f| f.push_f64(0.5 + f64::EPSILON));
        assert_ne!(a, b);
        let pos = fp_of(|f| f.push_f64(0.0));
        let neg = fp_of(|f| f.push_f64(-0.0));
        assert_ne!(pos, neg);
    }

    #[test]
    fn hex_is_fixed_width() {
        let mut fp = Fingerprint::new();
        fp.push_u64(1);
        let h = fp.hex();
        assert_eq!(h.len(), 16);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
