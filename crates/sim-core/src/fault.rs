//! Deterministic fault injection for chaos/robustness experiments.
//!
//! Real UVM drivers survive degraded links, transient DMA failures and
//! fault-queue pressure; the simulator reproduces those scenarios with a
//! [`FaultInjector`] — a seed-driven perturbation source the `uvm`
//! driver consults on its service path. Everything is deterministic:
//! the same [`InjectionConfig`] (seed included) against the same
//! workload yields bit-identical timelines, and a *disabled* injector
//! draws no random numbers and perturbs nothing, so runs without
//! injection are unchanged down to the cycle.
//!
//! Four perturbation axes (§ the failure model in DESIGN.md):
//!
//! * **Link degradation** — a square wave of reduced PCIe bandwidth:
//!   for `degrade_duty` of every `degrade_period_cycles` window the
//!   link runs at `degrade_factor ×` nominal bandwidth. Purely a
//!   function of the current cycle, so it needs no RNG.
//! * **Transient migration failure** — each host→device DMA transfer
//!   fails with `transfer_failure_prob`; the driver retries with
//!   bounded exponential backoff (see `uvm::ResilienceConfig`).
//! * **Far-fault latency spikes** — each fault batch's base service
//!   latency is multiplied by `latency_spike_factor` with
//!   `latency_spike_prob` (host-side jitter: IRQ pressure, scheduler).
//! * **Fault-queue overflow** — batches with more than
//!   `fault_queue_depth` faults are split; the tail is deferred to the
//!   next service round.

use crate::error::{require_in_range, require_positive, ConfigError};
use crate::rng::Xoshiro256ss;
use crate::time::Cycle;

/// Injection scenario description. `Default` (= [`InjectionConfig::disabled`])
/// turns every axis off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionConfig {
    /// Seed for the injector's PRNG stream.
    pub seed: u64,
    /// Per-DMA-transfer transient failure probability, in `[0, 1)`.
    pub transfer_failure_prob: f64,
    /// Period of the bandwidth-degradation square wave in cycles
    /// (0 disables degradation windows).
    pub degrade_period_cycles: u64,
    /// Fraction of each period spent degraded, in `[0, 1]`.
    pub degrade_duty: f64,
    /// Bandwidth multiplier inside a degraded window, in `(0, 1]`.
    pub degrade_factor: f64,
    /// Per-batch probability of a far-fault latency spike, in `[0, 1)`.
    pub latency_spike_prob: f64,
    /// Multiplier on the base far-fault latency during a spike (≥ 1).
    pub latency_spike_factor: f64,
    /// Maximum faults serviced per batch (0 = unlimited); larger
    /// batches overflow and the tail is deferred.
    pub fault_queue_depth: usize,
}

impl Default for InjectionConfig {
    fn default() -> Self {
        InjectionConfig::disabled()
    }
}

impl InjectionConfig {
    /// No injection: every axis off. A [`FaultInjector`] built from
    /// this config never perturbs anything and never draws randomness.
    #[must_use]
    pub fn disabled() -> Self {
        InjectionConfig {
            seed: 0,
            transfer_failure_prob: 0.0,
            degrade_period_cycles: 0,
            degrade_duty: 0.0,
            degrade_factor: 1.0,
            latency_spike_prob: 0.0,
            latency_spike_factor: 1.0,
            fault_queue_depth: 0,
        }
    }

    /// Scenario: the link spends 30 % of every 2 ms window at a quarter
    /// of nominal bandwidth (flaky riser / shared-switch contention).
    #[must_use]
    pub fn link_degradation(seed: u64) -> Self {
        InjectionConfig {
            seed,
            degrade_period_cycles: 2_800_000, // 2 ms at 1.4 GHz
            degrade_duty: 0.3,
            degrade_factor: 0.25,
            ..InjectionConfig::disabled()
        }
    }

    /// Scenario: each migration DMA fails transiently with probability
    /// `prob` and must be retried by the driver.
    #[must_use]
    pub fn transient_failures(seed: u64, prob: f64) -> Self {
        InjectionConfig {
            seed,
            transfer_failure_prob: prob,
            ..InjectionConfig::disabled()
        }
    }

    /// Scenario: 10 % of fault batches take 4× the base far-fault
    /// latency (host-side service jitter).
    #[must_use]
    pub fn latency_spikes(seed: u64) -> Self {
        InjectionConfig {
            seed,
            latency_spike_prob: 0.1,
            latency_spike_factor: 4.0,
            ..InjectionConfig::disabled()
        }
    }

    /// Scenario: the fault queue holds at most `depth` faults; larger
    /// batches are split and the tail re-serviced.
    #[must_use]
    pub fn batch_overflow(seed: u64, depth: usize) -> Self {
        InjectionConfig {
            seed,
            fault_queue_depth: depth,
            ..InjectionConfig::disabled()
        }
    }

    /// Scenario: all four axes at once (moderate settings).
    #[must_use]
    pub fn combined(seed: u64) -> Self {
        InjectionConfig {
            seed,
            transfer_failure_prob: 0.05,
            degrade_period_cycles: 2_800_000,
            degrade_duty: 0.2,
            degrade_factor: 0.5,
            latency_spike_prob: 0.05,
            latency_spike_factor: 3.0,
            fault_queue_depth: 32,
        }
    }

    /// Is any perturbation axis active?
    #[must_use]
    pub fn any_enabled(&self) -> bool {
        self.transfer_failure_prob > 0.0
            || (self.degrade_period_cycles > 0 && self.degrade_duty > 0.0)
            || self.latency_spike_prob > 0.0
            || self.fault_queue_depth > 0
    }

    /// Validate every knob.
    ///
    /// # Errors
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        require_in_range(
            "transfer_failure_prob",
            self.transfer_failure_prob,
            0.0,
            0.999,
        )?;
        require_in_range("degrade_duty", self.degrade_duty, 0.0, 1.0)?;
        require_positive("degrade_factor", self.degrade_factor)?;
        require_in_range("degrade_factor", self.degrade_factor, 0.0, 1.0)?;
        require_in_range("latency_spike_prob", self.latency_spike_prob, 0.0, 0.999)?;
        if self.latency_spike_factor < 1.0 || !self.latency_spike_factor.is_finite() {
            return Err(ConfigError::OutOfRange {
                field: "latency_spike_factor",
                value: self.latency_spike_factor,
                min: 1.0,
                max: f64::INFINITY,
            });
        }
        Ok(())
    }
}

/// Counters of what the injector actually did this run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// DMA transfers that were failed.
    pub transfer_failures: u64,
    /// Fault batches that took a latency spike.
    pub latency_spikes: u64,
    /// Bandwidth queries answered with a degraded factor.
    pub degraded_queries: u64,
}

impl InjectionStats {
    /// Counters under their stable telemetry names, in schema order.
    #[must_use]
    pub fn metrics(&self) -> [(&'static str, u64); 3] {
        [
            ("inject.transfer_failures", self.transfer_failures),
            ("inject.latency_spikes", self.latency_spikes),
            ("inject.degraded_queries", self.degraded_queries),
        ]
    }
}

/// The deterministic perturbation source.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: InjectionConfig,
    rng: Xoshiro256ss,
    stats: InjectionStats,
}

impl FaultInjector {
    /// Build an injector for a scenario.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] if any knob is out of range.
    pub fn try_new(cfg: InjectionConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(FaultInjector {
            rng: Xoshiro256ss::new(cfg.seed ^ 0xFA01_71D3_D00D), // injector stream ≠ jitter stream
            cfg,
            stats: InjectionStats::default(),
        })
    }

    /// Build an injector for a scenario.
    ///
    /// # Panics
    /// Panics if the config is invalid; use [`FaultInjector::try_new`]
    /// to handle that case.
    #[must_use]
    pub fn new(cfg: InjectionConfig) -> Self {
        FaultInjector::try_new(cfg).expect("invalid InjectionConfig")
    }

    /// An injector that never perturbs anything.
    #[must_use]
    pub fn disabled() -> Self {
        FaultInjector::new(InjectionConfig::disabled())
    }

    /// Is any perturbation axis active?
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.cfg.any_enabled()
    }

    /// The scenario this injector runs.
    #[must_use]
    pub fn config(&self) -> &InjectionConfig {
        &self.cfg
    }

    /// What the injector did so far.
    #[must_use]
    pub fn stats(&self) -> InjectionStats {
        self.stats
    }

    /// Bandwidth multiplier in effect at `now` — 1.0 outside degraded
    /// windows, `degrade_factor` inside. Purely a function of the cycle
    /// (square wave), so repeated queries at the same time agree.
    pub fn bandwidth_factor(&mut self, now: Cycle) -> f64 {
        if self.cfg.degrade_period_cycles == 0 || self.cfg.degrade_duty <= 0.0 {
            return 1.0;
        }
        let phase = now.0 % self.cfg.degrade_period_cycles;
        let degraded_until = (self.cfg.degrade_duty * self.cfg.degrade_period_cycles as f64) as u64;
        if phase < degraded_until {
            self.stats.degraded_queries += 1;
            self.cfg.degrade_factor
        } else {
            1.0
        }
    }

    /// Draw the fate of one DMA transfer: true = transient failure.
    /// Never draws randomness when the axis is off.
    pub fn transfer_fails(&mut self) -> bool {
        if self.cfg.transfer_failure_prob <= 0.0 {
            return false;
        }
        let fails = self.rng.gen_bool(self.cfg.transfer_failure_prob);
        if fails {
            self.stats.transfer_failures += 1;
        }
        fails
    }

    /// Draw the latency multiplier for one fault batch (1.0 = no
    /// spike). Never draws randomness when the axis is off.
    pub fn batch_latency_factor(&mut self) -> f64 {
        if self.cfg.latency_spike_prob <= 0.0 {
            return 1.0;
        }
        if self.rng.gen_bool(self.cfg.latency_spike_prob) {
            self.stats.latency_spikes += 1;
            self.cfg.latency_spike_factor
        } else {
            1.0
        }
    }

    /// Fault-queue capacity, when the overflow axis is active.
    #[must_use]
    pub fn queue_depth(&self) -> Option<usize> {
        if self.cfg.fault_queue_depth > 0 {
            Some(self.cfg.fault_queue_depth)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_perturbs_nothing() {
        let mut inj = FaultInjector::disabled();
        assert!(!inj.enabled());
        assert_eq!(inj.bandwidth_factor(Cycle(12345)), 1.0);
        assert!(!inj.transfer_fails());
        assert_eq!(inj.batch_latency_factor(), 1.0);
        assert_eq!(inj.queue_depth(), None);
        assert_eq!(inj.stats(), InjectionStats::default());
    }

    #[test]
    fn disabled_injector_draws_no_randomness() {
        // Two injectors with different seeds but all axes off must
        // behave identically — proof that no RNG state is consumed.
        let mut a = FaultInjector::new(InjectionConfig {
            seed: 1,
            ..InjectionConfig::disabled()
        });
        let mut b = FaultInjector::new(InjectionConfig {
            seed: 2,
            ..InjectionConfig::disabled()
        });
        for i in 0..100 {
            assert_eq!(a.transfer_fails(), b.transfer_fails());
            assert_eq!(a.batch_latency_factor(), b.batch_latency_factor());
            assert_eq!(
                a.bandwidth_factor(Cycle(i * 1000)),
                b.bandwidth_factor(Cycle(i * 1000))
            );
        }
    }

    #[test]
    fn degradation_square_wave() {
        let mut inj = FaultInjector::new(InjectionConfig {
            degrade_period_cycles: 1000,
            degrade_duty: 0.3,
            degrade_factor: 0.25,
            ..InjectionConfig::disabled()
        });
        assert_eq!(inj.bandwidth_factor(Cycle(0)), 0.25);
        assert_eq!(inj.bandwidth_factor(Cycle(299)), 0.25);
        assert_eq!(inj.bandwidth_factor(Cycle(300)), 1.0);
        assert_eq!(inj.bandwidth_factor(Cycle(999)), 1.0);
        assert_eq!(inj.bandwidth_factor(Cycle(1000)), 0.25, "wave repeats");
        assert_eq!(inj.stats().degraded_queries, 3);
    }

    #[test]
    fn transfer_failures_are_seeded_and_deterministic() {
        let cfg = InjectionConfig::transient_failures(42, 0.25);
        let mut a = FaultInjector::new(cfg);
        let mut b = FaultInjector::new(cfg);
        let fa: Vec<bool> = (0..256).map(|_| a.transfer_fails()).collect();
        let fb: Vec<bool> = (0..256).map(|_| b.transfer_fails()).collect();
        assert_eq!(fa, fb, "same seed, same fate sequence");
        let hits = fa.iter().filter(|&&x| x).count();
        assert!(hits > 30 && hits < 100, "~25% failure rate, got {hits}/256");
        assert_eq!(a.stats().transfer_failures, hits as u64);

        let mut c = FaultInjector::new(InjectionConfig::transient_failures(43, 0.25));
        let fc: Vec<bool> = (0..256).map(|_| c.transfer_fails()).collect();
        assert_ne!(fa, fc, "different seed, different fates");
    }

    #[test]
    fn latency_spikes_counted() {
        let mut inj = FaultInjector::new(InjectionConfig::latency_spikes(7));
        let factors: Vec<f64> = (0..200).map(|_| inj.batch_latency_factor()).collect();
        let spikes = factors.iter().filter(|&&f| f > 1.0).count();
        assert!(
            spikes > 5 && spikes < 60,
            "~10% spike rate, got {spikes}/200"
        );
        assert!(factors.iter().all(|&f| f == 1.0 || f == 4.0));
        assert_eq!(inj.stats().latency_spikes, spikes as u64);
    }

    #[test]
    fn queue_depth_surfaces() {
        assert_eq!(
            FaultInjector::new(InjectionConfig::batch_overflow(0, 8)).queue_depth(),
            Some(8)
        );
        assert_eq!(FaultInjector::disabled().queue_depth(), None);
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        assert!(InjectionConfig {
            transfer_failure_prob: 1.5,
            ..InjectionConfig::disabled()
        }
        .validate()
        .is_err());
        assert!(InjectionConfig {
            degrade_factor: 0.0,
            degrade_period_cycles: 100,
            ..InjectionConfig::disabled()
        }
        .validate()
        .is_err());
        assert!(InjectionConfig {
            latency_spike_factor: 0.5,
            ..InjectionConfig::disabled()
        }
        .validate()
        .is_err());
        assert!(InjectionConfig::combined(1).validate().is_ok());
        assert!(FaultInjector::try_new(InjectionConfig {
            degrade_duty: 2.0,
            ..InjectionConfig::disabled()
        })
        .is_err());
    }

    #[test]
    fn scenario_constructors_enable_their_axis() {
        assert!(!InjectionConfig::disabled().any_enabled());
        assert!(InjectionConfig::link_degradation(1).any_enabled());
        assert!(InjectionConfig::transient_failures(1, 0.1).any_enabled());
        assert!(InjectionConfig::latency_spikes(1).any_enabled());
        assert!(InjectionConfig::batch_overflow(1, 16).any_enabled());
        assert!(InjectionConfig::combined(1).any_enabled());
    }
}
