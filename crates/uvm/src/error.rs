//! Typed errors for the UVM runtime.
//!
//! The fault-service path used to `unwrap!`/`expect` its way through
//! invariant checks; the robustness work threads these errors instead so
//! the simulator can report a broken run rather than aborting the
//! process (chaos invariant: no injection scenario may panic).

use core::fmt;
use gmmu::types::VirtPage;
use sim_core::error::ConfigError;

/// Errors the UVM driver can produce on its service path.
#[derive(Debug, Clone, PartialEq)]
pub enum UvmError {
    /// Driver, link or pool configuration failed validation.
    Config(ConfigError),
    /// The frame pool ran dry while mapping a migration plan whose room
    /// the eviction loop was supposed to have guaranteed — an internal
    /// accounting breach, surfaced instead of panicking.
    FramesExhausted {
        /// Pages the plan still needed.
        requested: usize,
        /// Frames actually free.
        free: u32,
    },
    /// A page migration could not be completed (bounded retries spent);
    /// carried in diagnostics, the fault itself is replayed later.
    MigrationAborted {
        /// The demand-faulted page whose plan was abandoned.
        page: VirtPage,
        /// DMA attempts made (1 initial + retries).
        attempts: u32,
    },
}

impl fmt::Display for UvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UvmError::Config(e) => write!(f, "invalid UVM configuration: {e}"),
            UvmError::FramesExhausted { requested, free } => write!(
                f,
                "frame pool exhausted mid-plan: {requested} pages requested, {free} free"
            ),
            UvmError::MigrationAborted { page, attempts } => write!(
                f,
                "migration of page {} abandoned after {attempts} DMA attempts",
                page.0
            ),
        }
    }
}

impl From<ConfigError> for UvmError {
    fn from(e: ConfigError) -> Self {
        UvmError::Config(e)
    }
}

impl std::error::Error for UvmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UvmError::Config(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = UvmError::FramesExhausted {
            requested: 16,
            free: 3,
        };
        assert!(e.to_string().contains("16"));
        assert!(e.to_string().contains("3"));
        let e = UvmError::MigrationAborted {
            page: VirtPage(42),
            attempts: 5,
        };
        assert!(e.to_string().contains("42"));
        let c: UvmError = ConfigError::Zero { field: "capacity" }.into();
        assert!(c.to_string().contains("capacity"));
        assert!(std::error::Error::source(&c).is_some());
    }
}
