//! # uvm — unified-memory runtime substrate
//!
//! The software side of GPU unified memory: physical frame management,
//! the CPU↔GPU interconnect, and the host driver that services far-fault
//! batches by invoking the `cppe` policy engine.
//!
//! * [`frames`] — the device-memory frame allocator (capacity set per
//!   run to 75 % / 50 % of the workload footprint, §VI),
//! * [`pcie`] — the 16 GB/s full-duplex link model,
//! * [`driver`] — [`UvmDriver`], the fault-batch service loop with the
//!   20 µs far-fault cost, eviction, touch-bit harvesting and crash
//!   (thrash-death) detection,
//! * [`error`] — [`UvmError`], the typed errors of the fallible service
//!   path (no injection scenario may panic the simulator).
//!
//! The driver optionally carries a `sim_core` fault injector plus a
//! [`ResilienceConfig`]: DMA retries with bounded exponential backoff,
//! batch splitting under fault-queue overflow, and a thrash degradation
//! ladder (throttle prefetch → baseline policy fallback → crash).

pub mod driver;
pub mod error;
pub mod frames;
pub mod pcie;

pub use driver::{BatchResult, DriverStats, ResilienceConfig, UvmConfig, UvmDriver};
pub use error::UvmError;
pub use frames::FrameAllocator;
pub use pcie::PcieLink;
