//! # uvm — unified-memory runtime substrate
//!
//! The software side of GPU unified memory: physical frame management,
//! the CPU↔GPU interconnect, and the host driver that services far-fault
//! batches by invoking the `cppe` policy engine.
//!
//! * [`frames`] — the device-memory frame allocator (capacity set per
//!   run to 75 % / 50 % of the workload footprint, §VI),
//! * [`pcie`] — the 16 GB/s full-duplex link model,
//! * [`driver`] — [`UvmDriver`], the fault-batch service loop with the
//!   20 µs far-fault cost, eviction, touch-bit harvesting and crash
//!   (thrash-death) detection.

pub mod driver;
pub mod frames;
pub mod pcie;

pub use driver::{BatchResult, DriverStats, UvmConfig, UvmDriver};
pub use frames::FrameAllocator;
pub use pcie::PcieLink;
