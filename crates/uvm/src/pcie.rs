//! CPU↔GPU interconnect model.
//!
//! Table I: "16GB/s, 20 µs page fault service time". The link is modelled
//! as full duplex — one 16 GB/s lane per direction — with transfers in
//! each direction serialized FIFO. Page migrations (host→device) and
//! evictions (device→host) therefore overlap with each other but queue
//! behind earlier traffic in their own direction, which is what makes
//! thrashing (high eviction volume) consume real time in the simulator,
//! not just counters.

use gmmu::types::PAGE_SIZE;
use sim_core::time::{transfer_cycles, Cycle};

/// The PCIe-like link.
#[derive(Debug)]
pub struct PcieLink {
    gb_per_s: f64,
    h2d_free: Cycle,
    d2h_free: Cycle,
    /// Total host→device bytes moved.
    pub bytes_h2d: u64,
    /// Total device→host bytes moved.
    pub bytes_d2h: u64,
}

impl PcieLink {
    /// Link with `gb_per_s` GB/s per direction (Table I: 16).
    ///
    /// # Panics
    /// Panics if the bandwidth is not positive.
    #[must_use]
    pub fn new(gb_per_s: f64) -> Self {
        assert!(gb_per_s > 0.0, "link bandwidth must be positive");
        PcieLink {
            gb_per_s,
            h2d_free: Cycle::ZERO,
            d2h_free: Cycle::ZERO,
            bytes_h2d: 0,
            bytes_d2h: 0,
        }
    }

    /// Enqueue a host→device transfer of `pages` pages at `now`.
    /// Returns its completion time.
    pub fn transfer_h2d(&mut self, pages: u64, now: Cycle) -> Cycle {
        let bytes = pages * PAGE_SIZE;
        self.bytes_h2d += bytes;
        let start = self.h2d_free.max(now);
        let done = start.after(transfer_cycles(bytes, self.gb_per_s));
        self.h2d_free = done;
        done
    }

    /// Enqueue a device→host transfer of `pages` pages at `now`.
    /// Returns its completion time.
    pub fn transfer_d2h(&mut self, pages: u64, now: Cycle) -> Cycle {
        let bytes = pages * PAGE_SIZE;
        self.bytes_d2h += bytes;
        let start = self.d2h_free.max(now);
        let done = start.after(transfer_cycles(bytes, self.gb_per_s));
        self.d2h_free = done;
        done
    }

    /// When the host→device direction becomes idle.
    #[must_use]
    pub fn h2d_free_at(&self) -> Cycle {
        self.h2d_free
    }

    /// When the device→host direction becomes idle.
    #[must_use]
    pub fn d2h_free_at(&self) -> Cycle {
        self.d2h_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_page_is_359_cycles_at_16gbps() {
        let mut l = PcieLink::new(16.0);
        let done = l.transfer_h2d(1, Cycle::ZERO);
        assert_eq!(done, Cycle(359));
        assert_eq!(l.bytes_h2d, 4096);
    }

    #[test]
    fn same_direction_serializes() {
        let mut l = PcieLink::new(16.0);
        let a = l.transfer_h2d(1, Cycle::ZERO);
        let b = l.transfer_h2d(1, Cycle::ZERO);
        assert_eq!(b, a.after(359));
    }

    #[test]
    fn directions_are_independent() {
        let mut l = PcieLink::new(16.0);
        let a = l.transfer_h2d(16, Cycle::ZERO);
        let b = l.transfer_d2h(16, Cycle::ZERO);
        assert_eq!(a, b, "full duplex: directions do not contend");
    }

    #[test]
    fn idle_gap_respected() {
        let mut l = PcieLink::new(16.0);
        l.transfer_h2d(1, Cycle::ZERO);
        let done = l.transfer_h2d(1, Cycle(10_000));
        assert_eq!(done, Cycle(10_359), "starts at now when link idle");
    }

    #[test]
    fn zero_pages_is_free() {
        let mut l = PcieLink::new(16.0);
        assert_eq!(l.transfer_h2d(0, Cycle(5)), Cycle(5));
    }

    #[test]
    fn chunk_transfer_time() {
        // 64 KB at 16 GB/s = 4096 ns = 5734.4 cycles → 5735.
        let mut l = PcieLink::new(16.0);
        assert_eq!(l.transfer_h2d(16, Cycle::ZERO), Cycle(5735));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        let _ = PcieLink::new(0.0);
    }
}
