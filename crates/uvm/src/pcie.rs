//! CPU↔GPU interconnect model.
//!
//! Table I: "16GB/s, 20 µs page fault service time". The link is modelled
//! as full duplex — one 16 GB/s lane per direction — with transfers in
//! each direction serialized FIFO. Page migrations (host→device) and
//! evictions (device→host) therefore overlap with each other but queue
//! behind earlier traffic in their own direction, which is what makes
//! thrashing (high eviction volume) consume real time in the simulator,
//! not just counters.

use gmmu::types::PAGE_SIZE;
use sim_core::error::{require_positive, ConfigError};
use sim_core::time::{transfer_cycles, Cycle};

/// The PCIe-like link.
#[derive(Debug)]
pub struct PcieLink {
    gb_per_s: f64,
    h2d_free: Cycle,
    d2h_free: Cycle,
    /// Total host→device bytes moved.
    pub bytes_h2d: u64,
    /// Total device→host bytes moved.
    pub bytes_d2h: u64,
}

impl PcieLink {
    /// Link with `gb_per_s` GB/s per direction (Table I: 16).
    ///
    /// # Errors
    /// Returns [`ConfigError::NotPositive`] for a non-positive (or
    /// non-finite) bandwidth.
    pub fn try_new(gb_per_s: f64) -> Result<Self, ConfigError> {
        require_positive("pcie_gb_per_s", gb_per_s)?;
        Ok(PcieLink {
            gb_per_s,
            h2d_free: Cycle::ZERO,
            d2h_free: Cycle::ZERO,
            bytes_h2d: 0,
            bytes_d2h: 0,
        })
    }

    /// Link with `gb_per_s` GB/s per direction (Table I: 16).
    /// Convenience wrapper over [`PcieLink::try_new`].
    ///
    /// # Panics
    /// Panics if the bandwidth is not positive.
    #[must_use]
    pub fn new(gb_per_s: f64) -> Self {
        PcieLink::try_new(gb_per_s).expect("link bandwidth must be positive")
    }

    /// Enqueue a host→device transfer of `pages` pages at `now`.
    /// Returns its completion time.
    pub fn transfer_h2d(&mut self, pages: u64, now: Cycle) -> Cycle {
        self.transfer_h2d_at(pages, now, 1.0)
    }

    /// Host→device transfer under a bandwidth multiplier (fault
    /// injection: degraded-link windows run at `bw_factor < 1`).
    pub fn transfer_h2d_at(&mut self, pages: u64, now: Cycle, bw_factor: f64) -> Cycle {
        debug_assert!(bw_factor > 0.0 && bw_factor <= 1.0);
        let bytes = pages * PAGE_SIZE;
        self.bytes_h2d += bytes;
        let start = self.h2d_free.max(now);
        let done = start.after(transfer_cycles(bytes, self.gb_per_s * bw_factor));
        self.h2d_free = done;
        done
    }

    /// Enqueue a device→host transfer of `pages` pages at `now`.
    /// Returns its completion time.
    pub fn transfer_d2h(&mut self, pages: u64, now: Cycle) -> Cycle {
        self.transfer_d2h_at(pages, now, 1.0)
    }

    /// Device→host transfer under a bandwidth multiplier.
    pub fn transfer_d2h_at(&mut self, pages: u64, now: Cycle, bw_factor: f64) -> Cycle {
        debug_assert!(bw_factor > 0.0 && bw_factor <= 1.0);
        let bytes = pages * PAGE_SIZE;
        self.bytes_d2h += bytes;
        let start = self.d2h_free.max(now);
        let done = start.after(transfer_cycles(bytes, self.gb_per_s * bw_factor));
        self.d2h_free = done;
        done
    }

    /// When the host→device direction becomes idle.
    #[must_use]
    pub fn h2d_free_at(&self) -> Cycle {
        self.h2d_free
    }

    /// When the device→host direction becomes idle.
    #[must_use]
    pub fn d2h_free_at(&self) -> Cycle {
        self.d2h_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_page_is_359_cycles_at_16gbps() {
        let mut l = PcieLink::new(16.0);
        let done = l.transfer_h2d(1, Cycle::ZERO);
        assert_eq!(done, Cycle(359));
        assert_eq!(l.bytes_h2d, 4096);
    }

    #[test]
    fn same_direction_serializes() {
        let mut l = PcieLink::new(16.0);
        let a = l.transfer_h2d(1, Cycle::ZERO);
        let b = l.transfer_h2d(1, Cycle::ZERO);
        assert_eq!(b, a.after(359));
    }

    #[test]
    fn directions_are_independent() {
        let mut l = PcieLink::new(16.0);
        let a = l.transfer_h2d(16, Cycle::ZERO);
        let b = l.transfer_d2h(16, Cycle::ZERO);
        assert_eq!(a, b, "full duplex: directions do not contend");
    }

    #[test]
    fn idle_gap_respected() {
        let mut l = PcieLink::new(16.0);
        l.transfer_h2d(1, Cycle::ZERO);
        let done = l.transfer_h2d(1, Cycle(10_000));
        assert_eq!(done, Cycle(10_359), "starts at now when link idle");
    }

    #[test]
    fn zero_pages_is_free() {
        let mut l = PcieLink::new(16.0);
        assert_eq!(l.transfer_h2d(0, Cycle(5)), Cycle(5));
    }

    #[test]
    fn chunk_transfer_time() {
        // 64 KB at 16 GB/s = 4096 ns = 5734.4 cycles → 5735.
        let mut l = PcieLink::new(16.0);
        assert_eq!(l.transfer_h2d(16, Cycle::ZERO), Cycle(5735));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        let _ = PcieLink::new(0.0);
    }

    #[test]
    fn try_new_reports_typed_error() {
        assert!(PcieLink::try_new(16.0).is_ok());
        let err = PcieLink::try_new(0.0).unwrap_err();
        assert!(err.to_string().contains("pcie_gb_per_s"));
        assert!(PcieLink::try_new(-4.0).is_err());
        assert!(PcieLink::try_new(f64::NAN).is_err());
    }

    #[test]
    fn unit_bandwidth_factor_is_bit_identical() {
        let mut a = PcieLink::new(16.0);
        let mut b = PcieLink::new(16.0);
        for i in 0..32u64 {
            let ta = a.transfer_h2d(i, Cycle(i * 100));
            let tb = b.transfer_h2d_at(i, Cycle(i * 100), 1.0);
            assert_eq!(ta, tb);
        }
        assert_eq!(a.bytes_h2d, b.bytes_h2d);
    }

    #[test]
    fn degraded_factor_slows_transfers() {
        let mut l = PcieLink::new(16.0);
        // 16 pages at quarter bandwidth ≈ 4× the nominal 5735 cycles.
        let done = l.transfer_h2d_at(16, Cycle::ZERO, 0.25);
        assert!(done.0 > 4 * 5700 && done.0 < 4 * 5800, "got {done}");
    }
}
