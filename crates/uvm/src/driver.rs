//! The host-side UVM driver: far-fault batch servicing.
//!
//! GPUs take no precise exceptions, so page migration is offloaded to
//! the runtime on the host CPU (§II-A). The `gpu` crate's event loop
//! collects replayable far faults while the driver is busy and hands
//! them over as a *batch*; [`UvmDriver::service_batch`] then, for every
//! distinct faulted page:
//!
//! 1. notifies the policy engine (wrong-eviction bookkeeping),
//! 2. asks the prefetcher for a migration plan,
//! 3. evicts policy-selected victim chunks until the plan fits —
//!    reading the page-table access bits into the chunk's touch vector
//!    and feeding it back to the policies (CPPE's coordination loop),
//! 4. maps the planned pages and charges the PCIe link.
//!
//! The batch costs one 20 µs far-fault round-trip plus a smaller
//! per-extra-fault overhead, so faults that batch together amortize the
//! host interaction — the amortization prefetching exists to exploit.
//!
//! A run whose eviction traffic exceeds `crash_eviction_factor ×
//! footprint` is declared **crashed**, reproducing the paper's
//! observation that *MVT* and *BIC* die under the naïve baseline
//! ("crashed during execution due to severe thrashing").

use crate::frames::FrameAllocator;
use crate::pcie::PcieLink;
use cppe::engine::PolicyEngine;
use gmmu::translation::TranslationPath;
use gmmu::types::{VirtPage, PAGES_PER_CHUNK};
use sim_core::time::Cycle;
use sim_core::{FxHashSet, TouchVec};

/// Driver configuration.
#[derive(Debug, Clone, Copy)]
pub struct UvmConfig {
    /// GPU memory capacity in 4 KB frames.
    pub capacity_pages: u32,
    /// Base far-fault service latency in cycles (Table I: 20 µs = 28 000).
    pub fault_base_cycles: u64,
    /// Additional service cycles per distinct fault in a batch beyond
    /// the first — host-side fault processing (page-table updates, DMA
    /// setup), ~5 µs by default. Keeping this above the 64 KB transfer
    /// time (~4 µs) makes the host CPU the service bottleneck, as in
    /// real UVM drivers; otherwise the PCIe queue backlogs and chain
    /// recency diverges from consumption recency.
    pub per_fault_cycles: u64,
    /// Interconnect bandwidth per direction in GB/s (Table I: 16).
    pub pcie_gb_per_s: f64,
    /// Crash when, with at least `crash_min_evicted_factor × footprint`
    /// pages already evicted, more than `crash_untouch_fraction` of all
    /// evicted pages were never touched. Sustained mostly-useless
    /// migration traffic is what kills the real driver under severe
    /// thrash (Fig. 4: MVT/BIC). Set the fraction > 1.0 to disable.
    pub crash_untouch_fraction: f64,
    /// Minimum eviction volume (multiples of the footprint) before the
    /// crash detector arms (0 disables crash detection).
    pub crash_min_evicted_factor: u64,
    /// Application footprint in pages (for crash detection).
    pub footprint_pages: u64,
}

impl UvmConfig {
    /// Table I defaults for a given capacity/footprint.
    #[must_use]
    pub fn table1(capacity_pages: u32, footprint_pages: u64) -> Self {
        UvmConfig {
            capacity_pages,
            fault_base_cycles: 28_000,
            per_fault_cycles: 7_000,
            pcie_gb_per_s: 16.0,
            crash_untouch_fraction: 0.65,
            crash_min_evicted_factor: 4,
            footprint_pages,
        }
    }
}

/// Outcome of one batch service.
///
/// Far-fault service is *pipelined*: the host CPU processes the batch's
/// faults one after another (each fault adds `per_fault_cycles` after
/// the 20 µs base), while page transfers queue on the PCIe link and
/// complete per fault. A faulting warp replays as soon as *its* pages
/// arrive — it does not wait for the whole batch.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// When the host driver finishes processing the batch and can accept
    /// the next one.
    pub host_done: Cycle,
    /// Absolute time the whole batch completes (last transfer done).
    pub done_at: Cycle,
    /// Per distinct faulted page: when its migration (host processing +
    /// PCIe transfer of its plan) completes and the faulting warp may
    /// replay.
    pub completions: Vec<(VirtPage, Cycle)>,
    /// Pages that became resident.
    pub migrated: Vec<VirtPage>,
    /// Pages evicted to make room (the GPU-side caches invalidate these).
    pub evicted: Vec<VirtPage>,
    /// Run died of thrash during this batch.
    pub crashed: bool,
}

/// Driver statistics beyond what the policy engine tracks.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriverStats {
    /// Batches serviced.
    pub batches: u64,
    /// Distinct faults serviced (duplicates within a batch collapse).
    pub faults_serviced: u64,
    /// Faults that were already resident on arrival (another fault in
    /// the same batch migrated them).
    pub coalesced_faults: u64,
}

/// The UVM driver.
pub struct UvmDriver {
    cfg: UvmConfig,
    engine: PolicyEngine,
    frames: FrameAllocator,
    pcie: PcieLink,
    crashed: bool,
    /// Start time of the batch currently being serviced (evictions are
    /// charged to the link at this time).
    service_start: Cycle,
    /// Driver-level counters.
    pub stats: DriverStats,
}

impl UvmDriver {
    /// Build a driver around a policy engine.
    #[must_use]
    pub fn new(cfg: UvmConfig, engine: PolicyEngine) -> Self {
        UvmDriver {
            frames: FrameAllocator::new(cfg.capacity_pages),
            pcie: PcieLink::new(cfg.pcie_gb_per_s),
            cfg,
            engine,
            crashed: false,
            service_start: Cycle::ZERO,
            stats: DriverStats::default(),
        }
    }

    /// The policy engine (counters, chain, overhead snapshot).
    #[must_use]
    pub fn engine(&self) -> &PolicyEngine {
        &self.engine
    }

    /// Mutable engine access (harness-side policy introspection).
    pub fn engine_mut(&mut self) -> &mut PolicyEngine {
        &mut self.engine
    }

    /// The PCIe link (traffic counters).
    #[must_use]
    pub fn pcie(&self) -> &PcieLink {
        &self.pcie
    }

    /// Free frames right now.
    #[must_use]
    pub fn free_frames(&self) -> u32 {
        self.frames.free()
    }

    /// Has the run crashed from thrash?
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Evict one policy-selected chunk, releasing its frames. Returns
    /// false when no victim is available (empty chain).
    fn evict_one(
        &mut self,
        xlat: &mut TranslationPath,
        evicted: &mut Vec<VirtPage>,
        pinned: &FxHashSet<gmmu::types::ChunkId>,
    ) -> bool {
        self.engine.note_memory_full();
        let Some(victim) = self.engine.select_victim(pinned) else {
            return false;
        };
        let mut touch = TouchVec::empty();
        let mut resident = 0u32;
        for page in victim.pages() {
            if xlat.page_table().is_resident(page) {
                let (frame, touched) = xlat.unmap_and_invalidate(page);
                self.frames.release(frame);
                if touched {
                    touch.set(page.index_in_chunk());
                }
                evicted.push(page);
                resident += 1;
            }
        }
        // Evicted pages travel back over the device→host lane. We treat
        // every page as dirty: unified-memory migration moves data, and
        // the paper's thrashing metric is eviction traffic.
        self.pcie.transfer_d2h(u64::from(resident), self.service_start);
        self.engine.note_evicted(victim, touch, resident);
        true
    }

    /// Service a batch of far faults arriving at `now`.
    ///
    /// Duplicate pages within the batch (or pages migrated by an
    /// earlier fault of the same batch) are coalesced. Returns the batch
    /// completion time and the pages made resident.
    pub fn service_batch(
        &mut self,
        faults: &[VirtPage],
        now: Cycle,
        xlat: &mut TranslationPath,
    ) -> BatchResult {
        self.stats.batches += 1;
        self.service_start = now;
        let mut migrated: Vec<VirtPage> = Vec::new();
        let mut evicted: Vec<VirtPage> = Vec::new();
        let mut completions: Vec<(VirtPage, Cycle)> = Vec::new();
        // Chunks whose migration this batch has planned or performed:
        // pinned against eviction for the duration of the batch.
        let mut pinned: FxHashSet<gmmu::types::ChunkId> = FxHashSet::default();
        let mut distinct = 0u64;
        // Host-side processing cursor: the 20 µs far-fault round trip,
        // then per-fault handling time, serialized on the host CPU.
        let mut host_cursor = now.after(self.cfg.fault_base_cycles);

        for &fault in faults {
            if xlat.page_table().is_resident(fault) {
                self.stats.coalesced_faults += 1;
                // Migrated by an earlier fault of this batch (or already
                // in flight): ready once the host reaches it.
                completions.push((fault, host_cursor));
                continue;
            }
            distinct += 1;
            self.stats.faults_serviced += 1;
            if distinct > 1 {
                host_cursor = host_cursor.after(self.cfg.per_fault_cycles);
            }

            // "Memory full" is visible to the prefetcher before planning:
            // less than one chunk of headroom counts as full, which is
            // when disable-on-full strategies stop prefetching.
            if u64::from(self.frames.free()) < PAGES_PER_CHUNK {
                self.engine.note_memory_full();
            }
            self.engine.note_fault(fault);
            let mut plan = self.engine.plan_prefetch(fault, xlat.page_table());

            // A plan can never exceed the whole device memory; truncate
            // oversized plans but always keep the faulted page.
            let cap = self.frames.capacity() as usize;
            if plan.len() > cap {
                plan.retain(|&p| p != fault);
                plan.truncate(cap - 1);
                plan.push(fault);
                plan.sort_unstable_by_key(|p| p.0);
            }

            for &p in &plan {
                pinned.insert(p.chunk());
            }

            // Make room.
            while (self.frames.free() as usize) < plan.len() {
                if !self.evict_one(xlat, &mut evicted, &pinned) {
                    // Chain exhausted (pathological): shrink the plan to
                    // whatever fits, keeping the faulted page.
                    let free = self.frames.free() as usize;
                    plan.retain(|&p| p != fault);
                    plan.truncate(free.saturating_sub(1));
                    plan.push(fault);
                    plan.sort_unstable_by_key(|p| p.0);
                    break;
                }
            }

            // Map, grouped by chunk for the policy notifications.
            let mut i = 0;
            while i < plan.len() {
                let chunk = plan[i].chunk();
                let mut n = 0u32;
                let mut demand = false;
                while i < plan.len() && plan[i].chunk() == chunk {
                    let frame = self.frames.alloc().expect("eviction guaranteed room");
                    let is_fault = plan[i] == fault;
                    xlat.map(plan[i], frame, is_fault);
                    demand |= is_fault;
                    n += 1;
                    i += 1;
                }
                self.engine.note_migrated(chunk, n, demand);
            }
            let transfer_done = self.pcie.transfer_h2d(plan.len() as u64, now);
            completions.push((fault, host_cursor.max(transfer_done)));
            migrated.extend_from_slice(&plan);
        }

        let host_done = host_cursor;
        let done_at = completions
            .iter()
            .map(|&(_, t)| t)
            .max()
            .unwrap_or(host_done)
            .max(host_done);

        // Thrash-death detection (Fig. 4: MVT/BIC die in the baseline):
        // the run crashes when eviction traffic is both *large* (the
        // detector arms only past a footprint multiple) and *mostly
        // useless* (a high fraction of evicted pages was never touched).
        let st = self.engine.stats;
        if self.cfg.crash_min_evicted_factor > 0
            && st.pages_evicted
                > self.cfg.crash_min_evicted_factor * self.cfg.footprint_pages
            && (st.total_untouch as f64)
                > self.cfg.crash_untouch_fraction * st.pages_evicted as f64
        {
            self.crashed = true;
        }

        BatchResult {
            host_done,
            done_at,
            completions,
            migrated,
            evicted,
            crashed: self.crashed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppe::presets::PolicyPreset;
    use gmmu::translation::TranslationConfig;

    fn setup(capacity: u32, preset: PolicyPreset) -> (UvmDriver, TranslationPath) {
        let cfg = UvmConfig::table1(capacity, 1024);
        let driver = UvmDriver::new(cfg, preset.build(7));
        let xlat = TranslationPath::new(&TranslationConfig::default());
        (driver, xlat)
    }

    #[test]
    fn single_fault_migrates_whole_chunk() {
        let (mut d, mut xlat) = setup(256, PolicyPreset::Baseline);
        let r = d.service_batch(&[VirtPage(5)], Cycle::ZERO, &mut xlat);
        assert_eq!(r.migrated.len(), 16);
        assert!(xlat.page_table().is_resident(VirtPage(5)));
        assert!(xlat.page_table().is_resident(VirtPage(0)));
        assert!(!xlat.page_table().is_resident(VirtPage(16)));
        assert_eq!(d.free_frames(), 240);
        // Faulted page is touched, prefetched neighbours are not.
        assert!(xlat.page_table().is_touched(VirtPage(5)));
        assert!(!xlat.page_table().is_touched(VirtPage(0)));
        assert!(!r.crashed);
    }

    #[test]
    fn batch_timing_includes_fault_base_and_pcie() {
        let (mut d, mut xlat) = setup(256, PolicyPreset::Baseline);
        let r = d.service_batch(&[VirtPage(5)], Cycle::ZERO, &mut xlat);
        // Host: 28 000; PCIe h2d of 16 pages: 5 735 — host dominates.
        assert_eq!(r.done_at, Cycle(28_000));
    }

    #[test]
    fn extra_faults_add_per_fault_cost() {
        let (mut d, mut xlat) = setup(1024, PolicyPreset::Baseline);
        let r = d.service_batch(
            &[VirtPage(0), VirtPage(100), VirtPage(200)],
            Cycle::ZERO,
            &mut xlat,
        );
        // 3 distinct faults → host 28 000 + 2 × 7 000 = 42 000 > PCIe.
        assert_eq!(r.host_done, Cycle(42_000));
        assert_eq!(r.done_at, Cycle(42_000));
        assert_eq!(r.migrated.len(), 48);
    }

    #[test]
    fn duplicate_faults_coalesce() {
        let (mut d, mut xlat) = setup(256, PolicyPreset::Baseline);
        let r = d.service_batch(
            &[VirtPage(5), VirtPage(6), VirtPage(5)],
            Cycle::ZERO,
            &mut xlat,
        );
        // First fault migrates the chunk; the other two are resident.
        assert_eq!(r.migrated.len(), 16);
        assert_eq!(d.stats.faults_serviced, 1);
        assert_eq!(d.stats.coalesced_faults, 2);
    }

    #[test]
    fn eviction_when_memory_full() {
        // Capacity = 2 chunks. Fill both, then fault a third.
        let (mut d, mut xlat) = setup(32, PolicyPreset::Baseline);
        d.service_batch(&[VirtPage(0)], Cycle::ZERO, &mut xlat);
        d.service_batch(&[VirtPage(16)], Cycle(100_000), &mut xlat);
        assert_eq!(d.free_frames(), 0);
        let r = d.service_batch(&[VirtPage(32)], Cycle(200_000), &mut xlat);
        assert_eq!(r.migrated.len(), 16);
        // LRU evicted chunk 0.
        assert!(!xlat.page_table().is_resident(VirtPage(0)));
        assert!(xlat.page_table().is_resident(VirtPage(16)));
        assert!(xlat.page_table().is_resident(VirtPage(32)));
        assert_eq!(d.engine().stats.chunk_evictions, 1);
        assert_eq!(d.engine().stats.pages_evicted, 16);
    }

    #[test]
    fn eviction_reads_touch_bits_into_pattern() {
        // CPPE end-to-end: touch a stride-2 subset, evict, re-fault →
        // only the pattern pages migrate.
        let (mut d, mut xlat) = setup(32, PolicyPreset::Cppe);
        d.service_batch(&[VirtPage(0)], Cycle::ZERO, &mut xlat);
        for p in (0..16u64).step_by(2) {
            xlat.mark_touched(VirtPage(p));
        }
        d.service_batch(&[VirtPage(16)], Cycle(100_000), &mut xlat);
        // Memory full → fault on chunk 2 evicts chunk 0 (old partition
        // fallback) and records its pattern.
        d.service_batch(&[VirtPage(32)], Cycle(200_000), &mut xlat);
        assert!(!xlat.page_table().is_resident(VirtPage(0)));
        // Fault back on page 0 (matches pattern): only 8 pages migrate.
        let r = d.service_batch(&[VirtPage(0)], Cycle(300_000), &mut xlat);
        assert_eq!(r.migrated.len(), 8, "pattern-aware partial migration");
        assert!(r.migrated.iter().all(|p| p.0 % 2 == 0));
    }

    #[test]
    fn disable_on_full_migrates_single_pages() {
        let (mut d, mut xlat) = setup(32, PolicyPreset::DisablePfOnFull);
        d.service_batch(&[VirtPage(0)], Cycle::ZERO, &mut xlat);
        d.service_batch(&[VirtPage(16)], Cycle(100_000), &mut xlat);
        let r = d.service_batch(&[VirtPage(32)], Cycle(200_000), &mut xlat);
        assert_eq!(r.migrated, vec![VirtPage(32)]);
    }

    #[test]
    fn crash_detection_fires_on_wasteful_thrash() {
        let cfg = UvmConfig {
            crash_untouch_fraction: 0.65,
            crash_min_evicted_factor: 1,
            footprint_pages: 48,
            ..UvmConfig::table1(32, 48)
        };
        let mut d = UvmDriver::new(cfg, PolicyPreset::Baseline.build(0));
        let mut xlat = TranslationPath::new(&TranslationConfig::default());
        // Cycle faults over 3 chunks with capacity 2 and never touch the
        // prefetched pages: every evicted chunk is 15/16 untouched, so
        // once the volume arms the detector the run must crash.
        let mut t = 0u64;
        let mut crashed = false;
        for round in 0..64 {
            let page = VirtPage((round % 3) * 16);
            if xlat.page_table().is_resident(page) {
                continue;
            }
            let r = d.service_batch(&[page], Cycle(t), &mut xlat);
            t = r.done_at.0 + 1000;
            if r.crashed {
                crashed = true;
                break;
            }
        }
        assert!(crashed, "wasteful thrash must trip the crash detector");
    }

    #[test]
    fn useful_thrash_does_not_crash() {
        let cfg = UvmConfig {
            crash_untouch_fraction: 0.65,
            crash_min_evicted_factor: 1,
            footprint_pages: 48,
            ..UvmConfig::table1(32, 48)
        };
        let mut d = UvmDriver::new(cfg, PolicyPreset::Baseline.build(0));
        let mut xlat = TranslationPath::new(&TranslationConfig::default());
        // Same cyclic fault loop, but every resident page is touched
        // before eviction: untouch fraction stays 0 → no crash, matching
        // SRD-style dense thrash that completes in the paper.
        let mut t = 0u64;
        for round in 0..64u64 {
            let page = VirtPage((round % 3) * 16);
            if xlat.page_table().is_resident(page) {
                continue;
            }
            let r = d.service_batch(&[page], Cycle(t), &mut xlat);
            for p in r.migrated {
                xlat.mark_touched(p);
            }
            t = r.done_at.0 + 1000;
            assert!(!r.crashed, "dense thrash must not crash (round {round})");
        }
    }

    #[test]
    fn pcie_traffic_accounted() {
        let (mut d, mut xlat) = setup(32, PolicyPreset::Baseline);
        d.service_batch(&[VirtPage(0)], Cycle::ZERO, &mut xlat);
        d.service_batch(&[VirtPage(16)], Cycle(100_000), &mut xlat);
        d.service_batch(&[VirtPage(32)], Cycle(200_000), &mut xlat);
        assert_eq!(d.pcie().bytes_h2d, 3 * 16 * 4096);
        assert_eq!(d.pcie().bytes_d2h, 16 * 4096);
    }

    #[test]
    fn oversized_plan_truncated_to_capacity() {
        // Tree prefetcher could plan more than a tiny memory holds.
        let (mut d, mut xlat) = setup(16, PolicyPreset::Baseline);
        let r = d.service_batch(&[VirtPage(3)], Cycle::ZERO, &mut xlat);
        assert_eq!(r.migrated.len(), 16);
        assert!(r.migrated.contains(&VirtPage(3)));
    }
}
