//! The host-side UVM driver: far-fault batch servicing.
//!
//! GPUs take no precise exceptions, so page migration is offloaded to
//! the runtime on the host CPU (§II-A). The `gpu` crate's event loop
//! collects replayable far faults while the driver is busy and hands
//! them over as a *batch*; [`UvmDriver::service_batch`] then, for every
//! distinct faulted page:
//!
//! 1. notifies the policy engine (wrong-eviction bookkeeping),
//! 2. asks the prefetcher for a migration plan,
//! 3. evicts policy-selected victim chunks until the plan fits —
//!    reading the page-table access bits into the chunk's touch vector
//!    and feeding it back to the policies (CPPE's coordination loop),
//! 4. maps the planned pages and charges the PCIe link.
//!
//! The batch costs one 20 µs far-fault round-trip plus a smaller
//! per-extra-fault overhead, so faults that batch together amortize the
//! host interaction — the amortization prefetching exists to exploit.
//!
//! A run whose eviction traffic exceeds `crash_eviction_factor ×
//! footprint` is declared **crashed**, reproducing the paper's
//! observation that *MVT* and *BIC* die under the naïve baseline
//! ("crashed during execution due to severe thrashing").
//!
//! # Resilience
//!
//! The driver optionally carries a [`FaultInjector`] (chaos scenarios:
//! degraded link bandwidth, transient DMA failures, far-fault latency
//! spikes, fault-queue overflow) and a [`ResilienceConfig`] governing
//! how it survives them: failed migration DMAs are retried with bounded
//! exponential backoff, oversized batches are split and the tail
//! deferred, and — when `degraded_mode` is on — the thrash detector
//! walks a *degradation ladder* before declaring a crash: first halve
//! prefetch aggressiveness, then fall back to plain LRU + sequential
//! prefetch (disabled on memory-full), and only if wasteful thrash
//! persists after both sheds report [`BatchResult::crashed`]. With
//! injection disabled and `degraded_mode` off (the defaults) every code
//! path is bit-identical to the original driver.

use crate::error::UvmError;
use crate::frames::FrameAllocator;
use crate::pcie::PcieLink;
use cppe::engine::PolicyEngine;
use gmmu::translation::TranslationPath;
use gmmu::types::{VirtPage, PAGES_PER_CHUNK};
use sim_core::error::{require_positive, ConfigError};
use sim_core::fault::{FaultInjector, InjectionStats};
use sim_core::time::Cycle;
use sim_core::{FxHashSet, TouchVec};
use telemetry::{
    DecisionEvent, DecisionKind, InjectedFaultKind, MetricKind, RunTelemetry, SpanId, SpanStage,
    TraceEvent, Tracer,
};

/// Candidate-window size recorded per audited eviction decision. Large
/// enough to show what the policy weighed, small enough to keep the
/// decision ring cheap.
const AUDIT_CANDIDATES: usize = 8;

/// Driver configuration.
#[derive(Debug, Clone, Copy)]
pub struct UvmConfig {
    /// GPU memory capacity in 4 KB frames.
    pub capacity_pages: u32,
    /// Base far-fault service latency in cycles (Table I: 20 µs = 28 000).
    pub fault_base_cycles: u64,
    /// Additional service cycles per distinct fault in a batch beyond
    /// the first — host-side fault processing (page-table updates, DMA
    /// setup), ~5 µs by default. Keeping this above the 64 KB transfer
    /// time (~4 µs) makes the host CPU the service bottleneck, as in
    /// real UVM drivers; otherwise the PCIe queue backlogs and chain
    /// recency diverges from consumption recency.
    pub per_fault_cycles: u64,
    /// Interconnect bandwidth per direction in GB/s (Table I: 16).
    pub pcie_gb_per_s: f64,
    /// Crash when, with at least `crash_min_evicted_factor × footprint`
    /// pages already evicted, more than `crash_untouch_fraction` of all
    /// evicted pages were never touched. Sustained mostly-useless
    /// migration traffic is what kills the real driver under severe
    /// thrash (Fig. 4: MVT/BIC). Set the fraction > 1.0 to disable.
    pub crash_untouch_fraction: f64,
    /// Minimum eviction volume (multiples of the footprint) before the
    /// crash detector arms (0 disables crash detection).
    pub crash_min_evicted_factor: u64,
    /// Application footprint in pages (for crash detection).
    pub footprint_pages: u64,
}

impl UvmConfig {
    /// Table I defaults for a given capacity/footprint.
    #[must_use]
    pub fn table1(capacity_pages: u32, footprint_pages: u64) -> Self {
        UvmConfig {
            capacity_pages,
            fault_base_cycles: 28_000,
            per_fault_cycles: 7_000,
            pcie_gb_per_s: 16.0,
            crash_untouch_fraction: 0.65,
            crash_min_evicted_factor: 4,
            footprint_pages,
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    /// Returns the first [`ConfigError`] found: a zero-frame pool, a
    /// non-positive link bandwidth, or a non-finite/negative crash
    /// fraction. (A fraction *above* 1.0 is legal — it disables crash
    /// detection, since untouch can never exceed evictions.)
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.capacity_pages == 0 {
            return Err(ConfigError::Zero {
                field: "capacity_pages",
            });
        }
        require_positive("pcie_gb_per_s", self.pcie_gb_per_s)?;
        if !self.crash_untouch_fraction.is_finite() || self.crash_untouch_fraction < 0.0 {
            return Err(ConfigError::NotPositive {
                field: "crash_untouch_fraction",
                value: self.crash_untouch_fraction,
            });
        }
        Ok(())
    }
}

/// How the driver responds to injected faults and sustained thrash.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Retries granted to a failing migration DMA before the plan is
    /// abandoned and the fault left for the warp to replay.
    pub max_transfer_retries: u32,
    /// Backoff before the first retry, in cycles; doubles per attempt.
    pub backoff_base_cycles: u64,
    /// Ceiling on a single backoff wait, in cycles.
    pub backoff_cap_cycles: u64,
    /// Walk the degradation ladder (throttle prefetch, then fall back to
    /// the baseline policy pair) before declaring a thrash crash. Off by
    /// default so the paper's Fig. 4 crash behaviour is untouched.
    pub degraded_mode: bool,
    /// Recovery rung: after this many consecutive batches with no
    /// thrash-detector trip, step one rung back up the ladder — re-arm
    /// the original policy pair first, then restore full prefetch
    /// aggressiveness. 0 (the default) disables recovery, so sheds are
    /// permanent as in the plain ladder.
    pub recovery_quiet_batches: u64,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            max_transfer_retries: 4,
            backoff_base_cycles: 2_000,
            backoff_cap_cycles: 64_000,
            degraded_mode: false,
            recovery_quiet_batches: 0,
        }
    }
}

impl ResilienceConfig {
    /// Default retry budget with the degradation ladder enabled.
    #[must_use]
    pub fn degraded() -> Self {
        ResilienceConfig {
            degraded_mode: true,
            ..ResilienceConfig::default()
        }
    }

    /// Degraded mode with the recovery rung armed: after `quiet`
    /// thrash-free batches the driver steps one rung back up.
    #[must_use]
    pub fn degraded_with_recovery(quiet: u64) -> Self {
        ResilienceConfig {
            recovery_quiet_batches: quiet,
            ..ResilienceConfig::degraded()
        }
    }
}

/// Exponential backoff before retry number `attempt` (1-based), bounded
/// by the configured cap.
fn backoff_cycles(r: &ResilienceConfig, attempt: u32) -> u64 {
    let shift = attempt.saturating_sub(1).min(20);
    r.backoff_base_cycles
        .saturating_mul(1u64 << shift)
        .min(r.backoff_cap_cycles)
}

/// Outcome of one batch service.
///
/// Far-fault service is *pipelined*: the host CPU processes the batch's
/// faults one after another (each fault adds `per_fault_cycles` after
/// the 20 µs base), while page transfers queue on the PCIe link and
/// complete per fault. A faulting warp replays as soon as *its* pages
/// arrive — it does not wait for the whole batch.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// When the host driver finishes processing the batch and can accept
    /// the next one.
    pub host_done: Cycle,
    /// Absolute time the whole batch completes (last transfer done).
    pub done_at: Cycle,
    /// Per distinct faulted page: when its migration (host processing +
    /// PCIe transfer of its plan) completes and the faulting warp may
    /// replay.
    pub completions: Vec<(VirtPage, Cycle)>,
    /// Pages that became resident.
    pub migrated: Vec<VirtPage>,
    /// Pages evicted to make room (the GPU-side caches invalidate these).
    pub evicted: Vec<VirtPage>,
    /// Faults this batch did *not* service: the tail cut off by an
    /// injected fault-queue overflow. The caller must re-queue them for
    /// the next batch.
    pub deferred: Vec<VirtPage>,
    /// Run died of thrash during this batch.
    pub crashed: bool,
}

/// Driver statistics beyond what the policy engine tracks.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriverStats {
    /// Batches serviced.
    pub batches: u64,
    /// Distinct faults serviced (duplicates within a batch collapse).
    pub faults_serviced: u64,
    /// Faults that were already resident on arrival (another fault in
    /// the same batch migrated them).
    pub coalesced_faults: u64,
    /// Migration DMA retries performed (injected transient failures).
    pub retries: u64,
    /// Cycles spent waiting out retry backoffs.
    pub retry_backoff_cycles: u64,
    /// Injected transfer failures observed (each retry or abort stems
    /// from one of these).
    pub injected_transfer_faults: u64,
    /// Migrations abandoned after the retry budget was spent.
    pub migrations_aborted: u64,
    /// Batches whose base latency was inflated by an injected spike.
    pub latency_spike_batches: u64,
    /// Batches split because the injected fault-queue depth overflowed.
    pub batch_splits: u64,
    /// Faults pushed to a later batch by splits.
    pub deferred_faults: u64,
    /// Degradation-ladder shed 1 activations (prefetch throttled).
    pub throttle_sheds: u64,
    /// Degradation-ladder shed 2 activations (policy fallback).
    pub policy_fallbacks: u64,
    /// Recovery-rung steps back up the ladder (quiet period elapsed).
    pub rung_recoveries: u64,
}

impl DriverStats {
    /// Counters under their stable telemetry names, in schema order.
    #[must_use]
    pub fn metrics(&self) -> [(&'static str, u64); 13] {
        [
            ("driver.batches", self.batches),
            ("driver.faults_serviced", self.faults_serviced),
            ("driver.coalesced_faults", self.coalesced_faults),
            ("driver.retries", self.retries),
            ("driver.retry_backoff_cycles", self.retry_backoff_cycles),
            (
                "driver.injected_transfer_faults",
                self.injected_transfer_faults,
            ),
            ("driver.migrations_aborted", self.migrations_aborted),
            ("driver.latency_spike_batches", self.latency_spike_batches),
            ("driver.batch_splits", self.batch_splits),
            ("driver.deferred_faults", self.deferred_faults),
            ("driver.throttle_sheds", self.throttle_sheds),
            ("driver.policy_fallbacks", self.policy_fallbacks),
            ("driver.rung_recoveries", self.rung_recoveries),
        ]
    }
}

/// The UVM driver.
pub struct UvmDriver {
    cfg: UvmConfig,
    engine: PolicyEngine,
    frames: FrameAllocator,
    pcie: PcieLink,
    injector: FaultInjector,
    resilience: ResilienceConfig,
    crashed: bool,
    /// Start time of the batch currently being serviced (evictions are
    /// charged to the link at this time).
    service_start: Cycle,
    /// Link bandwidth multiplier for the batch currently being serviced
    /// (1.0 outside injected degradation windows).
    service_bw: f64,
    /// Current degradation-ladder rung (0 = healthy, 1 = prefetch
    /// throttled, 2 = fallen back to the baseline policy pair). Recovery
    /// steps it back down after a quiet period.
    rung: u32,
    /// Did the ladder shed at least once, ever (survives recovery)?
    degraded_ever: bool,
    /// Consecutive batches since the last thrash-detector trip
    /// (recovery-rung clock).
    quiet_batches: u64,
    /// Thrash-detector baselines, reset at each rung transition so every
    /// rung gets a fresh window to prove itself.
    shed_base_evicted: u64,
    shed_base_untouch: u64,
    /// Telemetry recorder (inert unless armed via
    /// [`UvmDriver::set_tracer`]).
    tracer: Tracer,
    /// Span of the batch currently being serviced ([`SpanId::NONE`]
    /// outside `service_batch` or when tracing is off).
    batch_span: SpanId,
    /// Latest DMA completion charged by the current batch (eviction
    /// write-backs can land after the last migration).
    batch_dma_end: Cycle,
    /// Reusable [`BatchResult`] buffers, refilled by
    /// [`UvmDriver::recycle`]: once they reach their high-water marks,
    /// steady-state batch service allocates nothing.
    scratch_migrated: Vec<VirtPage>,
    scratch_evicted: Vec<VirtPage>,
    scratch_completions: Vec<(VirtPage, Cycle)>,
    scratch_deferred: Vec<VirtPage>,
    /// Reusable per-batch pinned-chunk set.
    pinned_buf: FxHashSet<gmmu::types::ChunkId>,
    /// Reusable per-fault prefetch-plan buffer.
    plan_buf: Vec<VirtPage>,
    /// Batches whose scratch buffers came back warm from
    /// [`UvmDriver::recycle`] (capacity already reserved).
    scratch_recycled: u64,
    /// Batches that started with cold scratch (first batch, or a
    /// result the caller dropped instead of recycling).
    scratch_fresh: u64,
    /// Driver-level counters.
    pub stats: DriverStats,
}

impl UvmDriver {
    /// Build a driver around a policy engine. No fault injection,
    /// default resilience.
    ///
    /// # Errors
    /// Returns [`UvmError::Config`] when `cfg` fails validation.
    pub fn try_new(cfg: UvmConfig, engine: PolicyEngine) -> Result<Self, UvmError> {
        UvmDriver::with_injection(
            cfg,
            engine,
            FaultInjector::disabled(),
            ResilienceConfig::default(),
        )
    }

    /// Build a driver around a policy engine. Convenience wrapper over
    /// [`UvmDriver::try_new`].
    ///
    /// # Panics
    /// Panics when `cfg` fails validation.
    #[must_use]
    pub fn new(cfg: UvmConfig, engine: PolicyEngine) -> Self {
        UvmDriver::try_new(cfg, engine).expect("invalid UVM configuration")
    }

    /// Build a driver with a fault injector and resilience settings.
    ///
    /// # Errors
    /// Returns [`UvmError::Config`] when `cfg` fails validation.
    pub fn with_injection(
        cfg: UvmConfig,
        engine: PolicyEngine,
        injector: FaultInjector,
        resilience: ResilienceConfig,
    ) -> Result<Self, UvmError> {
        cfg.validate()?;
        Ok(UvmDriver {
            frames: FrameAllocator::try_new(cfg.capacity_pages)?,
            pcie: PcieLink::try_new(cfg.pcie_gb_per_s)?,
            injector,
            resilience,
            cfg,
            engine,
            crashed: false,
            service_start: Cycle::ZERO,
            service_bw: 1.0,
            rung: 0,
            degraded_ever: false,
            quiet_batches: 0,
            shed_base_evicted: 0,
            shed_base_untouch: 0,
            tracer: Tracer::disabled(),
            batch_span: SpanId::NONE,
            batch_dma_end: Cycle::ZERO,
            scratch_migrated: Vec::new(),
            scratch_evicted: Vec::new(),
            scratch_completions: Vec::new(),
            scratch_deferred: Vec::new(),
            pinned_buf: FxHashSet::default(),
            plan_buf: Vec::new(),
            scratch_recycled: 0,
            scratch_fresh: 0,
            stats: DriverStats::default(),
        })
    }

    /// The policy engine (counters, chain, overhead snapshot).
    #[must_use]
    pub fn engine(&self) -> &PolicyEngine {
        &self.engine
    }

    /// Mutable engine access (harness-side policy introspection).
    pub fn engine_mut(&mut self) -> &mut PolicyEngine {
        &mut self.engine
    }

    /// The PCIe link (traffic counters).
    #[must_use]
    pub fn pcie(&self) -> &PcieLink {
        &self.pcie
    }

    /// Free frames right now.
    #[must_use]
    pub fn free_frames(&self) -> u32 {
        self.frames.free()
    }

    /// Has the run crashed from thrash?
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Has the degradation ladder shed at least once (even if recovery
    /// later re-armed the full policy stack)?
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.degraded_ever
    }

    /// Current degradation-ladder rung (0–2; recovery steps back down).
    #[must_use]
    pub fn sheds(&self) -> u32 {
        self.rung
    }

    /// Arm the driver with a telemetry tracer (typed events plus one
    /// metrics epoch per serviced batch).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Take the recorded telemetry out of the driver (`None` when
    /// tracing was off).
    pub fn take_telemetry(&mut self) -> Option<RunTelemetry> {
        std::mem::take(&mut self.tracer).finish()
    }

    /// Mutable access to the driver-owned tracer: the simulator records
    /// its lane-side fault-lifecycle spans through the same recorder so
    /// one run yields one coherent span set.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Injection-side counters (what the injector actually fired).
    #[must_use]
    pub fn injector_stats(&self) -> InjectionStats {
        self.injector.stats()
    }

    /// The resilience settings in effect.
    #[must_use]
    pub fn resilience(&self) -> &ResilienceConfig {
        &self.resilience
    }

    /// Evict one policy-selected chunk, releasing its frames. Returns
    /// false when no victim is available (empty chain).
    fn evict_one(
        &mut self,
        xlat: &mut TranslationPath,
        evicted: &mut Vec<VirtPage>,
        pinned: &FxHashSet<gmmu::types::ChunkId>,
    ) -> bool {
        self.engine.note_memory_full();
        // Audit provenance: preview the candidate window *before*
        // selection — selection itself mutates policy state (CLOCK's
        // hand, RRIP aging, the random draw), so the preview must come
        // first to describe the choice the policy actually faced.
        let candidates = self
            .tracer
            .audit_enabled()
            .then(|| self.engine.victim_candidates(pinned, AUDIT_CANDIDATES));
        let Some(victim) = self.engine.select_victim(pinned) else {
            return false;
        };
        if let Some(cands) = candidates {
            let policy = self.engine.evict_name();
            let rung = self.rung;
            self.tracer
                .decision(self.service_start.0, || DecisionEvent {
                    kind: DecisionKind::Eviction,
                    policy,
                    origin: "capacity",
                    rung,
                    chosen: victim.0,
                    pages: cands.into_iter().map(|c| c.0).collect(),
                });
        }
        let mut touch = TouchVec::empty();
        let mut resident = 0u32;
        for page in victim.pages() {
            if xlat.page_table().is_resident(page) {
                let (frame, touched) = xlat.unmap_and_invalidate(page);
                self.frames.release(frame);
                if touched {
                    touch.set(page.index_in_chunk());
                }
                evicted.push(page);
                resident += 1;
            }
        }
        // Evicted pages travel back over the device→host lane. We treat
        // every page as dirty: unified-memory migration moves data, and
        // the paper's thrashing metric is eviction traffic.
        let d2h_start = self.pcie.d2h_free_at().max(self.service_start);
        let d2h_done =
            self.pcie
                .transfer_d2h_at(u64::from(resident), self.service_start, self.service_bw);
        if self.tracer.enabled() && resident > 0 {
            self.tracer.span(
                SpanStage::EvictionDma,
                d2h_start.0,
                d2h_done.0,
                self.batch_span,
                u16::MAX,
                u32::MAX,
                victim.0,
            );
            self.batch_dma_end = self.batch_dma_end.max(d2h_done);
        }
        let untouch = resident.saturating_sub(touch.count_touched());
        self.tracer
            .emit(self.service_start.0, || TraceEvent::Eviction {
                chunk: victim.0,
                resident,
                untouch,
            });
        self.engine.note_evicted(victim, touch, resident);
        true
    }

    /// Service a batch of far faults arriving at `now`.
    ///
    /// Duplicate pages within the batch (or pages migrated by an
    /// earlier fault of the same batch) are coalesced. Returns the batch
    /// completion time and the pages made resident.
    ///
    /// # Errors
    /// Returns [`UvmError::FramesExhausted`] if the frame pool runs dry
    /// mid-plan — an internal accounting breach the eviction loop is
    /// supposed to make impossible, reported instead of panicking.
    pub fn service_batch(
        &mut self,
        faults: &[VirtPage],
        now: Cycle,
        xlat: &mut TranslationPath,
    ) -> Result<BatchResult, UvmError> {
        let batch_seq = self.stats.batches;
        self.stats.batches += 1;
        self.service_start = now;
        self.batch_dma_end = now;
        self.batch_span = self.tracer.span_open(
            SpanStage::DriverBatch,
            now.0,
            SpanId::NONE,
            u16::MAX,
            u32::MAX,
            batch_seq,
        );
        let arrived = faults.len() as u32;
        // Perturbations for this batch: link bandwidth multiplier
        // (square wave of the current cycle) and queue overflow. A
        // disabled injector yields 1.0 / unlimited and draws no RNG.
        self.service_bw = self.injector.bandwidth_factor(now);
        let mut deferred = std::mem::take(&mut self.scratch_deferred);
        deferred.clear();
        let faults = match self.injector.queue_depth() {
            Some(depth) if faults.len() > depth => {
                self.stats.batch_splits += 1;
                let cut = (faults.len() - depth) as u64;
                self.stats.deferred_faults += cut;
                self.tracer.emit(now.0, || TraceEvent::InjectedFault {
                    kind: InjectedFaultKind::QueueOverflow {
                        deferred: cut as u32,
                    },
                });
                deferred.extend_from_slice(&faults[depth..]);
                &faults[..depth]
            }
            _ => faults,
        };
        let mut base_cycles = self.cfg.fault_base_cycles;
        let spike = self.injector.batch_latency_factor();
        if spike > 1.0 {
            self.stats.latency_spike_batches += 1;
            base_cycles = (base_cycles as f64 * spike).round() as u64;
            self.tracer.emit(now.0, || TraceEvent::InjectedFault {
                kind: InjectedFaultKind::LatencySpike,
            });
        }

        // Reuse accounting for the host profiler: a warm batch starts
        // with recycled capacity in every scratch buffer.
        if self.scratch_migrated.capacity() > 0 {
            self.scratch_recycled += 1;
        } else {
            self.scratch_fresh += 1;
        }
        let mut migrated = std::mem::take(&mut self.scratch_migrated);
        migrated.clear();
        let mut evicted = std::mem::take(&mut self.scratch_evicted);
        evicted.clear();
        let mut completions = std::mem::take(&mut self.scratch_completions);
        completions.clear();
        // Chunks whose migration this batch has planned or performed:
        // pinned against eviction for the duration of the batch.
        let mut pinned = std::mem::take(&mut self.pinned_buf);
        pinned.clear();
        // Per-fault prefetch plan, reused across the batch.
        let mut plan = std::mem::take(&mut self.plan_buf);
        let mut distinct = 0u64;
        let mut coalesced = 0u32;
        // Host-side processing cursor: the 20 µs far-fault round trip,
        // then per-fault handling time, serialized on the host CPU.
        let mut host_cursor = now.after(base_cycles);

        for &fault in faults {
            if xlat.page_table().is_resident(fault) {
                self.stats.coalesced_faults += 1;
                coalesced += 1;
                // Migrated by an earlier fault of this batch (or already
                // in flight): ready once the host reaches it.
                completions.push((fault, host_cursor));
                continue;
            }
            distinct += 1;
            self.stats.faults_serviced += 1;
            if distinct > 1 {
                host_cursor = host_cursor.after(self.cfg.per_fault_cycles);
            }
            self.tracer
                .emit(host_cursor.0, || TraceEvent::FarFault { page: fault.0 });

            // Draw this migration's DMA fate *before* any state changes:
            // injected transient failures cost one backoff each (bounded
            // exponential), and once the retry budget is spent the plan
            // is abandoned. Because nothing was pinned, evicted or
            // mapped yet, an abort needs no rollback — the warp replays
            // at the backoff end, re-faults on the still-non-resident
            // page, and the next batch retries the migration afresh.
            let mut attempts = 1u32;
            let mut backoff = 0u64;
            let mut abort = false;
            while self.injector.transfer_fails() {
                self.stats.injected_transfer_faults += 1;
                self.tracer
                    .emit(host_cursor.0, || TraceEvent::InjectedFault {
                        kind: InjectedFaultKind::TransferFailure,
                    });
                if attempts > self.resilience.max_transfer_retries {
                    abort = true;
                    break;
                }
                let wait = backoff_cycles(&self.resilience, attempts);
                backoff += wait;
                self.stats.retries += 1;
                let attempt = attempts;
                self.tracer.emit(host_cursor.0, || TraceEvent::DmaRetry {
                    page: fault.0,
                    attempt,
                    backoff_cycles: wait,
                });
                attempts += 1;
            }
            if backoff > 0 {
                self.stats.retry_backoff_cycles += backoff;
                let backoff_start = host_cursor;
                host_cursor = host_cursor.after(backoff);
                self.tracer.span(
                    SpanStage::RetryBackoff,
                    backoff_start.0,
                    host_cursor.0,
                    self.batch_span,
                    u16::MAX,
                    u32::MAX,
                    fault.0,
                );
            }
            if abort {
                self.stats.migrations_aborted += 1;
                self.tracer.emit(host_cursor.0, || TraceEvent::DmaAbort {
                    page: fault.0,
                    attempts,
                });
                completions.push((fault, host_cursor));
                continue;
            }

            // "Memory full" is visible to the prefetcher before planning:
            // less than one chunk of headroom counts as full, which is
            // when disable-on-full strategies stop prefetching.
            if u64::from(self.frames.free()) < PAGES_PER_CHUNK {
                self.engine.note_memory_full();
            }
            self.engine.note_fault(fault);
            self.engine
                .plan_prefetch_into(fault, xlat.page_table(), &mut plan);

            // A plan can never exceed the whole device memory; truncate
            // oversized plans but always keep the faulted page.
            let cap = self.frames.capacity() as usize;
            if plan.len() > cap {
                plan.retain(|&p| p != fault);
                plan.truncate(cap - 1);
                plan.push(fault);
                plan.sort_unstable_by_key(|p| p.0);
            }

            let planned = plan.len() as u32;
            self.tracer
                .emit(host_cursor.0, || TraceEvent::PrefetchDecision {
                    page: fault.0,
                    planned,
                });

            for &p in &plan {
                pinned.insert(p.chunk());
            }

            // Make room.
            while (self.frames.free() as usize) < plan.len() {
                if !self.evict_one(xlat, &mut evicted, &pinned) {
                    // Chain exhausted (pathological): shrink the plan to
                    // whatever fits, keeping the faulted page.
                    let free = self.frames.free() as usize;
                    plan.retain(|&p| p != fault);
                    plan.truncate(free.saturating_sub(1));
                    plan.push(fault);
                    plan.sort_unstable_by_key(|p| p.0);
                    break;
                }
            }

            // Audit provenance: the final plan (post cap-truncation and
            // any chain-exhausted shrink) with the strategy branch that
            // produced it. These are exactly the pages mapped below, so
            // the ledger can replay residency from the decision stream.
            if self.tracer.audit_enabled() {
                let policy = self.engine.prefetch_name();
                let origin = self.engine.plan_origin();
                let rung = self.rung;
                let pages: Vec<u64> = plan.iter().map(|p| p.0).collect();
                self.tracer.decision(host_cursor.0, || DecisionEvent {
                    kind: DecisionKind::Prefetch,
                    policy,
                    origin,
                    rung,
                    chosen: fault.0,
                    pages,
                });
            }

            // Map, grouped by chunk for the policy notifications.
            let mut i = 0;
            while i < plan.len() {
                let chunk = plan[i].chunk();
                let mut n = 0u32;
                let mut demand = false;
                while i < plan.len() && plan[i].chunk() == chunk {
                    let Some(frame) = self.frames.alloc() else {
                        return Err(UvmError::FramesExhausted {
                            requested: plan.len() - i,
                            free: self.frames.free(),
                        });
                    };
                    let is_fault = plan[i] == fault;
                    xlat.map(plan[i], frame, is_fault);
                    demand |= is_fault;
                    n += 1;
                    i += 1;
                }
                self.engine.note_migrated(chunk, n, demand);
            }
            let h2d_start = self.pcie.h2d_free_at().max(now);
            let transfer_done = self
                .pcie
                .transfer_h2d_at(plan.len() as u64, now, self.service_bw);
            if self.tracer.enabled() {
                self.tracer.span(
                    SpanStage::PcieTransfer,
                    h2d_start.0,
                    transfer_done.0,
                    self.batch_span,
                    u16::MAX,
                    u32::MAX,
                    fault.0,
                );
                self.batch_dma_end = self.batch_dma_end.max(transfer_done);
            }
            let pages = plan.len() as u32;
            self.tracer.emit(now.0, || TraceEvent::MigrationDma {
                page: fault.0,
                pages,
                done_cycle: transfer_done.0,
            });
            completions.push((fault, host_cursor.max(transfer_done)));
            migrated.extend_from_slice(&plan);
        }

        let host_done = host_cursor;
        let done_at = completions
            .iter()
            .map(|&(_, t)| t)
            .max()
            .unwrap_or(host_done)
            .max(host_done);

        self.check_thrash(now);

        self.tracer.emit(now.0, || TraceEvent::BatchServiced {
            batch: batch_seq,
            arrived,
            distinct: distinct as u32,
            coalesced,
            host_done_cycle: host_done.0,
            done_cycle: done_at.0,
        });
        if self.tracer.enabled() {
            self.tracer.span(
                SpanStage::HostService,
                now.0,
                host_done.0,
                self.batch_span,
                u16::MAX,
                u32::MAX,
                batch_seq,
            );
            let batch_end = done_at.max(self.batch_dma_end);
            self.tracer.span_close(self.batch_span, batch_end.0);
            self.batch_span = SpanId::NONE;
        }
        self.record_epoch(now);

        self.pinned_buf = pinned;
        self.plan_buf = plan;

        Ok(BatchResult {
            host_done,
            done_at,
            completions,
            migrated,
            evicted,
            deferred,
            crashed: self.crashed,
        })
    }

    /// Return a consumed [`BatchResult`]'s buffers to the driver's
    /// scratch pool, making the next [`UvmDriver::service_batch`]
    /// allocation-free. Purely an optimisation: callers that drop
    /// results instead simply pay fresh allocations next batch.
    pub fn recycle(&mut self, r: BatchResult) {
        self.scratch_migrated = r.migrated;
        self.scratch_evicted = r.evicted;
        self.scratch_completions = r.completions;
        self.scratch_deferred = r.deferred;
    }

    /// `(recycled, fresh)`: batches that started with warm recycled
    /// scratch vs batches that had to allocate. The host profiler
    /// reports the ratio as the zero-alloc path's reuse hit rate.
    #[must_use]
    pub fn scratch_stats(&self) -> (u64, u64) {
        (self.scratch_recycled, self.scratch_fresh)
    }

    /// Thrash-death detection (Fig. 4: MVT/BIC die in the baseline): the
    /// detector trips when eviction traffic since the last ladder shed
    /// is both *large* (it arms only past a footprint multiple) and
    /// *mostly useless* (a high fraction of evicted pages was never
    /// touched). Tripping crashes the run — unless `degraded_mode` is
    /// on, in which case the driver first throttles prefetch, then falls
    /// back to the baseline policy pair, and only crashes if wasteful
    /// thrash persists past both sheds. Each shed resets the detector's
    /// baselines so the new rung is judged on fresh traffic.
    ///
    /// Disabled when `crash_min_evicted_factor` is 0, when the footprint
    /// is 0 (nothing to thrash against), or effectively when
    /// `crash_untouch_fraction > 1.0` (untouch never exceeds evictions).
    fn check_thrash(&mut self, now: Cycle) {
        if self.cfg.crash_min_evicted_factor == 0 || self.cfg.footprint_pages == 0 {
            return;
        }
        let st = self.engine.stats;
        let evicted = st.pages_evicted - self.shed_base_evicted;
        let untouch = st.total_untouch - self.shed_base_untouch;
        let armed = evicted > self.cfg.crash_min_evicted_factor * self.cfg.footprint_pages;
        let wasteful = (untouch as f64) > self.cfg.crash_untouch_fraction * evicted as f64;
        if !(armed && wasteful) {
            self.try_recover(now);
            return;
        }
        self.quiet_batches = 0;
        if !self.resilience.degraded_mode {
            self.crashed = true;
            return;
        }
        match self.rung {
            0 => {
                self.engine.shed_prefetch();
                self.stats.throttle_sheds += 1;
            }
            1 => {
                self.engine.fallback_to_baseline();
                self.stats.policy_fallbacks += 1;
            }
            _ => {
                self.crashed = true;
                return;
            }
        }
        let from = self.rung;
        self.rung += 1;
        self.degraded_ever = true;
        let to = self.rung;
        self.tracer
            .emit(now.0, || TraceEvent::RungTransition { from, to });
        self.shed_base_evicted = st.pages_evicted;
        self.shed_base_untouch = st.total_untouch;
    }

    /// Recovery rung: a batch passed without a thrash trip. Once
    /// `recovery_quiet_batches` consecutive quiet batches accumulate,
    /// step one rung back up the ladder — from the policy fallback to
    /// "originals re-armed but prefetch still throttled", then from the
    /// throttle to full aggressiveness — and give the detector a fresh
    /// baseline window. Disabled when the quiet period is 0.
    fn try_recover(&mut self, now: Cycle) {
        if self.rung == 0 || self.resilience.recovery_quiet_batches == 0 {
            return;
        }
        self.quiet_batches += 1;
        if self.quiet_batches < self.resilience.recovery_quiet_batches {
            return;
        }
        self.quiet_batches = 0;
        let from = self.rung;
        if self.rung == 2 {
            // Re-arm the original policy pair but keep prefetch
            // throttled: recovery retraces the ladder one rung at a
            // time rather than jumping straight back to full throttle.
            self.engine.restore_policies();
            self.engine.shed_prefetch();
        } else {
            self.engine.restore_prefetch();
        }
        self.rung -= 1;
        self.stats.rung_recoveries += 1;
        let to = self.rung;
        self.tracer
            .emit(now.0, || TraceEvent::RungTransition { from, to });
        let st = self.engine.stats;
        self.shed_base_evicted = st.pages_evicted;
        self.shed_base_untouch = st.total_untouch;
    }

    /// Snapshot every metric as one telemetry epoch at `now` (no-op when
    /// tracing is off). One epoch per serviced batch: nothing mutates
    /// driver or engine counters outside `service_batch`, so batch
    /// granularity loses nothing.
    fn record_epoch(&mut self, now: Cycle) {
        if !self.tracer.enabled() {
            return;
        }
        let mut m: Vec<(&'static str, MetricKind, u64)> = Vec::with_capacity(30);
        for (n, v) in self.engine.stats.metrics() {
            m.push((n, MetricKind::Counter, v));
        }
        m.push((
            "cppe.wrong_evictions",
            MetricKind::Counter,
            self.engine.wrong_evictions(),
        ));
        for (n, v) in self.stats.metrics() {
            m.push((n, MetricKind::Counter, v));
        }
        for (n, v) in self.injector.stats().metrics() {
            m.push((n, MetricKind::Counter, v));
        }
        m.push(("pcie.bytes_h2d", MetricKind::Counter, self.pcie.bytes_h2d));
        m.push(("pcie.bytes_d2h", MetricKind::Counter, self.pcie.bytes_d2h));
        let free = u64::from(self.frames.free());
        let resident = u64::from(self.frames.capacity()) - free;
        m.push(("mem.resident_pages", MetricKind::Gauge, resident));
        m.push(("mem.free_frames", MetricKind::Gauge, free));
        m.push((
            "cppe.chain_len",
            MetricKind::Gauge,
            self.engine.chain().len() as u64,
        ));
        m.push((
            "cppe.prefetch_throttle",
            MetricKind::Gauge,
            u64::from(self.engine.prefetch_throttle()),
        ));
        m.push(("driver.rung", MetricKind::Gauge, u64::from(self.rung)));
        self.tracer.sample_epoch(now.0, m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cppe::presets::PolicyPreset;
    use gmmu::translation::TranslationConfig;

    fn setup(capacity: u32, preset: PolicyPreset) -> (UvmDriver, TranslationPath) {
        let cfg = UvmConfig::table1(capacity, 1024);
        let driver = UvmDriver::new(cfg, preset.build(7));
        let xlat = TranslationPath::new(&TranslationConfig::default());
        (driver, xlat)
    }

    #[test]
    fn single_fault_migrates_whole_chunk() {
        let (mut d, mut xlat) = setup(256, PolicyPreset::Baseline);
        let r = d
            .service_batch(&[VirtPage(5)], Cycle::ZERO, &mut xlat)
            .unwrap();
        assert_eq!(r.migrated.len(), 16);
        assert!(xlat.page_table().is_resident(VirtPage(5)));
        assert!(xlat.page_table().is_resident(VirtPage(0)));
        assert!(!xlat.page_table().is_resident(VirtPage(16)));
        assert_eq!(d.free_frames(), 240);
        // Faulted page is touched, prefetched neighbours are not.
        assert!(xlat.page_table().is_touched(VirtPage(5)));
        assert!(!xlat.page_table().is_touched(VirtPage(0)));
        assert!(!r.crashed);
    }

    #[test]
    fn batch_timing_includes_fault_base_and_pcie() {
        let (mut d, mut xlat) = setup(256, PolicyPreset::Baseline);
        let r = d
            .service_batch(&[VirtPage(5)], Cycle::ZERO, &mut xlat)
            .unwrap();
        // Host: 28 000; PCIe h2d of 16 pages: 5 735 — host dominates.
        assert_eq!(r.done_at, Cycle(28_000));
    }

    #[test]
    fn extra_faults_add_per_fault_cost() {
        let (mut d, mut xlat) = setup(1024, PolicyPreset::Baseline);
        let r = d
            .service_batch(
                &[VirtPage(0), VirtPage(100), VirtPage(200)],
                Cycle::ZERO,
                &mut xlat,
            )
            .unwrap();
        // 3 distinct faults → host 28 000 + 2 × 7 000 = 42 000 > PCIe.
        assert_eq!(r.host_done, Cycle(42_000));
        assert_eq!(r.done_at, Cycle(42_000));
        assert_eq!(r.migrated.len(), 48);
    }

    #[test]
    fn duplicate_faults_coalesce() {
        let (mut d, mut xlat) = setup(256, PolicyPreset::Baseline);
        let r = d
            .service_batch(
                &[VirtPage(5), VirtPage(6), VirtPage(5)],
                Cycle::ZERO,
                &mut xlat,
            )
            .unwrap();
        // First fault migrates the chunk; the other two are resident.
        assert_eq!(r.migrated.len(), 16);
        assert_eq!(d.stats.faults_serviced, 1);
        assert_eq!(d.stats.coalesced_faults, 2);
    }

    #[test]
    fn eviction_when_memory_full() {
        // Capacity = 2 chunks. Fill both, then fault a third.
        let (mut d, mut xlat) = setup(32, PolicyPreset::Baseline);
        d.service_batch(&[VirtPage(0)], Cycle::ZERO, &mut xlat)
            .unwrap();
        d.service_batch(&[VirtPage(16)], Cycle(100_000), &mut xlat)
            .unwrap();
        assert_eq!(d.free_frames(), 0);
        let r = d
            .service_batch(&[VirtPage(32)], Cycle(200_000), &mut xlat)
            .unwrap();
        assert_eq!(r.migrated.len(), 16);
        // LRU evicted chunk 0.
        assert!(!xlat.page_table().is_resident(VirtPage(0)));
        assert!(xlat.page_table().is_resident(VirtPage(16)));
        assert!(xlat.page_table().is_resident(VirtPage(32)));
        assert_eq!(d.engine().stats.chunk_evictions, 1);
        assert_eq!(d.engine().stats.pages_evicted, 16);
    }

    #[test]
    fn eviction_reads_touch_bits_into_pattern() {
        // CPPE end-to-end: touch a stride-2 subset, evict, re-fault →
        // only the pattern pages migrate.
        let (mut d, mut xlat) = setup(32, PolicyPreset::Cppe);
        d.service_batch(&[VirtPage(0)], Cycle::ZERO, &mut xlat)
            .unwrap();
        for p in (0..16u64).step_by(2) {
            xlat.mark_touched(VirtPage(p));
        }
        d.service_batch(&[VirtPage(16)], Cycle(100_000), &mut xlat)
            .unwrap();
        // Memory full → fault on chunk 2 evicts chunk 0 (old partition
        // fallback) and records its pattern.
        d.service_batch(&[VirtPage(32)], Cycle(200_000), &mut xlat)
            .unwrap();
        assert!(!xlat.page_table().is_resident(VirtPage(0)));
        // Fault back on page 0 (matches pattern): only 8 pages migrate.
        let r = d
            .service_batch(&[VirtPage(0)], Cycle(300_000), &mut xlat)
            .unwrap();
        assert_eq!(r.migrated.len(), 8, "pattern-aware partial migration");
        assert!(r.migrated.iter().all(|p| p.0 % 2 == 0));
    }

    #[test]
    fn disable_on_full_migrates_single_pages() {
        let (mut d, mut xlat) = setup(32, PolicyPreset::DisablePfOnFull);
        d.service_batch(&[VirtPage(0)], Cycle::ZERO, &mut xlat)
            .unwrap();
        d.service_batch(&[VirtPage(16)], Cycle(100_000), &mut xlat)
            .unwrap();
        let r = d
            .service_batch(&[VirtPage(32)], Cycle(200_000), &mut xlat)
            .unwrap();
        assert_eq!(r.migrated, vec![VirtPage(32)]);
    }

    #[test]
    fn crash_detection_fires_on_wasteful_thrash() {
        let cfg = UvmConfig {
            crash_untouch_fraction: 0.65,
            crash_min_evicted_factor: 1,
            footprint_pages: 48,
            ..UvmConfig::table1(32, 48)
        };
        let mut d = UvmDriver::new(cfg, PolicyPreset::Baseline.build(0));
        let mut xlat = TranslationPath::new(&TranslationConfig::default());
        // Cycle faults over 3 chunks with capacity 2 and never touch the
        // prefetched pages: every evicted chunk is 15/16 untouched, so
        // once the volume arms the detector the run must crash.
        let mut t = 0u64;
        let mut crashed = false;
        for round in 0..64 {
            let page = VirtPage((round % 3) * 16);
            if xlat.page_table().is_resident(page) {
                continue;
            }
            let r = d.service_batch(&[page], Cycle(t), &mut xlat).unwrap();
            t = r.done_at.0 + 1000;
            if r.crashed {
                crashed = true;
                break;
            }
        }
        assert!(crashed, "wasteful thrash must trip the crash detector");
    }

    #[test]
    fn useful_thrash_does_not_crash() {
        let cfg = UvmConfig {
            crash_untouch_fraction: 0.65,
            crash_min_evicted_factor: 1,
            footprint_pages: 48,
            ..UvmConfig::table1(32, 48)
        };
        let mut d = UvmDriver::new(cfg, PolicyPreset::Baseline.build(0));
        let mut xlat = TranslationPath::new(&TranslationConfig::default());
        // Same cyclic fault loop, but every resident page is touched
        // before eviction: untouch fraction stays 0 → no crash, matching
        // SRD-style dense thrash that completes in the paper.
        let mut t = 0u64;
        for round in 0..64u64 {
            let page = VirtPage((round % 3) * 16);
            if xlat.page_table().is_resident(page) {
                continue;
            }
            let r = d.service_batch(&[page], Cycle(t), &mut xlat).unwrap();
            for p in r.migrated {
                xlat.mark_touched(p);
            }
            t = r.done_at.0 + 1000;
            assert!(!r.crashed, "dense thrash must not crash (round {round})");
        }
    }

    #[test]
    fn pcie_traffic_accounted() {
        let (mut d, mut xlat) = setup(32, PolicyPreset::Baseline);
        d.service_batch(&[VirtPage(0)], Cycle::ZERO, &mut xlat)
            .unwrap();
        d.service_batch(&[VirtPage(16)], Cycle(100_000), &mut xlat)
            .unwrap();
        d.service_batch(&[VirtPage(32)], Cycle(200_000), &mut xlat)
            .unwrap();
        assert_eq!(d.pcie().bytes_h2d, 3 * 16 * 4096);
        assert_eq!(d.pcie().bytes_d2h, 16 * 4096);
    }

    /// Drive the 3-chunk cyclic wasteful-thrash loop against a 2-chunk
    /// memory; prefetched pages are never touched, so every eviction is
    /// 15/16 untouched. Returns whether the run crashed.
    fn wasteful_thrash(d: &mut UvmDriver, rounds: u64, chunks: u64) -> bool {
        let mut xlat = TranslationPath::new(&TranslationConfig::default());
        let mut t = 0u64;
        for round in 0..rounds {
            let page = VirtPage((round % chunks) * 16);
            if xlat.page_table().is_resident(page) {
                continue;
            }
            let r = d.service_batch(&[page], Cycle(t), &mut xlat).unwrap();
            t = r.done_at.0 + 1000;
            if r.crashed {
                return true;
            }
        }
        false
    }

    #[test]
    fn crash_detection_disabled_by_fraction_above_one() {
        // untouch can never exceed evictions, so a fraction > 1.0 turns
        // the detector off even under maximally wasteful thrash.
        let cfg = UvmConfig {
            crash_untouch_fraction: 1.5,
            crash_min_evicted_factor: 1,
            footprint_pages: 48,
            ..UvmConfig::table1(32, 48)
        };
        let mut d = UvmDriver::new(cfg, PolicyPreset::Baseline.build(0));
        assert!(!wasteful_thrash(&mut d, 64, 3));
        assert!(!d.crashed());
    }

    #[test]
    fn crash_detection_disabled_by_zero_factor() {
        let cfg = UvmConfig {
            crash_untouch_fraction: 0.65,
            crash_min_evicted_factor: 0,
            footprint_pages: 48,
            ..UvmConfig::table1(32, 48)
        };
        let mut d = UvmDriver::new(cfg, PolicyPreset::Baseline.build(0));
        assert!(!wasteful_thrash(&mut d, 64, 3));
    }

    #[test]
    fn zero_footprint_disables_detection() {
        // footprint = 0 would make the arming threshold 0 (any eviction
        // arms); the detector treats it as "nothing to thrash against"
        // and stays off — and never divides by a zero footprint.
        let cfg = UvmConfig {
            crash_untouch_fraction: 0.65,
            crash_min_evicted_factor: 1,
            footprint_pages: 0,
            ..UvmConfig::table1(32, 0)
        };
        let mut d = UvmDriver::new(cfg, PolicyPreset::Baseline.build(0));
        assert!(!wasteful_thrash(&mut d, 64, 3));
    }

    #[test]
    fn invalid_config_reports_typed_error() {
        let good = UvmConfig::table1(32, 48);
        assert!(good.validate().is_ok());
        let e = UvmConfig {
            capacity_pages: 0,
            ..good
        };
        assert!(UvmDriver::try_new(e, PolicyPreset::Baseline.build(0)).is_err());
        let e = UvmConfig {
            pcie_gb_per_s: 0.0,
            ..good
        };
        assert!(matches!(
            UvmDriver::try_new(e, PolicyPreset::Baseline.build(0)),
            Err(UvmError::Config(_))
        ));
        let e = UvmConfig {
            crash_untouch_fraction: f64::NAN,
            ..good
        };
        assert!(e.validate().is_err());
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let r = ResilienceConfig::default();
        assert_eq!(backoff_cycles(&r, 1), 2_000);
        assert_eq!(backoff_cycles(&r, 2), 4_000);
        assert_eq!(backoff_cycles(&r, 3), 8_000);
        assert_eq!(backoff_cycles(&r, 6), 64_000, "hits the cap");
        assert_eq!(backoff_cycles(&r, 60), 64_000, "huge attempt: no overflow");
    }

    #[test]
    fn transient_failures_retry_with_backoff() {
        use sim_core::fault::InjectionConfig;
        let cfg = UvmConfig::table1(256, 1024);
        let inj = FaultInjector::new(InjectionConfig::transient_failures(9, 0.4));
        let mut d = UvmDriver::with_injection(
            cfg,
            PolicyPreset::Baseline.build(7),
            inj,
            ResilienceConfig::default(),
        )
        .unwrap();
        let mut xlat = TranslationPath::new(&TranslationConfig::default());
        let mut t = 0u64;
        for i in 0..12u64 {
            let r = d
                .service_batch(&[VirtPage(i * 16)], Cycle(t), &mut xlat)
                .unwrap();
            t = r.done_at.0 + 1000;
        }
        assert!(d.stats.retries > 0, "40% failure rate must force retries");
        assert!(d.stats.retry_backoff_cycles > 0);
        assert!(d.injector_stats().transfer_failures >= d.stats.retries);
        // Every fault still completed: retries are transparent.
        assert_eq!(d.stats.faults_serviced, 12);
        assert_eq!(d.stats.migrations_aborted, 0, "budget of 4 always enough");
    }

    #[test]
    fn exhausted_retries_abort_without_mutation() {
        use sim_core::fault::InjectionConfig;
        let cfg = UvmConfig::table1(256, 1024);
        let inj = FaultInjector::new(InjectionConfig::transient_failures(3, 0.9));
        let mut d = UvmDriver::with_injection(
            cfg,
            PolicyPreset::Baseline.build(7),
            inj,
            ResilienceConfig {
                max_transfer_retries: 0, // first failure aborts
                ..ResilienceConfig::default()
            },
        )
        .unwrap();
        let mut xlat = TranslationPath::new(&TranslationConfig::default());
        let mut t = 0u64;
        let mut saw_abort = false;
        for i in 0..16u64 {
            let free_before = d.free_frames();
            let faults_before = d.engine().stats.faults;
            let page = VirtPage(i * 16);
            let r = d.service_batch(&[page], Cycle(t), &mut xlat).unwrap();
            t = r.done_at.0 + 1000;
            if r.migrated.is_empty() {
                saw_abort = true;
                // Abort-before-mutation: nothing pinned, mapped or
                // evicted, the policy never saw the fault, and the warp
                // got a completion time to replay at.
                assert!(!xlat.page_table().is_resident(page));
                assert_eq!(d.free_frames(), free_before);
                assert_eq!(d.engine().stats.faults, faults_before);
                assert_eq!(r.completions.len(), 1);
                assert!(r.evicted.is_empty());
            }
        }
        assert!(saw_abort, "90% failure with zero retries must abort");
        assert!(d.stats.migrations_aborted > 0);
    }

    #[test]
    fn batch_overflow_splits_and_defers() {
        use sim_core::fault::InjectionConfig;
        let cfg = UvmConfig::table1(256, 1024);
        let inj = FaultInjector::new(InjectionConfig::batch_overflow(0, 2));
        let mut d = UvmDriver::with_injection(
            cfg,
            PolicyPreset::Baseline.build(7),
            inj,
            ResilienceConfig::default(),
        )
        .unwrap();
        let mut xlat = TranslationPath::new(&TranslationConfig::default());
        let faults: Vec<VirtPage> = (0..5).map(|i| VirtPage(i * 16)).collect();
        let r = d.service_batch(&faults, Cycle::ZERO, &mut xlat).unwrap();
        assert_eq!(r.deferred, faults[2..].to_vec());
        assert_eq!(d.stats.batch_splits, 1);
        assert_eq!(d.stats.deferred_faults, 3);
        assert_eq!(d.stats.faults_serviced, 2, "only the head serviced");
        assert!(xlat.page_table().is_resident(faults[1]));
        assert!(!xlat.page_table().is_resident(faults[2]));
        // Re-queue the tail: the deferred faults complete next round.
        let r2 = d
            .service_batch(&r.deferred, Cycle(50_000), &mut xlat)
            .unwrap();
        assert!(r2.deferred.len() < 3, "tail shrinks every round");
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        use sim_core::fault::InjectionConfig;
        let run = |seed: u64| {
            let cfg = UvmConfig::table1(64, 1024);
            let inj = FaultInjector::new(InjectionConfig::combined(seed));
            let mut d = UvmDriver::with_injection(
                cfg,
                PolicyPreset::Baseline.build(7),
                inj,
                ResilienceConfig::default(),
            )
            .unwrap();
            let mut xlat = TranslationPath::new(&TranslationConfig::default());
            let mut t = 0u64;
            let mut timeline = Vec::new();
            for i in 0..24u64 {
                let r = d
                    .service_batch(&[VirtPage((i % 6) * 16)], Cycle(t), &mut xlat)
                    .unwrap();
                t = r.done_at.0 + 1000;
                timeline.push(r.done_at.0);
            }
            (timeline, d.stats.retries, d.stats.migrations_aborted)
        };
        assert_eq!(run(11), run(11), "same seed, same timeline");
        assert_ne!(run(11).0, run(12).0, "different seed, different timeline");
    }

    #[test]
    fn degradation_ladder_sheds_instead_of_crashing() {
        let cfg = UvmConfig {
            crash_untouch_fraction: 0.65,
            crash_min_evicted_factor: 1,
            footprint_pages: 48,
            ..UvmConfig::table1(32, 48)
        };
        let mut d = UvmDriver::with_injection(
            cfg,
            PolicyPreset::Baseline.build(0),
            FaultInjector::disabled(),
            ResilienceConfig::degraded(),
        )
        .unwrap();
        // The exact loop that crashes the plain driver (see
        // crash_detection_fires_on_wasteful_thrash) now survives: the
        // ladder throttles prefetch, then falls back to LRU+nopf-on-full
        // whose single-page migrations are always touched — untouch
        // stops accumulating and the run completes.
        // Six chunks keep the 2-chunk memory oversubscribed even after
        // the throttle shrinks plans to 8 pages (6 × 8 > 32 frames), so
        // wasteful evictions persist into the second trip.
        assert!(
            !wasteful_thrash(&mut d, 512, 6),
            "ladder must prevent the crash"
        );
        assert!(d.degraded());
        assert_eq!(d.sheds(), 2, "both rungs climbed");
        assert_eq!(d.stats.throttle_sheds, 1);
        assert_eq!(d.stats.policy_fallbacks, 1);
        assert!(d.engine().fell_back());
    }

    #[test]
    fn ladder_third_trip_crashes() {
        // White-box: wasteful traffic that persists past both sheds
        // (counters bumped directly) must still crash — degraded mode
        // bounds the retries, it does not mask a genuinely dying run.
        let cfg = UvmConfig {
            crash_untouch_fraction: 0.5,
            crash_min_evicted_factor: 1,
            footprint_pages: 4,
            ..UvmConfig::table1(32, 4)
        };
        let mut d = UvmDriver::with_injection(
            cfg,
            PolicyPreset::Baseline.build(0),
            FaultInjector::disabled(),
            ResilienceConfig::degraded(),
        )
        .unwrap();
        let mut xlat = TranslationPath::new(&TranslationConfig::default());
        let mut crashed_at = None;
        for trip in 0..3 {
            d.engine_mut().stats.pages_evicted += 100;
            d.engine_mut().stats.total_untouch += 90;
            let r = d
                .service_batch(&[], Cycle(trip * 100_000), &mut xlat)
                .unwrap();
            if r.crashed {
                crashed_at = Some(trip);
                break;
            }
        }
        assert_eq!(crashed_at, Some(2), "sheds twice, crashes on the third");
        assert_eq!(d.sheds(), 2);
    }

    /// Degraded driver over a thrash-then-quiet workload: trip the
    /// ladder twice with white-box counter bumps (as in
    /// `ladder_third_trip_crashes`), then run quiet batches.
    fn ladder_then_quiet(
        resilience: ResilienceConfig,
        tracer: Option<telemetry::Tracer>,
    ) -> UvmDriver {
        let cfg = UvmConfig {
            crash_untouch_fraction: 0.5,
            crash_min_evicted_factor: 1,
            footprint_pages: 4,
            ..UvmConfig::table1(32, 4)
        };
        let mut d = UvmDriver::with_injection(
            cfg,
            PolicyPreset::Cppe.build(0),
            FaultInjector::disabled(),
            resilience,
        )
        .unwrap();
        if let Some(t) = tracer {
            d.set_tracer(t);
        }
        let mut xlat = TranslationPath::new(&TranslationConfig::default());
        for trip in 0..2u64 {
            d.engine_mut().stats.pages_evicted += 100;
            d.engine_mut().stats.total_untouch += 90;
            d.service_batch(&[], Cycle(trip * 100_000), &mut xlat)
                .unwrap();
        }
        assert_eq!(d.sheds(), 2, "both rungs climbed");
        for i in 0..4u64 {
            d.service_batch(&[], Cycle(1_000_000 + i * 100_000), &mut xlat)
                .unwrap();
        }
        d
    }

    #[test]
    fn recovery_rearms_after_quiet_period() {
        let d = ladder_then_quiet(ResilienceConfig::degraded_with_recovery(2), None);
        // Quiet batches 2 and 4 each step one rung back up.
        assert_eq!(d.sheds(), 0, "fully recovered");
        assert_eq!(d.stats.rung_recoveries, 2);
        assert!(!d.engine().fell_back(), "original policies re-armed");
        assert_eq!(d.engine().name(), PolicyPreset::Cppe.build(0).name());
        assert_eq!(d.engine().prefetch_throttle(), 1, "throttle released");
        assert!(d.degraded(), "shed history survives recovery");
        assert!(!d.crashed());
    }

    #[test]
    fn recovery_disabled_by_default_quiet_period() {
        let d = ladder_then_quiet(ResilienceConfig::degraded(), None);
        assert_eq!(d.sheds(), 2, "no recovery without a quiet period");
        assert_eq!(d.stats.rung_recoveries, 0);
        assert!(d.engine().fell_back());
    }

    #[test]
    fn rung_transitions_emit_telemetry_both_directions() {
        use telemetry::{TraceConfig, TraceEvent, Tracer};
        let mut d = ladder_then_quiet(
            ResilienceConfig::degraded_with_recovery(2),
            Some(Tracer::new(TraceConfig::on())),
        );
        let t = d.take_telemetry().expect("tracing was on");
        let rungs: Vec<(u32, u32)> = t
            .events
            .iter()
            .filter_map(|e| match e.event {
                TraceEvent::RungTransition { from, to } => Some((from, to)),
                _ => None,
            })
            .collect();
        assert_eq!(
            rungs,
            vec![(0, 1), (1, 2), (2, 1), (1, 0)],
            "down the ladder, then back up"
        );
        assert!(d.take_telemetry().is_none(), "telemetry is taken once");
    }

    #[test]
    fn traced_run_records_events_and_epochs() {
        use telemetry::{TraceConfig, TraceEvent, Tracer};
        let (mut d, mut xlat) = setup(32, PolicyPreset::Baseline);
        d.set_tracer(Tracer::new(TraceConfig::on()));
        d.service_batch(&[VirtPage(0)], Cycle::ZERO, &mut xlat)
            .unwrap();
        d.service_batch(&[VirtPage(16)], Cycle(100_000), &mut xlat)
            .unwrap();
        d.service_batch(&[VirtPage(32)], Cycle(200_000), &mut xlat)
            .unwrap();
        let t = d.take_telemetry().unwrap();
        assert_eq!(t.series.rows.len(), 3, "one epoch per batch");
        t.series.parity().expect("counter deltas reconcile");
        assert_eq!(t.series.final_total("driver.batches"), 3);
        assert_eq!(t.series.final_total("cppe.pages_evicted"), 16);
        assert_eq!(
            t.series.final_total("mem.resident_pages"),
            32,
            "memory full after the eviction round-trip"
        );
        let has = |pred: &dyn Fn(&TraceEvent) -> bool| t.events.iter().any(|e| pred(&e.event));
        assert!(has(&|e| matches!(e, TraceEvent::FarFault { .. })));
        assert!(has(&|e| matches!(e, TraceEvent::PrefetchDecision { .. })));
        assert!(has(&|e| matches!(e, TraceEvent::MigrationDma { .. })));
        assert!(has(&|e| matches!(e, TraceEvent::Eviction { .. })));
        assert!(has(&|e| matches!(e, TraceEvent::BatchServiced { .. })));
    }

    #[test]
    fn audited_run_records_decision_provenance() {
        use telemetry::{DecisionKind, TraceConfig, Tracer};
        let (mut d, mut xlat) = setup(32, PolicyPreset::Baseline);
        d.set_tracer(Tracer::new(TraceConfig::audited()));
        d.service_batch(&[VirtPage(0)], Cycle::ZERO, &mut xlat)
            .unwrap();
        d.service_batch(&[VirtPage(16)], Cycle(100_000), &mut xlat)
            .unwrap();
        // Memory full → this batch evicts chunk 0 (LRU) and migrates
        // chunk 2: one eviction decision plus three prefetch decisions.
        d.service_batch(&[VirtPage(32)], Cycle(200_000), &mut xlat)
            .unwrap();
        let t = d.take_telemetry().unwrap();
        let evs: Vec<_> = t
            .decisions
            .iter()
            .filter(|r| r.event.kind == DecisionKind::Eviction)
            .collect();
        let pfs: Vec<_> = t
            .decisions
            .iter()
            .filter(|r| r.event.kind == DecisionKind::Prefetch)
            .collect();
        assert_eq!(evs.len(), 1);
        assert_eq!(pfs.len(), 3, "one per serviced fault");
        let ev = &evs[0].event;
        assert_eq!(ev.policy, "lru");
        assert_eq!(ev.origin, "capacity");
        assert_eq!(ev.rung, 0);
        assert_eq!(ev.chosen, 0, "LRU victim is chunk 0");
        assert!(
            ev.pages.contains(&ev.chosen),
            "victim inside the candidate window"
        );
        assert!(ev.pages.len() <= AUDIT_CANDIDATES);
        let pf = &pfs[2].event;
        assert_eq!(pf.policy, "seq-local");
        assert_eq!(pf.origin, "whole-chunk");
        assert_eq!(pf.chosen, 32);
        assert_eq!(pf.pages.len(), 16, "the exact mapped plan");
        assert!(pf.pages.contains(&32));
        assert_eq!(t.dropped_decisions, 0);
    }

    #[test]
    fn tracing_without_audit_records_no_decisions() {
        use telemetry::{TraceConfig, Tracer};
        let (mut d, mut xlat) = setup(32, PolicyPreset::Baseline);
        d.set_tracer(Tracer::new(TraceConfig::on()));
        d.service_batch(&[VirtPage(0)], Cycle::ZERO, &mut xlat)
            .unwrap();
        d.service_batch(&[VirtPage(16)], Cycle(100_000), &mut xlat)
            .unwrap();
        d.service_batch(&[VirtPage(32)], Cycle(200_000), &mut xlat)
            .unwrap();
        let t = d.take_telemetry().unwrap();
        assert!(t.decisions.is_empty());
        assert_eq!(t.dropped_decisions, 0);
        assert!(
            !t.series.schema.iter().any(|(n, _)| n.contains("decisions")),
            "audit-off schema must not grow"
        );
    }

    #[test]
    fn oversized_plan_truncated_to_capacity() {
        // Tree prefetcher could plan more than a tiny memory holds.
        let (mut d, mut xlat) = setup(16, PolicyPreset::Baseline);
        let r = d
            .service_batch(&[VirtPage(3)], Cycle::ZERO, &mut xlat)
            .unwrap();
        assert_eq!(r.migrated.len(), 16);
        assert!(r.migrated.contains(&VirtPage(3)));
    }
}
