//! Physical frame allocator for GPU device memory.
//!
//! GPU memory is modelled as a flat pool of 4 KB frames. The evaluation
//! sizes the pool per application: "we reduced the memory size in the
//! simulator to two oversubscription rates: 75% and 50%, so that 75% and
//! 50% of each application's footprint fits in the GPU memory" (§VI).

use gmmu::types::Frame;
use sim_core::error::ConfigError;

/// Fixed-capacity frame pool with a LIFO free list.
#[derive(Debug)]
pub struct FrameAllocator {
    capacity: u32,
    next_unused: u32,
    free_list: Vec<Frame>,
}

impl FrameAllocator {
    /// Pool of `capacity` frames.
    ///
    /// # Errors
    /// Returns [`ConfigError::Zero`] for an empty pool.
    pub fn try_new(capacity: u32) -> Result<Self, ConfigError> {
        if capacity == 0 {
            return Err(ConfigError::Zero {
                field: "capacity_pages",
            });
        }
        Ok(FrameAllocator {
            capacity,
            next_unused: 0,
            free_list: Vec::new(),
        })
    }

    /// Pool of `capacity` frames. Convenience wrapper over
    /// [`FrameAllocator::try_new`].
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: u32) -> Self {
        FrameAllocator::try_new(capacity).expect("GPU memory needs at least one frame")
    }

    /// Total frames.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Frames currently available.
    #[must_use]
    pub fn free(&self) -> u32 {
        (self.capacity - self.next_unused) + self.free_list.len() as u32
    }

    /// Frames currently allocated.
    #[must_use]
    pub fn in_use(&self) -> u32 {
        self.capacity - self.free()
    }

    /// Allocate one frame, or `None` when the pool is exhausted.
    pub fn alloc(&mut self) -> Option<Frame> {
        if let Some(f) = self.free_list.pop() {
            return Some(f);
        }
        if self.next_unused < self.capacity {
            let f = Frame(self.next_unused);
            self.next_unused += 1;
            Some(f)
        } else {
            None
        }
    }

    /// Return a frame to the pool.
    ///
    /// # Panics
    /// Panics (debug builds) if `frame` was never handed out.
    pub fn release(&mut self, frame: Frame) {
        debug_assert!(frame.0 < self.next_unused, "released frame never allocated");
        debug_assert!(
            !self.free_list.contains(&frame),
            "double free of frame {frame:?}"
        );
        self.free_list.push(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_exhaustion() {
        let mut a = FrameAllocator::new(3);
        assert_eq!(a.free(), 3);
        let f: Vec<_> = (0..3).map(|_| a.alloc().unwrap()).collect();
        assert_eq!(a.alloc(), None);
        assert_eq!(a.free(), 0);
        assert_eq!(a.in_use(), 3);
        // Frames are distinct.
        assert_ne!(f[0], f[1]);
        assert_ne!(f[1], f[2]);
    }

    #[test]
    fn release_recycles() {
        let mut a = FrameAllocator::new(2);
        let f0 = a.alloc().unwrap();
        let _f1 = a.alloc().unwrap();
        a.release(f0);
        assert_eq!(a.free(), 1);
        assert_eq!(a.alloc(), Some(f0));
    }

    #[test]
    #[should_panic(expected = "double free")]
    #[cfg(debug_assertions)] // debug_assert! compiles out in release
    fn double_free_panics_in_debug() {
        let mut a = FrameAllocator::new(2);
        let f = a.alloc().unwrap();
        a.release(f);
        a.release(f);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        let _ = FrameAllocator::new(0);
    }

    #[test]
    fn try_new_reports_typed_error() {
        assert!(FrameAllocator::try_new(1).is_ok());
        let err = FrameAllocator::try_new(0).unwrap_err();
        assert!(err.to_string().contains("capacity_pages"));
    }

    #[test]
    fn free_accounting_through_churn() {
        let mut a = FrameAllocator::new(8);
        let mut held = Vec::new();
        for _ in 0..8 {
            held.push(a.alloc().unwrap());
        }
        for f in held.drain(..4) {
            a.release(f);
        }
        assert_eq!(a.free(), 4);
        for _ in 0..4 {
            assert!(a.alloc().is_some());
        }
        assert_eq!(a.alloc(), None);
    }
}
