//! # harness — experiment harness for the CPPE reproduction
//!
//! Regenerates every table and figure of the paper's evaluation. Each
//! `src/bin/*` binary reproduces one artifact (see DESIGN.md's
//! experiment index); the library provides the shared machinery:
//!
//! * [`runner`] — one (workload × policy × rate) cell,
//! * [`sweep`] — the parallel sweep executor,
//! * [`orchestrator`] — the crash-safe sweep service (leased work
//!   queue, persistent result store, checkpoint/resume, chaos),
//! * [`report`] — text/CSV table rendering,
//! * [`history`] — the cross-run bench-history ledger behind `trend`,
//! * [`opt`] — the offline Belady chunk-fault bound,
//! * [`oracle`] — the decision-audit comparator against that bound,
//! * [`experiments`] — one module per paper artifact.

pub mod experiments;
pub mod history;
pub mod opt;
pub mod oracle;
pub mod orchestrator;
pub mod report;
pub mod runner;
pub mod sweep;

pub use runner::{capacity_pages, geomean, run_cell, speedup, ExpConfig, RATES};
pub use sweep::{cross, run_sweep, Job};
