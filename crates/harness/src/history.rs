//! Cross-run bench history.
//!
//! The repo's bench artifacts (`BENCH_speed.json`, `BENCH_profile.json`,
//! `BENCH_audit.json`) are each a snapshot of *one* run; regressions
//! that creep in over several PRs are invisible to any single snapshot
//! diff. This module keeps a fingerprint-keyed JSONL ledger
//! (`bench-history/history.jsonl`, schema [`HISTORY_SCHEMA`]) that the
//! `trend` binary appends each bench summary to and reads back to
//! compute per-cell deltas — latest value against the median of its
//! own history, flagged significant beyond 3 robust sigmas
//! (`1.4826 × MAD`) — plus a self-contained HTML dashboard with inline
//! SVG sparklines.
//!
//! The ledger is append-only and salvage-tolerant on read (a torn or
//! hand-mangled line is skipped with a warning, mirroring the result
//! store's journal posture), so concurrent CI appends can never brick
//! the trend job.

use std::fmt::Write as _;
use std::path::Path;
use telemetry::json;

/// Schema marker stamped into every history line.
pub const HISTORY_SCHEMA: &str = "cppe-bench-history-v1";

/// One measured scalar from one bench artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Cell key, e.g. `"STN/cppe"` (speed) or `"STN"` (profile/audit).
    pub cell: String,
    /// Metric name, e.g. `"wall_ms"`, `"fault_total_p99"`.
    pub metric: String,
    /// The value.
    pub value: f64,
    /// Unit label for display, e.g. `"ms"`, `"cycles"`, `"chunks"`.
    pub unit: String,
}

/// One appended bench summary: a labelled set of samples from one
/// artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Caller-chosen label (commit, CI run id, "committed"/"fresh").
    pub label: String,
    /// Source artifact kind: `"speed"`, `"profile"` or `"audit"`.
    pub source: String,
    /// The measurements.
    pub samples: Vec<Sample>,
}

/// Extract history samples from a bench artifact, dispatching on its
/// schema marker.
///
/// # Errors
/// Describes why the document is not a recognized bench artifact.
pub fn extract(doc: &str) -> Result<(String, Vec<Sample>), String> {
    if doc.contains("\"schema\":\"cppe-speed-v1\"") {
        let cells = crate::experiments::speed::parse_baseline(doc)
            .ok_or("cppe-speed-v1 document has no parseable cells")?;
        let samples = cells
            .into_iter()
            .map(|(app, policy, wall_ms)| Sample {
                cell: format!("{app}/{policy}"),
                metric: "wall_ms".to_string(),
                value: wall_ms,
                unit: "ms".to_string(),
            })
            .collect();
        return Ok(("speed".to_string(), samples));
    }
    if doc.contains("\"schema\":\"cppe-profile-v1\"") {
        return Ok(("profile".to_string(), extract_profile(doc)?));
    }
    if doc.contains("\"schema\":\"cppe-audit-v1\"") {
        return Ok(("audit".to_string(), extract_audit(doc)?));
    }
    if doc.contains("\"schema\":\"cppe-hostprof-v1\"") {
        return Ok(("hostprof".to_string(), extract_hostprof(doc)?));
    }
    Err("document carries no recognized bench schema \
         (expected cppe-speed-v1, cppe-profile-v1, cppe-audit-v1 or \
         cppe-hostprof-v1)"
        .to_string())
}

fn workloads_of(doc: &str) -> Result<Vec<json::Value>, String> {
    let v = json::parse(doc).map_err(|e| format!("invalid JSON: {e}"))?;
    v.get("workloads")
        .and_then(json::Value::as_array)
        .map(<[json::Value]>::to_vec)
        .ok_or_else(|| "missing \"workloads\" array".to_string())
}

fn extract_profile(doc: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for w in workloads_of(doc)? {
        let app = w
            .get("app")
            .and_then(json::Value::as_str)
            .ok_or("workload missing \"app\"")?
            .to_string();
        if let Some(wall) = w.get("wall_ms").and_then(json::Value::as_f64) {
            samples.push(Sample {
                cell: app.clone(),
                metric: "wall_ms".to_string(),
                value: wall,
                unit: "ms".to_string(),
            });
        }
        let p99 = w
            .get("stages")
            .and_then(json::Value::as_array)
            .and_then(|stages| {
                stages
                    .iter()
                    .find(|s| s.get("stage").and_then(json::Value::as_str) == Some("fault_total"))
            })
            .and_then(|s| s.get("p99").and_then(json::Value::as_f64));
        if let Some(p99) = p99 {
            samples.push(Sample {
                cell: app,
                metric: "fault_total_p99".to_string(),
                value: p99,
                unit: "cycles".to_string(),
            });
        }
    }
    if samples.is_empty() {
        return Err("cppe-profile-v1 document yielded no samples".to_string());
    }
    Ok(samples)
}

fn extract_audit(doc: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for w in workloads_of(doc)? {
        let app = w
            .get("app")
            .and_then(json::Value::as_str)
            .ok_or("workload missing \"app\"")?
            .to_string();
        let oracle = w.get("oracle");
        if let Some(avoidable) = oracle
            .and_then(|o| o.get("avoidable_chunk_migrations"))
            .and_then(json::Value::as_f64)
        {
            samples.push(Sample {
                cell: app.clone(),
                metric: "avoidable_chunk_migrations".to_string(),
                value: avoidable,
                unit: "chunks".to_string(),
            });
        }
        if let Some(p95) = oracle
            .and_then(|o| o.get("regret"))
            .and_then(|r| r.get("p95"))
            .and_then(json::Value::as_f64)
        {
            samples.push(Sample {
                cell: app,
                metric: "regret_p95".to_string(),
                value: p95,
                unit: "cycles".to_string(),
            });
        }
    }
    if samples.is_empty() {
        return Err("cppe-audit-v1 document yielded no samples".to_string());
    }
    Ok(samples)
}

fn extract_hostprof(doc: &str) -> Result<Vec<Sample>, String> {
    let v = json::parse(doc).map_err(|e| format!("invalid JSON: {e}"))?;
    let apps = v
        .get("apps")
        .and_then(json::Value::as_array)
        .ok_or_else(|| "missing \"apps\" array".to_string())?;
    let mut samples = Vec::new();
    for w in apps {
        let app = w
            .get("app")
            .and_then(json::Value::as_str)
            .ok_or("app entry missing \"app\"")?
            .to_string();
        if let Some(wall) = w.get("loop_wall_ns").and_then(json::Value::as_f64) {
            samples.push(Sample {
                cell: app.clone(),
                metric: "loop_wall_ms".to_string(),
                value: wall / 1e6,
                unit: "ms".to_string(),
            });
        }
        if let Some(inf) = w
            .get("amdahl")
            .and_then(|a| a.get("ceiling_inf"))
            .and_then(json::Value::as_f64)
        {
            samples.push(Sample {
                cell: app.clone(),
                metric: "ceiling_inf".to_string(),
                value: inf,
                unit: "x".to_string(),
            });
        }
        if let Some(ratio) = w
            .get("overhead")
            .and_then(|o| o.get("ratio"))
            .and_then(json::Value::as_f64)
        {
            samples.push(Sample {
                cell: app.clone(),
                metric: "overhead_ratio".to_string(),
                value: ratio,
                unit: "x".to_string(),
            });
        }
        // Per-kind wall attribution → one sparkline per (app, kind).
        if let Some(kinds) = w.get("kinds").and_then(json::Value::as_array) {
            for k in kinds {
                let (Some(kind), Some(wall)) = (
                    k.get("kind").and_then(json::Value::as_str),
                    k.get("wall_ns").and_then(json::Value::as_f64),
                ) else {
                    continue;
                };
                samples.push(Sample {
                    cell: format!("{app}/{kind}"),
                    metric: "wall_ns".to_string(),
                    value: wall,
                    unit: "ns".to_string(),
                });
            }
        }
    }
    if samples.is_empty() {
        return Err("cppe-hostprof-v1 document yielded no samples".to_string());
    }
    Ok(samples)
}

/// Render one history JSONL line.
#[must_use]
pub fn entry_json(entry: &HistoryEntry) -> String {
    let mut s = String::from("{");
    let _ = write!(
        s,
        "\"v\":{},\"label\":{},\"source\":{},\"samples\":[",
        json::string(HISTORY_SCHEMA),
        json::string(&entry.label),
        json::string(&entry.source),
    );
    for (i, sample) in entry.samples.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"cell\":{},\"metric\":{},\"value\":{},\"unit\":{}}}",
            json::string(&sample.cell),
            json::string(&sample.metric),
            fmt_value(sample.value),
            json::string(&sample.unit),
        );
    }
    s.push_str("]}");
    s
}

fn fmt_value(v: f64) -> String {
    // Round-trippable but stable: integral values print bare.
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.6}")
    }
}

/// Parse one history line back.
///
/// # Errors
/// Names the first missing or mistyped field.
pub fn entry_from_json(line: &str) -> Result<HistoryEntry, String> {
    let v = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if v.get("v").and_then(json::Value::as_str) != Some(HISTORY_SCHEMA) {
        return Err(format!("line does not carry schema {HISTORY_SCHEMA:?}"));
    }
    let field = |k: &str| -> Result<String, String> {
        v.get(k)
            .and_then(json::Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing/mistyped field {k:?}"))
    };
    let raw = v
        .get("samples")
        .and_then(json::Value::as_array)
        .ok_or("missing/mistyped field \"samples\"")?;
    let mut samples = Vec::with_capacity(raw.len());
    for s in raw {
        let sfield = |k: &str| -> Result<String, String> {
            s.get(k)
                .and_then(json::Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("sample missing/mistyped field {k:?}"))
        };
        samples.push(Sample {
            cell: sfield("cell")?,
            metric: sfield("metric")?,
            value: s
                .get("value")
                .and_then(json::Value::as_f64)
                .ok_or("sample missing/mistyped field \"value\"")?,
            unit: sfield("unit")?,
        });
    }
    Ok(HistoryEntry {
        label: field("label")?,
        source: field("source")?,
        samples,
    })
}

/// Append one entry to the JSONL ledger (parent dirs created).
///
/// # Errors
/// Propagates the underlying I/O error.
pub fn append(path: &Path, entry: &HistoryEntry) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", entry_json(entry))?;
    f.sync_data()
}

/// Load the ledger, skipping unparseable lines (salvage posture).
/// Returns the entries in file order plus the skipped-line count.
///
/// # Errors
/// Propagates the underlying I/O error (a missing file is an error —
/// the caller distinguishes "no history yet" itself).
pub fn load(path: &Path) -> std::io::Result<(Vec<HistoryEntry>, usize)> {
    let body = std::fs::read_to_string(path)?;
    let mut entries = Vec::new();
    let mut skipped = 0usize;
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match entry_from_json(line) {
            Ok(e) => entries.push(e),
            Err(e) => {
                skipped += 1;
                eprintln!("[trend] WARNING: skipping history line {}: {e}", i + 1);
            }
        }
    }
    Ok((entries, skipped))
}

/// One per-(source, cell, metric) series assembled from the ledger.
#[derive(Debug, Clone)]
pub struct TrendSeries {
    /// `"speed"` / `"profile"` / `"audit"`.
    pub source: String,
    /// Cell key.
    pub cell: String,
    /// Metric name.
    pub metric: String,
    /// Display unit.
    pub unit: String,
    /// Values in append order, paired with their entry labels.
    pub points: Vec<(String, f64)>,
}

impl TrendSeries {
    /// Latest value.
    #[must_use]
    pub fn latest(&self) -> f64 {
        self.points.last().map_or(f64::NAN, |(_, v)| *v)
    }

    /// Median of everything *before* the latest point (the baseline
    /// the delta is judged against). `None` with fewer than 2 points.
    #[must_use]
    pub fn prior_median(&self) -> Option<f64> {
        let n = self.points.len();
        (n >= 2).then(|| median(self.points[..n - 1].iter().map(|(_, v)| *v)))
    }

    /// Robust sigma (`1.4826 × MAD`) of the prior points.
    #[must_use]
    pub fn prior_sigma(&self) -> Option<f64> {
        let n = self.points.len();
        if n < 2 {
            return None;
        }
        let prior: Vec<f64> = self.points[..n - 1].iter().map(|(_, v)| *v).collect();
        let med = median(prior.iter().copied());
        Some(1.4826 * median(prior.iter().map(|v| (v - med).abs())))
    }

    /// Latest-vs-prior-median delta and whether it clears the 3-sigma
    /// significance bar (any nonzero delta when the history is flat).
    #[must_use]
    pub fn delta(&self) -> Option<(f64, bool)> {
        let med = self.prior_median()?;
        let delta = self.latest() - med;
        let sigma = self.prior_sigma().unwrap_or(0.0);
        let significant = if sigma > 0.0 {
            delta.abs() > 3.0 * sigma
        } else {
            delta != 0.0
        };
        Some((delta, significant))
    }
}

fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    v.sort_by(f64::total_cmp);
    match v.len() {
        0 => f64::NAN,
        n if n % 2 == 1 => v[n / 2],
        n => (v[n / 2 - 1] + v[n / 2]) / 2.0,
    }
}

/// Group ledger entries into per-cell series (deterministic order:
/// source, then cell, then metric).
#[must_use]
pub fn series(entries: &[HistoryEntry]) -> Vec<TrendSeries> {
    let mut map: std::collections::BTreeMap<(String, String, String), TrendSeries> =
        std::collections::BTreeMap::new();
    for entry in entries {
        for s in &entry.samples {
            map.entry((entry.source.clone(), s.cell.clone(), s.metric.clone()))
                .or_insert_with(|| TrendSeries {
                    source: entry.source.clone(),
                    cell: s.cell.clone(),
                    metric: s.metric.clone(),
                    unit: s.unit.clone(),
                    points: Vec::new(),
                })
                .points
                .push((entry.label.clone(), s.value));
        }
    }
    map.into_values().collect()
}

/// Render the text trend report.
#[must_use]
pub fn render_report(entries: &[HistoryEntry], skipped: usize) -> String {
    let all = series(entries);
    let mut t = crate::report::Table::new(&[
        "source", "cell", "metric", "n", "median", "latest", "delta", "verdict",
    ]);
    let mut significant = 0usize;
    for s in &all {
        let (median_txt, delta_txt, verdict) = match s.delta() {
            Some((delta, sig)) => {
                if sig {
                    significant += 1;
                }
                (
                    format!("{:.3}", s.prior_median().unwrap_or(f64::NAN)),
                    format!("{delta:+.3}"),
                    if sig { "SIGNIFICANT" } else { "ok" },
                )
            }
            None => ("-".to_string(), "-".to_string(), "single point"),
        };
        t.row(vec![
            s.source.clone(),
            s.cell.clone(),
            s.metric.clone(),
            s.points.len().to_string(),
            median_txt,
            format!("{:.3}", s.latest()),
            delta_txt,
            verdict.to_string(),
        ]);
    }
    let skipped_note = if skipped > 0 {
        format!("\nWARNING: {skipped} unparseable history lines skipped.\n")
    } else {
        String::new()
    };
    format!(
        "bench trend — {} entries, {} series, {} significant deltas \
         (|latest − median| > 3 × 1.4826 × MAD)\n\n{}{skipped_note}",
        entries.len(),
        all.len(),
        significant,
        t.render(),
    )
}

/// Inline SVG sparkline for one series (self-contained, no scripts).
fn sparkline(points: &[(String, f64)]) -> String {
    const W: f64 = 220.0;
    const H: f64 = 36.0;
    const PAD: f64 = 3.0;
    if points.is_empty() {
        return String::new();
    }
    let values: Vec<f64> = points.iter().map(|(_, v)| *v).collect();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = if hi > lo { hi - lo } else { 1.0 };
    let x = |i: usize| {
        if values.len() == 1 {
            W / 2.0
        } else {
            PAD + (W - 2.0 * PAD) * i as f64 / (values.len() - 1) as f64
        }
    };
    let y = |v: f64| H - PAD - (H - 2.0 * PAD) * (v - lo) / span;
    let mut path = String::new();
    for (i, &v) in values.iter().enumerate() {
        let _ = write!(
            path,
            "{}{:.1},{:.1}",
            if i > 0 { " " } else { "" },
            x(i),
            y(v)
        );
    }
    let (lx, ly) = (x(values.len() - 1), y(*values.last().unwrap()));
    format!(
        "<svg width=\"{W:.0}\" height=\"{H:.0}\" viewBox=\"0 0 {W:.0} {H:.0}\">\
         <polyline fill=\"none\" stroke=\"#2c7\" stroke-width=\"1.5\" points=\"{path}\"/>\
         <circle cx=\"{lx:.1}\" cy=\"{ly:.1}\" r=\"2.5\" fill=\"#2c7\"/></svg>"
    )
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render the self-contained HTML dashboard.
#[must_use]
pub fn render_html(entries: &[HistoryEntry], skipped: usize) -> String {
    let all = series(entries);
    let mut rows = String::new();
    for s in &all {
        let (delta_txt, class) = match s.delta() {
            Some((delta, true)) => (format!("{delta:+.3}"), "sig"),
            Some((delta, false)) => (format!("{delta:+.3}"), "ok"),
            None => ("-".to_string(), "ok"),
        };
        let _ = writeln!(
            rows,
            "<tr class=\"{class}\"><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td class=\"num\">{:.3} {}</td>\
             <td class=\"num\">{delta_txt}</td><td>{}</td></tr>",
            html_escape(&s.source),
            html_escape(&s.cell),
            html_escape(&s.metric),
            s.points.len(),
            s.latest(),
            html_escape(&s.unit),
            sparkline(&s.points),
        );
    }
    let labels: Vec<String> = entries
        .iter()
        .map(|e| format!("{} ({})", html_escape(&e.label), html_escape(&e.source)))
        .collect();
    let skipped_note = if skipped > 0 {
        format!("<p class=\"warn\">WARNING: {skipped} unparseable history lines skipped.</p>")
    } else {
        String::new()
    };
    format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>CPPE bench trend</title><style>\
         body{{font:14px/1.4 system-ui,sans-serif;margin:2em;color:#222}}\
         table{{border-collapse:collapse}}\
         td,th{{border:1px solid #ccc;padding:4px 10px;text-align:left}}\
         td.num{{text-align:right;font-variant-numeric:tabular-nums}}\
         tr.sig td{{background:#fee}}\
         .warn{{color:#b00}}\
         </style></head><body>\n\
         <h1>CPPE bench trend</h1>\n\
         <p>{entries_n} history entries ({labels}); schema {schema}. \
         Significant = |latest &minus; prior median| &gt; 3 &times; 1.4826 &times; MAD.</p>\n\
         {skipped_note}\n\
         <table><tr><th>source</th><th>cell</th><th>metric</th><th>n</th>\
         <th>latest</th><th>&Delta; vs median</th><th>trend</th></tr>\n\
         {rows}</table>\n</body></html>\n",
        entries_n = entries.len(),
        labels = labels.join(", "),
        schema = HISTORY_SCHEMA,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &str, wall: f64) -> HistoryEntry {
        HistoryEntry {
            label: label.to_string(),
            source: "speed".to_string(),
            samples: vec![Sample {
                cell: "STN/cppe".to_string(),
                metric: "wall_ms".to_string(),
                value: wall,
                unit: "ms".to_string(),
            }],
        }
    }

    #[test]
    fn entry_round_trips_through_jsonl() {
        let e = entry("run \"1\"\nodd", 12.5);
        let line = entry_json(&e);
        json::validate(&line).unwrap();
        assert_eq!(entry_from_json(&line).unwrap(), e);
    }

    #[test]
    fn extract_dispatches_on_speed_schema() {
        let doc = "{\"schema\":\"cppe-speed-v1\",\"cells\":[\
                   {\"app\":\"STN\",\"policy\":\"cppe\",\"outcome\":\"completed\",\
                   \"cycles\":5,\"wall_ms\":12.500,\"sim_cycles_per_sec\":1}]}";
        let (source, samples) = extract(doc).unwrap();
        assert_eq!(source, "speed");
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].cell, "STN/cppe");
        assert!((samples[0].value - 12.5).abs() < 1e-9);
        assert!(extract("{\"schema\":\"bogus\"}").is_err());
    }

    #[test]
    fn extract_reads_profile_stage_p99() {
        let doc = "{\"schema\":\"cppe-profile-v1\",\"workloads\":[\
                   {\"app\":\"STN\",\"wall_ms\":7.25,\"stages\":[\
                   {\"stage\":\"fault_total\",\"p99\":900},\
                   {\"stage\":\"gmmu_walk\",\"p99\":10}]}]}";
        let (source, samples) = extract(doc).unwrap();
        assert_eq!(source, "profile");
        let p99 = samples
            .iter()
            .find(|s| s.metric == "fault_total_p99")
            .unwrap();
        assert!((p99.value - 900.0).abs() < 1e-9);
    }

    #[test]
    fn extract_reads_hostprof_kinds_and_ceilings() {
        let doc = "{\"schema\":\"cppe-hostprof-v1\",\"apps\":[\
                   {\"app\":\"STN\",\"loop_wall_ns\":2500000,\
                   \"overhead\":{\"ratio\":1.02},\
                   \"kinds\":[{\"kind\":\"batch_dispatch\",\"wall_ns\":2000000},\
                   {\"kind\":\"access_hit\",\"wall_ns\":400000}],\
                   \"amdahl\":{\"ceiling_inf\":3.4}}]}";
        let (source, samples) = extract(doc).unwrap();
        assert_eq!(source, "hostprof");
        let wall = samples.iter().find(|s| s.metric == "loop_wall_ms").unwrap();
        assert!((wall.value - 2.5).abs() < 1e-9);
        let inf = samples.iter().find(|s| s.metric == "ceiling_inf").unwrap();
        assert!((inf.value - 3.4).abs() < 1e-9);
        let kind = samples
            .iter()
            .find(|s| s.cell == "STN/batch_dispatch")
            .unwrap();
        assert_eq!(kind.metric, "wall_ns");
        assert!((kind.value - 2e6).abs() < 1e-9);
    }

    #[test]
    fn append_load_and_salvage() {
        let dir = std::env::temp_dir().join(format!("cppe-hist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("history.jsonl");
        append(&path, &entry("a", 10.0)).unwrap();
        append(&path, &entry("b", 11.0)).unwrap();
        // A torn third line must be skipped, not fatal.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"v\":\"cppe-bench-hist").unwrap();
        }
        let (entries, skipped) = load(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(skipped, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flat_history_flags_any_move_and_noise_needs_three_sigma() {
        // Flat prior: any nonzero delta is significant.
        let flat = series(&[entry("a", 10.0), entry("b", 10.0), entry("c", 10.5)]);
        assert_eq!(flat.len(), 1);
        let (delta, sig) = flat[0].delta().unwrap();
        assert!((delta - 0.5).abs() < 1e-9);
        assert!(sig);
        // Noisy prior: a move inside 3 robust sigmas is not.
        let noisy = series(&[
            entry("a", 10.0),
            entry("b", 12.0),
            entry("c", 9.0),
            entry("d", 11.0),
            entry("e", 10.6),
        ]);
        let (_, sig) = noisy[0].delta().unwrap();
        assert!(!sig);
    }

    #[test]
    fn report_and_html_render() {
        let entries = vec![entry("a", 10.0), entry("b", 20.0)];
        let text = render_report(&entries, 0);
        assert!(text.contains("STN/cppe"));
        assert!(text.contains("SIGNIFICANT"));
        let html = render_html(&entries, 1);
        assert!(html.contains("<svg"));
        assert!(html.contains("polyline"));
        assert!(html.contains("unparseable history lines"));
        assert!(html.contains(HISTORY_SCHEMA));
    }
}
