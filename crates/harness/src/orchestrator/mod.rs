//! Crash-safe sweep orchestrator.
//!
//! `run_sweep` used to be a fire-and-forget in-process fan-out: one
//! panicking cell aborted the whole sweep, and a Ctrl-C or OOM kill
//! lost every completed cell. This module turns the sweep into a
//! sharded service with the three properties thousand-cell scenario
//! matrices need:
//!
//! 1. **Leases with deadlines** ([`queue`]) — a worker that panics,
//!    hangs, or dies gets its lease expired and the cell re-issued
//!    (bounded retries with backoff, then `Failed` with its error;
//!    never silently dropped).
//! 2. **Persistent results** ([`store`]) — every resolved cell streams
//!    to an append-only JSONL journal (fsynced per cell) with atomic
//!    snapshot compaction; a fresh invocation with `--resume` dedupes
//!    already-computed cells by config fingerprint and runs only the
//!    remainder.
//! 3. **Graceful degradation** — per-cell `catch_unwind`, a
//!    `max_in_flight` pressure valve, and a shed-to-serial fallback
//!    when every worker has died.
//!
//! Cells are identified by a stable fingerprint
//! ([`sim_core::Fingerprint`]) over (app, policy, rate, seed, scale,
//! schema version), so resumability survives process restarts and the
//! schema constant gates stores written by incompatible builds.
//! [`chaos`] provides the deterministic kill/panic/delay injection the
//! crash-safety tests drive.

pub mod chaos;
pub mod ops;
pub mod queue;
pub mod store;

pub use chaos::OrchChaos;
pub use ops::{OpsPlane, STATUS_SCHEMA};
pub use queue::{
    Claim, CompleteVerdict, FailVerdict, Lease, LeaseConfig, LeaseQueue, LeaseStatus, QueueStatus,
};
pub use store::{OpenReport, Recovery, ResultStore, SalvageReport, StoreError};

use crate::runner::{run_cell, ExpConfig};
use crate::sweep::CellKey;
use cppe::presets::PolicyPreset;
use gpu::{Outcome, RunResult};
use sim_core::Fingerprint;
use std::collections::{BTreeMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use telemetry::{json, OrchMetrics};

/// Result-store schema version. Part of every fingerprint, journal
/// line and snapshot: bump it whenever the simulator's observable
/// outputs or the record layout change, and old stores stop matching
/// instead of silently mixing incompatible results.
pub const SCHEMA: &str = "cppe-orch-v1";

/// One cell of the experiment matrix, self-contained: everything
/// needed to (re-)run it and to fingerprint it.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Workload to run.
    pub spec: workloads::WorkloadSpec,
    /// Policy preset.
    pub preset: PolicyPreset,
    /// Oversubscription rate (fraction of footprint that fits).
    pub rate: f64,
    /// Base seed (combined with the workload seed by the runner).
    pub seed: u64,
    /// Footprint scale.
    pub scale: f64,
}

impl CellSpec {
    /// Stable config fingerprint: the resume/dedupe key.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut fp = Fingerprint::new();
        fp.push_str(SCHEMA);
        fp.push_str(self.spec.abbr);
        fp.push_u64(self.spec.seed);
        fp.push_str(&self.preset.label());
        fp.push_f64(self.rate);
        fp.push_u64(self.seed);
        fp.push_f64(self.scale);
        fp.hex()
    }

    /// The sweep result-map key `(app, policy, rate%)`.
    #[must_use]
    pub fn key(&self) -> CellKey {
        (
            self.spec.abbr.to_string(),
            self.preset.label(),
            (self.rate * 100.0).round() as u32,
        )
    }

    /// Execute the cell (seed and scale override the base config's).
    #[must_use]
    pub fn run(&self, base: &ExpConfig) -> RunResult {
        let cfg = ExpConfig {
            scale: self.scale,
            seed: self.seed,
            ..*base
        };
        run_cell(&self.spec, self.preset, self.rate, &cfg)
    }
}

fn outcome_label(o: Outcome) -> &'static str {
    match o {
        Outcome::Completed => "completed",
        Outcome::Degraded => "degraded",
        Outcome::Crashed => "crashed",
        Outcome::Timeout => "timeout",
    }
}

/// The persisted observables of one resolved cell — the "result set"
/// the crash-safety guarantees are stated over. Two runs of the same
/// fingerprint must produce identical records (the simulator is
/// deterministic), which is what the kill/resume bit-identity tests
/// assert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// Simulator outcome label, or `"failed"` when the *worker* failed
    /// (panic / lease expiry) and no result exists.
    pub status: String,
    /// Attempts consumed (1 on the happy path).
    pub attempts: u32,
    /// Total execution cycles.
    pub cycles: u64,
    /// Accesses completed.
    pub accesses: u64,
    /// Demand faults.
    pub faults: u64,
    /// Pages migrated in.
    pub pages_migrated: u64,
    /// Pages evicted.
    pub pages_evicted: u64,
    /// Host→device bytes.
    pub bytes_h2d: u64,
    /// Device→host bytes.
    pub bytes_d2h: u64,
    /// Wrong evictions.
    pub wrong_evictions: u64,
    /// Simulation error or worker failure description.
    pub error: Option<String>,
}

impl CellRecord {
    /// Extract the persisted observables from a finished run.
    #[must_use]
    pub fn from_run(r: &RunResult, attempts: u32) -> Self {
        CellRecord {
            status: outcome_label(r.outcome).to_string(),
            attempts,
            cycles: r.cycles,
            accesses: r.accesses,
            faults: r.engine.faults,
            pages_migrated: r.engine.pages_migrated,
            pages_evicted: r.engine.pages_evicted,
            bytes_h2d: r.bytes_h2d,
            bytes_d2h: r.bytes_d2h,
            wrong_evictions: r.wrong_evictions,
            error: r.error.clone(),
        }
    }

    /// Record for a cell whose worker failed terminally.
    #[must_use]
    pub fn failed(error: &str, attempts: u32) -> Self {
        CellRecord {
            status: "failed".to_string(),
            attempts,
            cycles: 0,
            accesses: 0,
            faults: 0,
            pages_migrated: 0,
            pages_evicted: 0,
            bytes_h2d: 0,
            bytes_d2h: 0,
            wrong_evictions: 0,
            error: Some(error.to_string()),
        }
    }

    /// Did the worker fail (as opposed to the simulation completing,
    /// however badly)?
    #[must_use]
    pub fn is_worker_failure(&self) -> bool {
        self.status == "failed"
    }
}

/// One journal/snapshot entry: a resolved cell plus the identity
/// fields a human (or a resumed orchestrator) needs to interpret it.
#[derive(Debug, Clone, PartialEq)]
pub struct CellEntry {
    /// Config fingerprint (primary key).
    pub fp: String,
    /// Workload abbreviation.
    pub app: String,
    /// Policy label.
    pub policy: String,
    /// Oversubscription rate in percent.
    pub rate_pct: u32,
    /// Base seed.
    pub seed: u64,
    /// Footprint scale.
    pub scale: f64,
    /// The observables.
    pub record: CellRecord,
}

impl CellEntry {
    /// Build an entry for `spec` resolved as `record`.
    #[must_use]
    pub fn from_spec(spec: &CellSpec, fp: String, record: CellRecord) -> Self {
        CellEntry {
            fp,
            app: spec.spec.abbr.to_string(),
            policy: spec.preset.label(),
            rate_pct: (spec.rate * 100.0).round() as u32,
            seed: spec.seed,
            scale: spec.scale,
            record,
        }
    }

    /// One JSON object (journal line / snapshot element).
    #[must_use]
    pub fn to_json(&self) -> String {
        let r = &self.record;
        let error = r
            .error
            .as_deref()
            .map_or_else(|| "null".to_string(), json::string);
        format!(
            "{{\"v\":{v},\"fp\":{fp},\"app\":{app},\"policy\":{policy},\
             \"rate\":{rate},\"seed\":{seed},\"scale\":{scale},\
             \"status\":{status},\"attempts\":{attempts},\"cycles\":{cycles},\
             \"accesses\":{accesses},\"faults\":{faults},\"migrated\":{migrated},\
             \"evicted\":{evicted},\"h2d\":{h2d},\"d2h\":{d2h},\
             \"wrong_ev\":{wrong_ev},\"error\":{error}}}",
            v = json::string(SCHEMA),
            fp = json::string(&self.fp),
            app = json::string(&self.app),
            policy = json::string(&self.policy),
            rate = self.rate_pct,
            seed = self.seed,
            scale = self.scale,
            status = json::string(&r.status),
            attempts = r.attempts,
            cycles = r.cycles,
            accesses = r.accesses,
            faults = r.faults,
            migrated = r.pages_migrated,
            evicted = r.pages_evicted,
            h2d = r.bytes_h2d,
            d2h = r.bytes_d2h,
            wrong_ev = r.wrong_evictions,
        )
    }

    /// Parse one journal/snapshot object back.
    ///
    /// # Errors
    /// Names the first missing or mistyped field.
    pub fn from_json(v: &json::Value) -> Result<Self, String> {
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(json::Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing/mistyped field {k:?}"))
        };
        let u64_field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(json::Value::as_u64)
                .ok_or_else(|| format!("missing/mistyped field {k:?}"))
        };
        let error = match v.get("error") {
            None => return Err("missing/mistyped field \"error\"".to_string()),
            Some(e) if e.is_null() => None,
            Some(e) => Some(
                e.as_str()
                    .ok_or_else(|| "missing/mistyped field \"error\"".to_string())?
                    .to_string(),
            ),
        };
        Ok(CellEntry {
            fp: str_field("fp")?,
            app: str_field("app")?,
            policy: str_field("policy")?,
            rate_pct: u64_field("rate")? as u32,
            seed: u64_field("seed")?,
            scale: v
                .get("scale")
                .and_then(json::Value::as_f64)
                .ok_or_else(|| "missing/mistyped field \"scale\"".to_string())?,
            record: CellRecord {
                status: str_field("status")?,
                attempts: u64_field("attempts")? as u32,
                cycles: u64_field("cycles")?,
                accesses: u64_field("accesses")?,
                faults: u64_field("faults")?,
                pages_migrated: u64_field("migrated")?,
                pages_evicted: u64_field("evicted")?,
                bytes_h2d: u64_field("h2d")?,
                bytes_d2h: u64_field("d2h")?,
                wrong_evictions: u64_field("wrong_ev")?,
                error,
            },
        })
    }
}

/// Orchestrator tuning.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Base experiment settings (gpu model, trace format; per-cell
    /// seed/scale come from each [`CellSpec`]).
    pub exp: ExpConfig,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Lease/retry tuning.
    pub lease: LeaseConfig,
    /// Deterministic fault injection (tests / the chaos CI job).
    pub chaos: Option<OrchChaos>,
    /// Abort (simulating a kill) after this many cells have resolved
    /// this run — the kill/resume tests' hook.
    pub stop_after: Option<usize>,
    /// Compact the store into a snapshot after a clean finish.
    pub compact_on_finish: bool,
    /// Flight-recorder dossier path. When set, cell panics, early
    /// stops and worker deaths dump a crash dossier here (atomic
    /// rename; last event wins).
    pub flight: Option<PathBuf>,
    /// Shared live-ops plane, usually because a status server is
    /// scraping it. When unset but `flight` is set, a private plane is
    /// created so the dossier still carries monitor history.
    pub ops: Option<Arc<OpsPlane>>,
}

impl OrchestratorConfig {
    /// Defaults around a base experiment config.
    #[must_use]
    pub fn new(exp: ExpConfig) -> Self {
        OrchestratorConfig {
            exp,
            threads: 0,
            lease: LeaseConfig::default(),
            chaos: None,
            stop_after: None,
            compact_on_finish: false,
            flight: None,
            ops: None,
        }
    }
}

/// Everything an orchestrated sweep produces.
#[derive(Debug)]
pub struct OrchOutcome {
    /// The merged result set (resumed + computed + failed), keyed by
    /// fingerprint.
    pub entries: BTreeMap<String, CellEntry>,
    /// Full simulator results for cells *computed this run* (resumed
    /// cells only exist as records). This is what the in-process sweep
    /// consumes; the persistent store keeps only records.
    pub full: BTreeMap<String, RunResult>,
    /// Counters.
    pub metrics: OrchMetrics,
    /// True when `stop_after` aborted the run early.
    pub stopped_early: bool,
}

enum Msg {
    Done {
        spec: CellSpec,
        fp: String,
        result: Box<RunResult>,
    },
    Panic {
        fp: String,
        epoch: u32,
        msg: String,
    },
    Exit {
        died: bool,
    },
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: (non-string payload)".to_string()
    }
}

/// Run `cells` through the full orchestrator with the real simulator.
pub fn orchestrate(
    cells: Vec<CellSpec>,
    store: Option<&mut ResultStore>,
    cfg: &OrchestratorConfig,
) -> OrchOutcome {
    let exp = cfg.exp;
    orchestrate_with(cells, store, cfg, move |cell| cell.run(&exp))
}

/// Like [`orchestrate`] but with an injected executor — the chaos and
/// scheduling tests drive the machinery with cheap fake cells, and
/// [`orchestrate`] passes the real simulator.
#[allow(clippy::too_many_lines)]
pub fn orchestrate_with<F>(
    cells: Vec<CellSpec>,
    mut store: Option<&mut ResultStore>,
    cfg: &OrchestratorConfig,
    exec: F,
) -> OrchOutcome
where
    F: Fn(&CellSpec) -> RunResult + Sync,
{
    let mut metrics = OrchMetrics {
        cells_requested: cells.len() as u64,
        ..OrchMetrics::default()
    };

    // Duplicate-submission guard: the same fingerprint twice in one
    // spec would run (and double-count) the same computation.
    let mut seen: HashSet<String> = HashSet::new();
    let mut work: Vec<(CellSpec, String)> = Vec::with_capacity(cells.len());
    for cell in cells {
        let fp = cell.fingerprint();
        if seen.insert(fp.clone()) {
            work.push((cell, fp));
        } else {
            metrics.cells_deduped += 1;
            eprintln!(
                "[orchestrate] WARNING: duplicate cell {:?} (fp {fp}) deduped",
                cell.key()
            );
        }
    }

    // Resume: anything already journaled is carried over, not re-run.
    let mut entries: BTreeMap<String, CellEntry> = BTreeMap::new();
    if let Some(store) = store.as_deref() {
        work.retain(|(_, fp)| {
            if let Some(existing) = store.entries().get(fp) {
                metrics.cells_resumed += 1;
                entries.insert(fp.clone(), existing.clone());
                false
            } else {
                true
            }
        });
    }

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
    } else {
        cfg.threads
    }
    .min(work.len().max(1));

    let start = Instant::now();
    let queue = Mutex::new(LeaseQueue::new(work, cfg.lease, start));
    // Live-ops plane: shared (status server scraping it) or private
    // (flight recorder only). None ⇒ observability fully off.
    let ops: Option<Arc<OpsPlane>> = cfg
        .ops
        .clone()
        .or_else(|| cfg.flight.as_ref().map(|_| Arc::new(OpsPlane::new())));
    let dump_flight = |reason: &str| {
        if let (Some(ops), Some(path)) = (ops.as_ref(), cfg.flight.as_ref()) {
            if let Err(e) = ops.dump_flight(path, reason) {
                eprintln!("[orchestrate] WARNING: flight-recorder dump failed: {e}");
            }
        }
    };
    let abort = AtomicBool::new(false);
    let mut full: BTreeMap<String, RunResult> = BTreeMap::new();
    let mut stopped_early = false;
    let mut resolved_this_run = 0usize;
    let tick = (cfg.lease.lease / 4)
        .max(Duration::from_millis(1))
        .min(Duration::from_millis(50));

    let has_work = queue.lock().unwrap().remaining() > 0;
    if has_work {
        let (tx, rx) = mpsc::channel::<Msg>();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let queue = &queue;
                let abort = &abort;
                let exec = &exec;
                let chaos = cfg.chaos;
                scope.spawn(move || worker_loop(queue, abort, chaos, exec, &tx));
            }
            drop(tx);

            let mut live = threads;
            while live > 0 {
                match rx.recv_timeout(tick) {
                    Ok(Msg::Done { spec, fp, result }) => {
                        let verdict = queue.lock().unwrap().complete(&fp);
                        match verdict {
                            CompleteVerdict::Accepted { attempts } => {
                                record_done(
                                    &spec,
                                    fp,
                                    *result,
                                    attempts,
                                    &mut entries,
                                    &mut full,
                                    &mut store,
                                    &mut metrics,
                                );
                                resolved_this_run += 1;
                                if cfg.stop_after.is_some_and(|n| resolved_this_run >= n) {
                                    stopped_early = true;
                                    abort.store(true, Ordering::Relaxed);
                                    if let Some(ops) = ops.as_ref() {
                                        ops.note(format!(
                                            "stop_after reached: aborting with {resolved_this_run} cells resolved"
                                        ));
                                    }
                                    // A kill is instant: drain nothing
                                    // further, even completions already
                                    // queued — otherwise a lagging
                                    // coordinator journals the whole
                                    // matrix and the "kill" leaves no
                                    // work behind. Workers see `abort`
                                    // and exit; the scope joins them.
                                    break;
                                }
                            }
                            CompleteVerdict::Stale => metrics.stale_completions += 1,
                        }
                    }
                    Ok(Msg::Panic { fp, epoch, msg }) => {
                        metrics.panics_caught += 1;
                        // Retry/exhaustion bookkeeping happens in the
                        // queue; terminal failures are recorded once,
                        // after the drain, via `failed_cells`.
                        let _ =
                            queue
                                .lock()
                                .unwrap()
                                .fail_attempt(&fp, epoch, &msg, Instant::now());
                        if let Some(ops) = ops.as_ref() {
                            ops.note(format!("panic contained: cell {fp} epoch {epoch}: {msg}"));
                        }
                        dump_flight(&format!("cell panic: {fp}"));
                    }
                    Ok(Msg::Exit { died }) => {
                        live -= 1;
                        if died {
                            metrics.workers_died += 1;
                            if let Some(ops) = ops.as_ref() {
                                ops.note(format!("worker died; {live} still live"));
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // Hung workers can't expire their own leases.
                        queue.lock().unwrap().expire_overdue(Instant::now());
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
                if let Some(ops) = ops.as_ref() {
                    let status = queue.lock().unwrap().status(Instant::now());
                    ops.tick(&metrics, status);
                }
            }
        });

        // Every worker died (chaos kills / escaped panics) with cells
        // still pending: degrade to serial execution on this thread
        // rather than losing the sweep.
        if !abort.load(Ordering::Relaxed) && queue.lock().unwrap().remaining() > 0 {
            metrics.shed_serial = 1;
            if let Some(ops) = ops.as_ref() {
                ops.note("all workers died; shedding to serial drain");
            }
            dump_flight("all workers died; shed to serial");
            serial_drain(
                &queue,
                cfg,
                &exec,
                ops.as_ref(),
                &mut entries,
                &mut full,
                &mut store,
                &mut metrics,
                &mut resolved_this_run,
                &mut stopped_early,
            );
        }
    }

    // Terminal failures become part of the result set — a cell is
    // never silently missing. (Skipped on an early stop: unresolved
    // cells stay unrecorded so a resume re-runs them from scratch.)
    if !stopped_early {
        for (spec, fp, error, attempts) in queue.lock().unwrap().failed_cells() {
            let record = CellRecord::failed(&error, attempts);
            let entry = CellEntry::from_spec(&spec, fp.clone(), record);
            append_entry(&mut store, &entry);
            entries.insert(fp, entry);
            metrics.cells_failed += 1;
        }
    }

    {
        let q = queue.lock().unwrap();
        metrics.leases_issued = q.issued;
        metrics.leases_expired = q.expired;
        metrics.retries = q.retries;
    }
    // Final tick so a scraping status server sees the settled counts,
    // and a dossier for the simulated-kill path (the chaos drill's
    // `--stop-after` abort) with the queue state a resume would see.
    if let Some(ops) = ops.as_ref() {
        let status = queue.lock().unwrap().status(Instant::now());
        ops.tick(&metrics, status);
    }
    if stopped_early {
        dump_flight("orchestrator stopped early (stop_after kill drill)");
    }
    if let Some(store) = store.as_mut() {
        if cfg.compact_on_finish && !stopped_early {
            if let Err(e) = store.compact() {
                eprintln!("[orchestrate] snapshot compaction failed: {e}");
            }
        }
        metrics.journal_appends = store.appends;
        metrics.journal_bytes = store.bytes_appended;
        metrics.compactions = store.compactions;
    }

    OrchOutcome {
        entries,
        full,
        metrics,
        stopped_early,
    }
}

fn worker_loop<F>(
    queue: &Mutex<LeaseQueue>,
    abort: &AtomicBool,
    chaos: Option<OrchChaos>,
    exec: &F,
    tx: &mpsc::Sender<Msg>,
) where
    F: Fn(&CellSpec) -> RunResult + Sync,
{
    loop {
        if abort.load(Ordering::Relaxed) {
            let _ = tx.send(Msg::Exit { died: false });
            return;
        }
        let claim = queue.lock().unwrap().claim(Instant::now());
        match claim {
            Claim::Drained => {
                let _ = tx.send(Msg::Exit { died: false });
                return;
            }
            Claim::Wait(d) => {
                // Capped so an aborting pool never waits out a full
                // lease before noticing the flag.
                std::thread::sleep(d.min(Duration::from_millis(25)));
            }
            Claim::Lease(lease) => {
                if let Some(ch) = chaos {
                    if ch.should_kill_worker(&lease.fp, lease.attempt) {
                        // Simulated `kill -9`: the thread vanishes with
                        // the lease unacknowledged; expiry re-issues it.
                        let _ = tx.send(Msg::Exit { died: true });
                        return;
                    }
                    if let Some(d) = ch.delay_for(&lease.fp, lease.attempt) {
                        std::thread::sleep(d);
                    }
                }
                let outcome = run_leased(&lease, chaos, exec);
                let msg = match outcome {
                    Ok(result) => Msg::Done {
                        spec: lease.spec,
                        fp: lease.fp,
                        result,
                    },
                    Err(msg) => Msg::Panic {
                        fp: lease.fp,
                        epoch: lease.epoch,
                        msg,
                    },
                };
                if tx.send(msg).is_err() {
                    return;
                }
            }
        }
    }
}

/// Execute one leased cell with panic containment: a panicking
/// simulator becomes a recorded attempt failure instead of a lost
/// sweep.
fn run_leased<F>(
    lease: &Lease,
    chaos: Option<OrchChaos>,
    exec: &F,
) -> Result<Box<RunResult>, String>
where
    F: Fn(&CellSpec) -> RunResult + Sync,
{
    let fp = lease.fp.clone();
    let attempt = lease.attempt;
    catch_unwind(AssertUnwindSafe(|| {
        if let Some(ch) = chaos {
            if ch.should_panic(&fp, attempt) {
                panic!("chaos: injected panic (cell {fp}, attempt {attempt})");
            }
        }
        Box::new(exec(&lease.spec))
    }))
    .map_err(panic_message)
}

#[allow(clippy::too_many_arguments)]
fn record_done(
    spec: &CellSpec,
    fp: String,
    result: RunResult,
    attempts: u32,
    entries: &mut BTreeMap<String, CellEntry>,
    full: &mut BTreeMap<String, RunResult>,
    store: &mut Option<&mut ResultStore>,
    metrics: &mut OrchMetrics,
) {
    let record = CellRecord::from_run(&result, attempts);
    let entry = CellEntry::from_spec(spec, fp.clone(), record);
    append_entry(store, &entry);
    full.insert(fp.clone(), result);
    entries.insert(fp, entry);
    metrics.cells_completed += 1;
}

fn append_entry(store: &mut Option<&mut ResultStore>, entry: &CellEntry) {
    if let Some(store) = store.as_mut() {
        if let Err(e) = store.append(entry.clone()) {
            // The computation is not lost (it is in `entries`); only
            // durability degraded. Surface it loudly and continue.
            eprintln!("[orchestrate] WARNING: journal append failed: {e}");
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn serial_drain<F>(
    queue: &Mutex<LeaseQueue>,
    cfg: &OrchestratorConfig,
    exec: &F,
    ops: Option<&Arc<OpsPlane>>,
    entries: &mut BTreeMap<String, CellEntry>,
    full: &mut BTreeMap<String, RunResult>,
    store: &mut Option<&mut ResultStore>,
    metrics: &mut OrchMetrics,
    resolved_this_run: &mut usize,
    stopped_early: &mut bool,
) where
    F: Fn(&CellSpec) -> RunResult + Sync,
{
    loop {
        let claim = queue.lock().unwrap().claim(Instant::now());
        match claim {
            Claim::Drained => return,
            Claim::Wait(d) => std::thread::sleep(d.min(Duration::from_millis(25))),
            Claim::Lease(lease) => {
                // The supervisor is the last thread standing: chaos may
                // still panic/delay cells (contained below) but no
                // longer kills the executor.
                if let Some(ch) = cfg.chaos {
                    if let Some(d) = ch.delay_for(&lease.fp, lease.attempt) {
                        std::thread::sleep(d);
                    }
                }
                match run_leased(&lease, cfg.chaos, exec) {
                    Ok(result) => {
                        let verdict = queue.lock().unwrap().complete(&lease.fp);
                        if let CompleteVerdict::Accepted { attempts } = verdict {
                            record_done(
                                &lease.spec,
                                lease.fp,
                                *result,
                                attempts,
                                entries,
                                full,
                                store,
                                metrics,
                            );
                            *resolved_this_run += 1;
                            if cfg.stop_after.is_some_and(|n| *resolved_this_run >= n) {
                                *stopped_early = true;
                                return;
                            }
                        } else {
                            metrics.stale_completions += 1;
                        }
                    }
                    Err(msg) => {
                        metrics.panics_caught += 1;
                        let _ = queue.lock().unwrap().fail_attempt(
                            &lease.fp,
                            lease.epoch,
                            &msg,
                            Instant::now(),
                        );
                        if let Some(ops) = ops {
                            ops.note(format!(
                                "panic contained (serial): cell {} epoch {}: {msg}",
                                lease.fp, lease.epoch
                            ));
                        }
                    }
                }
                if let Some(ops) = ops {
                    let status = queue.lock().unwrap().status(Instant::now());
                    ops.tick(metrics, status);
                }
            }
        }
    }
}

/// Parse a policy label (as printed by [`PolicyPreset::label`]) back
/// into its preset — the `orchestrate` binary's `--policies` values.
#[must_use]
pub fn parse_policy(label: &str) -> Option<PolicyPreset> {
    let fixed = [
        PolicyPreset::Baseline,
        PolicyPreset::Random,
        PolicyPreset::ReservedLru10,
        PolicyPreset::ReservedLru20,
        PolicyPreset::DisablePfOnFull,
        PolicyPreset::Cppe,
        PolicyPreset::CppeScheme1,
        PolicyPreset::MhpeOnly,
        PolicyPreset::HpeNaive,
        PolicyPreset::HpeNoPf,
        PolicyPreset::LruNoPf,
        PolicyPreset::LruTree,
        PolicyPreset::MhpeNoSwitch,
        PolicyPreset::Clock,
        PolicyPreset::Srrip,
    ];
    if let Some(p) = fixed.into_iter().find(|p| p.label() == label) {
        return Some(p);
    }
    if let Some(fd) = label.strip_prefix("mhpe-fd") {
        return fd.parse().ok().map(PolicyPreset::MhpeFixedFd);
    }
    if let Some(t3) = label.strip_prefix("mhpe-t3-") {
        return t3.parse().ok().map(PolicyPreset::MhpeT3);
    }
    None
}

/// Render an orchestrated sweep as a report: per-cell table plus the
/// orchestrator counters.
#[must_use]
pub fn render_report(outcome: &OrchOutcome) -> String {
    let mut table = crate::report::Table::new(&[
        "app", "policy", "rate%", "seed", "status", "attempts", "cycles", "error",
    ]);
    for entry in outcome.entries.values() {
        let r = &entry.record;
        table.row(vec![
            entry.app.clone(),
            entry.policy.clone(),
            entry.rate_pct.to_string(),
            entry.seed.to_string(),
            r.status.clone(),
            r.attempts.to_string(),
            r.cycles.to_string(),
            r.error.clone().unwrap_or_default(),
        ]);
    }
    let stopped = if outcome.stopped_early {
        "\nNOTE: run stopped early (--stop-after); resume to finish.\n"
    } else {
        ""
    };
    format!(
        "orchestrated sweep — {} cells resolved ({} failed)\n\n{}\n{}{stopped}",
        outcome.entries.len(),
        outcome
            .entries
            .values()
            .filter(|e| e.record.is_worker_failure())
            .count(),
        table.render(),
        outcome.metrics.report_section(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::registry;

    fn cell(app: &str, preset: PolicyPreset, rate: f64, seed: u64) -> CellSpec {
        CellSpec {
            spec: registry::by_abbr(app).unwrap(),
            preset,
            rate,
            seed,
            scale: 0.25,
        }
    }

    /// Cheap deterministic fake "simulation": counters derived from
    /// the fingerprint, so identical cells produce identical results
    /// and different cells differ.
    fn fake_exec(spec: &CellSpec) -> RunResult {
        let fp = spec.fingerprint();
        let h = u64::from_str_radix(&fp, 16).unwrap();
        let mut r = RunResult::failed("unset");
        r.outcome = Outcome::Completed;
        r.error = None;
        r.cycles = h % 1_000_000;
        r.accesses = h % 10_000;
        r.engine.faults = h % 1_000;
        r.bytes_h2d = h % 65_536;
        r
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let a = cell("STN", PolicyPreset::Cppe, 0.5, 1);
        assert_eq!(a.fingerprint(), a.fingerprint());
        let b = cell("STN", PolicyPreset::Cppe, 0.5, 2);
        let c = cell("STN", PolicyPreset::Baseline, 0.5, 1);
        let d = cell("MRQ", PolicyPreset::Cppe, 0.5, 1);
        let e = cell("STN", PolicyPreset::Cppe, 0.75, 1);
        let fps = [
            a.fingerprint(),
            b.fingerprint(),
            c.fingerprint(),
            d.fingerprint(),
            e.fingerprint(),
        ];
        let uniq: HashSet<_> = fps.iter().collect();
        assert_eq!(uniq.len(), fps.len());
    }

    #[test]
    fn entry_json_round_trips() {
        let spec = cell("STN", PolicyPreset::Cppe, 0.5, 42);
        let record = CellRecord {
            status: "completed".into(),
            attempts: 2,
            cycles: u64::MAX,
            accesses: 123,
            faults: 7,
            pages_migrated: 8,
            pages_evicted: 9,
            bytes_h2d: 10,
            bytes_d2h: 11,
            wrong_evictions: 1,
            error: Some("odd \"quoted\" error\nwith newline".into()),
        };
        let entry = CellEntry::from_spec(&spec, spec.fingerprint(), record);
        let line = entry.to_json();
        json::validate(&line).unwrap();
        let back = CellEntry::from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, entry);
    }

    #[test]
    fn entry_json_rejects_missing_fields() {
        let v = json::parse("{\"fp\":\"x\"}").unwrap();
        let err = CellEntry::from_json(&v).unwrap_err();
        assert!(err.contains("missing/mistyped"));
    }

    #[test]
    fn policy_labels_round_trip() {
        let all = [
            PolicyPreset::Baseline,
            PolicyPreset::Random,
            PolicyPreset::ReservedLru10,
            PolicyPreset::ReservedLru20,
            PolicyPreset::DisablePfOnFull,
            PolicyPreset::Cppe,
            PolicyPreset::CppeScheme1,
            PolicyPreset::MhpeOnly,
            PolicyPreset::HpeNaive,
            PolicyPreset::HpeNoPf,
            PolicyPreset::LruNoPf,
            PolicyPreset::LruTree,
            PolicyPreset::MhpeFixedFd(5),
            PolicyPreset::MhpeT3(24),
            PolicyPreset::MhpeNoSwitch,
            PolicyPreset::Clock,
            PolicyPreset::Srrip,
        ];
        for p in all {
            assert_eq!(parse_policy(&p.label()), Some(p), "label {:?}", p.label());
        }
        assert_eq!(parse_policy("bogus"), None);
    }

    #[test]
    fn duplicate_cells_are_deduped_with_one_execution() {
        let c = cell("STN", PolicyPreset::Baseline, 0.5, 1);
        let cells = vec![c.clone(), c.clone(), c];
        let cfg = OrchestratorConfig::new(ExpConfig::quick());
        let out = orchestrate_with(cells, None, &cfg, fake_exec);
        assert_eq!(out.entries.len(), 1);
        assert_eq!(out.metrics.cells_deduped, 2);
        assert_eq!(out.metrics.cells_completed, 1);
        assert_eq!(out.metrics.leases_issued, 1);
    }

    #[test]
    fn parallel_fake_sweep_matches_serial() {
        let cells: Vec<CellSpec> = (0..24)
            .map(|i| cell("STN", PolicyPreset::Baseline, 0.5, i))
            .collect();
        let mut serial_cfg = OrchestratorConfig::new(ExpConfig::quick());
        serial_cfg.threads = 1;
        let serial = orchestrate_with(cells.clone(), None, &serial_cfg, fake_exec);
        let mut par_cfg = OrchestratorConfig::new(ExpConfig::quick());
        par_cfg.threads = 8;
        let parallel = orchestrate_with(cells, None, &par_cfg, fake_exec);
        assert_eq!(serial.entries, parallel.entries);
        assert_eq!(serial.entries.len(), 24);
    }

    #[test]
    fn report_renders_counts_and_counters() {
        let cells = vec![cell("STN", PolicyPreset::Baseline, 0.5, 1)];
        let cfg = OrchestratorConfig::new(ExpConfig::quick());
        let out = orchestrate_with(cells, None, &cfg, fake_exec);
        let report = render_report(&out);
        assert!(report.contains("1 cells resolved (0 failed)"));
        assert!(report.contains("orch.leases.issued = 1"));
    }
}
