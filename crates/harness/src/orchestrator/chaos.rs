//! Orchestrator-level chaos: deterministic worker kills, per-cell
//! panics, and per-cell delays.
//!
//! Same philosophy as the PR 1 simulator fault injector: every decision
//! is a pure function of `(seed, fingerprint, attempt)`, so a chaos run
//! is exactly reproducible and a test can assert the *final result set*
//! is bit-identical to a clean serial run. Injections only fire while
//! `attempt <= chaos_attempts`; with `chaos_attempts` below the queue's
//! retry budget, every tortured cell is guaranteed to converge — the
//! storm proves the machinery loses nothing, not that some cells were
//! expendable.

use sim_core::rng::SplitMix64;
use sim_core::Fingerprint;
use std::time::Duration;

/// Deterministic chaos plan.
#[derive(Debug, Clone, Copy)]
pub struct OrchChaos {
    /// Base seed; every decision derives from it.
    pub seed: u64,
    /// Percent chance a worker *dies* (thread exits, lease left to
    /// expire) on claiming a cell.
    pub kill_worker_pct: u8,
    /// Percent chance a cell's execution panics.
    pub panic_pct: u8,
    /// Percent chance of a pre-execution stall of [`OrchChaos::delay`].
    pub delay_pct: u8,
    /// The injected stall length.
    pub delay: Duration,
    /// Attempts (1-based) that injections may touch; later attempts
    /// always run clean so the sweep converges.
    pub chaos_attempts: u32,
}

impl OrchChaos {
    /// The full storm: kills, panics and delays at once.
    #[must_use]
    pub fn storm(seed: u64) -> Self {
        OrchChaos {
            seed,
            kill_worker_pct: 20,
            panic_pct: 25,
            delay_pct: 20,
            delay: Duration::from_millis(5),
            chaos_attempts: 1,
        }
    }

    /// Panics only (for targeted retry tests).
    #[must_use]
    pub fn panics_only(seed: u64, pct: u8, chaos_attempts: u32) -> Self {
        OrchChaos {
            seed,
            kill_worker_pct: 0,
            panic_pct: pct,
            delay_pct: 0,
            delay: Duration::ZERO,
            chaos_attempts,
        }
    }

    /// One deterministic percent roll in `[0, 100)` per
    /// `(domain, fingerprint, attempt)`.
    fn roll(&self, domain: u64, fp: &str, attempt: u32) -> u64 {
        let mut key = Fingerprint::new();
        key.push_u64(self.seed);
        key.push_u64(domain);
        key.push_str(fp);
        key.push_u64(u64::from(attempt));
        SplitMix64::new(key.finish()).next_u64() % 100
    }

    fn armed(&self, attempt: u32) -> bool {
        attempt <= self.chaos_attempts
    }

    /// Should the worker claiming this lease die?
    #[must_use]
    pub fn should_kill_worker(&self, fp: &str, attempt: u32) -> bool {
        self.armed(attempt) && self.roll(1, fp, attempt) < u64::from(self.kill_worker_pct)
    }

    /// Should this execution panic?
    #[must_use]
    pub fn should_panic(&self, fp: &str, attempt: u32) -> bool {
        self.armed(attempt) && self.roll(2, fp, attempt) < u64::from(self.panic_pct)
    }

    /// Pre-execution stall, if any.
    #[must_use]
    pub fn delay_for(&self, fp: &str, attempt: u32) -> Option<Duration> {
        (self.armed(attempt) && self.roll(3, fp, attempt) < u64::from(self.delay_pct))
            .then_some(self.delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = OrchChaos::storm(7);
        let b = OrchChaos::storm(7);
        for fp in ["aaaa", "bbbb", "cccc"] {
            assert_eq!(a.should_kill_worker(fp, 1), b.should_kill_worker(fp, 1));
            assert_eq!(a.should_panic(fp, 1), b.should_panic(fp, 1));
            assert_eq!(a.delay_for(fp, 1), b.delay_for(fp, 1));
        }
    }

    #[test]
    fn later_attempts_always_run_clean() {
        let c = OrchChaos {
            kill_worker_pct: 100,
            panic_pct: 100,
            delay_pct: 100,
            ..OrchChaos::storm(3)
        };
        assert!(c.should_panic("x", 1));
        assert!(c.should_kill_worker("x", 1));
        assert!(!c.should_panic("x", 2));
        assert!(!c.should_kill_worker("x", 2));
        assert_eq!(c.delay_for("x", 2), None);
    }

    #[test]
    fn storm_hits_some_cells_and_spares_others() {
        let c = OrchChaos::storm(11);
        let fps: Vec<String> = (0..64).map(|i| format!("{i:016x}")).collect();
        let panics = fps.iter().filter(|fp| c.should_panic(fp, 1)).count();
        assert!(panics > 0, "a 25% storm over 64 cells must hit something");
        assert!(panics < 64, "and must not hit everything");
    }
}
