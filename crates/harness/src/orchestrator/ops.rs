//! The orchestrator's live ops plane.
//!
//! [`OpsPlane`] is the glue between the supervisor loop and the
//! observability machinery: each supervisor tick pushes the current
//! [`OrchMetrics`] and [`QueueStatus`] in; the plane keeps
//!
//! * a [`telemetry::MetricsRegistry`] of orchestrator counters and
//!   queue-depth gauges (rendered as Prometheus text for `/metrics`),
//! * a wall-tick [`telemetry::Monitor`] over that registry (the last-N
//!   vitals the flight recorder dumps),
//! * a [`telemetry::FlightRecorder`] whose open spans mirror the
//!   in-flight leases and whose breadcrumbs log panics, deaths and
//!   expiries,
//! * the [`QueueStatus`] itself, rendered as the `/status` JSON
//!   document (schema [`STATUS_SCHEMA`]) with a completion ETA
//!   extrapolated from this run's resolution rate.
//!
//! The plane is shared (`Arc`) between the supervisor and the status
//! server; one mutex guards the state — ticks are a few per second and
//! scrapes are human-driven, so contention is irrelevant.

use super::queue::QueueStatus;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;
use telemetry::expose::{prometheus_text, OpsSource};
use telemetry::{json, FlightRecorder, MetricKind, Monitor, OrchMetrics};

/// Schema marker for the `/status` document.
pub const STATUS_SCHEMA: &str = "cppe-status-v1";

/// Wall-clock milliseconds between ops-plane monitor samples.
const OPS_MONITOR_WALL_MS: u64 = 250;
/// Ops-plane monitor ring capacity (the flight recorder's last-N).
const OPS_MONITOR_CAPACITY: usize = 512;
/// Flight-recorder breadcrumb capacity.
const OPS_BREADCRUMBS: usize = 256;

#[derive(Debug)]
struct OpsState {
    registry: telemetry::MetricsRegistry,
    monitor: Monitor,
    flight: FlightRecorder,
    status: QueueStatus,
    resumed: u64,
    resolved_this_run: usize,
}

/// The shared live-ops state (see module docs).
#[derive(Debug)]
pub struct OpsPlane {
    started: Instant,
    state: Mutex<OpsState>,
}

impl Default for OpsPlane {
    fn default() -> Self {
        Self::new()
    }
}

impl OpsPlane {
    /// Fresh plane; the clock starts now.
    #[must_use]
    pub fn new() -> Self {
        OpsPlane {
            started: Instant::now(),
            state: Mutex::new(OpsState {
                registry: telemetry::MetricsRegistry::new(),
                // Cycle cadence off: the orchestrator has no simulated
                // clock, so wall ticks drive the sampler.
                monitor: Monitor::new(u64::MAX, OPS_MONITOR_WALL_MS, OPS_MONITOR_CAPACITY),
                flight: FlightRecorder::new(OPS_BREADCRUMBS),
                status: QueueStatus::default(),
                resumed: 0,
                resolved_this_run: 0,
            }),
        }
    }

    /// Milliseconds since the plane was created.
    #[must_use]
    pub fn uptime_ms(&self) -> u64 {
        telemetry::saturating_millis(self.started.elapsed())
    }

    /// Supervisor tick: absorb the current counters and queue view.
    /// Reconciles the flight recorder's open spans against the
    /// in-flight leases and lets the monitor sample on its wall
    /// cadence.
    pub fn tick(&self, metrics: &OrchMetrics, status: QueueStatus) {
        let uptime = self.uptime_ms();
        let mut st = self.state.lock().unwrap();
        for (name, value) in metrics.entries() {
            st.registry.set(name, MetricKind::Counter, value);
        }
        // Live lease counters come from the queue (the OrchMetrics
        // copies are only finalized at end of run).
        st.registry
            .set("orch.leases.issued", MetricKind::Counter, status.issued);
        st.registry
            .set("orch.leases.expired", MetricKind::Counter, status.expired);
        st.registry
            .set("orch.retries", MetricKind::Counter, status.retries);
        st.registry.set(
            "orch.cells.pending",
            MetricKind::Gauge,
            status.pending as u64,
        );
        st.registry.set(
            "orch.cells.in_flight",
            MetricKind::Gauge,
            status.in_flight as u64,
        );

        // Open spans mirror the in-flight leases: open the new, close
        // the gone (first-open timestamps survive re-ticks).
        let live: std::collections::BTreeSet<&str> =
            status.leases.iter().map(|l| l.fp.as_str()).collect();
        for lease in &status.leases {
            st.flight.open(
                &lease.fp,
                format!(
                    "{}/{} rate {}% attempt {} epoch {}",
                    lease.app, lease.policy, lease.rate_pct, lease.attempt, lease.epoch
                ),
            );
        }
        let to_close: Vec<String> = st
            .status
            .leases
            .iter()
            .filter(|prev| !live.contains(prev.fp.as_str()))
            .map(|prev| prev.fp.clone())
            .collect();
        for fp in to_close {
            st.flight.close(&fp);
        }

        st.resumed = metrics.cells_resumed;
        st.resolved_this_run = status.done + status.failed;
        st.status = status;
        let OpsState {
            registry, monitor, ..
        } = &mut *st;
        monitor.maybe_sample(uptime, registry);
    }

    /// Append a flight-recorder breadcrumb.
    pub fn note(&self, text: impl Into<String>) {
        self.state.lock().unwrap().flight.note(text);
    }

    /// Dump the flight-recorder dossier (breadcrumbs, open leases, last
    /// monitor snapshots, live queue status) to `path`.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn dump_flight(&self, path: &Path, reason: &str) -> std::io::Result<()> {
        let st = self.state.lock().unwrap();
        st.flight.dump(
            path,
            reason,
            Some(&st.monitor.series()),
            Some(&render_status(
                &st.status,
                self.uptime_ms(),
                st.resumed,
                st.resolved_this_run,
            )),
        )
    }
}

/// Render the `/status` JSON document.
fn render_status(status: &QueueStatus, uptime_ms: u64, resumed: u64, resolved: usize) -> String {
    // ETA: extrapolate from this run's resolution rate. None until the
    // first cell resolves.
    let outstanding = status.pending + status.in_flight;
    let eta_ms = if resolved > 0 && outstanding > 0 {
        format!(
            "{}",
            (uptime_ms as u128 * outstanding as u128 / resolved as u128) as u64
        )
    } else if outstanding == 0 {
        "0".to_string()
    } else {
        "null".to_string()
    };
    let mut s = String::from("{");
    let _ = write!(
        s,
        "\"schema\":{},\"uptime_ms\":{uptime_ms},\
         \"cells\":{{\"done\":{},\"failed\":{},\"resumed\":{resumed},\
         \"pending\":{},\"in_flight\":{}}},\
         \"leases\":{{\"issued\":{},\"expired\":{},\"retries\":{}}},\
         \"eta_ms\":{eta_ms},\"in_flight\":[",
        json::string(STATUS_SCHEMA),
        status.done,
        status.failed,
        status.pending,
        status.in_flight,
        status.issued,
        status.expired,
        status.retries,
    );
    for (i, lease) in status.leases.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"fp\":{},\"app\":{},\"policy\":{},\"rate\":{},\
             \"attempt\":{},\"epoch\":{},\"held_ms\":{}}}",
            json::string(&lease.fp),
            json::string(&lease.app),
            json::string(&lease.policy),
            lease.rate_pct,
            lease.attempt,
            lease.epoch,
            lease.held_ms,
        );
    }
    s.push_str("]}");
    s
}

impl OpsSource for OpsPlane {
    fn metrics_text(&self) -> String {
        let st = self.state.lock().unwrap();
        prometheus_text(st.registry.iter())
    }

    fn status_json(&self) -> String {
        let st = self.state.lock().unwrap();
        render_status(
            &st.status,
            self.uptime_ms(),
            st.resumed,
            st.resolved_this_run,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::queue::LeaseStatus;
    use super::*;

    fn fake_status() -> QueueStatus {
        QueueStatus {
            pending: 3,
            in_flight: 1,
            done: 4,
            failed: 1,
            issued: 6,
            expired: 1,
            retries: 1,
            leases: vec![LeaseStatus {
                fp: "abc123".into(),
                app: "STN".into(),
                policy: "cppe".into(),
                rate_pct: 50,
                attempt: 2,
                epoch: 3,
                held_ms: 40,
            }],
        }
    }

    #[test]
    fn tick_feeds_metrics_and_status() {
        let plane = OpsPlane::new();
        let metrics = OrchMetrics {
            cells_requested: 9,
            cells_completed: 4,
            ..OrchMetrics::default()
        };
        plane.tick(&metrics, fake_status());

        let text = plane.metrics_text();
        assert!(text.contains("# TYPE orch_cells_requested counter"));
        assert!(text.contains("orch_cells_requested 9"));
        assert!(text.contains("orch_cells_pending 3"));
        assert!(text.contains("orch_leases_issued 6"));

        let status = plane.status_json();
        json::validate(&status).unwrap();
        assert!(status.contains(&format!("\"schema\":\"{STATUS_SCHEMA}\"")));
        assert!(status.contains("\"pending\":3"));
        assert!(status.contains("\"fp\":\"abc123\""));
        assert!(status.contains("\"attempt\":2"));
        // 5 resolved, 4 outstanding: ETA is a number, not null.
        assert!(!status.contains("\"eta_ms\":null"));
    }

    #[test]
    fn eta_null_before_first_resolution() {
        let plane = OpsPlane::new();
        let status = QueueStatus {
            pending: 5,
            ..QueueStatus::default()
        };
        plane.tick(&OrchMetrics::default(), status);
        let doc = plane.status_json();
        json::validate(&doc).unwrap();
        assert!(doc.contains("\"eta_ms\":null"));
    }

    #[test]
    fn flight_dump_carries_open_leases_and_monitor() {
        let dir = std::env::temp_dir().join(format!("cppe-ops-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("flightrec.json");
        let plane = OpsPlane::new();
        plane.note("worker died");
        plane.tick(&OrchMetrics::default(), fake_status());
        plane.dump_flight(&path, "test shutdown").unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        let detail = telemetry::flightrec::validate_doc(&body).unwrap();
        assert!(detail.contains("1 open spans"), "{detail}");
        assert!(body.contains("\"abc123\""));
        assert!(body.contains("worker died"));
        assert!(body.contains(STATUS_SCHEMA), "state section attached");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leases_close_when_no_longer_in_flight() {
        let plane = OpsPlane::new();
        plane.tick(&OrchMetrics::default(), fake_status());
        // Next tick: the lease resolved; nothing in flight.
        let mut done = fake_status();
        done.leases.clear();
        done.in_flight = 0;
        done.done += 1;
        plane.tick(&OrchMetrics::default(), done);
        assert_eq!(plane.state.lock().unwrap().flight.open_count(), 0);
    }
}
