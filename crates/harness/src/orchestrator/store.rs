//! Persistent, schema-versioned, append-only result store.
//!
//! Layout under the store directory:
//!
//! * `journal.jsonl` — one JSON object per line, appended (and synced)
//!   as each cell resolves. The tail may be torn by a crash; recovery
//!   salvages the valid prefix.
//! * `snapshot.json` — periodic compaction of the journal, written via
//!   tmp-file + atomic rename so it is always a complete document.
//!
//! On open, the snapshot loads first and the journal replays over it
//! (first occurrence of a fingerprint wins — entries are immutable once
//! recorded). [`ResultStore::compact`] folds the journal into a fresh
//! snapshot and truncates it. Every entry carries the schema version
//! ([`SCHEMA`](super::SCHEMA)); a store written by an incompatible
//! schema is refused rather than half-read.

use super::{CellEntry, SCHEMA};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use telemetry::json;

/// How to react to a damaged journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Refuse to open: surface the damage as an error.
    Strict,
    /// Keep the valid prefix, truncate the damage (atomically), and
    /// report what was dropped.
    Salvage,
}

/// Store open/append errors.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A journal line that is not valid JSON / not a valid entry.
    Corrupt {
        /// 1-based journal line number.
        line: usize,
        /// Parser's description of the damage.
        reason: String,
    },
    /// The snapshot (or a journal entry) was written by a different
    /// schema version.
    Schema {
        /// The version string found.
        found: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "result store I/O error: {e}"),
            StoreError::Corrupt { line, reason } => write!(
                f,
                "journal corrupt at line {line}: {reason} \
                 (re-open with salvage to keep the valid prefix)"
            ),
            StoreError::Schema { found } => write!(
                f,
                "result store schema mismatch: found {found:?}, expected {SCHEMA:?} \
                 (delete the store or rerun with the matching build)"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// What a salvage dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageReport {
    /// First damaged journal line (1-based).
    pub line: usize,
    /// Why it failed to parse.
    pub reason: String,
    /// Bytes truncated from the journal.
    pub dropped_bytes: u64,
}

/// What `open` found on disk.
#[derive(Debug, Clone, Default)]
pub struct OpenReport {
    /// Entries loaded from `snapshot.json`.
    pub from_snapshot: usize,
    /// Entries replayed from `journal.jsonl`.
    pub from_journal: usize,
    /// Duplicate-fingerprint journal lines skipped (first wins).
    pub duplicate_lines: usize,
    /// Damage found and truncated (salvage mode only).
    pub salvaged: Option<SalvageReport>,
}

/// The persistent result store.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    journal: std::fs::File,
    entries: BTreeMap<String, CellEntry>,
    /// Lines appended by this process.
    pub appends: u64,
    /// Bytes appended by this process.
    pub bytes_appended: u64,
    /// Compactions performed by this process.
    pub compactions: u64,
}

impl ResultStore {
    fn journal_path(dir: &Path) -> PathBuf {
        dir.join("journal.jsonl")
    }

    fn snapshot_path(dir: &Path) -> PathBuf {
        dir.join("snapshot.json")
    }

    /// Open (creating if absent) the store under `dir`.
    ///
    /// # Errors
    /// I/O failures; journal damage in [`Recovery::Strict`] mode; a
    /// snapshot from another schema version in either mode.
    pub fn open(dir: &Path, recovery: Recovery) -> Result<(Self, OpenReport), StoreError> {
        std::fs::create_dir_all(dir)?;
        let mut report = OpenReport::default();
        let mut entries = BTreeMap::new();

        // 1. Snapshot (always a complete document thanks to the atomic
        // rename; a torn snapshot can only mean foreign interference,
        // which Strict and Salvage both refuse to guess around).
        let snap_path = Self::snapshot_path(dir);
        if let Ok(doc) = std::fs::read_to_string(&snap_path) {
            let v = json::parse(&doc).map_err(|reason| StoreError::Corrupt { line: 0, reason })?;
            let schema = v.get("schema").and_then(json::Value::as_str).unwrap_or("");
            if schema != SCHEMA {
                return Err(StoreError::Schema {
                    found: schema.to_string(),
                });
            }
            for cell in v
                .get("cells")
                .and_then(json::Value::as_array)
                .unwrap_or(&[])
            {
                let entry = CellEntry::from_json(cell)
                    .map_err(|reason| StoreError::Corrupt { line: 0, reason })?;
                entries.insert(entry.fp.clone(), entry);
                report.from_snapshot += 1;
            }
        }

        // 2. Journal replay, salvaging or refusing on first damage.
        let journal_path = Self::journal_path(dir);
        let raw = std::fs::read_to_string(&journal_path).unwrap_or_default();
        let mut valid_bytes = 0usize;
        let mut damage: Option<(usize, String)> = None;
        for (i, line) in raw.split_inclusive('\n').enumerate() {
            let text = line.trim_end_matches('\n');
            if text.trim().is_empty() {
                valid_bytes += line.len();
                continue;
            }
            let parsed = json::parse(text).and_then(|v| {
                let ver = v.get("v").and_then(json::Value::as_str).unwrap_or("");
                if ver != SCHEMA {
                    return Err(format!("entry schema {ver:?}, expected {SCHEMA:?}"));
                }
                CellEntry::from_json(&v)
            });
            match parsed {
                Ok(entry) => {
                    if entries.contains_key(&entry.fp) {
                        report.duplicate_lines += 1;
                    } else {
                        entries.insert(entry.fp.clone(), entry);
                        report.from_journal += 1;
                    }
                    valid_bytes += line.len();
                }
                Err(reason) => {
                    damage = Some((i + 1, reason));
                    break;
                }
            }
        }
        if let Some((line, reason)) = damage {
            match recovery {
                Recovery::Strict => return Err(StoreError::Corrupt { line, reason }),
                Recovery::Salvage => {
                    let dropped_bytes = (raw.len() - valid_bytes) as u64;
                    // Rewrite the journal to its valid prefix via the
                    // same tmp+rename discipline as the snapshot.
                    telemetry::export::write_atomic(&journal_path, &raw[..valid_bytes])?;
                    report.salvaged = Some(SalvageReport {
                        line,
                        reason,
                        dropped_bytes,
                    });
                }
            }
        }

        let journal = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)?;
        Ok((
            ResultStore {
                dir: dir.to_path_buf(),
                journal,
                entries,
                appends: 0,
                bytes_appended: 0,
                compactions: 0,
            },
            report,
        ))
    }

    /// Append one resolved cell. Returns `false` (writing nothing)
    /// when the fingerprint is already present — entries are immutable
    /// and duplicates would double-count on replay.
    ///
    /// # Errors
    /// Underlying journal I/O.
    pub fn append(&mut self, entry: CellEntry) -> std::io::Result<bool> {
        if self.entries.contains_key(&entry.fp) {
            return Ok(false);
        }
        let mut line = entry.to_json();
        line.push('\n');
        self.journal.write_all(line.as_bytes())?;
        // One fsync per cell: cells take seconds of simulation each,
        // so durability here is free relative to the work it protects.
        self.journal.sync_data()?;
        self.appends += 1;
        self.bytes_appended += line.len() as u64;
        self.entries.insert(entry.fp.clone(), entry);
        Ok(true)
    }

    /// Fold everything into a fresh `snapshot.json` (atomic rename)
    /// and truncate the journal.
    ///
    /// # Errors
    /// Underlying I/O.
    pub fn compact(&mut self) -> std::io::Result<()> {
        let mut doc = format!("{{\"schema\":{},\"cells\":[", json::string(SCHEMA));
        for (i, entry) in self.entries.values().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&entry.to_json());
        }
        doc.push_str("]}");
        telemetry::export::write_atomic(&Self::snapshot_path(&self.dir), &doc)?;
        // Snapshot is durable; the journal can restart empty. Truncate
        // through a fresh handle, then swap the append handle over.
        self.journal = std::fs::File::create(Self::journal_path(&self.dir))?;
        self.compactions += 1;
        Ok(())
    }

    /// Is this fingerprint already resolved?
    #[must_use]
    pub fn contains(&self, fp: &str) -> bool {
        self.entries.contains_key(fp)
    }

    /// All resolved entries, keyed by fingerprint.
    #[must_use]
    pub fn entries(&self) -> &BTreeMap<String, CellEntry> {
        &self.entries
    }

    /// Number of resolved entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}
