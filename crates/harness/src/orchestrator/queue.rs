//! Leased work queue: the orchestrator's scheduling core.
//!
//! Every pending cell is handed to a worker under a **lease with a
//! deadline**. A worker that panics, hangs past the deadline, or is
//! killed never acknowledges its lease; the supervisor (or any other
//! worker calling [`LeaseQueue::claim`]) expires it and the cell goes
//! back to pending with a backoff — up to a bounded number of attempts,
//! after which the cell is marked `Failed` with its last error. A cell
//! therefore always ends in exactly one of two states, `Done` or
//! `Failed`; nothing is ever silently dropped.
//!
//! The queue is a plain single-lock state machine (the caller wraps it
//! in a `Mutex`): cells are claimed a few times per *second*, not per
//! microsecond, so clarity beats lock-free cleverness here — unlike the
//! simulator hot loops this orchestrates.

use super::CellSpec;
use std::time::{Duration, Instant};

/// Lease/retry tuning.
#[derive(Debug, Clone, Copy)]
pub struct LeaseConfig {
    /// How long a worker may hold a cell before the lease expires.
    pub lease: Duration,
    /// Total attempts a cell gets (first run + retries) before it is
    /// recorded as `Failed`.
    pub max_attempts: u32,
    /// Delay before an expired/panicked cell is re-issued.
    pub backoff: Duration,
    /// Cap on concurrently leased cells (pressure valve; claims beyond
    /// it are told to wait even when workers are idle).
    pub max_in_flight: usize,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig {
            // Generous for real sweeps; chaos tests shrink it to
            // milliseconds to force the expiry paths.
            lease: Duration::from_secs(600),
            max_attempts: 3,
            backoff: Duration::from_millis(10),
            max_in_flight: usize::MAX,
        }
    }
}

/// What a caller gets back from [`LeaseQueue::claim`].
#[derive(Debug)]
pub enum Claim {
    /// A cell to execute under lease.
    Lease(Lease),
    /// Nothing claimable right now (backoffs pending, in-flight cap
    /// hit, or leases outstanding) — retry after roughly this long.
    Wait(Duration),
    /// Every cell is `Done` or `Failed`; the pool can exit.
    Drained,
}

/// One issued lease.
#[derive(Debug, Clone)]
pub struct Lease {
    /// The cell to run.
    pub spec: CellSpec,
    /// Its config fingerprint (result-store key).
    pub fp: String,
    /// 1-based attempt number this lease represents.
    pub attempt: u32,
    /// Lease epoch: increments on every (re-)issue of this cell, so a
    /// stale failure report from a superseded lease can be told apart
    /// from the current one.
    pub epoch: u32,
}

/// Verdict for a completion report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompleteVerdict {
    /// First completion of this cell: record it.
    Accepted {
        /// Attempts the cell consumed (including this one).
        attempts: u32,
    },
    /// The cell was already resolved (a slow worker finished after its
    /// lease expired and the cell was re-run, or after it was marked
    /// `Failed`): discard.
    Stale,
}

/// Verdict for a failure (panic) report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailVerdict {
    /// The cell was re-queued for another attempt.
    Retry {
        /// Attempts consumed so far.
        attempt: u32,
    },
    /// The retry budget is spent; the cell is now `Failed`.
    Exhausted {
        /// Total attempts consumed.
        attempts: u32,
    },
    /// The report came from a superseded lease (its epoch no longer
    /// matches — the cell was already expired and re-issued): ignore.
    Stale,
}

#[derive(Debug)]
enum SlotState {
    Pending,
    Leased { deadline: Instant, epoch: u32 },
    Done,
    Failed { error: String },
}

#[derive(Debug)]
struct Slot {
    spec: CellSpec,
    fp: String,
    /// Attempts started (1-based after the first lease).
    attempts: u32,
    /// Earliest instant this slot may be (re-)leased.
    not_before: Instant,
    state: SlotState,
    /// Monotonic lease counter for this slot.
    epochs: u32,
    /// Last failure message (panic text / expiry note).
    last_error: Option<String>,
}

/// One in-flight lease as reported by [`LeaseQueue::status`].
#[derive(Debug, Clone)]
pub struct LeaseStatus {
    /// Config fingerprint.
    pub fp: String,
    /// Workload abbreviation.
    pub app: String,
    /// Policy label.
    pub policy: String,
    /// Oversubscription rate in percent.
    pub rate_pct: u32,
    /// 1-based attempt this lease represents.
    pub attempt: u32,
    /// Lease epoch.
    pub epoch: u32,
    /// How long the lease has been held (ms).
    pub held_ms: u64,
}

/// A point-in-time view of the queue (the `/status` endpoint's and the
/// flight recorder's source of truth).
#[derive(Debug, Clone, Default)]
pub struct QueueStatus {
    /// Cells waiting to be leased.
    pub pending: usize,
    /// Cells currently leased.
    pub in_flight: usize,
    /// Cells resolved `Done`.
    pub done: usize,
    /// Cells resolved `Failed`.
    pub failed: usize,
    /// Leases handed out so far.
    pub issued: u64,
    /// Leases expired so far.
    pub expired: u64,
    /// Re-issues so far.
    pub retries: u64,
    /// Detail for every in-flight lease.
    pub leases: Vec<LeaseStatus>,
}

/// The leased work queue (wrap in a `Mutex` to share).
#[derive(Debug)]
pub struct LeaseQueue {
    slots: Vec<Slot>,
    cfg: LeaseConfig,
    in_flight: usize,
    /// Leases handed out.
    pub issued: u64,
    /// Leases that expired past their deadline.
    pub expired: u64,
    /// Re-issues after a panic or expiry.
    pub retries: u64,
}

impl LeaseQueue {
    /// Queue over `(cell, fingerprint)` pairs (fingerprints are
    /// computed once by the orchestrator and reused everywhere).
    #[must_use]
    pub fn new(cells: Vec<(CellSpec, String)>, cfg: LeaseConfig, now: Instant) -> Self {
        let slots = cells
            .into_iter()
            .map(|(spec, fp)| Slot {
                spec,
                fp,
                attempts: 0,
                not_before: now,
                state: SlotState::Pending,
                epochs: 0,
                last_error: None,
            })
            .collect();
        LeaseQueue {
            slots,
            cfg,
            in_flight: 0,
            issued: 0,
            expired: 0,
            retries: 0,
        }
    }

    /// Expire overdue leases: each goes back to pending (with backoff)
    /// or to `Failed` when its attempts are spent. Returns how many
    /// expired. Called from `claim` and from the supervisor tick, so a
    /// fleet of hung workers cannot stall expiry.
    pub fn expire_overdue(&mut self, now: Instant) -> usize {
        let mut n = 0;
        for slot in &mut self.slots {
            let SlotState::Leased { deadline, .. } = slot.state else {
                continue;
            };
            if deadline > now {
                continue;
            }
            n += 1;
            self.expired += 1;
            self.in_flight -= 1;
            let err = format!(
                "lease expired after {:?} (attempt {}/{})",
                self.cfg.lease, slot.attempts, self.cfg.max_attempts
            );
            slot.last_error = Some(err.clone());
            if slot.attempts >= self.cfg.max_attempts {
                slot.state = SlotState::Failed { error: err };
            } else {
                slot.state = SlotState::Pending;
                slot.not_before = now + self.cfg.backoff;
            }
        }
        n
    }

    /// Claim the next runnable cell.
    pub fn claim(&mut self, now: Instant) -> Claim {
        self.expire_overdue(now);
        if self.remaining() == 0 {
            return Claim::Drained;
        }
        if self.in_flight < self.cfg.max_in_flight {
            // Oldest-first scan: cells are few (thousands at most) and
            // claims are rare, so O(n) is plenty.
            let claimable = self
                .slots
                .iter()
                .position(|s| matches!(s.state, SlotState::Pending) && s.not_before <= now);
            if let Some(idx) = claimable {
                let slot = &mut self.slots[idx];
                slot.attempts += 1;
                slot.epochs += 1;
                if slot.attempts > 1 {
                    self.retries += 1;
                }
                slot.state = SlotState::Leased {
                    deadline: now + self.cfg.lease,
                    epoch: slot.epochs,
                };
                self.in_flight += 1;
                self.issued += 1;
                return Claim::Lease(Lease {
                    spec: slot.spec.clone(),
                    fp: slot.fp.clone(),
                    attempt: slot.attempts,
                    epoch: slot.epochs,
                });
            }
        }
        // Nothing claimable yet: wait until the nearest backoff end or
        // lease deadline (bounded below so a caller never busy-spins).
        let next = self
            .slots
            .iter()
            .filter_map(|s| match s.state {
                SlotState::Pending => Some(s.not_before),
                SlotState::Leased { deadline, .. } => Some(deadline),
                _ => None,
            })
            .min();
        let wait = next
            .map(|t| t.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(1))
            .max(Duration::from_millis(1));
        Claim::Wait(wait)
    }

    /// Report a completed cell. Accepted whenever the cell is not yet
    /// resolved — even from an expired lease (the computation is
    /// deterministic, so a slow worker's result is as good as a
    /// re-issued one's, and accepting it saves the re-run).
    pub fn complete(&mut self, fp: &str) -> CompleteVerdict {
        let Some(slot) = self.slots.iter_mut().find(|s| s.fp == fp) else {
            return CompleteVerdict::Stale;
        };
        match slot.state {
            SlotState::Done | SlotState::Failed { .. } => CompleteVerdict::Stale,
            SlotState::Leased { .. } => {
                self.in_flight -= 1;
                slot.state = SlotState::Done;
                CompleteVerdict::Accepted {
                    attempts: slot.attempts,
                }
            }
            SlotState::Pending => {
                slot.state = SlotState::Done;
                CompleteVerdict::Accepted {
                    attempts: slot.attempts,
                }
            }
        }
    }

    /// Report a failed attempt (contained panic). Only honoured from
    /// the lease's current epoch — a superseded worker cannot burn the
    /// re-issued attempt's budget.
    pub fn fail_attempt(&mut self, fp: &str, epoch: u32, error: &str, now: Instant) -> FailVerdict {
        let max_attempts = self.cfg.max_attempts;
        let backoff = self.cfg.backoff;
        let Some(slot) = self.slots.iter_mut().find(|s| s.fp == fp) else {
            return FailVerdict::Stale;
        };
        match slot.state {
            SlotState::Leased { epoch: e, .. } if e == epoch => {
                self.in_flight -= 1;
                slot.last_error = Some(error.to_string());
                if slot.attempts >= max_attempts {
                    slot.state = SlotState::Failed {
                        error: error.to_string(),
                    };
                    FailVerdict::Exhausted {
                        attempts: slot.attempts,
                    }
                } else {
                    slot.state = SlotState::Pending;
                    slot.not_before = now + backoff;
                    FailVerdict::Retry {
                        attempt: slot.attempts,
                    }
                }
            }
            _ => FailVerdict::Stale,
        }
    }

    /// Cells not yet resolved (`Pending` or `Leased`).
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s.state, SlotState::Pending | SlotState::Leased { .. }))
            .count()
    }

    /// Snapshot the queue for live exposition. `now` anchors the
    /// held-time computation (a lease's start is its deadline minus the
    /// configured lease duration).
    #[must_use]
    pub fn status(&self, now: Instant) -> QueueStatus {
        let mut status = QueueStatus {
            issued: self.issued,
            expired: self.expired,
            retries: self.retries,
            ..QueueStatus::default()
        };
        for slot in &self.slots {
            match slot.state {
                SlotState::Pending => status.pending += 1,
                SlotState::Done => status.done += 1,
                SlotState::Failed { .. } => status.failed += 1,
                SlotState::Leased { deadline, epoch } => {
                    status.in_flight += 1;
                    let held_ms = deadline
                        .checked_sub(self.cfg.lease)
                        .map_or(0, |start| now.saturating_duration_since(start).as_millis())
                        as u64;
                    status.leases.push(LeaseStatus {
                        fp: slot.fp.clone(),
                        app: slot.spec.spec.abbr.to_string(),
                        policy: slot.spec.preset.label(),
                        rate_pct: (slot.spec.rate * 100.0).round() as u32,
                        attempt: slot.attempts,
                        epoch,
                        held_ms,
                    });
                }
            }
        }
        status
    }

    /// Every cell that ended `Failed`, with its error and attempt
    /// count — the orchestrator records these so no cell is ever
    /// missing from the result set.
    #[must_use]
    pub fn failed_cells(&self) -> Vec<(CellSpec, String, String, u32)> {
        self.slots
            .iter()
            .filter_map(|s| match &s.state {
                SlotState::Failed { error } => {
                    Some((s.spec.clone(), s.fp.clone(), error.clone(), s.attempts))
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::CellSpec;
    use super::*;
    use cppe::presets::PolicyPreset;
    use workloads::registry;

    fn cells(n: usize) -> Vec<(CellSpec, String)> {
        let spec = registry::by_abbr("STN").unwrap();
        (0..n)
            .map(|i| {
                let c = CellSpec {
                    spec: spec.clone(),
                    preset: PolicyPreset::Baseline,
                    rate: 0.5,
                    seed: i as u64,
                    scale: 0.25,
                };
                let fp = c.fingerprint();
                (c, fp)
            })
            .collect()
    }

    fn cfg_ms(lease_ms: u64, max_attempts: u32) -> LeaseConfig {
        LeaseConfig {
            lease: Duration::from_millis(lease_ms),
            max_attempts,
            backoff: Duration::from_millis(0),
            max_in_flight: usize::MAX,
        }
    }

    #[test]
    fn claims_then_drains() {
        let now = Instant::now();
        let mut q = LeaseQueue::new(cells(2), cfg_ms(1000, 3), now);
        let Claim::Lease(a) = q.claim(now) else {
            panic!("expected lease")
        };
        let Claim::Lease(b) = q.claim(now) else {
            panic!("expected lease")
        };
        assert_ne!(a.fp, b.fp);
        assert!(matches!(q.claim(now), Claim::Wait(_)));
        assert_eq!(q.complete(&a.fp), CompleteVerdict::Accepted { attempts: 1 });
        assert_eq!(q.complete(&b.fp), CompleteVerdict::Accepted { attempts: 1 });
        assert!(matches!(q.claim(now), Claim::Drained));
        assert_eq!(q.issued, 2);
        assert_eq!(q.expired, 0);
    }

    #[test]
    fn expiry_requeues_then_fails_with_error() {
        let now = Instant::now();
        let mut q = LeaseQueue::new(cells(1), cfg_ms(5, 2), now);
        let Claim::Lease(l1) = q.claim(now) else {
            panic!()
        };
        // Past the deadline: re-issued (attempt 2, new epoch).
        let later = now + Duration::from_millis(6);
        let Claim::Lease(l2) = q.claim(later) else {
            panic!()
        };
        assert_eq!(l2.fp, l1.fp);
        assert_eq!(l2.attempt, 2);
        assert!(l2.epoch > l1.epoch);
        assert_eq!(q.expired, 1);
        assert_eq!(q.retries, 1);
        // Second expiry exhausts the budget: Failed, never re-issued.
        let even_later = later + Duration::from_millis(6);
        assert!(matches!(q.claim(even_later), Claim::Drained));
        let failed = q.failed_cells();
        assert_eq!(failed.len(), 1);
        assert!(failed[0].2.contains("lease expired"));
        assert_eq!(failed[0].3, 2);
    }

    #[test]
    fn late_completion_of_expired_lease_is_accepted_once() {
        let now = Instant::now();
        let mut q = LeaseQueue::new(cells(1), cfg_ms(5, 3), now);
        let Claim::Lease(l1) = q.claim(now) else {
            panic!()
        };
        let later = now + Duration::from_millis(6);
        let Claim::Lease(_l2) = q.claim(later) else {
            panic!()
        };
        // The original (slow) worker finishes first: accepted.
        assert!(matches!(
            q.complete(&l1.fp),
            CompleteVerdict::Accepted { .. }
        ));
        // The re-issued worker finishes second: stale.
        assert_eq!(q.complete(&l1.fp), CompleteVerdict::Stale);
        assert!(matches!(q.claim(later), Claim::Drained));
    }

    #[test]
    fn panic_retries_until_exhausted() {
        let now = Instant::now();
        let mut q = LeaseQueue::new(cells(1), cfg_ms(1000, 2), now);
        let Claim::Lease(l1) = q.claim(now) else {
            panic!()
        };
        assert_eq!(
            q.fail_attempt(&l1.fp, l1.epoch, "boom", now),
            FailVerdict::Retry { attempt: 1 }
        );
        let Claim::Lease(l2) = q.claim(now) else {
            panic!()
        };
        assert_eq!(
            q.fail_attempt(&l2.fp, l2.epoch, "boom again", now),
            FailVerdict::Exhausted { attempts: 2 }
        );
        let failed = q.failed_cells();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].2, "boom again");
    }

    #[test]
    fn stale_epoch_failure_is_ignored() {
        let now = Instant::now();
        let mut q = LeaseQueue::new(cells(1), cfg_ms(5, 3), now);
        let Claim::Lease(l1) = q.claim(now) else {
            panic!()
        };
        let later = now + Duration::from_millis(6);
        let Claim::Lease(l2) = q.claim(later) else {
            panic!()
        };
        // Old epoch's failure must not burn the new attempt's budget.
        assert_eq!(
            q.fail_attempt(&l1.fp, l1.epoch, "late panic", later),
            FailVerdict::Stale
        );
        assert!(matches!(
            q.fail_attempt(&l2.fp, l2.epoch, "real", later),
            FailVerdict::Retry { .. }
        ));
    }

    #[test]
    fn status_reports_counts_and_held_leases() {
        let now = Instant::now();
        let mut q = LeaseQueue::new(cells(3), cfg_ms(1000, 3), now);
        let Claim::Lease(a) = q.claim(now) else {
            panic!()
        };
        q.complete(&a.fp);
        let Claim::Lease(b) = q.claim(now) else {
            panic!()
        };
        let s = q.status(now + Duration::from_millis(5));
        assert_eq!(s.done, 1);
        assert_eq!(s.in_flight, 1);
        assert_eq!(s.pending, 1);
        assert_eq!(s.failed, 0);
        assert_eq!(s.issued, 2);
        assert_eq!(s.leases.len(), 1);
        assert_eq!(s.leases[0].fp, b.fp);
        assert_eq!(s.leases[0].app, "STN");
        assert_eq!(s.leases[0].policy, "baseline");
        assert_eq!(s.leases[0].rate_pct, 50);
        assert_eq!(s.leases[0].attempt, 1);
        assert!(s.leases[0].held_ms >= 5, "held {} ms", s.leases[0].held_ms);
    }

    #[test]
    fn max_in_flight_caps_leases() {
        let now = Instant::now();
        let cfg = LeaseConfig {
            max_in_flight: 1,
            ..cfg_ms(1000, 3)
        };
        let mut q = LeaseQueue::new(cells(2), cfg, now);
        let Claim::Lease(a) = q.claim(now) else {
            panic!()
        };
        assert!(matches!(q.claim(now), Claim::Wait(_)));
        q.complete(&a.fp);
        assert!(matches!(q.claim(now), Claim::Lease(_)));
    }
}
