//! Experiment runner: one (workload × policy × oversubscription) cell.
//!
//! §VI methodology: "We first used an unlimited memory capacity to
//! determine the total memory footprint of each application. Next, we
//! reduced the memory size ... to two oversubscription rates: 75% and
//! 50%, so that 75% and 50% of each application's footprint fits in the
//! GPU memory." Capacity here is exactly `rate × footprint`, rounded to
//! whole chunks.

use cppe::presets::PolicyPreset;
use gmmu::types::PAGES_PER_CHUNK;
use gpu::{simulate, GpuConfig, RunResult};
use telemetry::TraceFormat;
use workloads::WorkloadSpec;

/// The two oversubscription rates of the evaluation.
pub const RATES: [f64; 2] = [0.75, 0.50];

/// Shared experiment settings.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Footprint scale (1.0 = Table II sizes; smaller for quick runs —
    /// capacity always scales with the footprint, so oversubscription
    /// behaviour is preserved).
    pub scale: f64,
    /// GPU model.
    pub gpu: GpuConfig,
    /// Seed for stochastic policies (Random eviction).
    pub seed: u64,
    /// Which trace artifacts to export when `gpu.trace` is enabled
    /// (`--trace-format`; ignored with tracing off).
    pub trace_format: TraceFormat,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            // Full Table II footprints. One modelled warp slot per SM
            // keeps the lane count (28) below the chunk count of even
            // the smallest benchmark AND below MHPE's forward-distance
            // ceiling (T3 = 32), so the MRU victim window can learn to
            // skip past the chunks the SMs are actively consuming —
            // the regime the paper's 2..=8/32 constants assume.
            scale: 1.0,
            gpu: GpuConfig {
                warps_per_sm: 1,
                ..GpuConfig::default()
            },
            seed: 0xC0FFEE,
            trace_format: TraceFormat::Csv,
        }
    }
}

impl ExpConfig {
    /// Fast settings for tests and smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        ExpConfig {
            scale: 0.5,
            ..ExpConfig::default()
        }
    }
}

/// GPU memory capacity (in pages) for a workload at an oversubscription
/// rate: `rate × footprint`, whole chunks, at least two chunks.
#[must_use]
pub fn capacity_pages(spec: &WorkloadSpec, rate: f64, scale: f64) -> u32 {
    let pages = spec.pages(scale) as f64;
    let cap = (pages * rate).round() as u64;
    let chunks = (cap / PAGES_PER_CHUNK).max(2);
    (chunks * PAGES_PER_CHUNK) as u32
}

/// Run one cell of the evaluation matrix.
#[must_use]
pub fn run_cell(
    spec: &WorkloadSpec,
    preset: PolicyPreset,
    rate: f64,
    cfg: &ExpConfig,
) -> RunResult {
    let lanes = cfg.gpu.lanes();
    let streams: Vec<_> = (0..lanes)
        .map(|l| spec.lane_items(l, lanes, cfg.scale))
        .collect();
    let capacity = capacity_pages(spec, rate, cfg.scale);
    let engine = preset.build(cfg.seed ^ spec.seed);
    simulate(&cfg.gpu, engine, &streams, capacity, spec.pages(cfg.scale))
}

/// Speedup of `policy` over `base` (cycles ratio). `None` when either
/// run failed to complete — the caller decides how to render an 'X'.
#[must_use]
pub fn speedup(base: &RunResult, policy: &RunResult) -> Option<f64> {
    if !base.completed() || !policy.completed() || policy.cycles == 0 {
        return None;
    }
    Some(base.cycles as f64 / policy.cycles as f64)
}

/// Geometric mean of speedups (the paper reports averages across
/// benchmarks); skips `None`s.
#[must_use]
pub fn geomean(xs: &[Option<f64>]) -> Option<f64> {
    let vals: Vec<f64> = xs.iter().flatten().copied().filter(|v| *v > 0.0).collect();
    if vals.is_empty() {
        return None;
    }
    let log_sum: f64 = vals.iter().map(|v| v.ln()).sum();
    Some((log_sum / vals.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::registry;

    #[test]
    fn capacity_is_rate_times_footprint() {
        let w = registry::by_abbr("STN").unwrap();
        let pages = w.pages(0.25); // 4 MB * 0.25 = 256 pages
        assert_eq!(pages, 256);
        assert_eq!(capacity_pages(&w, 0.5, 0.25), 128);
        assert_eq!(capacity_pages(&w, 0.75, 0.25), 192);
    }

    #[test]
    fn capacity_floor_two_chunks() {
        let w = registry::by_abbr("STN").unwrap();
        assert_eq!(capacity_pages(&w, 0.01, 0.25), 32);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[None, None]), None);
        let g = geomean(&[Some(2.0), Some(8.0)]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        let g = geomean(&[Some(2.0), None, Some(8.0)]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn run_cell_smoke() {
        let cfg = ExpConfig::quick();
        let w = registry::by_abbr("STN").unwrap();
        let r = run_cell(&w, PolicyPreset::Baseline, 0.5, &cfg);
        assert!(r.accesses > 0);
        assert!(r.engine.faults > 0);
    }
}
