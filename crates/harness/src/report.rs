//! Plain-text table / CSV emitters for the experiment binaries.
//!
//! CSV rendering delegates to `telemetry`'s schema-checked
//! [`CsvWriter`], so every CSV the workspace emits shares one escaping
//! implementation.

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i].saturating_sub(c.len());
                // Right-align numeric-looking cells, left-align labels.
                let numeric = c
                    .chars()
                    .next()
                    .is_some_and(|ch| ch.is_ascii_digit() || ch == '-' || ch == 'X');
                if numeric && i > 0 {
                    for _ in 0..pad {
                        out.push(' ');
                    }
                    out.push_str(c);
                } else {
                    out.push_str(c);
                    if i + 1 < cols {
                        for _ in 0..pad {
                            out.push(' ');
                        }
                    }
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        for _ in 0..total {
            out.push('-');
        }
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (escaped and schema-checked by the shared
    /// `telemetry` writer).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut w = telemetry::CsvWriter::new(&self.header);
        for row in &self.rows {
            w.row(row);
        }
        w.finish()
    }
}

/// Format an optional speedup: "1.56" or "X" (crashed / not completed).
#[must_use]
pub fn fmt_speedup(s: Option<f64>) -> String {
    match s {
        Some(v) => format!("{v:.2}"),
        None => "X".to_string(),
    }
}

/// Shared ring-drop warning section: the telemetry loss banner followed
/// by a newline, or the empty string for a lossless trace. Every report
/// renderer (timeline, chaos, profile, audit) goes through this one
/// helper so a truncated artifact is flagged identically everywhere.
#[must_use]
pub fn loss_section(t: &telemetry::RunTelemetry) -> String {
    telemetry::export::loss_banner(t).map_or_else(String::new, |b| format!("{b}\n"))
}

/// Write `content` under `results/<name>` (best-effort; the text is
/// always also printed by the binaries). Written via tmp-file + atomic
/// rename so a killed binary leaves either the previous artifact or
/// the new one — never a torn half-file a CI diff would misread.
pub fn save(name: &str, content: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    telemetry::export::write_atomic(&path, content)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["app", "speedup"]);
        t.row(vec!["SRD".into(), "1.50".into()]);
        t.row(vec!["HSD".into(), "10.97".into()]);
        let s = t.render();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].ends_with("10.97"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
        telemetry::csv::validate(&csv).expect("round-trips through the shared parser");
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(Some(1.564)), "1.56");
        assert_eq!(fmt_speedup(None), "X");
    }

    #[test]
    fn loss_section_empty_for_lossless_and_flags_drops() {
        let clean = telemetry::RunTelemetry::default();
        assert_eq!(loss_section(&clean), "");
        let lossy = telemetry::RunTelemetry {
            dropped_events: 3,
            ..telemetry::RunTelemetry::default()
        };
        let s = loss_section(&lossy);
        assert!(s.starts_with("WARNING"));
        assert!(s.ends_with('\n'));
    }
}
