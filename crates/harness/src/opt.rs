//! Offline OPT (Belady) bound at chunk granularity.
//!
//! Neither the paper nor any real driver can use Belady's algorithm —
//! it needs the future — but it is the natural yardstick for eviction
//! policies: given a linearized page-access sequence and a chunk
//! capacity, [`opt_chunk_faults`] computes the minimum number of chunk
//! faults any eviction policy could achieve (with whole-chunk
//! migration, i.e. a fault on any page of a non-resident chunk migrates
//! the chunk).
//!
//! The simulator's true access order is timing-dependent; for the bound
//! we linearize lane streams by block-round-robin merge
//! ([`linearize`]), which matches the in-order block dispatch the
//! workloads model. The bound is therefore approximate with respect to
//! simulated time but exact for the linearized order.

use gmmu::types::ChunkId;
use sim_core::FxHashMap;
use std::collections::BinaryHeap;
use workloads::{AccessStep, LaneItem};

/// Linearize per-lane streams into one global access order by
/// round-robin over lanes between barriers (approximating concurrent
/// lockstep execution).
#[must_use]
pub fn linearize(streams: &[Vec<LaneItem>]) -> Vec<AccessStep> {
    let mut out = Vec::new();
    let mut idx = vec![0usize; streams.len()];
    loop {
        let mut progressed = false;
        let mut all_at_barrier_or_end = true;
        for (lane, stream) in streams.iter().enumerate() {
            match stream.get(idx[lane]) {
                Some(LaneItem::Access(a)) => {
                    out.push(*a);
                    idx[lane] += 1;
                    progressed = true;
                    all_at_barrier_or_end = false;
                }
                Some(LaneItem::Barrier) => {}
                None => {}
            }
        }
        if all_at_barrier_or_end {
            // Release barriers in lockstep.
            let mut any = false;
            for (lane, stream) in streams.iter().enumerate() {
                if matches!(stream.get(idx[lane]), Some(LaneItem::Barrier)) {
                    idx[lane] += 1;
                    any = true;
                }
            }
            if !any {
                break; // every lane is drained
            }
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    out
}

/// Belady's algorithm over chunks: minimum chunk faults for the given
/// linearized access order with `capacity_chunks` resident chunks.
///
/// # Panics
/// Panics if `capacity_chunks` is zero.
#[must_use]
pub fn opt_chunk_faults(accesses: &[AccessStep], capacity_chunks: usize) -> u64 {
    assert!(capacity_chunks > 0, "OPT needs capacity");
    // Precompute, for every position, the next position at which the
    // same chunk is accessed.
    let chunks: Vec<ChunkId> = accesses.iter().map(|a| a.page.chunk()).collect();
    let n = chunks.len();
    let mut next_use = vec![usize::MAX; n];
    let mut last_pos: FxHashMap<ChunkId, usize> = FxHashMap::default();
    for i in (0..n).rev() {
        next_use[i] = last_pos.get(&chunks[i]).copied().unwrap_or(usize::MAX);
        last_pos.insert(chunks[i], i);
    }

    // Resident set with a lazy max-heap of (next_use, chunk).
    let mut resident: FxHashMap<ChunkId, usize> = FxHashMap::default();
    let mut heap: BinaryHeap<(usize, u64)> = BinaryHeap::new();
    let mut faults = 0u64;
    for i in 0..n {
        let c = chunks[i];
        if let Some(entry) = resident.get_mut(&c) {
            *entry = next_use[i];
            heap.push((next_use[i], c.0));
            continue;
        }
        faults += 1;
        if resident.len() == capacity_chunks {
            // Evict the chunk with the furthest next use (lazy deletion:
            // skip stale heap entries).
            while let Some((nu, id)) = heap.pop() {
                let chunk = ChunkId(id);
                if resident.get(&chunk) == Some(&nu) {
                    resident.remove(&chunk);
                    break;
                }
            }
        }
        resident.insert(c, next_use[i]);
        heap.push((next_use[i], c.0));
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmmu::types::VirtPage;

    fn seq(pages: &[u64]) -> Vec<AccessStep> {
        pages
            .iter()
            .map(|&p| AccessStep {
                page: VirtPage(p),
                compute: 0,
            })
            .collect()
    }

    // Chunk ids for readability: page 16*k belongs to chunk k.
    fn chunk_pages(chunks: &[u64]) -> Vec<AccessStep> {
        seq(&chunks.iter().map(|c| c * 16).collect::<Vec<_>>())
    }

    #[test]
    fn compulsory_faults_only_when_capacity_suffices() {
        let acc = chunk_pages(&[0, 1, 2, 0, 1, 2]);
        assert_eq!(opt_chunk_faults(&acc, 3), 3);
    }

    #[test]
    fn belady_classic_example() {
        // Cyclic over 3 chunks with capacity 2: OPT keeps one stable
        // chunk and faults on the other two alternately.
        // Sequence 0 1 2 0 1 2 0 1 2: OPT faults = 3 compulsory + ...
        let acc = chunk_pages(&[0, 1, 2, 0, 1, 2, 0, 1, 2]);
        let opt = opt_chunk_faults(&acc, 2);
        // LRU would fault on every access (9). OPT: 0,1 compulsory; at 2
        // evict the one used furthest... known result for this toy: 6.
        assert!(opt < 9, "OPT must beat LRU's full thrash");
        assert_eq!(opt, 6);
    }

    #[test]
    fn same_chunk_pages_do_not_refault() {
        let acc = seq(&[0, 1, 2, 3, 15, 0]); // all chunk 0
        assert_eq!(opt_chunk_faults(&acc, 1), 1);
    }

    #[test]
    fn opt_is_a_lower_bound_for_lru_on_random_sequences() {
        use sim_core::rng::Xoshiro256ss;
        let mut rng = Xoshiro256ss::new(99);
        for _ in 0..20 {
            let accesses: Vec<AccessStep> = (0..400)
                .map(|_| AccessStep {
                    page: VirtPage(rng.gen_range(40) * 16),
                    compute: 0,
                })
                .collect();
            let cap = 1 + rng.gen_range(12) as usize;
            let opt = opt_chunk_faults(&accesses, cap);
            // Reference LRU at chunk granularity.
            let mut lru: Vec<ChunkId> = Vec::new();
            let mut lru_faults = 0u64;
            for a in &accesses {
                let c = a.page.chunk();
                if let Some(pos) = lru.iter().position(|&x| x == c) {
                    lru.remove(pos);
                } else {
                    lru_faults += 1;
                    if lru.len() == cap {
                        lru.remove(0);
                    }
                }
                lru.push(c);
            }
            assert!(opt <= lru_faults, "OPT {opt} > LRU {lru_faults}");
        }
    }

    #[test]
    fn linearize_round_robins_lanes() {
        let a = LaneItem::Access(AccessStep {
            page: VirtPage(1),
            compute: 0,
        });
        let b = LaneItem::Access(AccessStep {
            page: VirtPage(2),
            compute: 0,
        });
        let lin = linearize(&[vec![a, a], vec![b]]);
        let pages: Vec<u64> = lin.iter().map(|s| s.page.0).collect();
        assert_eq!(pages, vec![1, 2, 1]);
    }

    #[test]
    fn linearize_respects_barriers() {
        let a = |p: u64| {
            LaneItem::Access(AccessStep {
                page: VirtPage(p),
                compute: 0,
            })
        };
        // Lane 0: 1, BARRIER, 3; lane 1: 2, BARRIER, 4.
        let lin = linearize(&[
            vec![a(1), LaneItem::Barrier, a(3)],
            vec![a(2), LaneItem::Barrier, a(4)],
        ]);
        let pages: Vec<u64> = lin.iter().map(|s| s.page.0).collect();
        // Pre-barrier accesses strictly precede post-barrier ones.
        assert_eq!(pages, vec![1, 2, 3, 4]);
    }

    #[test]
    fn linearize_handles_trailing_barriers_and_empty_lanes() {
        let a = |p: u64| {
            LaneItem::Access(AccessStep {
                page: VirtPage(p),
                compute: 0,
            })
        };
        let lin = linearize(&[
            vec![a(1), LaneItem::Barrier],
            vec![],
            vec![LaneItem::Barrier],
        ]);
        assert_eq!(lin.len(), 1);
    }
}
