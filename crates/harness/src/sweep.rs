//! Parallel sweep executor.
//!
//! The evaluation matrix (23 workloads × policies × 2 rates) is
//! embarrassingly parallel; jobs are pulled from a shared work queue by
//! `std::thread::scope` workers, and results come back keyed by
//! `(workload, policy-label, rate)` for deterministic assembly.

use crate::runner::{run_cell, ExpConfig};
use cppe::presets::PolicyPreset;
use gpu::RunResult;
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Mutex;
use workloads::WorkloadSpec;

/// Key identifying one cell: `(workload abbr, policy label, rate in %)`.
pub type CellKey = (String, String, u32);

/// One requested run.
#[derive(Debug, Clone)]
pub struct Job {
    /// Workload to run.
    pub spec: WorkloadSpec,
    /// Policy preset.
    pub preset: PolicyPreset,
    /// Oversubscription rate (fraction of footprint that fits).
    pub rate: f64,
}

impl Job {
    /// The result-map key for this job.
    #[must_use]
    pub fn key(&self) -> CellKey {
        (
            self.spec.abbr.to_string(),
            self.preset.label(),
            (self.rate * 100.0).round() as u32,
        )
    }
}

/// Run all jobs, using up to `threads` workers (0 = available
/// parallelism). Results are keyed deterministically regardless of
/// completion order.
#[must_use]
pub fn run_sweep(jobs: Vec<Job>, cfg: &ExpConfig, threads: usize) -> BTreeMap<CellKey, RunResult> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    }
    .min(jobs.len().max(1));

    // A Mutex-wrapped iterator is the work queue (std has no MPMC
    // channel); results flow back over an mpsc channel.
    let queue = Mutex::new(jobs.into_iter());
    let (res_tx, res_rx) = mpsc::channel::<(CellKey, RunResult)>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let queue = &queue;
            let res_tx = res_tx.clone();
            scope.spawn(move || loop {
                let Some(job) = queue.lock().expect("sweep queue poisoned").next() else {
                    break;
                };
                let key = job.key();
                let result = run_cell(&job.spec, job.preset, job.rate, cfg);
                if res_tx.send((key, result)).is_err() {
                    break;
                }
            });
        }
        drop(res_tx);
        res_rx.iter().collect()
    })
}

/// Convenience: cross `specs × presets × rates` into jobs.
#[must_use]
pub fn cross(specs: &[WorkloadSpec], presets: &[PolicyPreset], rates: &[f64]) -> Vec<Job> {
    let mut jobs = Vec::new();
    for spec in specs {
        for &preset in presets {
            for &rate in rates {
                jobs.push(Job {
                    spec: spec.clone(),
                    preset,
                    rate,
                });
            }
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::registry;

    #[test]
    fn sweep_returns_every_cell() {
        let specs = vec![
            registry::by_abbr("STN").unwrap(),
            registry::by_abbr("MRQ").unwrap(),
        ];
        let jobs = cross(
            &specs,
            &[PolicyPreset::Baseline, PolicyPreset::Cppe],
            &[0.5],
        );
        assert_eq!(jobs.len(), 4);
        let cfg = ExpConfig::quick();
        let results = run_sweep(jobs, &cfg, 2);
        assert_eq!(results.len(), 4);
        assert!(results.contains_key(&("STN".into(), "cppe".into(), 50)));
        assert!(results.contains_key(&("MRQ".into(), "baseline".into(), 50)));
    }

    #[test]
    fn sweep_matches_serial_run() {
        let spec = registry::by_abbr("STN").unwrap();
        let cfg = ExpConfig::quick();
        let serial = run_cell(&spec, PolicyPreset::Baseline, 0.5, &cfg);
        let jobs = cross(&[spec], &[PolicyPreset::Baseline], &[0.5]);
        let sweep = run_sweep(jobs, &cfg, 3);
        let cell = &sweep[&("STN".into(), "baseline".into(), 50)];
        assert_eq!(
            cell.cycles, serial.cycles,
            "parallel run must be deterministic"
        );
    }
}
