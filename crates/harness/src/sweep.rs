//! Parallel sweep executor.
//!
//! The evaluation matrix (23 workloads × policies × 2 rates) is
//! embarrassingly parallel. Since the orchestrator PR this is a thin
//! front-end over [`crate::orchestrator`]: jobs become fingerprinted
//! cells, workers hold leases (so a panicking cell is retried and then
//! recorded as failed instead of aborting the whole sweep), and results
//! come back keyed by `(workload, policy-label, rate)` for
//! deterministic assembly. The experiment binaries keep their
//! fire-and-forget in-memory view; the `orchestrate` binary adds the
//! persistent store and `--resume` on the same machinery.

use crate::orchestrator::{orchestrate_with, CellSpec, OrchestratorConfig};
use crate::runner::ExpConfig;
use cppe::presets::PolicyPreset;
use gpu::RunResult;
use std::collections::BTreeMap;
use workloads::WorkloadSpec;

/// Key identifying one cell: `(workload abbr, policy label, rate in %)`.
pub type CellKey = (String, String, u32);

/// One requested run.
#[derive(Debug, Clone)]
pub struct Job {
    /// Workload to run.
    pub spec: WorkloadSpec,
    /// Policy preset.
    pub preset: PolicyPreset,
    /// Oversubscription rate (fraction of footprint that fits).
    pub rate: f64,
}

impl Job {
    /// The result-map key for this job.
    #[must_use]
    pub fn key(&self) -> CellKey {
        (
            self.spec.abbr.to_string(),
            self.preset.label(),
            (self.rate * 100.0).round() as u32,
        )
    }

    /// Lift this job into an orchestrator cell under `cfg`'s
    /// seed/scale.
    #[must_use]
    pub fn to_cell(&self, cfg: &ExpConfig) -> CellSpec {
        CellSpec {
            spec: self.spec.clone(),
            preset: self.preset,
            rate: self.rate,
            seed: cfg.seed,
            scale: cfg.scale,
        }
    }
}

/// Run all jobs, using up to `threads` workers (0 = available
/// parallelism). Results are keyed deterministically regardless of
/// completion order.
///
/// A cell whose execution panics no longer takes the sweep down: the
/// panic is contained, the cell retried (the queue's bounded-retry
/// budget), and on exhaustion recorded as a [`gpu::Outcome::Crashed`]
/// result carrying the panic message — reports render it as a crashed
/// cell like any simulator-detected livelock.
#[must_use]
pub fn run_sweep(jobs: Vec<Job>, cfg: &ExpConfig, threads: usize) -> BTreeMap<CellKey, RunResult> {
    let exp = *cfg;
    run_sweep_with(jobs, cfg, threads, move |job| job.to_cell(&exp).run(&exp))
}

/// [`run_sweep`] with an injected per-job executor — the
/// panic-containment tests substitute a deliberately crashing
/// "simulator" here.
#[must_use]
pub fn run_sweep_with<F>(
    jobs: Vec<Job>,
    cfg: &ExpConfig,
    threads: usize,
    exec: F,
) -> BTreeMap<CellKey, RunResult>
where
    F: Fn(&Job) -> RunResult + Sync,
{
    let cells: Vec<CellSpec> = jobs.iter().map(|j| j.to_cell(cfg)).collect();
    let mut ocfg = OrchestratorConfig::new(*cfg);
    ocfg.threads = threads;
    // Long-running experiment binaries get the ops plane via env:
    // CPPE_FLIGHT_PATH arms the crash flight recorder (default path
    // under results/ when set empty), CPPE_STATUS_PORT starts a
    // /metrics + /status server on 127.0.0.1 for the sweep's duration.
    if let Ok(p) = std::env::var("CPPE_FLIGHT_PATH") {
        ocfg.flight = Some(if p.is_empty() {
            std::path::PathBuf::from("results").join("flightrec.json")
        } else {
            std::path::PathBuf::from(p)
        });
    }
    let _server = match std::env::var("CPPE_STATUS_PORT") {
        Ok(port) => {
            let plane = std::sync::Arc::new(crate::orchestrator::OpsPlane::new());
            ocfg.ops = Some(plane.clone());
            match telemetry::StatusServer::start(&format!("127.0.0.1:{port}"), plane) {
                Ok(server) => {
                    eprintln!("[sweep] status server on http://{}", server.local_addr());
                    Some(server)
                }
                Err(e) => {
                    eprintln!("[sweep] WARNING: status server failed to start: {e}");
                    None
                }
            }
        }
        Err(_) => None,
    };
    let mut out = orchestrate_with(cells, None, &ocfg, |cell| {
        let job = Job {
            spec: cell.spec.clone(),
            preset: cell.preset,
            rate: cell.rate,
        };
        exec(&job)
    });

    let mut results = BTreeMap::new();
    for entry in out.entries.values() {
        let key = (entry.app.clone(), entry.policy.clone(), entry.rate_pct);
        let result = match out.full.remove(&entry.fp) {
            Some(r) => r,
            // Terminal worker failure (panic/lease exhaustion): a
            // synthesized crashed result so the cell still shows up.
            None => RunResult::failed(
                entry
                    .record
                    .error
                    .clone()
                    .unwrap_or_else(|| "worker failed".to_string()),
            ),
        };
        results.insert(key, result);
    }
    results
}

/// Convenience: cross `specs × presets × rates` into jobs.
#[must_use]
pub fn cross(specs: &[WorkloadSpec], presets: &[PolicyPreset], rates: &[f64]) -> Vec<Job> {
    let mut jobs = Vec::new();
    for spec in specs {
        for &preset in presets {
            for &rate in rates {
                jobs.push(Job {
                    spec: spec.clone(),
                    preset,
                    rate,
                });
            }
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_cell;
    use gpu::Outcome;
    use workloads::registry;

    #[test]
    fn sweep_returns_every_cell() {
        let specs = vec![
            registry::by_abbr("STN").unwrap(),
            registry::by_abbr("MRQ").unwrap(),
        ];
        let jobs = cross(
            &specs,
            &[PolicyPreset::Baseline, PolicyPreset::Cppe],
            &[0.5],
        );
        assert_eq!(jobs.len(), 4);
        let cfg = ExpConfig::quick();
        let results = run_sweep(jobs, &cfg, 2);
        assert_eq!(results.len(), 4);
        assert!(results.contains_key(&("STN".into(), "cppe".into(), 50)));
        assert!(results.contains_key(&("MRQ".into(), "baseline".into(), 50)));
    }

    #[test]
    fn sweep_matches_serial_run() {
        let spec = registry::by_abbr("STN").unwrap();
        let cfg = ExpConfig::quick();
        let serial = run_cell(&spec, PolicyPreset::Baseline, 0.5, &cfg);
        let jobs = cross(&[spec], &[PolicyPreset::Baseline], &[0.5]);
        let sweep = run_sweep(jobs, &cfg, 3);
        let cell = &sweep[&("STN".into(), "baseline".into(), 50)];
        assert_eq!(
            cell.cycles, serial.cycles,
            "parallel run must be deterministic"
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // Leases hand out cells in racy claim order; the assembled
        // result map must not depend on it. Run the same small matrix
        // single-threaded and with 8 workers and compare every cell's
        // observable counters.
        let specs = vec![
            registry::by_abbr("STN").unwrap(),
            registry::by_abbr("MRQ").unwrap(),
        ];
        let jobs = || {
            cross(
                &specs,
                &[PolicyPreset::Baseline, PolicyPreset::Cppe],
                &[0.5, 0.75],
            )
        };
        let cfg = ExpConfig::quick();
        let serial = run_sweep(jobs(), &cfg, 1);
        let parallel = run_sweep(jobs(), &cfg, 8);
        assert_eq!(serial.len(), parallel.len());
        for (key, a) in &serial {
            let b = &parallel[key];
            assert_eq!(a.cycles, b.cycles, "{key:?}: cycles diverged");
            assert_eq!(a.accesses, b.accesses, "{key:?}: accesses diverged");
            assert_eq!(a.engine.faults, b.engine.faults, "{key:?}: faults diverged");
            assert_eq!(
                a.engine.pages_migrated, b.engine.pages_migrated,
                "{key:?}: migrations diverged"
            );
            assert_eq!(
                a.engine.pages_evicted, b.engine.pages_evicted,
                "{key:?}: evictions diverged"
            );
            assert_eq!(a.bytes_h2d, b.bytes_h2d, "{key:?}: h2d bytes diverged");
        }
    }

    #[test]
    fn panicking_cell_yields_failed_result_not_aborted_sweep() {
        // Regression: pre-orchestrator, one panicking cell unwound a
        // scoped worker and aborted the whole sweep. Now the panic is
        // contained, retried to exhaustion, and surfaced as a Crashed
        // cell while every other cell completes normally.
        let specs = vec![
            registry::by_abbr("STN").unwrap(),
            registry::by_abbr("MRQ").unwrap(),
        ];
        let jobs = cross(&specs, &[PolicyPreset::Baseline], &[0.5]);
        let cfg = ExpConfig::quick();
        let results = run_sweep_with(jobs, &cfg, 2, |job| {
            assert!(job.spec.abbr != "MRQ", "deliberate test panic: MRQ cell");
            run_cell(&job.spec, job.preset, job.rate, &cfg)
        });
        assert_eq!(results.len(), 2, "every cell must be present");
        let crashed = &results[&("MRQ".into(), "baseline".into(), 50)];
        assert_eq!(crashed.outcome, Outcome::Crashed);
        assert!(
            crashed.error.as_deref().unwrap_or("").contains("panic"),
            "failure must carry the panic message, got {:?}",
            crashed.error
        );
        let ok = &results[&("STN".into(), "baseline".into(), 50)];
        assert_eq!(ok.outcome, Outcome::Completed);
    }
}
