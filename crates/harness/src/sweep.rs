//! Parallel sweep executor.
//!
//! The evaluation matrix (23 workloads × policies × 2 rates) is
//! embarrassingly parallel; jobs are claimed from a shared slice by
//! `std::thread::scope` workers through a lock-free atomic cursor, and
//! results come back keyed by `(workload, policy-label, rate)` for
//! deterministic assembly.

use crate::runner::{run_cell, ExpConfig};
use cppe::presets::PolicyPreset;
use gpu::RunResult;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use workloads::WorkloadSpec;

/// Key identifying one cell: `(workload abbr, policy label, rate in %)`.
pub type CellKey = (String, String, u32);

/// One requested run.
#[derive(Debug, Clone)]
pub struct Job {
    /// Workload to run.
    pub spec: WorkloadSpec,
    /// Policy preset.
    pub preset: PolicyPreset,
    /// Oversubscription rate (fraction of footprint that fits).
    pub rate: f64,
}

impl Job {
    /// The result-map key for this job.
    #[must_use]
    pub fn key(&self) -> CellKey {
        (
            self.spec.abbr.to_string(),
            self.preset.label(),
            (self.rate * 100.0).round() as u32,
        )
    }
}

/// Run all jobs, using up to `threads` workers (0 = available
/// parallelism). Results are keyed deterministically regardless of
/// completion order.
#[must_use]
pub fn run_sweep(jobs: Vec<Job>, cfg: &ExpConfig, threads: usize) -> BTreeMap<CellKey, RunResult> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    }
    .min(jobs.len().max(1));

    // The work queue is a shared cursor over the job slice: each worker
    // claims the next unclaimed index with one `fetch_add` — no mutex to
    // contend on or poison. Claim order varies between runs, but every
    // cell is simulated independently and results are *keyed*, so the
    // assembled map is identical for any thread count.
    let jobs = &jobs[..];
    let cursor = AtomicUsize::new(0);
    let (res_tx, res_rx) = mpsc::channel::<(CellKey, RunResult)>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cursor = &cursor;
            let res_tx = res_tx.clone();
            scope.spawn(move || loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(idx) else {
                    break;
                };
                let key = job.key();
                let result = run_cell(&job.spec, job.preset, job.rate, cfg);
                if res_tx.send((key, result)).is_err() {
                    break;
                }
            });
        }
        drop(res_tx);
        res_rx.iter().collect()
    })
}

/// Convenience: cross `specs × presets × rates` into jobs.
#[must_use]
pub fn cross(specs: &[WorkloadSpec], presets: &[PolicyPreset], rates: &[f64]) -> Vec<Job> {
    let mut jobs = Vec::new();
    for spec in specs {
        for &preset in presets {
            for &rate in rates {
                jobs.push(Job {
                    spec: spec.clone(),
                    preset,
                    rate,
                });
            }
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::registry;

    #[test]
    fn sweep_returns_every_cell() {
        let specs = vec![
            registry::by_abbr("STN").unwrap(),
            registry::by_abbr("MRQ").unwrap(),
        ];
        let jobs = cross(
            &specs,
            &[PolicyPreset::Baseline, PolicyPreset::Cppe],
            &[0.5],
        );
        assert_eq!(jobs.len(), 4);
        let cfg = ExpConfig::quick();
        let results = run_sweep(jobs, &cfg, 2);
        assert_eq!(results.len(), 4);
        assert!(results.contains_key(&("STN".into(), "cppe".into(), 50)));
        assert!(results.contains_key(&("MRQ".into(), "baseline".into(), 50)));
    }

    #[test]
    fn sweep_matches_serial_run() {
        let spec = registry::by_abbr("STN").unwrap();
        let cfg = ExpConfig::quick();
        let serial = run_cell(&spec, PolicyPreset::Baseline, 0.5, &cfg);
        let jobs = cross(&[spec], &[PolicyPreset::Baseline], &[0.5]);
        let sweep = run_sweep(jobs, &cfg, 3);
        let cell = &sweep[&("STN".into(), "baseline".into(), 50)];
        assert_eq!(
            cell.cycles, serial.cycles,
            "parallel run must be deterministic"
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // The atomic-cursor queue hands out jobs in racy claim order;
        // the assembled result map must not depend on it. Run the same
        // small matrix single-threaded and with 8 workers and compare
        // every cell's observable counters.
        let specs = vec![
            registry::by_abbr("STN").unwrap(),
            registry::by_abbr("MRQ").unwrap(),
        ];
        let jobs = || {
            cross(
                &specs,
                &[PolicyPreset::Baseline, PolicyPreset::Cppe],
                &[0.5, 0.75],
            )
        };
        let cfg = ExpConfig::quick();
        let serial = run_sweep(jobs(), &cfg, 1);
        let parallel = run_sweep(jobs(), &cfg, 8);
        assert_eq!(serial.len(), parallel.len());
        for (key, a) in &serial {
            let b = &parallel[key];
            assert_eq!(a.cycles, b.cycles, "{key:?}: cycles diverged");
            assert_eq!(a.accesses, b.accesses, "{key:?}: accesses diverged");
            assert_eq!(a.engine.faults, b.engine.faults, "{key:?}: faults diverged");
            assert_eq!(
                a.engine.pages_migrated, b.engine.pages_migrated,
                "{key:?}: migrations diverged"
            );
            assert_eq!(
                a.engine.pages_evicted, b.engine.pages_evicted,
                "{key:?}: evictions diverged"
            );
            assert_eq!(a.bytes_h2d, b.bytes_h2d, "{key:?}: h2d bytes diverged");
        }
    }
}
