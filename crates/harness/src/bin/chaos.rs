//! Extension: resilience under deterministic fault injection. Usage:
//! `cargo run --release -p harness --bin chaos [--quick] [--scale X]`
fn main() {
    harness::experiments::binary_main("chaos", |cfg, threads| {
        harness::experiments::chaos::run(cfg, threads)
    });
}
