//! Regenerates the paper's overhead artifact. Usage:
//! `cargo run --release -p harness --bin overhead [--quick] [--scale X] [--threads N]`
fn main() {
    harness::experiments::binary_main("overhead", |cfg, threads| {
        harness::experiments::overhead::run(cfg, threads)
    });
}
