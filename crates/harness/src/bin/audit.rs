//! Extension: policy-decision audit. Usage:
//! `cargo run --release -p harness --bin audit [--quick] [--scale X]`
//! (always runs with decision auditing on; writes the per-page lifetime
//! CSVs and the `BENCH_audit.json` oracle-regret baseline).
fn main() {
    harness::experiments::binary_main("audit", |cfg, threads| {
        harness::experiments::audit::run(cfg, threads)
    });
}
