//! Extension: T1/T2 and fault-cost sensitivity. Usage:
//! `cargo run --release -p harness --bin sens2 [--quick] [--scale X]`
fn main() {
    harness::experiments::binary_main("sens2", |cfg, threads| {
        harness::experiments::sens2::run(cfg, threads)
    });
}
