//! Extension: simulator wall-clock speed baseline. Usage:
//! `cargo run --release -p harness --bin speed [--check BENCH_speed.json]`
//!
//! Without `--check`: times every `workload × policy` cell (warmup +
//! median-of-N), prints the table and writes
//! `results/BENCH_speed.json`.
//!
//! With `--check PATH`: additionally compares the fresh measurements to
//! the committed baseline at PATH and exits non-zero when the
//! geometric-mean wall-clock ratio regresses past the tolerance — the
//! CI speed-regression gate.
use harness::experiments::speed;
use harness::ExpConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_path = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a path").clone());

    let cfg = ExpConfig::default();
    let t0 = std::time::Instant::now();
    let cells = speed::measure(&cfg);
    let doc = speed::speed_json(&cells);
    match harness::report::save("BENCH_speed.json", &doc) {
        Ok(path) => eprintln!("[speed] export saved to {}", path.display()),
        Err(e) => eprintln!("[speed] could not save export: {e}"),
    }

    let mut t = harness::report::Table::new(&["app", "policy", "wall ms", "Mcycles/s"]);
    for c in &cells {
        t.row(vec![
            c.app.to_string(),
            c.policy.clone(),
            format!("{:.3}", c.wall_ms),
            format!("{:.2}", c.sim_cycles_per_sec / 1e6),
        ]);
    }
    println!("{}", t.render());
    eprintln!("[speed] completed in {:.1?}", t0.elapsed());

    if let Some(path) = baseline_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let (report, regressed) = speed::check(&cells, &baseline);
        println!("{report}");
        if regressed {
            eprintln!("[speed] wall-clock regression past tolerance — failing");
            std::process::exit(1);
        }
    }
}
