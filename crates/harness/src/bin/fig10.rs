//! Regenerates the paper's fig10 artifact. Usage:
//! `cargo run --release -p harness --bin fig10 [--quick] [--scale X] [--threads N]`
fn main() {
    harness::experiments::binary_main("fig10", |cfg, threads| {
        harness::experiments::fig10::run(cfg, threads)
    });
}
