//! Regenerates the paper's fig3 artifact. Usage:
//! `cargo run --release -p harness --bin fig3 [--quick] [--scale X] [--threads N]`
fn main() {
    harness::experiments::binary_main("fig3", |cfg, threads| {
        harness::experiments::fig3::run(cfg, threads)
    });
}
