//! Extension: eviction-traffic timeline. Usage:
//! `cargo run --release -p harness --bin timeline [--quick] [--scale X]
//! [--trace-format csv|json|chrome|all]` (the timeline always traces;
//! the format flag selects which artifacts land in `results/`).
fn main() {
    harness::experiments::binary_main("timeline", |cfg, threads| {
        harness::experiments::timeline::run(cfg, threads)
    });
}
