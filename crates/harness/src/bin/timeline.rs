//! Extension: eviction-traffic timeline. Usage:
//! `cargo run --release -p harness --bin timeline [--quick] [--scale X]`
fn main() {
    harness::experiments::binary_main("timeline", |cfg, threads| {
        harness::experiments::timeline::run(cfg, threads)
    });
}
