//! Reprints Table II — the workload inventory — from the registry
//! (names, abbreviations, footprints, suites, pattern types), plus the
//! derived per-run statistics (pages, chunks, accesses at scale 1).
use workloads::registry;

fn main() {
    println!(
        "{:<12} {:<5} {:>9} {:<10} {:<7} {:>8} {:>7} {:>10}",
        "workload", "abbr", "footprint", "suite", "type", "pages", "chunks", "accesses"
    );
    println!("{}", "-".repeat(76));
    let lanes = 28;
    let mut total_mb = 0.0;
    for w in registry::all() {
        let pages = w.pages(1.0);
        println!(
            "{:<12} {:<5} {:>7.1}MB {:<10} {:<7} {:>8} {:>7} {:>10}",
            w.name,
            w.abbr,
            w.footprint_mb,
            w.suite,
            w.pattern.roman(),
            pages,
            pages / 16,
            w.total_accesses(lanes, 1.0),
        );
        total_mb += w.footprint_mb;
    }
    println!("{}", "-".repeat(76));
    println!(
        "23 workloads, footprints 4..130 MB, average {:.1} MB (paper: 45 MB)",
        total_mb / 23.0
    );
}
