//! Extension: CPPE component ablation. Usage:
//! `cargo run --release -p harness --bin ablation [--quick] [--scale X] [--threads N]`
fn main() {
    harness::experiments::binary_main("ablation", |cfg, threads| {
        harness::experiments::ablation::run(cfg, threads)
    });
}
