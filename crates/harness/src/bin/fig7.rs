//! Regenerates the paper's fig7 artifact. Usage:
//! `cargo run --release -p harness --bin fig7 [--quick] [--scale X] [--threads N]`
fn main() {
    harness::experiments::binary_main("fig7", |cfg, threads| {
        harness::experiments::fig7::run(cfg, threads)
    });
}
