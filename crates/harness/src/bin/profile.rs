//! Extension: fault-lifecycle span profiler. Usage:
//! `cargo run --release -p harness --bin profile [--quick] [--scale X]`
//! (always traces with span recording on; writes the per-stage latency
//! report plus the `BENCH_profile.json` perf-regression export).
fn main() {
    harness::experiments::binary_main("profile", |cfg, threads| {
        harness::experiments::profile::run(cfg, threads)
    });
}
