//! Regenerates the paper's sens artifact. Usage:
//! `cargo run --release -p harness --bin sens [--quick] [--scale X] [--threads N]`
fn main() {
    harness::experiments::binary_main("sens", |cfg, threads| {
        harness::experiments::sens::run(cfg, threads)
    });
}
