//! Extension: host-side self-profiler + parallelism observatory. Usage:
//! `cargo run --release -p harness --bin hostprof [--check]
//! [--scale S] [--rate R]`
//!
//! Profiles the event loop over STN/KMN/SRD plus the synthesized
//! serving stream (CPPE preset, warmup + best-of-N interleaved on/off
//! arms), prints the attribution/ceiling report and writes
//! `results/BENCH_hostprof.json`.
//!
//! `--scale`/`--rate` override the bench point (defaults 0.25 / 0.5):
//! the ROADMAP's parallelism item needs cohort shapes at full scale
//! and high oversubscription (`--scale 1.0 --rate 0.25`), where the
//! per-cycle cohorts are widest.
//!
//! With `--check`: exits non-zero when the geometric-mean on/off wall
//! ratio exceeds the 5 % overhead budget — the CI hostprof gate. A
//! gate miss triggers exactly one full re-measure before failing (the
//! smallest cell runs under a millisecond, so a single scheduler burst
//! on a shared CI runner can fake an overshoot; a real regression
//! fails both attempts).
use harness::experiments::hostprof;
use harness::ExpConfig;

fn flag_value(args: &[String], name: &str) -> Option<f64> {
    let pos = args.iter().position(|a| a == name)?;
    let raw = args.get(pos + 1)?;
    match raw.parse::<f64>() {
        Ok(v) if v > 0.0 => Some(v),
        _ => {
            eprintln!("[hostprof] bad {name} value {raw:?} (want a positive number)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let scale = flag_value(&args, "--scale").unwrap_or(hostprof::BENCH_SCALE);
    let rate = flag_value(&args, "--rate").unwrap_or(hostprof::RATE);

    let cfg = ExpConfig::default();
    let t0 = std::time::Instant::now();
    let server = hostprof::start_status();
    let mut cells = hostprof::measure_at(&cfg, scale, rate);
    let (mut gate, mut failed) = hostprof::check_overhead(&cells);
    if check && failed {
        eprintln!("[hostprof] overhead gate missed; re-measuring once to rule out noise");
        cells = hostprof::measure_at(&cfg, scale, rate);
        (gate, failed) = hostprof::check_overhead(&cells);
    }
    if let Some(handle) = &server {
        handle.publish(&cells);
    }
    let doc = hostprof::hostprof_json_at(&cells, scale, rate);
    match harness::report::save("BENCH_hostprof.json", &doc) {
        Ok(path) => eprintln!("[hostprof] export saved to {}", path.display()),
        Err(e) => eprintln!("[hostprof] could not save export: {e}"),
    }

    println!("{}", hostprof::render_report_at(&cells, scale, rate));
    println!("{gate}");
    eprintln!("[hostprof] completed in {:.1?}", t0.elapsed());
    if let Some(handle) = &server {
        handle.linger();
    }

    if check && failed {
        eprintln!("[hostprof] profiling overhead past the 5 % budget — failing");
        std::process::exit(1);
    }
}
