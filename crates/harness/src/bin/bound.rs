//! Extension: policies vs the offline Belady bound. Usage:
//! `cargo run --release -p harness --bin bound [--quick] [--scale X]`
fn main() {
    harness::experiments::binary_main("bound", |cfg, threads| {
        harness::experiments::bound::run(cfg, threads)
    });
}
