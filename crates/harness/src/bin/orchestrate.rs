//! Crash-safe sweep service. Expands an experiment matrix into
//! fingerprinted cells, runs them under the leased orchestrator, and
//! (with `--store`) journals every resolved cell so a killed run
//! resumes where it left off. Usage:
//!
//! ```text
//! cargo run --release -p harness --bin orchestrate -- \
//!     [--apps STN,MRQ|all] [--policies baseline,cppe] [--rates 50,75] \
//!     [--seeds 12648430] [--scale X] [--threads N] \
//!     [--store DIR] [--resume] [--salvage] [--compact] \
//!     [--lease-ms N] [--max-attempts N] [--backoff-ms N] \
//!     [--max-in-flight N] [--chaos-seed N] [--stop-after N] \
//!     [--status-port N] [--status-linger-ms N] [--flight PATH]
//! ```
//!
//! `--resume` is required to reuse a store that already holds results
//! (already-computed fingerprints are skipped, not re-run); `--salvage`
//! truncates a torn journal to its valid prefix instead of refusing to
//! open it. `--chaos-seed` arms the deterministic kill/panic/delay
//! storm (for exercising the machinery); `--stop-after N` aborts after
//! N cells resolve, simulating a kill for resume drills.
//!
//! `--status-port N` serves live `/metrics` (Prometheus text),
//! `/status` (JSON) and `/healthz` on `127.0.0.1:N` (0 = ephemeral);
//! the bound address is written to `<store>/status.addr` (or
//! `results/status.addr` without a store) so scripts can find an
//! ephemeral port. `--status-linger-ms` keeps the server up after the
//! sweep so a scraper polling near the end does not race shutdown. The
//! crash flight recorder is always armed: dossiers go to `--flight
//! PATH` or default to `<store>/flightrec.json` / `results/flightrec.json`.

use harness::orchestrator::{
    orchestrate, parse_policy, render_report, CellSpec, LeaseConfig, OpsPlane, OrchChaos,
    OrchestratorConfig, Recovery, ResultStore,
};
use harness::runner::ExpConfig;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Cli {
    cells: Vec<CellSpec>,
    cfg: OrchestratorConfig,
    store: Option<PathBuf>,
    resume: bool,
    recovery: Recovery,
    status_port: Option<u16>,
    status_linger: Duration,
    flight: Option<PathBuf>,
}

fn parse_list(raw: &str) -> Vec<&str> {
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

fn take<'a>(args: &'a [String], i: &mut usize, what: &str) -> &'a str {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .unwrap_or_else(|| panic!("{what} needs a value"))
}

#[allow(clippy::too_many_lines)]
fn parse_cli(args: &[String]) -> Cli {
    let mut exp = ExpConfig::default();
    let mut threads = 0usize;
    let mut apps: Vec<String> = vec!["STN".into(), "MRQ".into()];
    let mut policies: Vec<String> = vec!["baseline".into(), "cppe".into()];
    let mut rates: Vec<f64> = vec![0.5, 0.75];
    let mut seeds: Vec<u64> = vec![exp.seed];
    let mut lease = LeaseConfig::default();
    let mut chaos = None;
    let mut stop_after = None;
    let mut compact = false;
    let mut store = None;
    let mut resume = false;
    let mut recovery = Recovery::Strict;
    let mut status_port = None;
    let mut status_linger = Duration::ZERO;
    let mut flight = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].clone().as_str() {
            "--quick" => exp = ExpConfig::quick(),
            "--scale" => {
                exp.scale = take(args, &mut i, "--scale")
                    .parse()
                    .expect("--scale needs a number");
            }
            "--threads" => {
                threads = take(args, &mut i, "--threads")
                    .parse()
                    .expect("--threads needs a number");
            }
            "--apps" => {
                let raw = take(args, &mut i, "--apps");
                apps = if raw == "all" {
                    workloads::registry::all()
                        .iter()
                        .map(|s| s.abbr.to_string())
                        .collect()
                } else {
                    parse_list(raw).iter().map(|s| (*s).to_string()).collect()
                };
            }
            "--policies" => {
                policies = parse_list(take(args, &mut i, "--policies"))
                    .iter()
                    .map(|s| (*s).to_string())
                    .collect();
            }
            "--rates" => {
                rates = parse_list(take(args, &mut i, "--rates"))
                    .iter()
                    .map(|s| {
                        let pct: f64 = s.parse().expect("--rates needs percents, e.g. 50,75");
                        pct / 100.0
                    })
                    .collect();
            }
            "--seeds" => {
                seeds = parse_list(take(args, &mut i, "--seeds"))
                    .iter()
                    .map(|s| s.parse().expect("--seeds needs integers"))
                    .collect();
            }
            "--store" => store = Some(PathBuf::from(take(args, &mut i, "--store"))),
            "--resume" => resume = true,
            "--salvage" => recovery = Recovery::Salvage,
            "--compact" => compact = true,
            "--lease-ms" => {
                lease.lease = Duration::from_millis(
                    take(args, &mut i, "--lease-ms")
                        .parse()
                        .expect("--lease-ms needs millis"),
                );
            }
            "--max-attempts" => {
                lease.max_attempts = take(args, &mut i, "--max-attempts")
                    .parse()
                    .expect("--max-attempts needs a number");
            }
            "--backoff-ms" => {
                lease.backoff = Duration::from_millis(
                    take(args, &mut i, "--backoff-ms")
                        .parse()
                        .expect("--backoff-ms needs millis"),
                );
            }
            "--max-in-flight" => {
                lease.max_in_flight = take(args, &mut i, "--max-in-flight")
                    .parse()
                    .expect("--max-in-flight needs a number");
            }
            "--chaos-seed" => {
                chaos = Some(OrchChaos::storm(
                    take(args, &mut i, "--chaos-seed")
                        .parse()
                        .expect("--chaos-seed needs a number"),
                ));
            }
            "--stop-after" => {
                stop_after = Some(
                    take(args, &mut i, "--stop-after")
                        .parse()
                        .expect("--stop-after needs a number"),
                );
            }
            "--status-port" => {
                status_port = Some(
                    take(args, &mut i, "--status-port")
                        .parse()
                        .expect("--status-port needs a port number (0 = ephemeral)"),
                );
            }
            "--status-linger-ms" => {
                status_linger = Duration::from_millis(
                    take(args, &mut i, "--status-linger-ms")
                        .parse()
                        .expect("--status-linger-ms needs millis"),
                );
            }
            "--flight" => flight = Some(PathBuf::from(take(args, &mut i, "--flight"))),
            other => panic!("unknown argument: {other}"),
        }
        i += 1;
    }

    let mut cells = Vec::new();
    for app in &apps {
        let spec = workloads::registry::by_abbr(app)
            .unwrap_or_else(|| panic!("unknown workload {app:?} (try --apps all)"));
        for policy in &policies {
            let preset =
                parse_policy(policy).unwrap_or_else(|| panic!("unknown policy label {policy:?}"));
            for &rate in &rates {
                for &seed in &seeds {
                    cells.push(CellSpec {
                        spec: spec.clone(),
                        preset,
                        rate,
                        seed,
                        scale: exp.scale,
                    });
                }
            }
        }
    }

    let mut cfg = OrchestratorConfig::new(exp);
    cfg.threads = threads;
    cfg.lease = lease;
    cfg.chaos = chaos;
    cfg.stop_after = stop_after;
    cfg.compact_on_finish = compact;
    Cli {
        cells,
        cfg,
        store,
        resume,
        recovery,
        status_port,
        status_linger,
        flight,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = parse_cli(&args);
    let t0 = std::time::Instant::now();

    // Ops artifacts (flight dossier, status.addr) live next to the
    // journal when there is a store, else under results/.
    let ops_dir = cli
        .store
        .clone()
        .unwrap_or_else(|| PathBuf::from("results"));
    cli.cfg.flight = Some(
        cli.flight
            .clone()
            .unwrap_or_else(|| ops_dir.join("flightrec.json")),
    );
    let plane = Arc::new(OpsPlane::new());
    cli.cfg.ops = Some(plane.clone());
    let server = cli.status_port.map(|port| {
        let server = telemetry::StatusServer::start(&format!("127.0.0.1:{port}"), plane)
            .unwrap_or_else(|e| panic!("--status-port {port}: cannot bind status server: {e}"));
        let addr = server.local_addr().to_string();
        eprintln!("[orchestrate] status server on http://{addr}");
        let addr_file = ops_dir.join("status.addr");
        if let Some(parent) = addr_file.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&addr_file, format!("{addr}\n")) {
            eprintln!(
                "[orchestrate] WARNING: cannot write {}: {e}",
                addr_file.display()
            );
        }
        server
    });

    let mut store = cli.store.as_ref().map(|dir| {
        let (store, report) = match ResultStore::open(dir, cli.recovery) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("[orchestrate] cannot open store {}: {e}", dir.display());
                std::process::exit(2);
            }
        };
        if let Some(s) = &report.salvaged {
            eprintln!(
                "[orchestrate] salvaged journal: dropped {} bytes at line {} ({})",
                s.dropped_bytes, s.line, s.reason
            );
        }
        if !store.is_empty() {
            if cli.resume {
                eprintln!(
                    "[orchestrate] resuming: {} cells already in store \
                     ({} snapshot + {} journal, {} duplicate lines)",
                    store.len(),
                    report.from_snapshot,
                    report.from_journal,
                    report.duplicate_lines
                );
            } else {
                eprintln!(
                    "[orchestrate] store {} already holds {} cells; \
                     pass --resume to continue it or point --store at a fresh dir",
                    dir.display(),
                    store.len()
                );
                std::process::exit(2);
            }
        }
        store
    });

    let outcome = orchestrate(cli.cells, store.as_mut(), &cli.cfg);
    let report = render_report(&outcome);
    println!("{report}");
    eprintln!("[orchestrate] completed in {:.1?}", t0.elapsed());
    match harness::report::save("orchestrate.txt", &report) {
        Ok(path) => eprintln!("[orchestrate] saved to {}", path.display()),
        Err(e) => eprintln!("[orchestrate] could not save results: {e}"),
    }
    if server.is_some() && !cli.status_linger.is_zero() {
        // Give CI scrapers a grace window: the sweep may finish while
        // a poller is still mid-request.
        std::thread::sleep(cli.status_linger);
    }
    drop(server);
    if outcome.stopped_early {
        eprintln!("[orchestrate] stopped early (--stop-after); rerun with --resume to finish");
        std::process::exit(3);
    }
}
