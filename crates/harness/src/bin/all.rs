//! Regenerates every table and figure in one go. Usage:
//! `cargo run --release -p harness --bin all [--quick] [--scale X] [--threads N]`
type Runner = fn(&harness::ExpConfig, usize) -> String;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, threads) = harness::experiments::cli_config(&args);
    let experiments: Vec<(&str, Runner)> = vec![
        ("fig3", harness::experiments::fig3::run),
        ("fig4", harness::experiments::fig4::run),
        ("table3", harness::experiments::table3::run),
        ("table4", harness::experiments::table4::run),
        ("sens", harness::experiments::sens::run),
        ("fig7", harness::experiments::fig7::run),
        ("fig8", harness::experiments::fig8::run),
        ("fig9", harness::experiments::fig9::run),
        ("fig10", harness::experiments::fig10::run),
        ("overhead", harness::experiments::overhead::run),
        ("motivation", harness::experiments::motivation::run),
        ("ablation", harness::experiments::ablation::run),
        ("sens2", harness::experiments::sens2::run),
        ("bound", harness::experiments::bound::run),
        ("timeline", harness::experiments::timeline::run),
        ("stability", harness::experiments::stability::run),
    ];
    for (name, run) in experiments {
        let t0 = std::time::Instant::now();
        let report = run(&cfg, threads);
        println!("{report}");
        println!("{}", "=".repeat(72));
        eprintln!("[{name}] {:.1?}", t0.elapsed());
        if let Ok(path) = harness::report::save(&format!("{name}.txt"), &report) {
            eprintln!("[{name}] saved to {}", path.display());
        }
    }
}
