use cppe::evict::mhpe::{MhpeConfig, MhpePolicy};
use cppe::prefetch::pattern::PatternAwarePrefetcher;
use cppe::PolicyEngine;
use gpu::simulate;
use harness::ExpConfig;
use workloads::registry;

fn main() {
    let cfg = ExpConfig::default();
    let spec = registry::by_abbr("SRD").unwrap();
    for fd in [1usize, 8] {
        let lanes = cfg.gpu.lanes();
        let streams: Vec<_> = (0..lanes)
            .map(|l| spec.lane_items(l, lanes, cfg.scale))
            .collect();
        let engine = PolicyEngine::new(
            Box::new(MhpePolicy::with_config(MhpeConfig {
                fixed_fd: Some(fd),
                disable_switch: true,
                ..MhpeConfig::default()
            })),
            Box::new(PatternAwarePrefetcher::new()),
        );
        let capacity = harness::capacity_pages(&spec, 0.5, cfg.scale);
        let r = simulate(&cfg.gpu, engine, &streams, capacity, spec.pages(cfg.scale));
        println!("fd={fd} outcome={:?} cycles={} faults={} evict={} wrong={} total_untouch={} batches={} coalesced={}",
            r.outcome, r.cycles, r.engine.faults, r.engine.chunk_evictions, r.wrong_evictions,
            r.engine.total_untouch, r.driver.batches, r.driver.coalesced_faults);
    }
}
