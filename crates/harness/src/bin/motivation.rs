//! Regenerates the paper's motivation artifact. Usage:
//! `cargo run --release -p harness --bin motivation [--quick] [--scale X] [--threads N]`
fn main() {
    harness::experiments::binary_main("motivation", |cfg, threads| {
        harness::experiments::motivation::run(cfg, threads)
    });
}
