//! `cppe-sim` — run one workload under one policy and print a full
//! report. The general-purpose entry point for exploring the simulator.
//!
//! ```text
//! cargo run --release -p harness --bin cppe-sim -- \
//!     --workload SRD --policy cppe --rate 0.5 [--scale 1.0] \
//!     [--lanes 28] [--seed 42] [--trace-out FILE | --trace-in FILE]
//! ```
//!
//! Policies: baseline random lru-10 lru-20 nopf cppe cppe-s1 mhpe hpe
//! hpe-nopf lru-nopf tree

use cppe::presets::PolicyPreset;
use gpu::{simulate, GpuConfig};
use workloads::registry;

fn parse_policy(name: &str) -> Option<PolicyPreset> {
    Some(match name {
        "baseline" => PolicyPreset::Baseline,
        "random" => PolicyPreset::Random,
        "lru-10" | "lru-10%" => PolicyPreset::ReservedLru10,
        "lru-20" | "lru-20%" => PolicyPreset::ReservedLru20,
        "nopf" | "nopf-on-full" => PolicyPreset::DisablePfOnFull,
        "cppe" => PolicyPreset::Cppe,
        "cppe-s1" => PolicyPreset::CppeScheme1,
        "mhpe" => PolicyPreset::MhpeOnly,
        "hpe" => PolicyPreset::HpeNaive,
        "hpe-nopf" => PolicyPreset::HpeNoPf,
        "lru-nopf" => PolicyPreset::LruNoPf,
        "tree" => PolicyPreset::LruTree,
        _ => return None,
    })
}

struct Args {
    workload: String,
    policy: PolicyPreset,
    rate: f64,
    scale: f64,
    lanes: usize,
    seed: u64,
    trace_out: Option<String>,
    trace_in: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: cppe-sim --workload ABBR --policy NAME [--rate 0.5] [--scale 1.0]\n\
         \x20               [--lanes 28] [--seed 42] [--trace-out FILE | --trace-in FILE]\n\
         policies: baseline random lru-10 lru-20 nopf cppe cppe-s1 mhpe hpe hpe-nopf lru-nopf tree\n\
         workloads: {}",
        registry::all()
            .iter()
            .map(|w| w.abbr)
            .collect::<Vec<_>>()
            .join(" ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut a = Args {
        workload: "SRD".into(),
        policy: PolicyPreset::Cppe,
        rate: 0.5,
        scale: 1.0,
        lanes: 28,
        seed: 42,
        trace_out: None,
        trace_in: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let val = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--workload" | "-w" => a.workload = val(&mut i),
            "--policy" | "-p" => {
                let name = val(&mut i);
                a.policy = parse_policy(&name).unwrap_or_else(|| usage());
            }
            "--rate" | "-r" => a.rate = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--scale" | "-s" => a.scale = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--lanes" => a.lanes = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => a.seed = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--trace-out" => a.trace_out = Some(val(&mut i)),
            "--trace-in" => a.trace_in = Some(val(&mut i)),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    a
}

fn main() {
    let args = parse_args();
    let spec = registry::by_abbr(&args.workload).unwrap_or_else(|| usage());
    let sms = 28usize;
    let gpu = GpuConfig {
        sms,
        warps_per_sm: args.lanes.div_ceil(sms).max(1),
        ..GpuConfig::default()
    };

    let streams = if let Some(path) = &args.trace_in {
        workloads::trace::load(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("failed to load trace: {e}");
            std::process::exit(1);
        })
    } else {
        (0..args.lanes)
            .map(|l| spec.lane_items(l, args.lanes, args.scale))
            .collect()
    };
    if let Some(path) = &args.trace_out {
        if let Err(e) = workloads::trace::save(std::path::Path::new(path), &streams) {
            eprintln!("failed to save trace: {e}");
            std::process::exit(1);
        }
        eprintln!("trace written to {path}");
    }

    let pages = spec.pages(args.scale);
    let capacity = (((pages as f64 * args.rate) as u64).max(32) / 16 * 16) as u32;
    let engine = args.policy.build(args.seed);
    let t0 = std::time::Instant::now();
    let r = simulate(&gpu, engine, &streams, capacity, pages);
    let wall = t0.elapsed();

    println!(
        "workload          {} ({}, Type {}, {:.1} MB at scale {})",
        spec.name,
        spec.abbr,
        spec.pattern.roman(),
        spec.footprint_mb * args.scale,
        args.scale
    );
    println!("policy            {}", args.policy.label());
    println!(
        "memory            {capacity} of {pages} pages resident ({:.0}%)",
        args.rate * 100.0
    );
    println!("outcome           {:?}", r.outcome);
    println!(
        "cycles            {} ({:.3} ms simulated)",
        r.cycles,
        r.cycles as f64 / 1.4e6
    );
    println!("accesses          {}", r.accesses);
    println!(
        "faults            {} ({} serviced, {} coalesced, {} batches)",
        r.engine.faults, r.driver.faults_serviced, r.driver.coalesced_faults, r.driver.batches
    );
    println!(
        "pages migrated    {} ({} prefetched)",
        r.engine.pages_migrated, r.engine.pages_prefetched
    );
    println!(
        "chunk evictions   {} ({} pages, untouch {})",
        r.engine.chunk_evictions, r.engine.pages_evicted, r.engine.total_untouch
    );
    println!("wrong evictions   {}", r.wrong_evictions);
    println!(
        "pcie              {} B in, {} B out",
        r.bytes_h2d, r.bytes_d2h
    );
    println!(
        "tlb               L1 {}/{} hits, L2 {}/{} hits, {} walks",
        r.translation.l1_hits,
        r.translation.l1_hits + r.translation.l1_misses,
        r.translation.l2_hits,
        r.translation.l2_hits + r.translation.l2_misses,
        r.translation.walks
    );
    println!(
        "overhead          chain {} / evict-buf {} / pattern-buf {} entries ({:.1} KB)",
        r.overhead.chain_max_len,
        r.overhead.evicted_buffer_max,
        r.overhead.pattern_buffer_max,
        r.overhead.storage_bytes() as f64 / 1024.0
    );
    if let Some(t) = &r.mhpe {
        println!(
            "mhpe              switched_at={:?} fd_final={:?} first-4-interval untouch={:?}",
            t.switched_at,
            t.fd_trace.last(),
            &t.interval_untouch[..t.interval_untouch.len().min(4)]
        );
    }
    eprintln!("(wall time {wall:.2?})");
}
