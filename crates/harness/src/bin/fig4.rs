//! Regenerates the paper's fig4 artifact. Usage:
//! `cargo run --release -p harness --bin fig4 [--quick] [--scale X] [--threads N]`
fn main() {
    harness::experiments::binary_main("fig4", |cfg, threads| {
        harness::experiments::fig4::run(cfg, threads)
    });
}
