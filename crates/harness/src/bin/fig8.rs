//! Regenerates the paper's fig8 artifact. Usage:
//! `cargo run --release -p harness --bin fig8 [--quick] [--scale X] [--threads N]`
fn main() {
    harness::experiments::binary_main("fig8", |cfg, threads| {
        harness::experiments::fig8::run(cfg, threads)
    });
}
