//! Extension: jitter-seed robustness. Usage:
//! `cargo run --release -p harness --bin stability [--quick] [--scale X]`
fn main() {
    harness::experiments::binary_main("stability", |cfg, threads| {
        harness::experiments::stability::run(cfg, threads)
    });
}
