//! Validate exported trace artifacts: every `results/*.csv` must parse
//! as rectangular RFC-4180 CSV and every `results/*.json` as
//! well-formed JSON, through the same `telemetry` parsers the golden
//! tests use. Chrome traces (`*trace.json`) additionally get their
//! `ph:"B"`/`ph:"E"` span events balance-checked, and
//! `BENCH_profile.json` / `BENCH_audit.json` must carry their expected
//! schema markers with at least one profiled/audited workload.
//! `BENCH_hostprof.json` gets the full structural check (counter
//! consistency, attribution coverage, ceiling monotonicity). Monitor
//! snapshot dumps (`*monitor.json`) are schema- and
//! accounting-checked, flight-recorder dossiers (`*flightrec.json`)
//! structurally validated (including their embedded monitor series),
//! and `*.jsonl` ledgers (bench history, orchestrator journals)
//! checked line by line. CI runs this after the traced
//! smoke/timeline/profile/audit runs; exits non-zero on the first
//! malformed artifact.
//!
//! Usage: `validate-trace [DIR]` (default `results`).

use std::path::Path;
use std::process::ExitCode;

/// Checks beyond well-formedness, keyed off the artifact's file name.
fn validate_json_artifact(name: &str, body: &str) -> Result<String, String> {
    if name.ends_with("monitor.json") {
        // monitor::validate_doc parses and checks schema, metric kinds
        // and the retained+dropped=sampled accounting itself.
        return telemetry::monitor::validate_doc(body);
    }
    if name.ends_with("flightrec.json") {
        return telemetry::flightrec::validate_doc(body);
    }
    telemetry::json::validate(body)?;
    if name.ends_with("trace.json") {
        let pairs = telemetry::export::span_balance(body)?;
        return Ok(format!("spans balanced, {pairs} B/E pairs"));
    }
    if name == "BENCH_profile.json" {
        let marker = format!(
            "\"schema\":{}",
            telemetry::json::string(harness::experiments::profile::SCHEMA)
        );
        if !body.starts_with('{') || !body.contains(&marker) {
            return Err(format!(
                "missing schema marker {:?}",
                harness::experiments::profile::SCHEMA
            ));
        }
        if !body.contains("\"app\":") || !body.contains("\"p99\":") {
            return Err("no profiled workload with stage quantiles".into());
        }
        return Ok("profile schema ok".to_string());
    }
    if name == "BENCH_hostprof.json" {
        // hostprof::validate_doc parses and checks counter consistency,
        // attribution coverage, queue-quantile ordering, cohort sanity
        // and speedup-ceiling monotonicity itself.
        return harness::experiments::hostprof::validate_doc(body);
    }
    if name == "BENCH_audit.json" {
        let marker = format!(
            "\"schema\":{}",
            telemetry::json::string(harness::experiments::audit::SCHEMA)
        );
        if !body.starts_with('{') || !body.contains(&marker) {
            return Err(format!(
                "missing schema marker {:?}",
                harness::experiments::audit::SCHEMA
            ));
        }
        if !body.contains("\"app\":")
            || !body.contains("\"regret\":")
            || !body.contains("\"avoidable_chunk_migrations\":")
        {
            return Err("no audited workload with oracle regret".into());
        }
        return Ok("audit schema ok".to_string());
    }
    Ok("ok".to_string())
}

/// Validate a JSONL ledger: every line must be well-formed JSON.
/// (Appenders are crash-safe via append-only writes, so a torn *final*
/// line is salvageable at read time — but CI artifacts are written by
/// cleanly-exited runs and held to the strict bar.)
fn validate_jsonl(body: &str) -> Result<String, String> {
    let mut lines = 0usize;
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        telemetry::json::validate(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        lines += 1;
    }
    if lines == 0 {
        return Err("no JSON lines".to_string());
    }
    Ok(format!("{lines} JSONL lines"))
}

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    let dir = Path::new(&dir);
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("[validate-trace] cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };

    let mut checked = 0usize;
    let mut failed = 0usize;
    let mut names: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    names.sort();

    for path in names {
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        let verdict = match ext {
            "csv" => std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|s| telemetry::csv::validate(&s).map(|cols| cols.len().to_string())),
            "json" => std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|s| validate_json_artifact(&name, &s)),
            "jsonl" => std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|s| validate_jsonl(&s)),
            _ => continue,
        };
        checked += 1;
        match verdict {
            Ok(detail) => println!("[validate-trace] OK   {} ({detail})", path.display()),
            Err(e) => {
                failed += 1;
                eprintln!("[validate-trace] FAIL {}: {e}", path.display());
            }
        }
    }

    println!("[validate-trace] {checked} artifacts checked, {failed} failed");
    if failed > 0 || checked == 0 {
        if checked == 0 {
            eprintln!("[validate-trace] no .csv/.json/.jsonl artifacts found — nothing validated");
        }
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
