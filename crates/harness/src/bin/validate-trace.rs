//! Validate exported trace artifacts: every `results/*.csv` must parse
//! as rectangular RFC-4180 CSV and every `results/*.json` as
//! well-formed JSON, through the same `telemetry` parsers the golden
//! tests use. CI runs this after the traced smoke/timeline runs;
//! exits non-zero on the first malformed artifact.
//!
//! Usage: `validate-trace [DIR]` (default `results`).

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    let dir = Path::new(&dir);
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("[validate-trace] cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };

    let mut checked = 0usize;
    let mut failed = 0usize;
    let mut names: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    names.sort();

    for path in names {
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
        let verdict = match ext {
            "csv" => std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|s| telemetry::csv::validate(&s).map(|cols| cols.len().to_string())),
            "json" => std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|s| telemetry::json::validate(&s).map(|()| "ok".to_string())),
            _ => continue,
        };
        checked += 1;
        match verdict {
            Ok(detail) => println!("[validate-trace] OK   {} ({detail})", path.display()),
            Err(e) => {
                failed += 1;
                eprintln!("[validate-trace] FAIL {}: {e}", path.display());
            }
        }
    }

    println!("[validate-trace] {checked} artifacts checked, {failed} failed");
    if failed > 0 || checked == 0 {
        if checked == 0 {
            eprintln!("[validate-trace] no .csv/.json artifacts found — nothing validated");
        }
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
