//! Quick smoke run: one workload, baseline vs CPPE, timing info.
use cppe::presets::PolicyPreset;
use harness::{run_cell, ExpConfig};
use workloads::registry;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "STN".into());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let cfg = ExpConfig {
        scale,
        ..ExpConfig::default()
    };
    let w = registry::by_abbr(&which).expect("unknown workload");
    for preset in [
        PolicyPreset::Baseline,
        PolicyPreset::Cppe,
        PolicyPreset::DisablePfOnFull,
    ] {
        for rate in [0.75, 0.5] {
            let t0 = std::time::Instant::now();
            let r = run_cell(&w, preset, rate, &cfg);
            let frac = r.engine.total_untouch as f64 / r.engine.pages_evicted.max(1) as f64;
            let vol = r.engine.pages_evicted as f64 / w.pages(cfg.scale) as f64;
            println!(
                "{:8} {:16} rate={:.2} outcome={:?} cycles={:>12} faults={:>8} evict={:>8} ufrac={:.2} vol={:.1} wall={:?}",
                w.abbr, preset.label(), rate, r.outcome, r.cycles,
                r.driver.faults_serviced, r.engine.chunk_evictions, frac, vol, t0.elapsed()
            );
        }
    }
}
