//! Quick smoke run: one workload, baseline vs CPPE, timing info.
//!
//! Usage: `smoke [WORKLOAD] [SCALE] [--trace] [--trace-format F]`.
//! With tracing on, the CPPE run at 50% oversubscription additionally
//! exports `results/smoke_timeline.csv`, `results/smoke_summary.json`
//! and `results/smoke_trace.json` according to the format selection.

use cppe::presets::PolicyPreset;
use harness::{run_cell, ExpConfig};
use telemetry::{export, TraceFormat};
use workloads::registry;

fn main() {
    let mut which = "STN".to_string();
    let mut scale = 0.5f64;
    let mut positional = 0;
    let mut trace = false;
    let mut format = TraceFormat::Csv;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => trace = true,
            "--trace-format" => {
                i += 1;
                format = args
                    .get(i)
                    .map(|s| TraceFormat::parse(s).expect("bad --trace-format"))
                    .expect("--trace-format needs csv|json|chrome|all");
                trace = true;
            }
            other => {
                match positional {
                    0 => which = other.to_string(),
                    1 => scale = other.parse().expect("SCALE must be a number"),
                    _ => panic!("unexpected argument: {other}"),
                }
                positional += 1;
            }
        }
        i += 1;
    }

    let mut cfg = ExpConfig {
        scale,
        ..ExpConfig::default()
    };
    cfg.gpu.trace.enabled = trace;
    cfg.trace_format = format;

    let w = registry::by_abbr(&which).expect("unknown workload");
    for preset in [
        PolicyPreset::Baseline,
        PolicyPreset::Cppe,
        PolicyPreset::DisablePfOnFull,
    ] {
        for rate in [0.75, 0.5] {
            let t0 = std::time::Instant::now();
            let r = run_cell(&w, preset, rate, &cfg);
            let frac = r.engine.total_untouch as f64 / r.engine.pages_evicted.max(1) as f64;
            let vol = r.engine.pages_evicted as f64 / w.pages(cfg.scale) as f64;
            println!(
                "{:8} {:16} rate={:.2} outcome={:?} cycles={:>12} faults={:>8} evict={:>8} ufrac={:.2} vol={:.1} wall={:?}",
                w.abbr, preset.label(), rate, r.outcome, r.cycles,
                r.driver.faults_serviced, r.engine.chunk_evictions, frac, vol, t0.elapsed()
            );
            if trace && preset == PolicyPreset::Cppe && rate == 0.5 {
                let t = r.telemetry.as_ref().expect("traced run has telemetry");
                if format.wants_csv() {
                    save("smoke_timeline.csv", &export::timeline_csv(&t.series));
                }
                if format.wants_json() {
                    let outcome = format!("{:?}", r.outcome).to_lowercase();
                    save(
                        "smoke_summary.json",
                        &export::run_summary_json(&outcome, r.cycles, t),
                    );
                }
                if format.wants_chrome() {
                    save("smoke_trace.json", &export::chrome_trace_json(t));
                }
            }
        }
    }
}

fn save(name: &str, content: &str) {
    match harness::report::save(name, content) {
        Ok(path) => eprintln!("[smoke] saved {}", path.display()),
        Err(e) => eprintln!("[smoke] could not save {name}: {e}"),
    }
}
