//! Regenerates the paper's table3 artifact. Usage:
//! `cargo run --release -p harness --bin table3 [--quick] [--scale X] [--threads N]`
fn main() {
    harness::experiments::binary_main("table3", |cfg, threads| {
        harness::experiments::table3::run(cfg, threads)
    });
}
