//! Regenerates the paper's table4 artifact. Usage:
//! `cargo run --release -p harness --bin table4 [--quick] [--scale X] [--threads N]`
fn main() {
    harness::experiments::binary_main("table4", |cfg, threads| {
        harness::experiments::table4::run(cfg, threads)
    });
}
