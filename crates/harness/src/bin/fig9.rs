//! Regenerates the paper's fig9 artifact. Usage:
//! `cargo run --release -p harness --bin fig9 [--quick] [--scale X] [--threads N]`
fn main() {
    harness::experiments::binary_main("fig9", |cfg, threads| {
        harness::experiments::fig9::run(cfg, threads)
    });
}
