//! Cross-run bench trend tool. Appends bench artifacts to the
//! fingerprint-keyed JSONL ledger and renders per-cell deltas with a
//! robust (median/MAD) significance bar plus an HTML dashboard.
//!
//! ```text
//! cargo run --release -p harness --bin trend -- \
//!     record --file BENCH_speed.json --label my-run [--history PATH]
//! cargo run --release -p harness --bin trend -- \
//!     report [--history PATH] [--out results/trend.html]
//! ```
//!
//! `record` accepts any of the repo's bench exports (`cppe-speed-v1`,
//! `cppe-profile-v1`, `cppe-audit-v1`, `cppe-hostprof-v1`) and
//! dispatches on the schema marker. The default ledger is `bench-history/history.jsonl`
//! (committable, append-only). `report` prints the text table and
//! writes the self-contained dashboard (inline SVG sparklines, no
//! scripts) — exit 1 when the ledger is missing or empty.

use harness::history;
use std::path::PathBuf;

const DEFAULT_HISTORY: &str = "bench-history/history.jsonl";

fn take<'a>(args: &'a [String], i: &mut usize, what: &str) -> &'a str {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .unwrap_or_else(|| panic!("{what} needs a value"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        eprintln!("usage: trend record --file F --label L | trend report [--out PATH]");
        std::process::exit(2);
    };
    let mut history = PathBuf::from(DEFAULT_HISTORY);
    let mut file = None;
    let mut label = None;
    let mut out = PathBuf::from("results").join("trend.html");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--history" => history = PathBuf::from(take(&args, &mut i, "--history")),
            "--file" => file = Some(PathBuf::from(take(&args, &mut i, "--file"))),
            "--label" => label = Some(take(&args, &mut i, "--label").to_string()),
            "--out" => out = PathBuf::from(take(&args, &mut i, "--out")),
            other => panic!("unknown argument: {other}"),
        }
        i += 1;
    }

    match cmd {
        "record" => {
            let file = file.unwrap_or_else(|| panic!("record needs --file"));
            let label = label.unwrap_or_else(|| panic!("record needs --label"));
            let doc = std::fs::read_to_string(&file).unwrap_or_else(|e| {
                eprintln!("[trend] cannot read {}: {e}", file.display());
                std::process::exit(2);
            });
            let (source, samples) = history::extract(&doc).unwrap_or_else(|e| {
                eprintln!("[trend] {}: {e}", file.display());
                std::process::exit(2);
            });
            let entry = history::HistoryEntry {
                label,
                source,
                samples,
            };
            if let Err(e) = history::append(&history, &entry) {
                eprintln!("[trend] cannot append to {}: {e}", history.display());
                std::process::exit(2);
            }
            eprintln!(
                "[trend] recorded {} {} samples from {} into {}",
                entry.samples.len(),
                entry.source,
                file.display(),
                history.display()
            );
        }
        "report" => {
            let (entries, skipped) = history::load(&history).unwrap_or_else(|e| {
                eprintln!("[trend] cannot read {}: {e}", history.display());
                std::process::exit(1);
            });
            if entries.is_empty() {
                eprintln!("[trend] {} holds no entries", history.display());
                std::process::exit(1);
            }
            let report = history::render_report(&entries, skipped);
            println!("{report}");
            let html = history::render_html(&entries, skipped);
            if let Some(parent) = out.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            match telemetry::export::write_atomic(&out, &html) {
                Ok(()) => eprintln!("[trend] dashboard written to {}", out.display()),
                Err(e) => {
                    eprintln!("[trend] cannot write {}: {e}", out.display());
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!("unknown command {other:?}; use record or report");
            std::process::exit(2);
        }
    }
}
